#include "quant/grouping.hpp"

#include "quant/uniform.hpp"

namespace apsq {

GroupedApsq::GroupedApsq(Shape tile_shape, Options options)
    : tile_shape_(std::move(tile_shape)), opt_(std::move(options)) {
  APSQ_CHECK_MSG(opt_.group_size >= 1, "group size gs must be >= 1");
  APSQ_CHECK_MSG(opt_.num_tiles >= 1, "np must be >= 1");
  APSQ_CHECK(!opt_.scales.empty());
  if (opt_.scales.size() == 1)
    opt_.scales.assign(static_cast<size_t>(opt_.num_tiles), opt_.scales[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(opt_.scales.size()) == opt_.num_tiles,
                 "need one scaling factor per PSUM tile");
  for (double a : opt_.scales) APSQ_CHECK(a > 0.0);
}

double GroupedApsq::scale_for(index_t i) const {
  APSQ_CHECK(i >= 0 && i < opt_.num_tiles);
  return opt_.scales[static_cast<size_t>(i)];
}

TensorD GroupedApsq::dequantized_group_sum() {
  TensorD acc(tile_shape_, 0.0);
  for (size_t t = 0; t < group_codes_.size(); ++t) {
    const double alpha = group_scales_[t];
    const TensorI32& codes = group_codes_[t];
    for (index_t e = 0; e < codes.numel(); ++e)
      acc[e] += alpha * static_cast<double>(codes[e]);
    ++stats_.buffer_reads;
  }
  return acc;
}

void GroupedApsq::push(const TensorF& tp) {
  APSQ_CHECK_MSG(pushed_ < opt_.num_tiles, "more tiles pushed than declared");
  APSQ_CHECK_MSG(tp.shape() == tile_shape_, "tile shape mismatch");
  const index_t i = pushed_;
  const double alpha_i = scale_for(i);
  const bool is_leader = (i % opt_.group_size) == 0;
  const bool is_last = (i == opt_.num_tiles - 1);

  auto quantize_tile = [&](const TensorD& value) {
    TensorI32 codes(tile_shape_);
    for (index_t e = 0; e < codes.numel(); ++e)
      codes[e] = static_cast<i32>(quantize_code(value[e], alpha_i, opt_.spec));
    ++stats_.quantizer_calls;
    return codes;
  };
  auto as_double = [&](const TensorF& t) {
    TensorD d(tile_shape_);
    for (index_t e = 0; e < d.numel(); ++e)
      d[e] = static_cast<double>(t[e]);
    return d;
  };

  if (is_leader || is_last) {
    // Algorithm 1 lines 4–7 (leader) and 13–14 (final tile): fold the
    // dequantized sum of the live group into the quantizer input.
    TensorD value = dequantized_group_sum();
    const TensorD tpd = as_double(tp);
    for (index_t e = 0; e < value.numel(); ++e) value[e] += tpd[e];
    TensorI32 codes = quantize_tile(value);
    ++stats_.apsq_folds;
    group_codes_.clear();
    group_scales_.clear();
    group_codes_.push_back(std::move(codes));
    group_scales_.push_back(alpha_i);
    ++stats_.buffer_writes;
  } else {
    // Lines 9–11: plain PSUM quantization of the current tile.
    group_codes_.push_back(quantize_tile(as_double(tp)));
    group_scales_.push_back(alpha_i);
    ++stats_.buffer_writes;
  }
  stats_.max_live_tiles =
      std::max(stats_.max_live_tiles, static_cast<index_t>(group_codes_.size()));

  ++pushed_;
  if (is_last) {
    // To = α_{np-1} · AP*_{np-1} (single live tile after the final fold).
    APSQ_CHECK(group_codes_.size() == 1);
    output_ = TensorF(tile_shape_);
    for (index_t e = 0; e < output_.numel(); ++e)
      output_[e] = static_cast<float>(
          alpha_i * static_cast<double>(group_codes_.front()[e]));
    finalized_ = true;
  }
}

TensorF GroupedApsq::output() const {
  APSQ_CHECK_MSG(finalized_, "output requested before all tiles were pushed");
  return output_;
}

}  // namespace apsq
