// PSUM scale calibration.
//
// The paper learns PSUM scaling factors with LSQ constrained to
// power-of-two values (2^⌊log2 α⌉ via STE, §II-B). Offline-training a
// learnable per-quantizer α is overkill for this reproduction's synthetic
// QAT runs, so we calibrate: track an exponential moving average of the
// per-tile max |PSUM| during training and round the resulting step to the
// nearest power of two. DESIGN.md §3.2/3.3 documents the substitution.
#pragma once

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// How the power-of-two exponent is derived from the tracked maximum.
enum class Pow2Rounding {
  kNearest,  ///< 2^⌊log2 α⌉ as the paper trains it (§II-B) — may clip the
             ///< top of the range by up to 2x, like the learned scales do
  kCeil,     ///< smallest power of two that never clips the tracked max
};

/// EMA max-abs tracker producing power-of-two scales.
class PsumScaleCalibrator {
 public:
  /// `momentum` in [0,1): new_max = momentum·old + (1-momentum)·observed.
  /// `margin` multiplies the tracked max before deriving the scale
  /// (headroom against clipping unseen batches).
  explicit PsumScaleCalibrator(QuantSpec spec, double momentum = 0.9,
                               double margin = 1.0,
                               Pow2Rounding rounding = Pow2Rounding::kNearest);

  /// Observe a PSUM tensor (training mode only).
  void observe(const TensorF& psum);
  void observe_abs_max(double abs_max);

  /// Current power-of-two scale 2^e with e derived from
  /// log2(max·margin / Qp) under the configured rounding, clamped to
  /// e >= 0 (PSUMs are integer-valued in product scale; a scale below 1
  /// would waste code space). Returns 1.0 before any observation.
  double scale() const;

  /// Shift exponent for the integer path (log2 of scale()).
  int exponent() const;

  bool calibrated() const { return seen_; }
  double tracked_max() const { return ema_max_; }

 private:
  QuantSpec spec_;
  double momentum_;
  double margin_;
  Pow2Rounding rounding_;
  double ema_max_ = 0.0;
  bool seen_ = false;
};

}  // namespace apsq
