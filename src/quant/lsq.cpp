#include "quant/lsq.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace apsq {

LsqResult lsq_forward(const TensorF& x, float alpha, const QuantSpec& spec) {
  APSQ_CHECK_MSG(alpha > 0.0f, "LSQ step size must stay positive");
  LsqResult r{TensorF(x.shape()), TensorF(x.shape()), 0.0f};
  const double qn = static_cast<double>(spec.qmin());
  const double qp = static_cast<double>(spec.qmax());
  for (index_t i = 0; i < x.numel(); ++i) {
    const double v = static_cast<double>(x[i]) / alpha;
    const bool inside = v >= qn && v <= qp;
    const double q = clipf(round_half_away(v), qn, qp);
    r.y[i] = static_cast<float>(q * alpha);
    r.pass_mask[i] = inside ? 1.0f : 0.0f;
  }
  return r;
}

LsqGrads lsq_backward(const TensorF& x, float alpha, const QuantSpec& spec,
                      const TensorF& dy) {
  APSQ_CHECK(x.same_shape(dy));
  LsqGrads g{TensorF(x.shape()), 0.0f};
  const double qn = static_cast<double>(spec.qmin());
  const double qp = static_cast<double>(spec.qmax());
  const float gscale = lsq_grad_scale(x.numel(), spec);
  double dalpha = 0.0;
  for (index_t i = 0; i < x.numel(); ++i) {
    const double v = static_cast<double>(x[i]) / alpha;
    double dadY;  // ∂y_i/∂α
    float dxdY;   // ∂y_i/∂x_i
    if (v < qn) {
      dadY = qn;
      dxdY = 0.0f;
    } else if (v > qp) {
      dadY = qp;
      dxdY = 0.0f;
    } else {
      dadY = round_half_away(v) - v;
      dxdY = 1.0f;
    }
    g.dx[i] = dxdY * dy[i];
    dalpha += dadY * static_cast<double>(dy[i]);
  }
  g.dalpha = static_cast<float>(dalpha) * gscale;
  return g;
}

float lsq_init_alpha(const TensorF& x, const QuantSpec& spec) {
  APSQ_CHECK(x.numel() > 0);
  double mean_abs = 0.0;
  for (index_t i = 0; i < x.numel(); ++i)
    mean_abs += std::fabs(static_cast<double>(x[i]));
  mean_abs /= static_cast<double>(x.numel());
  const double a =
      2.0 * mean_abs / std::sqrt(static_cast<double>(spec.qmax()));
  return a > 0.0 ? static_cast<float>(a) : 1e-3f;
}

float lsq_grad_scale(index_t numel, const QuantSpec& spec) {
  APSQ_CHECK(numel > 0);
  return static_cast<float>(
      1.0 / std::sqrt(static_cast<double>(numel) *
                      static_cast<double>(spec.qmax())));
}

}  // namespace apsq
