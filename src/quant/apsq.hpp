// APSQ — Additive Partial Sum Quantization (paper §III-A, Eq. 10) and the
// reference PSUM-handling modes it is compared against.
//
//   Exact : To = Σ Tp_i in full precision (the INT32-PSUM baseline).
//   PSQ   : each Tp_i is quantized independently (prior work [19], [20]);
//           storage is low-bit, accumulation happens on dequantized values.
//   APSQ  : AP_i = Q_k(Tp_i + α_{i-1}·AP_{i-1})  — every stored value is a
//           low-bit code AND the quantizer sees the accumulated history.
//
// All three are float/double *references*; the integer (shift-based)
// hardware path lives in apsq_int.hpp and must agree bit-for-bit with
// these for power-of-two scales.
#pragma once

#include <vector>

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// How partial sums are treated during tile-based accumulation.
enum class PsumMode {
  kExact,  ///< full-precision PSUM (baseline)
  kPsq,    ///< independent per-tile PSUM quantization (prior work)
  kApsq,   ///< additive PSUM quantization, Eq. (10) / Algorithm 1
};

const char* to_string(PsumMode mode);

/// Streaming Eq. (10) accumulator (pure APSQ, i.e. group size 1).
///
/// Push the np PSUM tiles Tp_0 … Tp_{np-1} in order; `output()` then
/// returns To = α_{np-1} · AP_{np-1}. Scales may differ per tile.
class ApsqAccumulator {
 public:
  /// `scales[i]` is α_i; pass a single-element vector to broadcast.
  ApsqAccumulator(Shape tile_shape, QuantSpec spec, std::vector<double> scales,
                  index_t num_tiles);

  void push(const TensorF& tp);

  /// Dequantized output tile; valid only after num_tiles pushes.
  TensorF output() const;

  /// Current stored low-bit codes (what would sit in the ofmap buffer).
  const TensorI32& stored_codes() const { return codes_; }

  index_t tiles_pushed() const { return pushed_; }
  index_t num_tiles() const { return num_tiles_; }
  double scale_for(index_t i) const;

 private:
  Shape tile_shape_;
  QuantSpec spec_;
  std::vector<double> scales_;
  index_t num_tiles_ = 0;
  index_t pushed_ = 0;
  TensorI32 codes_;  ///< AP*_{pushed_-1}
};

/// Independent per-tile PSUM quantization (PSQ, prior work): each tile is
/// quantized for storage, then dequantized and accumulated exactly.
class PsqAccumulator {
 public:
  PsqAccumulator(Shape tile_shape, QuantSpec spec, std::vector<double> scales,
                 index_t num_tiles);

  void push(const TensorF& tp);
  TensorF output() const;
  index_t tiles_pushed() const { return pushed_; }

 private:
  Shape tile_shape_;
  QuantSpec spec_;
  std::vector<double> scales_;
  index_t num_tiles_ = 0;
  index_t pushed_ = 0;
  TensorD acc_;
};

/// Convenience: run a whole tile sequence through a mode and return To.
/// For kExact, `spec`/`scales` are ignored.
TensorF accumulate_psums(const std::vector<TensorF>& tiles, PsumMode mode,
                         const QuantSpec& spec, const std::vector<double>& scales,
                         index_t group_size = 1);

}  // namespace apsq
