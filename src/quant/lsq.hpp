// LSQ — Learned Step Size Quantization (Esser et al., ICLR 2020), the
// quantizer the paper uses for weights and activations (§II-B).
//
// Forward:   x̃ = α · clip(⌊x/α⌉, Qn, Qp)
// Backward:  ∂x̃/∂x = 1 inside the clip range, 0 outside (STE);
//            ∂x̃/∂α = ⌊x/α⌉ − x/α inside the range, Qn/Qp when clipped,
//            multiplied by the LSQ gradient scale g = 1/sqrt(N · Qp).
//
// These are pure functions; the NN substrate owns the learnable α state.
#pragma once

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

struct LsqResult {
  TensorF y;           ///< fake-quantized values
  TensorF pass_mask;   ///< 1 where |x/α| within [Qn, Qp] (STE pass-through)
  float grad_alpha;    ///< accumulated dL/dα factor, to be scaled by upstream grads
};

/// LSQ forward pass; also records the per-element STE mask and the
/// α-gradient terms (before multiplication with the upstream gradient).
LsqResult lsq_forward(const TensorF& x, float alpha, const QuantSpec& spec);

/// Backward: given upstream dL/dy, produce dL/dx and dL/dα.
/// `x` and `alpha` must be the forward inputs.
struct LsqGrads {
  TensorF dx;
  float dalpha = 0.0f;
};
LsqGrads lsq_backward(const TensorF& x, float alpha, const QuantSpec& spec,
                      const TensorF& dy);

/// LSQ's recommended initial step size: 2·mean(|x|)/sqrt(Qp).
float lsq_init_alpha(const TensorF& x, const QuantSpec& spec);

/// LSQ gradient scale g = 1 / sqrt(numel · Qp).
float lsq_grad_scale(index_t numel, const QuantSpec& spec);

}  // namespace apsq
