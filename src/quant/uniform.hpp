// Uniform fake-quantization (Eq. 7): x̃ = α · clip(⌊x/α⌉, Qn, Qp).
//
// Rounding is half-away-from-zero everywhere so that, for power-of-two α,
// the float path agrees bit-for-bit with the integer shifter path in
// src/quant/apsq_int.hpp (see DESIGN.md §3.3).
#pragma once

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// Integer code of a scalar: clip(⌊x/α⌉, Qn, Qp).
i64 quantize_code(double x, double alpha, const QuantSpec& spec);

/// Fake-quantized scalar: α · quantize_code(x).
double fake_quantize(double x, double alpha, const QuantSpec& spec);

/// Elementwise fake quantization of a tensor (double precision internally).
TensorF fake_quantize(const TensorF& x, double alpha, const QuantSpec& spec);

/// Elementwise integer codes of a tensor.
TensorI32 quantize_codes(const TensorF& x, double alpha, const QuantSpec& spec);

/// Dequantize integer codes: α · q.
TensorF dequantize(const TensorI32& q, double alpha);

/// Min–max calibration: the smallest α such that max|x| maps inside
/// [Qn, Qp] (symmetric signed grids; α = max|x| / Qp).
double calibrate_minmax(const TensorF& x, const QuantSpec& spec);

/// Mean absolute quantization error of fake-quantizing x with α.
double quantization_mse(const TensorF& x, double alpha, const QuantSpec& spec);

}  // namespace apsq
