#include "quant/apsq_int.hpp"

#include "common/math_util.hpp"

namespace apsq {

i32 psum_quantize_shift(i64 x, int exp, const QuantSpec& spec) {
  APSQ_DCHECK(exp >= 0);
  const i64 q = rounding_shift_right(x, exp);
  return static_cast<i32>(clip(q, spec.qmin(), spec.qmax()));
}

i64 psum_dequantize_shift(i32 code, int exp) {
  APSQ_DCHECK(exp >= 0 && exp < 32);
  // Shift in the unsigned domain: a left shift of a negative signed value
  // is UB before C++20 (flagged by UBSan); the two's-complement result is
  // identical.
  return static_cast<i64>(static_cast<u64>(static_cast<i64>(code)) << exp);
}

GroupedApsqInt::GroupedApsqInt(Shape tile_shape, Options options)
    : tile_shape_(std::move(tile_shape)), opt_(std::move(options)) {
  APSQ_CHECK(opt_.group_size >= 1);
  APSQ_CHECK(opt_.num_tiles >= 1);
  APSQ_CHECK(!opt_.exponents.empty());
  if (opt_.exponents.size() == 1)
    opt_.exponents.assign(static_cast<size_t>(opt_.num_tiles), opt_.exponents[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(opt_.exponents.size()) == opt_.num_tiles,
                 "need one shift exponent per PSUM tile");
  for (int e : opt_.exponents) APSQ_CHECK_MSG(e >= 0 && e < 32, "bad exponent");
}

int GroupedApsqInt::exp_for(index_t i) const {
  APSQ_CHECK(i >= 0 && i < opt_.num_tiles);
  return opt_.exponents[static_cast<size_t>(i)];
}

int GroupedApsqInt::final_exponent() const {
  return exp_for(opt_.num_tiles - 1);
}

void GroupedApsqInt::push(const TensorI32& tp) {
  APSQ_CHECK_MSG(pushed_ < opt_.num_tiles, "more tiles pushed than declared");
  APSQ_CHECK_MSG(tp.shape() == tile_shape_, "tile shape mismatch");
  const index_t i = pushed_;
  const int exp_i = exp_for(i);
  const bool is_leader = (i % opt_.group_size) == 0;
  const bool is_last = (i == opt_.num_tiles - 1);

  if (is_leader || is_last) {
    // Fold: dequantize all live tiles (left shifts), add current tile,
    // quantize once (rounding right shift + clip).
    TensorI64 acc(tile_shape_, 0);
    for (size_t t = 0; t < group_codes_.size(); ++t)
      for (index_t e = 0; e < acc.numel(); ++e)
        acc[e] += psum_dequantize_shift(group_codes_[t][e], group_exps_[t]);
    TensorI32 codes(tile_shape_);
    for (index_t e = 0; e < codes.numel(); ++e)
      codes[e] = psum_quantize_shift(acc[e] + static_cast<i64>(tp[e]), exp_i,
                                     opt_.spec);
    group_codes_.clear();
    group_exps_.clear();
    group_codes_.push_back(std::move(codes));
    group_exps_.push_back(exp_i);
  } else {
    TensorI32 codes(tile_shape_);
    for (index_t e = 0; e < codes.numel(); ++e)
      codes[e] = psum_quantize_shift(static_cast<i64>(tp[e]), exp_i, opt_.spec);
    group_codes_.push_back(std::move(codes));
    group_exps_.push_back(exp_i);
  }

  ++pushed_;
  if (is_last) {
    APSQ_CHECK(group_codes_.size() == 1);
    output_ = TensorI64(tile_shape_);
    for (index_t e = 0; e < output_.numel(); ++e)
      output_[e] = psum_dequantize_shift(group_codes_.front()[e], exp_i);
    finalized_ = true;
  }
}

TensorI64 GroupedApsqInt::output() const {
  APSQ_CHECK_MSG(finalized_, "output requested before all tiles were pushed");
  return output_;
}

}  // namespace apsq
