#include "quant/apsq.hpp"

#include "common/math_util.hpp"
#include "quant/grouping.hpp"
#include "quant/uniform.hpp"

namespace apsq {

const char* to_string(PsumMode mode) {
  switch (mode) {
    case PsumMode::kExact: return "exact";
    case PsumMode::kPsq: return "psq";
    case PsumMode::kApsq: return "apsq";
  }
  return "?";
}

namespace {

std::vector<double> check_scales(std::vector<double> scales, index_t num_tiles) {
  APSQ_CHECK(num_tiles > 0);
  APSQ_CHECK_MSG(!scales.empty(), "at least one scaling factor required");
  if (scales.size() == 1) scales.assign(static_cast<size_t>(num_tiles), scales[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(scales.size()) == num_tiles,
                 "scale count " << scales.size() << " != num_tiles " << num_tiles);
  for (double a : scales) APSQ_CHECK_MSG(a > 0.0, "scales must be positive");
  return scales;
}

}  // namespace

ApsqAccumulator::ApsqAccumulator(Shape tile_shape, QuantSpec spec,
                                 std::vector<double> scales, index_t num_tiles)
    : tile_shape_(std::move(tile_shape)),
      spec_(spec),
      scales_(check_scales(std::move(scales), num_tiles)),
      num_tiles_(num_tiles),
      codes_(tile_shape_, 0) {}

double ApsqAccumulator::scale_for(index_t i) const {
  APSQ_CHECK(i >= 0 && i < num_tiles_);
  return scales_[static_cast<size_t>(i)];
}

void ApsqAccumulator::push(const TensorF& tp) {
  APSQ_CHECK_MSG(pushed_ < num_tiles_, "more tiles pushed than declared");
  APSQ_CHECK_MSG(tp.shape() == tile_shape_, "tile shape mismatch");
  const double alpha_i = scale_for(pushed_);
  const double alpha_prev = pushed_ > 0 ? scale_for(pushed_ - 1) : 0.0;
  for (index_t e = 0; e < tp.numel(); ++e) {
    // Eq. (10): AP_i = Q_k(Tp_i + α_{i-1} · AP_{i-1});  AP_0 = Q_k(Tp_0).
    const double history =
        pushed_ > 0 ? alpha_prev * static_cast<double>(codes_[e]) : 0.0;
    codes_[e] = static_cast<i32>(
        quantize_code(static_cast<double>(tp[e]) + history, alpha_i, spec_));
  }
  ++pushed_;
}

TensorF ApsqAccumulator::output() const {
  APSQ_CHECK_MSG(pushed_ == num_tiles_,
                 "output requested after " << pushed_ << " of " << num_tiles_
                                           << " tiles");
  const double alpha_last = scale_for(num_tiles_ - 1);
  TensorF out(tile_shape_);
  for (index_t e = 0; e < out.numel(); ++e)
    out[e] = static_cast<float>(alpha_last * static_cast<double>(codes_[e]));
  return out;
}

PsqAccumulator::PsqAccumulator(Shape tile_shape, QuantSpec spec,
                               std::vector<double> scales, index_t num_tiles)
    : tile_shape_(std::move(tile_shape)),
      spec_(spec),
      scales_(check_scales(std::move(scales), num_tiles)),
      num_tiles_(num_tiles),
      acc_(tile_shape_, 0.0) {}

void PsqAccumulator::push(const TensorF& tp) {
  APSQ_CHECK_MSG(pushed_ < num_tiles_, "more tiles pushed than declared");
  APSQ_CHECK_MSG(tp.shape() == tile_shape_, "tile shape mismatch");
  const double alpha = scales_[static_cast<size_t>(pushed_)];
  for (index_t e = 0; e < tp.numel(); ++e)
    acc_[e] += fake_quantize(static_cast<double>(tp[e]), alpha, spec_);
  ++pushed_;
}

TensorF PsqAccumulator::output() const {
  APSQ_CHECK(pushed_ == num_tiles_);
  TensorF out(tile_shape_);
  for (index_t e = 0; e < out.numel(); ++e)
    out[e] = static_cast<float>(acc_[e]);
  return out;
}

TensorF accumulate_psums(const std::vector<TensorF>& tiles, PsumMode mode,
                         const QuantSpec& spec, const std::vector<double>& scales,
                         index_t group_size) {
  APSQ_CHECK(!tiles.empty());
  const index_t np = static_cast<index_t>(tiles.size());
  const Shape& shape = tiles.front().shape();

  switch (mode) {
    case PsumMode::kExact: {
      TensorD acc(shape, 0.0);
      for (const auto& t : tiles) {
        APSQ_CHECK(t.shape() == shape);
        for (index_t e = 0; e < t.numel(); ++e)
          acc[e] += static_cast<double>(t[e]);
      }
      TensorF out(shape);
      for (index_t e = 0; e < out.numel(); ++e)
        out[e] = static_cast<float>(acc[e]);
      return out;
    }
    case PsumMode::kPsq: {
      PsqAccumulator acc(shape, spec, scales, np);
      for (const auto& t : tiles) acc.push(t);
      return acc.output();
    }
    case PsumMode::kApsq: {
      GroupedApsq::Options opt;
      opt.spec = spec;
      opt.group_size = group_size;
      opt.num_tiles = np;
      opt.scales = scales;
      GroupedApsq acc(shape, opt);
      for (const auto& t : tiles) acc.push(t);
      return acc.output();
    }
  }
  APSQ_CHECK_MSG(false, "unreachable");
  return TensorF();
}

}  // namespace apsq
