#include "quant/uniform.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace apsq {

i64 quantize_code(double x, double alpha, const QuantSpec& spec) {
  APSQ_DCHECK(alpha > 0.0);
  const double q = round_half_away(x / alpha);
  return clip(static_cast<i64>(q), spec.qmin(), spec.qmax());
}

double fake_quantize(double x, double alpha, const QuantSpec& spec) {
  return alpha * static_cast<double>(quantize_code(x, alpha, spec));
}

TensorF fake_quantize(const TensorF& x, double alpha, const QuantSpec& spec) {
  TensorF out(x.shape());
  for (index_t i = 0; i < x.numel(); ++i)
    out[i] = static_cast<float>(fake_quantize(static_cast<double>(x[i]), alpha, spec));
  return out;
}

TensorI32 quantize_codes(const TensorF& x, double alpha, const QuantSpec& spec) {
  TensorI32 out(x.shape());
  for (index_t i = 0; i < x.numel(); ++i)
    out[i] = static_cast<i32>(quantize_code(static_cast<double>(x[i]), alpha, spec));
  return out;
}

TensorF dequantize(const TensorI32& q, double alpha) {
  TensorF out(q.shape());
  for (index_t i = 0; i < q.numel(); ++i)
    out[i] = static_cast<float>(alpha * static_cast<double>(q[i]));
  return out;
}

double calibrate_minmax(const TensorF& x, const QuantSpec& spec) {
  double mx = 0.0;
  for (index_t i = 0; i < x.numel(); ++i)
    mx = std::max(mx, std::fabs(static_cast<double>(x[i])));
  if (mx == 0.0) return 1.0;  // degenerate all-zero input: any scale works
  return mx / static_cast<double>(spec.qmax());
}

double quantization_mse(const TensorF& x, double alpha, const QuantSpec& spec) {
  APSQ_CHECK(x.numel() > 0);
  double acc = 0.0;
  for (index_t i = 0; i < x.numel(); ++i) {
    const double d =
        static_cast<double>(x[i]) - fake_quantize(static_cast<double>(x[i]), alpha, spec);
    acc += d * d;
  }
  return acc / static_cast<double>(x.numel());
}

}  // namespace apsq
