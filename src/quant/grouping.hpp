// Grouping strategy (paper §III-B, Algorithm 1): APSQ combined with plain
// PSUM quantization at group granularity.
//
// The np PSUM tiles are partitioned into groups of size gs. The first tile
// of each group is processed with APSQ — its quantizer sees the current
// tile PLUS the dequantized sum of the previous group's stored tiles — and
// the remaining gs-1 tiles are quantized independently (plain PSQ). The
// final tile folds the current group and is quantized once to produce To.
//
// gs = 1 degenerates to pure APSQ (Eq. 10); gs >= np means every tile but
// the first/last is plain-quantized and only two "fold" quantizations
// happen. Larger gs means fewer compounding rounding steps (better
// accuracy) but gs live INT8 tiles in the ofmap buffer (larger footprint —
// the energy-model side of this trade-off lives in src/energy).
#pragma once

#include <vector>

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// Counters describing the buffer traffic Algorithm 1 generated; used by
/// tests to confirm the paper's claim that total reads/writes are
/// independent of gs (§III-B).
struct GroupingStats {
  index_t quantizer_calls = 0;   ///< total Q_k invocations
  index_t apsq_folds = 0;        ///< how many of them folded history
  index_t buffer_writes = 0;     ///< stored-tile writes (one per tile)
  index_t buffer_reads = 0;      ///< stored-tile reads (for dequant-accumulate)
  index_t max_live_tiles = 0;    ///< peak stored tiles == footprint multiplier
};

class GroupedApsq {
 public:
  struct Options {
    QuantSpec spec = QuantSpec::int8();
    index_t group_size = 1;        ///< gs >= 1
    index_t num_tiles = 0;         ///< np > 0
    std::vector<double> scales;    ///< per tile (size np) or broadcast (size 1)
  };

  GroupedApsq(Shape tile_shape, Options options);

  /// Push the next PSUM tile Tp_i (call exactly num_tiles times).
  void push(const TensorF& tp);

  /// Dequantized output tile To; valid after all tiles are pushed.
  TensorF output() const;

  index_t tiles_pushed() const { return pushed_; }
  const GroupingStats& stats() const { return stats_; }

  /// Stored codes currently live in the buffer (leader first).
  const std::vector<TensorI32>& live_codes() const { return group_codes_; }
  const std::vector<double>& live_scales() const { return group_scales_; }

 private:
  double scale_for(index_t i) const;
  /// Dequantized elementwise sum of all live stored tiles (counts reads).
  TensorD dequantized_group_sum();

  Shape tile_shape_;
  Options opt_;
  index_t pushed_ = 0;
  std::vector<TensorI32> group_codes_;
  std::vector<double> group_scales_;
  GroupingStats stats_;
  bool finalized_ = false;
  TensorF output_;
};

}  // namespace apsq
