#include "quant/psum_calib.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace apsq {

PsumScaleCalibrator::PsumScaleCalibrator(QuantSpec spec, double momentum,
                                         double margin, Pow2Rounding rounding)
    : spec_(spec), momentum_(momentum), margin_(margin), rounding_(rounding) {
  APSQ_CHECK(momentum >= 0.0 && momentum < 1.0);
  APSQ_CHECK(margin >= 1.0);
}

void PsumScaleCalibrator::observe(const TensorF& psum) {
  double mx = 0.0;
  for (index_t i = 0; i < psum.numel(); ++i)
    mx = std::max(mx, std::fabs(static_cast<double>(psum[i])));
  observe_abs_max(mx);
}

void PsumScaleCalibrator::observe_abs_max(double abs_max) {
  APSQ_CHECK(abs_max >= 0.0);
  if (!seen_) {
    ema_max_ = abs_max;
    seen_ = true;
  } else {
    ema_max_ = momentum_ * ema_max_ + (1.0 - momentum_) * abs_max;
  }
}

double PsumScaleCalibrator::scale() const {
  return std::exp2(static_cast<double>(exponent()));
}

int PsumScaleCalibrator::exponent() const {
  if (!seen_ || ema_max_ <= 0.0) return 0;
  const double needed = ema_max_ * margin_ / static_cast<double>(spec_.qmax());
  // kCeil: the tracked max never clips. kNearest: 2^⌊log2⌉ as the paper's
  // STE-trained scales — the top of the range may saturate, which is part
  // of the accuracy behaviour APSQ exhibits (§IV-B). Clamp below at 0.
  const double l = std::log2(needed);
  const int e = rounding_ == Pow2Rounding::kCeil
                    ? static_cast<int>(std::ceil(l))
                    : static_cast<int>(round_half_away(l));
  return e < 0 ? 0 : e;
}

}  // namespace apsq
