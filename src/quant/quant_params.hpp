// Quantization format descriptors (bit-width, signedness) and their
// integer grid bounds Qn / Qp of Eq. (7).
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

/// A k-bit uniform integer grid. Signed: [-2^(k-1), 2^(k-1)-1];
/// unsigned: [0, 2^k - 1].
struct QuantSpec {
  int bits = 8;
  bool is_signed = true;

  i64 qmin() const {
    APSQ_CHECK(bits >= 2 && bits <= 32);
    return is_signed ? -(i64{1} << (bits - 1)) : 0;
  }
  i64 qmax() const {
    APSQ_CHECK(bits >= 2 && bits <= 32);
    return is_signed ? (i64{1} << (bits - 1)) - 1 : (i64{1} << bits) - 1;
  }
  /// Number of representable levels.
  i64 levels() const { return qmax() - qmin() + 1; }

  static QuantSpec int8() { return {8, true}; }
  static QuantSpec int6() { return {6, true}; }
  static QuantSpec int4() { return {4, true}; }
  static QuantSpec uint8() { return {8, false}; }
};

}  // namespace apsq
