// Integer, shift-based APSQ path — the arithmetic the RAE hardware
// actually performs (paper §III-C, Fig. 2: the << / >> blocks).
//
// PSUM tiles arrive as INT32 values in "product scale" (the scale of an
// INT8×INT8 product). PSUM scaling factors are powers of two, α_i = 2^e_i,
// so quantization is a rounding arithmetic right-shift plus clip, and
// dequantization is a left shift. This file is the *functional* integer
// reference; the structural bank/mux/adder model lives in src/rae and is
// tested against it.
//
// For matching scales, GroupedApsqInt agrees bit-for-bit with the float
// reference GroupedApsq (tests/quant/apsq_int_test.cpp).
#pragma once

#include <vector>

#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// Quantize an INT32/64 PSUM value to a k-bit code with α = 2^exp:
/// clip(rounding_shift_right(x, exp), Qn, Qp).
i32 psum_quantize_shift(i64 x, int exp, const QuantSpec& spec);

/// Dequantize a code back to product scale: code << exp.
i64 psum_dequantize_shift(i32 code, int exp);

/// Streaming integer Algorithm 1 over INT32 PSUM tiles.
class GroupedApsqInt {
 public:
  struct Options {
    QuantSpec spec = QuantSpec::int8();
    index_t group_size = 1;
    index_t num_tiles = 0;
    std::vector<int> exponents;  ///< e_i per tile (size np) or broadcast (size 1)
  };

  GroupedApsqInt(Shape tile_shape, Options options);

  void push(const TensorI32& tp);

  /// Output tile in product scale (α_{np-1} · AP*_{np-1} == codes << e_last).
  TensorI64 output() const;

  /// Output as raw k-bit codes with the final scale exponent.
  const std::vector<TensorI32>& live_codes() const { return group_codes_; }
  int final_exponent() const;

  index_t tiles_pushed() const { return pushed_; }

 private:
  int exp_for(index_t i) const;

  Shape tile_shape_;
  Options opt_;
  index_t pushed_ = 0;
  std::vector<TensorI32> group_codes_;
  std::vector<int> group_exps_;
  bool finalized_ = false;
  TensorI64 output_;
};

}  // namespace apsq
