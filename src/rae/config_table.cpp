#include "rae/config_table.hpp"

namespace apsq {

index_t RaeStaticConfig::fold_banks() const {
  switch (s0) {
    case 0b00: return 1;
    case 0b01: return 2;
    case 0b10: return s1 ? 4 : 3;
    default: break;
  }
  APSQ_CHECK_MSG(false, "undefined RAE static encoding s0=" << int(s0));
  return 0;
}

RaeStaticConfig rae_config_for_group_size(index_t gs) {
  APSQ_CHECK_MSG(gs >= 1 && gs <= kRaeMaxGroupSize,
                 "RAE supports gs in [1, 4], got " << gs);
  RaeStaticConfig c;
  switch (gs) {
    case 1: c.s0 = 0b00; c.s1_dont_care = true; break;
    case 2: c.s0 = 0b01; c.s1_dont_care = true; break;
    case 3: c.s0 = 0b10; c.s1 = 0; break;
    case 4: c.s0 = 0b10; c.s1 = 1; break;
  }
  return c;
}

index_t rae_group_size_from_encoding(u8 s0, u8 s1) {
  switch (s0) {
    case 0b00: return 1;
    case 0b01: return 2;
    case 0b10: return s1 ? 4 : 3;
    default: break;
  }
  APSQ_CHECK_MSG(false, "undefined RAE static encoding s0=" << int(s0));
  return 0;
}

}  // namespace apsq
