// 28-nm synthesis-area model (Table II).
//
// The paper implements the accelerator ±RAE in Verilog and synthesizes
// with Synopsys DC at 28 nm / 250 MHz, reporting:
//     baseline accelerator  1,873,408 µm²
//     RAE                      86,410 µm²   (+3.21 %)
// We cannot run a commercial synthesis flow offline, so DESIGN.md §3.2
// substitutes a component-level area composition: each structural unit
// (PE, SRAM byte, adder bit, shifter, mux, register bit, control) carries
// a 28-nm-plausible unit area, and the model composes the same inventory
// the RTL would instantiate. The *ratio* (~3 %) is the reproduction
// target; absolute numbers are calibrated to the same order of magnitude.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "energy/accelerator_config.hpp"

namespace apsq {

/// Unit areas in µm² at 28 nm (typical standard-cell / compiled-macro
/// densities; see the .cpp for the derivation of each constant).
struct AreaLibrary {
  double sram_per_byte = 1.95;    ///< compiled single-port SRAM macro
  double pe_int8_mac = 580.0;     ///< 8×8 multiplier + 32-bit accumulator + regs
  double adder_per_bit = 4.7;     ///< ripple-carry full adder cell
  double shifter_32b = 120.0;     ///< constant-distance rounding shifter
  double mux4_per_bit = 3.8;      ///< 4:1 one-hot mux
  double register_per_bit = 2.0;  ///< DFF
  double control_overhead = 1536.0;  ///< FSM + config registers

  static AreaLibrary tsmc28_typical() { return AreaLibrary{}; }
};

/// One line of the area report.
struct AreaItem {
  std::string component;
  index_t count = 0;
  double unit_um2 = 0.0;
  double total_um2() const { return static_cast<double>(count) * unit_um2; }
};

struct AreaReport {
  std::vector<AreaItem> items;
  double total_um2() const;
};

/// Baseline accelerator (PE array + ifmap/ofmap/weight SRAM + control) —
/// Table II row 1.
AreaReport baseline_accelerator_area(
    const AcceleratorConfig& cfg,
    const AreaLibrary& lib = AreaLibrary::tsmc28_typical());

/// The Reconfigurable APSQ Engine — Table II row 2. `lanes` is the number
/// of parallel element datapaths (sized to the ofmap-buffer write
/// bandwidth, Po·Pco/2 by default).
AreaReport rae_area(const AcceleratorConfig& cfg,
                    const AreaLibrary& lib = AreaLibrary::tsmc28_typical());

/// Combined accelerator w/ RAE — Table II row 3.
AreaReport accelerator_with_rae_area(
    const AcceleratorConfig& cfg,
    const AreaLibrary& lib = AreaLibrary::tsmc28_typical());

}  // namespace apsq
