#include "rae/rae_engine.hpp"

namespace apsq {

RaeEngine::RaeEngine(Shape tile_shape, Options options)
    : tile_shape_(std::move(tile_shape)),
      opt_(std::move(options)),
      cfg_(rae_config_for_group_size(opt_.group_size)),
      banks_(shape_numel(tile_shape_), opt_.spec.bits),
      quant_(opt_.spec) {
  APSQ_CHECK(opt_.num_tiles >= 1);
  APSQ_CHECK(!opt_.exponents.empty());
  if (opt_.exponents.size() == 1)
    opt_.exponents.assign(static_cast<size_t>(opt_.num_tiles),
                          opt_.exponents[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(opt_.exponents.size()) == opt_.num_tiles,
                 "need one shift exponent per PSUM tile");
}

int RaeEngine::exp_for(index_t i) const {
  APSQ_CHECK(i >= 0 && i < opt_.num_tiles);
  return opt_.exponents[static_cast<size_t>(i)];
}

bool RaeEngine::s2_for(index_t i) const {
  return (i % opt_.group_size) == 0 || i == opt_.num_tiles - 1;
}

void RaeEngine::push(const TensorI32& psum_tile) {
  APSQ_CHECK_MSG(pushed_ < opt_.num_tiles, "more tiles pushed than declared");
  APSQ_CHECK_MSG(psum_tile.shape() == tile_shape_, "tile shape mismatch");
  const index_t i = pushed_;
  const int exp_i = exp_for(i);

  // Widen the incoming PSUM to the adder width.
  TensorI64 incoming(tile_shape_);
  for (index_t e = 0; e < incoming.numel(); ++e)
    incoming[e] = static_cast<i64>(psum_tile[e]);

  if (s2_for(i)) {
    // APSQ fold: simultaneous bank retrieval -> dequant -> adder pipeline
    // -> quantize -> park in bank gs-1.
    std::vector<TensorI64> stored;
    stored.reserve(live_banks_.size());
    for (index_t b : live_banks_)
      stored.push_back(dequant_.dequantize(banks_.read(b), banks_.exponent(b)));
    const TensorI64 folded = adders_.fold(stored, incoming);
    const TensorI32 codes = quant_.quantize(folded, exp_i);
    const index_t fold_bank = opt_.group_size - 1;
    banks_.write(fold_bank, codes, exp_i);
    live_banks_.assign(1, fold_bank);
    plain_cursor_ = 0;
  } else {
    // Plain PSUM quantization into the next free plain bank.
    const TensorI32 codes = quant_.quantize(incoming, exp_i);
    APSQ_CHECK_MSG(plain_cursor_ < opt_.group_size - 1,
                   "plain-bank overflow: controller sequencing bug");
    banks_.write(plain_cursor_, codes, exp_i);
    live_banks_.push_back(plain_cursor_);
    ++plain_cursor_;
  }

  ++pushed_;
  if (i == opt_.num_tiles - 1) {
    APSQ_CHECK(live_banks_.size() == 1);
    const index_t b = live_banks_.front();
    output_ = dequant_.dequantize(banks_.read(b), banks_.exponent(b));
  }
}

TensorI64 RaeEngine::output() const {
  APSQ_CHECK_MSG(output_.has_value(),
                 "output requested before all tiles were pushed");
  return *output_;
}

}  // namespace apsq
