// RAE datapath units: the shift-based quantization / dequantization
// modules (<< and >> blocks of Fig. 2) and the two-stage adder pipeline.
//
// These are thin, op-counting wrappers over the integer arithmetic in
// quant/apsq_int.hpp — the counters feed the cycle and energy accounting,
// and the unit inventory feeds the area model.
#pragma once

#include "quant/apsq_int.hpp"
#include "quant/quant_params.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

/// Rounding-shift quantizer (PSUM INT32 -> k-bit code).
class QuantShifter {
 public:
  explicit QuantShifter(QuantSpec spec) : spec_(spec) {}

  TensorI32 quantize(const TensorI64& values, int exponent);
  i64 ops() const { return ops_; }

 private:
  QuantSpec spec_;
  i64 ops_ = 0;
};

/// Left-shift dequantizer (k-bit code -> product-scale integer).
class DequantShifter {
 public:
  TensorI64 dequantize(const TensorI32& codes, int exponent);
  i64 ops() const { return ops_; }

 private:
  i64 ops_ = 0;
};

/// Two-stage adder pipeline (Fig. 2): stage 1 reduces up to four operands
/// pairwise, stage 2 merges the pair and adds the incoming PSUM tile.
class AdderPipeline {
 public:
  /// Sum 1–4 dequantized tiles plus the incoming PSUM tile.
  TensorI64 fold(const std::vector<TensorI64>& stored, const TensorI64& incoming);

  i64 adds() const { return adds_; }

 private:
  i64 adds_ = 0;
};

}  // namespace apsq
