#include "rae/area_model.hpp"

#include "common/check.hpp"

namespace apsq {

namespace {

// Datapath width of one RAE element lane (PSUM adder width).
constexpr index_t kLaneBits = 32;

// When the RAE is integrated into the accelerator, synthesis shares logic
// with the pre-existing output-requantization path (shifters, stage-2
// adders, output registers). The paper's own Table II implies the sharing:
// (1,933,674 - 1,873,408) / 86,410 = 0.6975 of the standalone RAE area
// materializes in the combined design.
constexpr double kIntegrationFactor = 0.6975;

}  // namespace

double AreaReport::total_um2() const {
  double t = 0.0;
  for (const auto& item : items) t += item.total_um2();
  return t;
}

AreaReport baseline_accelerator_area(const AcceleratorConfig& cfg,
                                     const AreaLibrary& lib) {
  cfg.validate();
  AreaReport r;
  const index_t pes = cfg.po * cfg.pci * cfg.pco;
  r.items.push_back({"INT8 MAC PE", pes, lib.pe_int8_mac});
  r.items.push_back({"ifmap SRAM (bytes)", cfg.ifmap_buf_bytes, lib.sram_per_byte});
  r.items.push_back({"ofmap SRAM (bytes)", cfg.ofmap_buf_bytes, lib.sram_per_byte});
  r.items.push_back({"weight SRAM (bytes)", cfg.weight_buf_bytes, lib.sram_per_byte});
  r.items.push_back({"top control", 1, lib.control_overhead});
  return r;
}

AreaReport rae_area(const AcceleratorConfig& cfg, const AreaLibrary& lib) {
  cfg.validate();
  AreaReport r;

  // Element lanes: sized to half the PE-array output rate (the RAE sits on
  // the ofmap-buffer port, which is narrower than the array).
  const index_t lanes = cfg.po * cfg.pco / 2;
  APSQ_CHECK(lanes > 0);

  // Four PSUM banks, each buffering one Po×Pco INT8 tile.
  const index_t bank_bytes = cfg.po * cfg.pco;
  r.items.push_back({"PSUM bank SRAM (bytes)", 4 * bank_bytes, lib.sram_per_byte});

  // Per-lane datapath (Fig. 2): four dequant shifters (<<), a two-stage
  // adder pipeline (2 + 1 adders), one rounding quant shifter (>>),
  // bank-select muxes and pipeline registers.
  r.items.push_back({"dequant shifter (<<)", 4 * lanes, lib.shifter_32b});
  r.items.push_back({"pipeline adder", 3 * lanes,
                     static_cast<double>(kLaneBits) * lib.adder_per_bit});
  r.items.push_back({"quant shifter (>>)", lanes, lib.shifter_32b});
  r.items.push_back({"bank-select mux", 2 * lanes, 8.0 * lib.mux4_per_bit});
  r.items.push_back({"pipeline register (bits)", 2 * kLaneBits * lanes,
                     lib.register_per_bit});

  // RAE controller: config table, s0/s1/s2 sequencing, bank cursors.
  r.items.push_back({"RAE control", 1, 6000.0});
  return r;
}

AreaReport accelerator_with_rae_area(const AcceleratorConfig& cfg,
                                     const AreaLibrary& lib) {
  AreaReport base = baseline_accelerator_area(cfg, lib);
  const AreaReport rae = rae_area(cfg, lib);
  base.items.push_back(
      {"RAE (integrated, post-sharing)", 1, rae.total_um2() * kIntegrationFactor});
  return base;
}

}  // namespace apsq
