// The RAE's PSUM buffer: four independently addressable SRAM banks of
// INT8 codes (Fig. 2, "PSUM Bank0..3").
//
// Bank discipline (matches the §III-C walk-through):
//  * plain-quantized tiles of the current group occupy banks 0 … gs-2;
//  * the APSQ fold result is written to bank gs-1;
//  * a fold reads banks 0 … gs-1 simultaneously.
// For gs = 1 the single live tile lives in bank 0 (read-modify-write).
#pragma once

#include <array>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

class PsumBanks {
 public:
  static constexpr index_t kNumBanks = 4;

  /// `tile_elems` — elements per stored PSUM tile (bank word count).
  explicit PsumBanks(index_t tile_elems);

  index_t tile_elems() const { return tile_elems_; }

  /// Store a tile of INT8 codes (values must fit the signed 8-bit range;
  /// checked) together with its shift exponent.
  void write(index_t bank, const TensorI32& codes, int exponent);

  /// Read a stored tile's codes (as written).
  const TensorI32& read(index_t bank) const;
  int exponent(index_t bank) const;
  bool valid(index_t bank) const;

  void invalidate_all();

  // Traffic counters (accesses are whole tiles).
  i64 tile_reads() const { return tile_reads_; }
  i64 tile_writes() const { return tile_writes_; }

 private:
  void check_bank(index_t bank) const {
    APSQ_CHECK_MSG(bank >= 0 && bank < kNumBanks, "bank index out of range");
  }

  index_t tile_elems_;
  std::array<TensorI32, kNumBanks> codes_;
  std::array<int, kNumBanks> exps_{};
  std::array<bool, kNumBanks> valid_{};
  mutable i64 tile_reads_ = 0;
  i64 tile_writes_ = 0;
};

}  // namespace apsq
