// The RAE's PSUM buffer: four independently addressable SRAM banks of
// quantized PSUM codes (Fig. 2, "PSUM Bank0..3"). The bank word width
// follows the configured PSUM storage precision — INT8 in the paper's
// main setting, narrower for the Fig. 5 INT4/INT6 variants, wider for the
// hypothetical 12/16-bit design points the DSE sweep probes.
//
// Bank discipline (matches the §III-C walk-through):
//  * plain-quantized tiles of the current group occupy banks 0 … gs-2;
//  * the APSQ fold result is written to bank gs-1;
//  * a fold reads banks 0 … gs-1 simultaneously.
// For gs = 1 the single live tile lives in bank 0 (read-modify-write).
#pragma once

#include <array>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

class PsumBanks {
 public:
  static constexpr index_t kNumBanks = 4;

  /// `tile_elems` — elements per stored PSUM tile (bank word count);
  /// `code_bits` — stored code width (signed; default the paper's INT8).
  explicit PsumBanks(index_t tile_elems, int code_bits = 8);

  index_t tile_elems() const { return tile_elems_; }
  int code_bits() const { return code_bits_; }

  /// Store a tile of codes (values must fit the signed code_bits range;
  /// checked) together with its shift exponent.
  void write(index_t bank, const TensorI32& codes, int exponent);

  /// Read a stored tile's codes (as written).
  const TensorI32& read(index_t bank) const;
  int exponent(index_t bank) const;
  bool valid(index_t bank) const;

  void invalidate_all();

  // Traffic counters (accesses are whole tiles).
  i64 tile_reads() const { return tile_reads_; }
  i64 tile_writes() const { return tile_writes_; }

 private:
  void check_bank(index_t bank) const {
    APSQ_CHECK_MSG(bank >= 0 && bank < kNumBanks, "bank index out of range");
  }

  index_t tile_elems_;
  int code_bits_;
  std::array<TensorI32, kNumBanks> codes_;
  std::array<int, kNumBanks> exps_{};
  std::array<bool, kNumBanks> valid_{};
  mutable i64 tile_reads_ = 0;
  i64 tile_writes_ = 0;
};

}  // namespace apsq
