#include "rae/psum_banks.hpp"

namespace apsq {

PsumBanks::PsumBanks(index_t tile_elems, int code_bits)
    : tile_elems_(tile_elems), code_bits_(code_bits) {
  APSQ_CHECK(tile_elems > 0);
  APSQ_CHECK_MSG(code_bits >= 2 && code_bits <= 32,
                 "bank word width out of range");
}

void PsumBanks::write(index_t bank, const TensorI32& codes, int exponent) {
  check_bank(bank);
  APSQ_CHECK_MSG(codes.numel() == tile_elems_, "tile size mismatch");
  const i64 lo = -(i64{1} << (code_bits_ - 1));
  const i64 hi = (i64{1} << (code_bits_ - 1)) - 1;
  for (index_t e = 0; e < codes.numel(); ++e)
    APSQ_CHECK_MSG(codes[e] >= lo && codes[e] <= hi,
                   "bank stores INT" << code_bits_ << " codes; got "
                                     << codes[e]);
  codes_[static_cast<size_t>(bank)] = codes;
  exps_[static_cast<size_t>(bank)] = exponent;
  valid_[static_cast<size_t>(bank)] = true;
  ++tile_writes_;
}

const TensorI32& PsumBanks::read(index_t bank) const {
  check_bank(bank);
  APSQ_CHECK_MSG(valid_[static_cast<size_t>(bank)],
                 "reading invalid PSUM bank " << bank);
  ++tile_reads_;
  return codes_[static_cast<size_t>(bank)];
}

int PsumBanks::exponent(index_t bank) const {
  check_bank(bank);
  APSQ_CHECK(valid_[static_cast<size_t>(bank)]);
  return exps_[static_cast<size_t>(bank)];
}

bool PsumBanks::valid(index_t bank) const {
  check_bank(bank);
  return valid_[static_cast<size_t>(bank)];
}

void PsumBanks::invalidate_all() { valid_.fill(false); }

}  // namespace apsq
