// RAE configuration table (Fig. 2, "Config. Table").
//
// The engine's work mode is governed by two *static* encodings s0 (2 bits)
// and s1 (1 bit), fixed per group size gs, plus a *dynamic* encoding s2
// that toggles between plain PSUM quantization (s2 = 0) and an APSQ fold
// (s2 = 1) as tiles stream through:
//
//      gs | s0 | s1
//      ---+----+---
//       1 | 00 |  x
//       2 | 01 |  x
//       3 | 10 |  0
//       4 | 10 |  1
//
// s0/s1 select how many PSUM banks participate in a fold; the controller
// derives the bank routing from them.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

struct RaeStaticConfig {
  u8 s0 = 0;  ///< 2-bit static encoding
  u8 s1 = 0;  ///< 1-bit static encoding (meaningful only for s0 == 0b10)
  bool s1_dont_care = false;

  /// Number of banks read by an APSQ fold under this configuration.
  index_t fold_banks() const;
};

/// Look up the static encodings for a group size (gs in [1, 4]).
RaeStaticConfig rae_config_for_group_size(index_t gs);

/// Inverse lookup: gs from (s0, s1). Rejects undefined encodings.
index_t rae_group_size_from_encoding(u8 s0, u8 s1);

/// Maximum group size the 4-bank engine supports.
inline constexpr index_t kRaeMaxGroupSize = 4;

}  // namespace apsq
