#include "rae/datapath.hpp"

#include "common/check.hpp"

namespace apsq {

TensorI32 QuantShifter::quantize(const TensorI64& values, int exponent) {
  TensorI32 out(values.shape());
  for (index_t e = 0; e < values.numel(); ++e)
    out[e] = psum_quantize_shift(values[e], exponent, spec_);
  ops_ += values.numel();
  return out;
}

TensorI64 DequantShifter::dequantize(const TensorI32& codes, int exponent) {
  TensorI64 out(codes.shape());
  for (index_t e = 0; e < codes.numel(); ++e)
    out[e] = psum_dequantize_shift(codes[e], exponent);
  ops_ += codes.numel();
  return out;
}

TensorI64 AdderPipeline::fold(const std::vector<TensorI64>& stored,
                              const TensorI64& incoming) {
  APSQ_CHECK_MSG(stored.size() <= 4, "pipeline folds at most four banks");
  TensorI64 acc = incoming;
  for (const auto& t : stored) {
    APSQ_CHECK(t.shape() == incoming.shape());
    for (index_t e = 0; e < acc.numel(); ++e) acc[e] += t[e];
    adds_ += acc.numel();
  }
  return acc;
}

}  // namespace apsq
