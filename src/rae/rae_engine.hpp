// Reconfigurable APSQ Engine (RAE) — the structural model of Fig. 2.
//
// The engine processes the stream of PSUM tiles produced by the PE array
// for ONE output-tile position. Its behaviour is driven by the static
// encodings (s0, s1) from the configuration table and the dynamic
// encoding s2:
//
//  * s2 = 0 (non-leader tile): the incoming PSUM is quantized by the
//    shifter and parked in the next free plain bank (0 … gs-2).
//  * s2 = 1 (leader tile, i ≡ 0 mod gs, or the final tile): the live
//    banks are read simultaneously, dequantized (left shifts), reduced by
//    the two-stage adder pipeline together with the incoming PSUM,
//    quantized once, and written to bank gs-1.
//
// Functional equivalence with Algorithm 1's integer reference
// (GroupedApsqInt) is asserted in tests/rae/rae_engine_test.cpp.
#pragma once

#include <optional>
#include <vector>

#include "quant/quant_params.hpp"
#include "rae/config_table.hpp"
#include "rae/datapath.hpp"
#include "rae/psum_banks.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

class RaeEngine {
 public:
  struct Options {
    index_t group_size = 1;      ///< gs in [1, 4]
    index_t num_tiles = 0;       ///< np
    QuantSpec spec = QuantSpec::int8();
    std::vector<int> exponents;  ///< per-tile shift exponents (or size 1)
  };

  RaeEngine(Shape tile_shape, Options options);

  /// Feed the next PSUM tile from the PE array.
  void push(const TensorI32& psum_tile);

  /// Final output tile in product scale; valid after num_tiles pushes.
  TensorI64 output() const;

  /// Dynamic encoding for tile index i (exposed for controller tests).
  bool s2_for(index_t i) const;

  const RaeStaticConfig& static_config() const { return cfg_; }
  const PsumBanks& banks() const { return banks_; }
  i64 quant_ops() const { return quant_.ops(); }
  i64 dequant_ops() const { return dequant_.ops(); }
  i64 adder_ops() const { return adders_.adds(); }
  index_t tiles_pushed() const { return pushed_; }

 private:
  int exp_for(index_t i) const;

  Shape tile_shape_;
  Options opt_;
  RaeStaticConfig cfg_;
  PsumBanks banks_;
  QuantShifter quant_;
  DequantShifter dequant_;
  AdderPipeline adders_;
  index_t pushed_ = 0;
  index_t plain_cursor_ = 0;  ///< next free plain bank within the group
  std::vector<index_t> live_banks_;  ///< banks holding the current group
  std::optional<TensorI64> output_;
};

}  // namespace apsq
