// Student-network factories for the accuracy experiments.
//
// Students are small MLPs (QuantDense + GELU) whose GEMMs run the full
// W8A8 LSQ + APSQ fake-quant path; teachers are identically shaped FP32
// nets. The accumulation depth that APSQ perturbs is hidden_dim / tile_ci
// PSUM tiles per layer.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "nn/quant_dense.hpp"
#include "nn/sequential.hpp"

namespace apsq::tasks {

struct StudentArch {
  index_t input_dim = 64;
  index_t hidden_dim = 128;
  index_t depth = 2;        ///< number of hidden layers
  index_t output_dim = 2;
};

/// Build a student MLP. With `qat` set, all linear layers are QuantDense
/// under that config; without, an FP32 net (teacher / FP baseline).
std::unique_ptr<nn::Sequential> make_mlp(
    const StudentArch& arch, const std::optional<nn::QatConfig>& qat,
    Rng& rng);

/// Architectures used by the benches: BERT-proxy students (GLUE),
/// segmentation students, and the wider LLM-proxy students (Pci = 32).
StudentArch glue_student_arch(index_t input_dim, index_t output_dim);
StudentArch seg_student_arch(index_t input_dim, index_t num_classes,
                             index_t width);
StudentArch llm_student_arch(index_t input_dim, index_t output_dim);

/// Tile depth (Pci) per model family — §IV-A parallelism settings.
inline constexpr index_t kDnnTileCi = 8;
inline constexpr index_t kLlmTileCi = 32;

}  // namespace apsq::tasks
