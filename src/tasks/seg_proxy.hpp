// Dense-prediction (ADE20K) proxy tasks for Segformer-B0 / EfficientViT-B1
// (Table I bottom rows, mIoU metric).
//
// Each "pixel" is a feature vector sampled from a smooth random field with
// spatially correlated class structure: class labels come from a frozen
// labelling network over local features, so neighbouring rows share
// statistics the way segmentation feature maps do. The student classifies
// each pixel; mIoU is computed over all test pixels.
#pragma once

#include "tasks/synthetic.hpp"

namespace apsq::tasks {

struct SegProxySpec {
  std::string name = "ADE20K-proxy";
  index_t feature_dim = 96;
  index_t num_classes = 12;  ///< scaled-down from ADE20K's 150
  index_t train_pixels = 4096;
  index_t test_pixels = 2048;
  double label_noise = 0.06;
  u64 seed = 7;
};

nn::Dataset make_seg_proxy_dataset(const SegProxySpec& spec);

/// The two Table I segmentation rows share the dataset; the student
/// architecture (width) differs per model — see tasks/students.hpp.
SegProxySpec segformer_proxy_spec(u64 seed = 2025);
SegProxySpec efficientvit_proxy_spec(u64 seed = 2025);

}  // namespace apsq::tasks
