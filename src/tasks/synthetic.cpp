#include "tasks/synthetic.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/matmul.hpp"

namespace apsq::tasks {

namespace {

/// The frozen labelling network: tanh MLP with one hidden layer.
struct World {
  TensorF w1, w2;  // [d, h], [h, c]

  World(index_t d, index_t h, index_t c, Rng& rng)
      : w1({d, h}), w2({h, c}) {
    const double s1 = 1.0 / std::sqrt(static_cast<double>(d));
    const double s2 = 1.0 / std::sqrt(static_cast<double>(h));
    for (index_t i = 0; i < w1.numel(); ++i)
      w1[i] = static_cast<float>(rng.normal(0.0, s1));
    for (index_t i = 0; i < w2.numel(); ++i)
      w2[i] = static_cast<float>(rng.normal(0.0, s2));
  }

  TensorF logits(const TensorF& x) const {
    TensorF h = matmul(x, w1);
    for (index_t i = 0; i < h.numel(); ++i)
      h[i] = std::tanh(2.0f * h[i]);
    return matmul(h, w2);
  }
};

TensorF gaussian_features(index_t n, index_t d, Rng& rng) {
  TensorF x({n, d});
  for (index_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  return x;
}

}  // namespace

nn::Dataset make_synthetic_dataset(const SyntheticSpec& spec) {
  APSQ_CHECK(spec.feature_dim > 0 && spec.train_samples > 0 &&
             spec.test_samples > 0);
  APSQ_CHECK(spec.regression || spec.num_classes >= 2);

  Rng rng(spec.seed);
  const index_t out_dim = spec.regression ? 1 : spec.num_classes;
  const World world(spec.feature_dim, spec.world_hidden, out_dim, rng);

  nn::Dataset ds;
  ds.regression = spec.regression;
  ds.num_classes = spec.num_classes;
  ds.metric = spec.metric;

  auto label_split = [&](index_t n, TensorF& x, std::vector<index_t>& y,
                         TensorF& target) {
    x = gaussian_features(n, spec.feature_dim, rng);
    const TensorF logits = world.logits(x);
    if (spec.regression) {
      target = TensorF({n, 1});
      for (index_t i = 0; i < n; ++i) {
        float v = logits(i, 0);
        if (rng.uniform() < spec.label_noise)
          v += static_cast<float>(rng.normal(0.0, 0.5));
        target(i, 0) = v;
      }
    } else {
      y.resize(static_cast<size_t>(n));
      for (index_t i = 0; i < n; ++i) {
        index_t best = 0;
        for (index_t c = 1; c < spec.num_classes; ++c)
          if (logits(i, c) > logits(i, best)) best = c;
        if (rng.uniform() < spec.label_noise)
          best = rng.uniform_index(spec.num_classes);
        y[static_cast<size_t>(i)] = best;
      }
    }
  };

  label_split(spec.train_samples, ds.train_x, ds.train_y, ds.train_target);
  label_split(spec.test_samples, ds.test_x, ds.test_y, ds.test_target);
  return ds;
}

}  // namespace apsq::tasks
