#include "tasks/seq_proxy.hpp"

#include "common/check.hpp"

namespace apsq::tasks {

namespace {

/// Two fixed orthogonal "key" directions; label 1 iff both appear.
struct Keys {
  TensorF a, b;
  explicit Keys(index_t dim, Rng& rng) : a({dim}), b({dim}) {
    for (index_t i = 0; i < dim; ++i) {
      a(i) = static_cast<float>(rng.normal());
      b(i) = static_cast<float>(rng.normal());
    }
    // Gram–Schmidt so the two patterns are distinguishable.
    double dot = 0.0, na = 0.0;
    for (index_t i = 0; i < dim; ++i) {
      dot += static_cast<double>(a(i)) * b(i);
      na += static_cast<double>(a(i)) * a(i);
    }
    for (index_t i = 0; i < dim; ++i)
      b(i) -= static_cast<float>(dot / na) * a(i);
  }
};

void make_split(const SeqTaskSpec& spec, const Keys& keys, index_t n,
                Rng& rng, std::vector<TensorF>& xs,
                std::vector<index_t>& ys) {
  for (index_t s = 0; s < n; ++s) {
    TensorF seq({spec.tokens, spec.token_dim});
    for (index_t i = 0; i < seq.numel(); ++i)
      seq[i] = static_cast<float>(rng.normal(0.0, spec.noise));

    const index_t label = rng.uniform_index(2);
    // Positive: plant BOTH keys at random distinct positions.
    // Negative: plant exactly one key (so single-pattern detection is
    // insufficient — co-occurrence is the signal).
    const index_t pos_a = rng.uniform_index(spec.tokens);
    index_t pos_b = rng.uniform_index(spec.tokens);
    while (pos_b == pos_a) pos_b = rng.uniform_index(spec.tokens);
    for (index_t d = 0; d < spec.token_dim; ++d)
      seq(pos_a, d) += keys.a(d);
    if (label == 1) {
      for (index_t d = 0; d < spec.token_dim; ++d)
        seq(pos_b, d) += keys.b(d);
    }
    xs.push_back(std::move(seq));
    ys.push_back(label);
  }
}

}  // namespace

SeqDataset make_seq_proxy_dataset(const SeqTaskSpec& spec) {
  APSQ_CHECK(spec.tokens >= 2 && spec.token_dim > 0);
  Rng rng(spec.seed);
  const Keys keys(spec.token_dim, rng);
  SeqDataset ds;
  make_split(spec, keys, spec.train_samples, rng, ds.train_x, ds.train_y);
  make_split(spec, keys, spec.test_samples, rng, ds.test_x, ds.test_y);
  return ds;
}

}  // namespace apsq::tasks
