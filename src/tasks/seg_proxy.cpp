#include "tasks/seg_proxy.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/matmul.hpp"

namespace apsq::tasks {

namespace {

/// Smooth 1-D random field: neighbouring pixels mix a shared latent walk
/// with i.i.d. detail, giving the spatial correlation of real feature maps.
TensorF field_features(index_t n, index_t d, Rng& rng) {
  TensorF x({n, d});
  std::vector<float> latent(static_cast<size_t>(d), 0.0f);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < d; ++j) {
      auto& l = latent[static_cast<size_t>(j)];
      l = 0.9f * l + 0.45f * static_cast<float>(rng.normal());
      x(i, j) = l + 0.5f * static_cast<float>(rng.normal());
    }
  }
  return x;
}

}  // namespace

nn::Dataset make_seg_proxy_dataset(const SegProxySpec& spec) {
  APSQ_CHECK(spec.num_classes >= 2);
  Rng rng(spec.seed);

  // Frozen labelling network (same construction as synthetic.cpp).
  TensorF w1({spec.feature_dim, 64}), w2({64, spec.num_classes});
  const double s1 = 1.0 / std::sqrt(static_cast<double>(spec.feature_dim));
  for (index_t i = 0; i < w1.numel(); ++i)
    w1[i] = static_cast<float>(rng.normal(0.0, s1));
  for (index_t i = 0; i < w2.numel(); ++i)
    w2[i] = static_cast<float>(rng.normal(0.0, 0.125));

  auto labels_for = [&](const TensorF& x) {
    TensorF h = matmul(x, w1);
    for (index_t i = 0; i < h.numel(); ++i) h[i] = std::tanh(2.0f * h[i]);
    const TensorF logits = matmul(h, w2);
    std::vector<index_t> y(static_cast<size_t>(x.dim(0)));
    for (index_t i = 0; i < x.dim(0); ++i) {
      index_t best = 0;
      for (index_t c = 1; c < spec.num_classes; ++c)
        if (logits(i, c) > logits(i, best)) best = c;
      if (rng.uniform() < spec.label_noise)
        best = rng.uniform_index(spec.num_classes);
      y[static_cast<size_t>(i)] = best;
    }
    return y;
  };

  nn::Dataset ds;
  ds.num_classes = spec.num_classes;
  ds.metric = nn::Metric::kMiou;
  ds.train_x = field_features(spec.train_pixels, spec.feature_dim, rng);
  ds.train_y = labels_for(ds.train_x);
  ds.test_x = field_features(spec.test_pixels, spec.feature_dim, rng);
  ds.test_y = labels_for(ds.test_x);
  return ds;
}

SegProxySpec segformer_proxy_spec(u64 seed) {
  SegProxySpec s;
  s.name = "ADE20K-proxy/Segformer-B0";
  s.seed = seed + 101;
  return s;
}

SegProxySpec efficientvit_proxy_spec(u64 seed) {
  SegProxySpec s;
  s.name = "ADE20K-proxy/EfficientViT-B1";
  s.feature_dim = 80;
  s.seed = seed + 137;
  return s;
}

}  // namespace apsq::tasks
