// Zero-shot Common Sense Reasoning proxies (Table III, LLaMA2-7B).
//
// Seven synthetic multiple-choice tasks, one per ZCSR benchmark (BoolQ,
// PIQA, HellaSwag, WinoGrande, Arc-e, Arc-c, OBQA). The student is a
// wider, deeper net than the GLUE students (LLM-proxy: large feature dim,
// deep accumulation Ci with the LLM tile depth Pci = 32 — §IV-D).
#pragma once

#include <vector>

#include "tasks/synthetic.hpp"

namespace apsq::tasks {

std::vector<SyntheticSpec> zcsr_proxy_specs(u64 seed = 2025);

}  // namespace apsq::tasks
