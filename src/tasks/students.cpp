#include "tasks/students.hpp"

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/dense.hpp"

namespace apsq::tasks {

std::unique_ptr<nn::Sequential> make_mlp(
    const StudentArch& arch, const std::optional<nn::QatConfig>& qat,
    Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  index_t in = arch.input_dim;
  for (index_t l = 0; l < arch.depth; ++l) {
    net->add(nn::make_linear(in, arch.hidden_dim, qat, rng,
                             "fc" + std::to_string(l)));
    net->emplace<nn::Gelu>();
    in = arch.hidden_dim;
  }
  net->add(nn::make_linear(in, arch.output_dim, qat, rng, "head"));
  return net;
}

StudentArch glue_student_arch(index_t input_dim, index_t output_dim) {
  return StudentArch{input_dim, 128, 2, output_dim};
}

StudentArch seg_student_arch(index_t input_dim, index_t num_classes,
                             index_t width) {
  return StudentArch{input_dim, width, 2, num_classes};
}

StudentArch llm_student_arch(index_t input_dim, index_t output_dim) {
  // Deeper accumulation: 256 / Pci=32 = 8 PSUM tiles per hidden GEMM.
  return StudentArch{input_dim, 256, 2, output_dim};
}

}  // namespace apsq::tasks
