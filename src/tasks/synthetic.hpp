// Synthetic supervised-task generator.
//
// Real GLUE/ADE20K/ZCSR data and pretrained checkpoints are unavailable
// offline; DESIGN.md §3.2 substitutes teacher-labelled synthetic tasks
// that exercise the identical QAT + APSQ code paths. A frozen random
// "world" network labels Gaussian feature vectors; students must recover
// the decision surface. Task difficulty is controlled by feature
// dimension, class count, label-noise rate and sample budget, chosen per
// proxy task so baseline metrics land in a realistic range.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "nn/trainer.hpp"

namespace apsq::tasks {

struct SyntheticSpec {
  std::string name;
  index_t feature_dim = 64;
  index_t num_classes = 2;    ///< ignored for regression
  bool regression = false;
  nn::Metric metric = nn::Metric::kAccuracy;
  index_t train_samples = 2048;
  index_t test_samples = 512;
  double label_noise = 0.05;  ///< fraction of randomized labels
  index_t world_hidden = 48;  ///< width of the labelling network
  u64 seed = 1;
};

/// Generate a dataset from a spec (deterministic given the seed).
nn::Dataset make_synthetic_dataset(const SyntheticSpec& spec);

}  // namespace apsq::tasks
