// GLUE proxy tasks (Table I rows for BERT-Base).
//
// One synthetic task per GLUE task, with the matching metric and a
// difficulty profile loosely mirroring the real task (MNLI 3-way, STS-B
// regression with Pearson, CoLA with Matthews correlation, RTE small and
// noisy). See DESIGN.md §3.2 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "tasks/synthetic.hpp"

namespace apsq::tasks {

/// The six GLUE tasks of Table I, in paper order.
std::vector<SyntheticSpec> glue_proxy_specs(u64 seed = 2025);

/// Look up a single spec by name (e.g. "MRPC" for Fig. 5).
SyntheticSpec glue_proxy_spec(const std::string& name, u64 seed = 2025);

}  // namespace apsq::tasks
