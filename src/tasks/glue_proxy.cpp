#include "tasks/glue_proxy.hpp"

#include "common/check.hpp"

namespace apsq::tasks {

std::vector<SyntheticSpec> glue_proxy_specs(u64 seed) {
  std::vector<SyntheticSpec> specs;

  SyntheticSpec qnli;
  qnli.name = "QNLI";
  qnli.feature_dim = 96;
  qnli.num_classes = 2;
  qnli.train_samples = 3072;
  qnli.label_noise = 0.04;
  qnli.seed = seed + 11;
  specs.push_back(qnli);

  SyntheticSpec mnli;
  mnli.name = "MNLI";
  mnli.feature_dim = 96;
  mnli.num_classes = 3;
  mnli.train_samples = 4096;
  mnli.label_noise = 0.08;
  mnli.seed = seed + 23;
  specs.push_back(mnli);

  SyntheticSpec rte;
  rte.name = "RTE";
  rte.feature_dim = 64;
  rte.num_classes = 2;
  rte.train_samples = 1024;  // RTE is tiny and noisy
  rte.label_noise = 0.15;
  rte.seed = seed + 37;
  specs.push_back(rte);

  SyntheticSpec stsb;
  stsb.name = "STS-B";
  stsb.feature_dim = 64;
  stsb.regression = true;
  stsb.metric = nn::Metric::kPearson;
  stsb.train_samples = 2048;
  stsb.label_noise = 0.10;
  stsb.seed = seed + 41;
  specs.push_back(stsb);

  SyntheticSpec mrpc;
  mrpc.name = "MRPC";
  mrpc.feature_dim = 64;
  mrpc.num_classes = 2;
  mrpc.train_samples = 2048;
  mrpc.label_noise = 0.07;
  mrpc.seed = seed + 53;
  specs.push_back(mrpc);

  SyntheticSpec cola;
  cola.name = "CoLA";
  cola.feature_dim = 80;
  cola.num_classes = 2;
  cola.metric = nn::Metric::kMatthews;
  cola.train_samples = 2048;
  cola.label_noise = 0.12;
  cola.seed = seed + 67;
  specs.push_back(cola);

  return specs;
}

SyntheticSpec glue_proxy_spec(const std::string& name, u64 seed) {
  for (const auto& s : glue_proxy_specs(seed))
    if (s.name == name) return s;
  APSQ_CHECK_MSG(false, "unknown GLUE proxy task: " << name);
  return {};
}

}  // namespace apsq::tasks
