#include "tasks/zcsr_proxy.hpp"

namespace apsq::tasks {

std::vector<SyntheticSpec> zcsr_proxy_specs(u64 seed) {
  struct Row {
    const char* name;
    index_t classes;
    index_t dim;
    double noise;
    index_t samples;
  };
  // Class counts follow the real benchmarks (BoolQ yes/no, PIQA 2-way,
  // HellaSwag/OBQA/Arc 4-way, WinoGrande 2-way); noise/sample budgets are
  // tuned so baseline scores land in the paper's 43–79 % band.
  const Row rows[] = {
      {"BoolQ", 2, 128, 0.12, 2048},   {"PIQA", 2, 128, 0.11, 2048},
      {"HellaS.", 4, 160, 0.10, 3072}, {"WinoG.", 2, 96, 0.16, 2048},
      {"Arc-e", 4, 128, 0.08, 3072},   {"Arc-c", 4, 160, 0.22, 2048},
      {"OBQA", 4, 128, 0.26, 2048},
  };

  std::vector<SyntheticSpec> specs;
  u64 k = 211;
  for (const Row& r : rows) {
    SyntheticSpec s;
    s.name = r.name;
    s.feature_dim = r.dim;
    s.num_classes = r.classes;
    s.train_samples = r.samples;
    s.label_noise = r.noise;
    s.world_hidden = 64;
    s.seed = seed + k;
    k += 97;
    specs.push_back(s);
  }
  return specs;
}

}  // namespace apsq::tasks
