// Sequence-classification proxy: a task attention can solve but a
// bag-of-tokens model cannot — the label depends on whether two planted
// key patterns CO-OCCUR anywhere in the sequence (order-free pairing, the
// canonical long-range-dependency toy problem).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace apsq::tasks {

struct SeqTaskSpec {
  index_t tokens = 12;
  index_t token_dim = 16;
  index_t train_samples = 512;
  index_t test_samples = 256;
  double noise = 0.35;  ///< additive feature noise on every token
  u64 seed = 11;
};

struct SeqDataset {
  std::vector<TensorF> train_x, test_x;  ///< each [tokens, token_dim]
  std::vector<index_t> train_y, test_y;  ///< binary labels
};

SeqDataset make_seq_proxy_dataset(const SeqTaskSpec& spec);

}  // namespace apsq::tasks
