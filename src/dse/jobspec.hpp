// JSON job specs: many sweep experiments described declaratively and run
// in one process (apsq_dse --jobs spec.json), sharing one EvalStore and
// the process-wide worker pool — so a batch of re-slices over the same
// space pays for the evaluation once.
//
// Spec shape:
//
//   {
//     "store_in":  "space.json",        // optional: preload the shared store
//     "store_out": "space.json",        // optional: snapshot it afterwards
//     "defaults":  { "space": "paper", "backend": "analytic", ... },
//     "experiments": [
//       { "name": "core-front" },
//       { "name": "energy-latency", "objectives": "energy,latency" }
//     ]
//   }
//
// An experiment starts from `defaults` and overrides field by field; the
// recognized fields are the RequestSpec fields (dse/request.hpp), which
// mirror the apsq_dse flags one-to-one. An optional top-level
// "schema_version" (absent = 1) is checked against the versions this
// build reads. Parsing is strict: an unknown key, a wrong type, or an
// out-of-range value throws with the file, the experiment, and the key
// named — the cross-field consistency rules (SweepConfig::validate())
// stay with the driver, so the flag path and the spec path reject
// inconsistent configs with identical messages.
#pragma once

#include <string>
#include <vector>

#include "dse/request.hpp"

namespace apsq {
class JsonValue;
}

namespace apsq::dse {

/// One experiment of a job spec — exactly a request (the daemon serves
/// the same object over the wire). The name defaults to "exp<index>".
using JobExperiment = RequestSpec;

struct JobSpec {
  /// Spec-level store paths — the *shared* store every experiment answers
  /// from and records into (per-experiment store_in/store_out are
  /// intentionally not spec fields; one batch, one store).
  std::string store_in;
  std::string store_out;
  std::vector<JobExperiment> experiments;

  /// Parse a spec file. Throws std::runtime_error — message prefixed with
  /// `path` — on unreadable files, JSON errors, unknown keys, wrong
  /// types, out-of-range values, or an empty experiment list.
  static JobSpec parse_file(const std::string& path);

  /// Parse an already-loaded document; `source` prefixes error messages
  /// (the file path, or a label like "<inline>" in tests).
  static JobSpec parse(const JsonValue& doc, const std::string& source);
};

}  // namespace apsq::dse
