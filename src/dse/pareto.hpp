// 3-objective Pareto-front extraction (energy ↓, area ↓, error ↓) with
// deterministic output: candidates are ordered by canonical key before the
// dominance filter, so serial and parallel sweeps — and any permutation of
// the input — produce byte-identical fronts.
#pragma once

#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// The non-dominated subset of `points`, sorted by canonical_key.
/// Points with identical objectives but different configurations tie and
/// are all kept; exact duplicates (same canonical key) are collapsed to
/// one entry.
std::vector<EvalResult> pareto_front(const std::vector<EvalResult>& points);

/// The "scenario" view: the workload is something the accelerator must
/// serve, not a knob to tune, so dominance is only meaningful between
/// points of the same workload. Partitions by workload, extracts each
/// group's front, and concatenates them in workload-name order (each
/// group internally in canonical-key order — still fully deterministic).
std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points);

/// True iff `candidate` is dominated by some element of `points`
/// (comparison against itself — same canonical key — is skipped).
/// Exposed for the front-verification tests.
bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points);

}  // namespace apsq::dse
