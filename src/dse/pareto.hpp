// N-objective Pareto-front extraction with deterministic output:
// candidates are ordered by canonical key before the dominance filter, so
// serial and parallel sweeps — and any permutation of the input — produce
// byte-identical fronts. Every comparison happens in minimized space
// (Objectives::minimized), so maximize objectives such as pe_utilization
// participate with the right sense. The active objective subset (default:
// the core minimize quartet energy, area, error, latency) parameterizes
// dominance, so the same scored sweep can be re-sliced into e.g. an
// energy × latency front without re-evaluation.
#pragma once

#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// The non-dominated subset of `points` under the active objectives,
/// sorted by canonical_key. Points with identical objectives but different
/// configurations tie and are all kept; exact duplicates (same canonical
/// key) are collapsed to one entry. Extraction uses a sort-based sweep
/// (candidates in ascending lexicographic objective order are only ever
/// dominated by the incremental front built so far), so large sweeps cost
/// roughly O(n·|front|) comparisons instead of O(n²) while emitting a
/// byte-identical front. Every *active* objective must be finite — NaN
/// breaks dominance transitivity — and non-finite candidates throw;
/// inactive objective fields are never read and may hold sentinels.
std::vector<EvalResult> pareto_front(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::core());

/// The "scenario" view: the workload is something the accelerator must
/// serve, not a knob to tune, so dominance is only meaningful between
/// points of the same workload. Partitions by workload, extracts each
/// group's front, and concatenates them in workload-name order (each
/// group internally in canonical-key order — still fully deterministic).
std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::core());

/// True iff `candidate` is dominated by some element of `points` under the
/// active objectives (comparison against itself — same canonical key — is
/// skipped). Exposed for the front-verification tests.
bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives = ObjectiveSet::core());

/// Absolute-slack floor added to the relative ε-dominance band. A purely
/// relative band is zero-width around an objective whose value is exactly
/// 0 (e.g. the accuracy proxy of a full-precision PSUM path): any point
/// even infinitesimally worse there could never be forgiven, so near-ties
/// of such front members were silently never promoted. The floor widens
/// the slack of a value-v objective from band·v to band·(v + floor), so a
/// band of ε forgives an absolute gap of up to ε·floor even at v == 0,
/// while leaving objectives at physical scales (pJ, µm², seconds)
/// numerically untouched.
inline constexpr double kEpsilonBandAbsFloor = 1e-12;

/// ε-dominance with relative slack `band` >= 0, evaluated in minimized
/// space: `a` ε-dominates `b` iff a·(1 + band) + band·abs_floor is no
/// worse than `b` in every active (minimized) objective and strictly
/// better in at least one. band == 0 reduces exactly to `dominates` (the
/// floor term vanishes). Active objectives must be non-negative in
/// minimized space (the relative band is multiplicative), which every DSE
/// objective is — minimize objectives natively, maximize ones by the
/// clamped transforms in Objectives::minimized.
bool epsilon_dominates(const Objectives& a, const Objectives& b, double band,
                       const ObjectiveSet& objectives = ObjectiveSet::core(),
                       double abs_floor = kEpsilonBandAbsFloor);

/// Per-candidate promotion margin: the smallest relative band whose
/// ε-band contains the point. Pareto-front members enter at 0; a
/// dominated point enters once the band outgrows its worst-case gap to
/// the front. `enter_inclusive` resolves the boundary exactly: the point
/// is a member of epsilon_band(b) iff b > enter_band, or b == enter_band
/// and enter_inclusive (a front member that merely ties the dominator at
/// the threshold is already in). This is the one ranked-margin primitive
/// both promotion paths of the mixed-fidelity sweep share: the band path
/// (epsilon_band) thresholds the margins, the budget path
/// (best_by_margin) ranks them.
struct PromotionMargin {
  EvalResult result;
  double enter_band = 0.0;
  bool enter_inclusive = true;

  /// epsilon_band membership at `band` — the threshold rule spelled out.
  /// With a positive abs_floor every margin is finite, so band = ∞ is
  /// contained naturally; at abs_floor == 0 a zero-valued objective can
  /// push enter_band to ∞ (the zero-width-band degenerate), which is why
  /// epsilon_band special-cases non-finite bands rather than relying on
  /// this rule there.
  bool in_band(double band) const {
    return band > enter_band || (band == enter_band && enter_inclusive);
  }
};

/// Margins of every deduped candidate, in canonical-key order (the same
/// dedup / validation / ordering contract as pareto_front). Margins are
/// measured against the candidate set's own Pareto front — exact, because
/// any ε-dominator of a point is itself ε-dominated-or-equalled by a
/// front member.
std::vector<PromotionMargin> promotion_margins(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

/// Per-workload margins (the scenario view): each point's margin is
/// computed against its own workload's front, groups concatenated in
/// workload-name order.
std::vector<PromotionMargin> promotion_margins_by_workload(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

/// promotion_margins_by_workload re-ordered into promotion rank: margins
/// ascending, a threshold-inclusive point before an exclusive one at the
/// same margin, remaining ties broken by canonical key. Keys are unique
/// after dedup, so the order is total and schedule-independent. The first
/// `n` elements are exactly best_by_margin's selection; exposed so a
/// budgeted caller can also read the cut's effective band
/// (ranked.back().enter_band after truncation) without recomputing
/// margins.
std::vector<PromotionMargin> ranked_margins_by_workload(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

/// The `n` candidates closest to the front by ranked ε-dominance margin —
/// the budgeted twin of epsilon_band. Margins are per workload (a point
/// competes only against its own scenario's front) but the ranking and
/// the budget are global (ranked_margins_by_workload): the first `n` are
/// returned in rank order, so the cut at the budget boundary is
/// deterministic for any input permutation or thread count. n >= the
/// deduped candidate count returns everything — the budget analogue of
/// band = ∞.
std::vector<EvalResult> best_by_margin(
    const std::vector<EvalResult>& points, index_t n,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

/// The ε-band of `points`: every point NOT ε-dominated by any other point
/// under relative slack `band` — i.e. the Pareto front plus the near-front
/// shell within `band` relative distance of it. Implemented as a
/// threshold over promotion_margins; output is deduped and sorted by
/// canonical key exactly like pareto_front. Properties the tests pin
/// down: band == 0 yields the front itself; the band grows monotonically
/// with `band`; a non-finite band keeps every point. This is the
/// promotion set of the mixed-fidelity sweep: cheap analytic scores
/// select it, the calibrated simulator re-scores it.
std::vector<EvalResult> epsilon_band(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

/// Per-workload ε-band (the scenario view, mirroring
/// pareto_front_by_workload): groups by workload, extracts each group's
/// band, concatenates in workload-name order.
std::vector<EvalResult> epsilon_band_by_workload(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives = ObjectiveSet::core(),
    double abs_floor = kEpsilonBandAbsFloor);

}  // namespace apsq::dse
