// N-objective Pareto-front extraction (all objectives minimized) with
// deterministic output: candidates are ordered by canonical key before the
// dominance filter, so serial and parallel sweeps — and any permutation of
// the input — produce byte-identical fronts. The active objective subset
// (default: energy, area, error, latency) parameterizes dominance, so the
// same scored sweep can be re-sliced into e.g. an energy × latency front
// without re-evaluation.
#pragma once

#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// The non-dominated subset of `points` under the active objectives,
/// sorted by canonical_key. Points with identical objectives but different
/// configurations tie and are all kept; exact duplicates (same canonical
/// key) are collapsed to one entry. Extraction uses a sort-based sweep
/// (candidates in ascending lexicographic objective order are only ever
/// dominated by the incremental front built so far), so large sweeps cost
/// roughly O(n·|front|) comparisons instead of O(n²) while emitting a
/// byte-identical front. Every *active* objective must be finite — NaN
/// breaks dominance transitivity — and non-finite candidates throw;
/// inactive objective fields are never read and may hold sentinels.
std::vector<EvalResult> pareto_front(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::all());

/// The "scenario" view: the workload is something the accelerator must
/// serve, not a knob to tune, so dominance is only meaningful between
/// points of the same workload. Partitions by workload, extracts each
/// group's front, and concatenates them in workload-name order (each
/// group internally in canonical-key order — still fully deterministic).
std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::all());

/// True iff `candidate` is dominated by some element of `points` under the
/// active objectives (comparison against itself — same canonical key — is
/// skipped). Exposed for the front-verification tests.
bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives = ObjectiveSet::all());

/// ε-dominance with relative slack `band` >= 0: `a` ε-dominates `b` iff
/// a·(1 + band) is no worse than `b` in every active objective and
/// strictly better in at least one. band == 0 reduces exactly to
/// `dominates`. Active objectives must be non-negative (the relative band
/// is multiplicative), which every DSE objective is.
bool epsilon_dominates(const Objectives& a, const Objectives& b, double band,
                       const ObjectiveSet& objectives = ObjectiveSet::all());

/// The ε-band of `points`: every point NOT ε-dominated by any other point
/// under relative slack `band` — i.e. the Pareto front plus the near-front
/// shell within `band` relative distance of it. Output is deduped and
/// sorted by canonical key exactly like pareto_front. Properties the tests
/// pin down: band == 0 yields the front itself; the band grows
/// monotonically with `band`; a non-finite band keeps every point. This is
/// the promotion set of the mixed-fidelity sweep: cheap analytic scores
/// select it, the calibrated simulator re-scores it.
std::vector<EvalResult> epsilon_band(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives = ObjectiveSet::all());

/// Per-workload ε-band (the scenario view, mirroring
/// pareto_front_by_workload): groups by workload, extracts each group's
/// band, concatenates in workload-name order.
std::vector<EvalResult> epsilon_band_by_workload(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives = ObjectiveSet::all());

}  // namespace apsq::dse
