// N-objective Pareto-front extraction (all objectives minimized) with
// deterministic output: candidates are ordered by canonical key before the
// dominance filter, so serial and parallel sweeps — and any permutation of
// the input — produce byte-identical fronts. The active objective subset
// (default: energy, area, error, latency) parameterizes dominance, so the
// same scored sweep can be re-sliced into e.g. an energy × latency front
// without re-evaluation.
#pragma once

#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// The non-dominated subset of `points` under the active objectives,
/// sorted by canonical_key. Points with identical objectives but different
/// configurations tie and are all kept; exact duplicates (same canonical
/// key) are collapsed to one entry. Extraction uses a sort-based sweep
/// (candidates in ascending lexicographic objective order are only ever
/// dominated by the incremental front built so far), so large sweeps cost
/// roughly O(n·|front|) comparisons instead of O(n²) while emitting a
/// byte-identical front. Every *active* objective must be finite — NaN
/// breaks dominance transitivity — and non-finite candidates throw;
/// inactive objective fields are never read and may hold sentinels.
std::vector<EvalResult> pareto_front(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::all());

/// The "scenario" view: the workload is something the accelerator must
/// serve, not a knob to tune, so dominance is only meaningful between
/// points of the same workload. Partitions by workload, extracts each
/// group's front, and concatenates them in workload-name order (each
/// group internally in canonical-key order — still fully deterministic).
std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points,
    const ObjectiveSet& objectives = ObjectiveSet::all());

/// True iff `candidate` is dominated by some element of `points` under the
/// active objectives (comparison against itself — same canonical key — is
/// skipped). Exposed for the front-verification tests.
bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives = ObjectiveSet::all());

}  // namespace apsq::dse
