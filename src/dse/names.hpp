// Single source of truth for the engine's name strings: the objective
// table (flag/spec name, CSV column, optimization direction), the
// fidelity-backend names, and the config-space names. Every consumer that
// turns a string into an enum or prints an enum as a string —
// design_point's to_string/objective_column/ObjectiveSet::parse,
// evaluator's parse_backend, SweepConfig::validate()'s space check,
// `--where` constraint parsing, job-spec and daemon-request parsing, and
// the report/CSV headers — reads these tables, so a new objective or
// backend is added in exactly one place and the name↔enum mapping cannot
// drift between the CLI, the JSON paths, and the persisted formats.
#pragma once

#include <array>
#include <string>

#include "dse/design_point.hpp"

namespace apsq::dse {

enum class EvalBackend;  // evaluator.hpp

/// One row of the objective naming table.
struct ObjectiveName {
  Objective objective;
  const char* name;    ///< flag / spec / constraint name ("pe_utilization")
  const char* column;  ///< CSV / snapshot column name ("energy_pj")
  Direction direction;
};

/// The table, in Objective enum (storage) order: row i describes
/// static_cast<Objective>(i).
const std::array<ObjectiveName, kObjectiveCount>& objective_names();

/// "energy|area|error|latency|..." — the canonical list for diagnostics.
std::string objective_name_list(char sep = '|');

/// Name → Objective. Throws std::invalid_argument naming the input and
/// listing the valid names (the message ObjectiveSet::parse and
/// constraint parsing both surface verbatim).
Objective parse_objective(const std::string& name);

/// One row of the fidelity-backend naming table.
struct BackendName {
  EvalBackend backend;
  const char* name;
};

inline constexpr int kBackendCount = 3;

/// In EvalBackend enum order: row i describes static_cast<EvalBackend>(i).
const std::array<BackendName, kBackendCount>& backend_names();

/// "analytic|sim|mixed".
std::string backend_name_list(char sep = '|');

inline constexpr int kSpaceCount = 3;

/// The named config spaces SweepConfig::space accepts ("paper", "smoke",
/// "fine").
const std::array<const char*, kSpaceCount>& space_names();

/// "paper|smoke|fine".
std::string space_name_list(char sep = '|');

bool known_space_name(const std::string& name);

}  // namespace apsq::dse
