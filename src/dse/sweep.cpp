#include "dse/sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "dse/names.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"
#include "dse/store.hpp"

namespace apsq::dse {

const char* to_string(RunMode m) {
  switch (m) {
    case RunMode::kSweep: return "sweep";
    case RunMode::kSearch: return "search";
  }
  APSQ_CHECK_MSG(false, "unknown run mode");
  return "";
}

RunMode parse_run_mode(const std::string& name) {
  if (name == "sweep") return RunMode::kSweep;
  if (name == "search") return RunMode::kSearch;
  throw std::invalid_argument("unknown mode: " + name +
                              " (expected sweep|search)");
}

bool SweepConfig::validate(std::ostream& err) const {
  // The name must be vetted before make_space() — the job-spec path has
  // no parse-time guard the way the CLI flags do.
  if (!known_space_name(space)) {
    err << "unknown space: " << space << " (try --help)\n";
    return false;
  }
  if (!search()) {
    // Exhaustive mode must refuse a space it cannot realistically
    // enumerate — pointing at budgeted search, not OOMing hours later.
    const index_t points = make_space().size();
    if (points > kMaxExhaustiveSweepPoints) {
      err << "space " << space << ": " << points
          << " points is beyond exhaustive sweep (limit "
          << kMaxExhaustiveSweepPoints << ") — use --mode search --budget N\n";
      return false;
    }
  }
  // Search-mode consistency: the search knobs require --mode search, a
  // search requires a budget, and each strategy names the backends it
  // can drive (halving IS the budgeted mixed pipeline; evolve scores at
  // one fidelity).
  if (!(flag_requires(strategy_set, "--strategy", search(), "--mode search",
                      err) &&
        flag_requires(budget_set, "--budget", search(), "--mode search",
                      err) &&
        flag_requires(search_seed_set, "--search-seed", search(),
                      "--mode search", err) &&
        flag_requires(search(), "--mode search", budget_set && budget >= 1,
                      "--budget >= 1", err) &&
        flag_requires(search() && effective_strategy() == SearchStrategy::kHalving,
                      "--strategy halving", mixed(), "--backend mixed", err) &&
        flag_requires(search() && effective_strategy() == SearchStrategy::kEvolve,
                      "--strategy evolve", !mixed(),
                      "--backend analytic or sim", err)))
    return false;
  // A promotion flag outside the mixed backend, a calibration flag on the
  // analytic backend, or two conflicting promotion rules would silently
  // not do what was asked — fail naming the flags instead. These are the
  // former apsq_dse main() rules verbatim; CLI and job-spec configs both
  // come through here, so the two paths reject identically.
  return flag_requires(calibrate, "--calibrate",
                       backend != EvalBackend::kAnalytic,
                       "--backend sim or mixed", err) &&
         flag_requires(promote_band_set, "--promote-band", mixed(),
                       "--backend mixed", err) &&
         flag_requires(promote_adaptive, "--promote-adaptive", mixed(),
                       "--backend mixed", err) &&
         flag_requires(promote_budget_set, "--promote-budget", mixed(),
                       "--backend mixed", err) &&
         flag_requires(promote_objectives_set, "--promote-objectives", mixed(),
                       "--backend mixed", err) &&
         flags_exclusive(promote_band_set, "--promote-band", promote_adaptive,
                         "--promote-adaptive", err) &&
         flags_exclusive(promote_band_set, "--promote-band",
                         promote_budget_set, "--promote-budget", err) &&
         flags_exclusive(promote_adaptive, "--promote-adaptive",
                         promote_budget_set, "--promote-budget", err) &&
         // Without a calibrator the CSV would be silently neither loaded
         // nor written — reject the ineffective flag like any other
         // misuse.
         flag_requires(!calibration_csv.empty(), "--calibration-csv",
                       calibrate || mixed(), "--calibrate or --backend mixed",
                       err) &&
         flag_requires(calibrate_per_class, "--calibrate-per-class",
                       calibrate || mixed(), "--calibrate or --backend mixed",
                       err);
}

ConfigSpace SweepConfig::make_space() const {
  if (space == "paper") return ConfigSpace::paper_default();
  if (space == "smoke") return ConfigSpace::smoke();
  if (space == "fine") return ConfigSpace::fine_default();
  throw std::invalid_argument("unknown space: " + space);
}

SearchStrategy SweepConfig::effective_strategy() const {
  if (strategy_set) return strategy;
  return mixed() ? SearchStrategy::kHalving : SearchStrategy::kEvolve;
}

SearchOptions SweepConfig::search_options() const {
  SearchOptions sopt;
  sopt.strategy = effective_strategy();
  sopt.budget = budget;
  sopt.seed = search_seed;
  // Select candidates in the same plane promotion runs in — and fronts
  // are extracted in — so the searched set provably covers the reported
  // front.
  sopt.objectives = effective_promote_objectives();
  return sopt;
}

int SweepConfig::resolved_threads() const {
  return threads > 0 ? threads : WorkStealingPool::hardware_threads();
}

ObjectiveSet SweepConfig::effective_promote_objectives() const {
  return promote_objectives_set ? promote_objectives : objectives;
}

EvaluatorOptions SweepConfig::evaluator_options() const {
  EvaluatorOptions eopt;
  eopt.threads = resolved_threads();
  eopt.seed = seed;
  eopt.backend = backend;
  eopt.sim.shrink = shrink;
  eopt.sim.max_dim = max_dim;
  eopt.sim.seed = seed;
  // Nested scopes share one pool, so layer-level parallelism defaults on:
  // it fills the workers whenever there are fewer ready points than cores.
  if (backend != EvalBackend::kAnalytic)
    eopt.sim.threads = sim_threads > 0 ? sim_threads : resolved_threads();
  eopt.calibrate = calibrate;
  eopt.calibrate_per_class = calibrate_per_class;
  eopt.promote_band = promote_band;
  eopt.promote_adaptive = promote_adaptive;
  eopt.promote_budget = promote_budget_set ? promote_budget : 0;
  // Promote in the same objective plane the front is extracted in (unless
  // pinned explicitly), so the promoted set provably covers the reported
  // front.
  eopt.promote_objectives = effective_promote_objectives();
  return eopt;
}

std::string SweepConfig::scored_by_label() const {
  if (mixed()) return "mixed";
  return std::string(to_string(backend)) + (calibrate ? "+cal" : "");
}

std::string SweepConfig::scoring_key() const {
  // Everything that can change a result's *value*. Threads are excluded
  // (parallel == serial byte-identical is an engine invariant), as are
  // the slicing objectives and all output paths. Sim scaling and
  // calibration only matter once the simulator is in the loop; the
  // promotion rule only under the mixed backend — excluding them
  // otherwise lets an analytic snapshot keep answering when an irrelevant
  // knob differs.
  std::ostringstream os;
  os << "backend=" << to_string(backend) << "|seed=" << seed;
  if (backend != EvalBackend::kAnalytic) {
    os << "|shrink=" << shrink << "|max_dim=" << max_dim
       << "|cal=" << (calibrate || mixed() ? 1 : 0)
       << "|percls=" << (calibrate_per_class ? 1 : 0);
  }
  if (mixed()) {
    if (promote_adaptive)
      os << "|promote=adaptive";
    else if (promote_budget_set)
      os << "|promote=budget:" << promote_budget;
    else
      os << "|promote=band:" << format_double(promote_band);
    os << "|plane=" << effective_promote_objectives().to_string();
  }
  if (search()) {
    // A search answer is the output of one deterministic trajectory —
    // strategy, budget, and trajectory seed all shape which rows exist —
    // so search entries never cross-talk with exhaustive snapshots or
    // with differently-parameterized searches.
    os << "|mode=search|strategy=" << to_string(effective_strategy())
       << "|budget=" << budget << "|sseed=" << search_seed;
    if (!mixed()) os << "|plane=" << effective_promote_objectives().to_string();
  }
  return os.str();
}

std::vector<Constraint> parse_constraints(const std::string& text) {
  std::vector<Constraint> out;
  std::stringstream in(text);
  std::string term;
  while (std::getline(in, term, ',')) {
    if (term.empty()) continue;
    size_t op = term.find("<=");
    bool upper = true;
    if (op == std::string::npos) {
      op = term.find(">=");
      upper = false;
    }
    if (op == std::string::npos || op == 0)
      throw std::invalid_argument("malformed constraint '" + term +
                                  "' (expected objective<=value or "
                                  "objective>=value)");
    Constraint c;
    c.upper_bound = upper;
    const std::string name = term.substr(0, op);
    try {
      c.objective = parse_objective(name);
    } catch (const std::invalid_argument&) {
      // Re-frame the shared table's message with the constraint context —
      // the term, not a flag, is what the user mistyped — but keep the
      // valid-name list, so the fix is in the error.
      throw std::invalid_argument("unknown objective in constraint: " + name +
                                  " (expected " + objective_name_list() + ")");
    }
    const std::string value = term.substr(op + 2);
    char* end = nullptr;
    c.bound = std::strtod(value.c_str(), &end);
    if (value.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(c.bound))
      throw std::invalid_argument("malformed constraint bound '" + value +
                                  "' in '" + term + "'");
    out.push_back(c);
  }
  return out;
}

std::vector<EvalResult> filter_results(const std::vector<EvalResult>& results,
                                       const std::vector<Constraint>& cs) {
  if (cs.empty()) return results;
  std::vector<EvalResult> out;
  for (const EvalResult& r : results) {
    bool keep = true;
    for (const Constraint& c : cs) {
      const double v = r.obj.get(c.objective);
      if (c.upper_bound ? v > c.bound : v < c.bound) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(r);
  }
  return out;
}

SweepSession::SweepSession(SweepConfig cfg, EvalStore* store)
    : cfg_(std::move(cfg)), external_store_(store) {
  // Re-run the consistency rules so a programmatic embedder that skipped
  // validate() still cannot construct a session the CLI would reject.
  std::ostringstream err;
  if (!cfg_.validate(err)) throw std::invalid_argument(err.str());
  constraints_ = parse_constraints(cfg_.where);
  space_ = cfg_.make_space();
  // The shared pool is built lazily on first use; pinning its width here
  // makes the thread count an honest concurrency bound rather than a
  // serial/pool mode switch. An explicit APSQ_POOL_THREADS env var wins.
  setenv("APSQ_POOL_THREADS", std::to_string(cfg_.resolved_threads()).c_str(),
         /*overwrite=*/0);
  eval_ = std::make_unique<Evaluator>(cfg_.evaluator_options());
  if (external_store_ == nullptr &&
      (!cfg_.store_in.empty() || !cfg_.store_out.empty()))
    owned_store_ = std::make_unique<EvalStore>();
}

SweepSession::~SweepSession() = default;

EvalStore* SweepSession::store() {
  return external_store_ != nullptr ? external_store_ : owned_store_.get();
}

std::vector<EvalResult> extract_front(
    const SweepConfig& cfg, const std::vector<Constraint>& constraints,
    const std::vector<EvalResult>& results, size_t* global_front_size) {
  // Workload is a scenario, not a knob: the headline front is per
  // workload; the cross-workload (global) front is reported as a count.
  // A mixed sweep's front is extracted over the sim-re-scored (promoted)
  // subset only, so dominance always compares equal-fidelity scores.
  const std::vector<EvalResult> basis = filter_results(
      cfg.mixed() ? promoted_subset(results) : results, constraints);
  if (global_front_size != nullptr)
    *global_front_size = pareto_front(basis, cfg.objectives).size();
  return pareto_front_by_workload(basis, cfg.objectives);
}

std::vector<EvalResult> SweepSession::slice_front(
    const std::vector<EvalResult>& results, size_t& global_front_size) const {
  return extract_front(cfg_, constraints_, results, &global_front_size);
}

SweepOutcome SweepSession::run() {
  if (cfg_.search()) return run_search();
  SweepOutcome out;
  EvalStore* st = store();
  // A private store loads its own snapshot; an external (shared) store is
  // the batch runner's to load once up front.
  if (owned_store_ != nullptr && !cfg_.store_in.empty())
    owned_store_->load_file(cfg_.store_in);

  if (eval_->calibrator() && !cfg_.calibration_csv.empty() &&
      std::ifstream(cfg_.calibration_csv).good())
    out.calibration_families_loaded = static_cast<i64>(
        eval_->calibrator()->load_unit_factors_csv(cfg_.calibration_csv));

  const std::string hash = config_space_hash(space_);
  const std::string scoring = cfg_.scoring_key();
  const auto t0 = std::chrono::steady_clock::now();
  // An immutable snapshot of the entry: stays valid and unchanged even if
  // another session concurrently replaces it in a shared store.
  const std::shared_ptr<const EvalStore::Entry> entry =
      st != nullptr ? st->find(hash, scoring) : nullptr;
  if (entry != nullptr && entry->space_points != space_.size()) {
    // Same hash, different size can only mean a corrupted snapshot or a
    // hash collision — either way the entry must not answer queries.
    throw std::runtime_error(
        (st->source().empty() ? std::string("evaluated-space store")
                              : st->source()) +
        ": snapshot for space hash " + hash + " records " +
        std::to_string(entry->space_points) + " points but the space has " +
        std::to_string(space_.size()));
  }
  if (entry == nullptr && owned_store_ != nullptr && !cfg_.store_in.empty()) {
    // The caller explicitly asked to answer from this snapshot file; a
    // missing match must fail loudly, not silently re-evaluate 1248
    // points.
    throw std::runtime_error(cfg_.store_in +
                             ": no snapshot for space hash " + hash +
                             " under scoring \"" + scoring +
                             "\" — re-run the sweep with --store-out to "
                             "record one");
  }

  // The mixed pipeline's promotion set depends on the whole space, so a
  // partial mixed snapshot cannot be completed point-by-point — only a
  // complete one answers; otherwise the two-phase sweep runs in full.
  if (entry != nullptr && (entry->complete() || !cfg_.mixed())) {
    out.results.resize(static_cast<size_t>(space_.size()));
    std::vector<index_t> misses;
    for (index_t i = 0; i < space_.size(); ++i) {
      const auto it = entry->results.find(i);
      if (it == entry->results.end()) {
        misses.push_back(i);
        continue;
      }
      const DesignPoint p = space_.at(i);
      // Guard against collisions and stale snapshots: the stored row must
      // denote exactly the point the space enumerates at this index.
      if (canonical_key(it->second.point) != canonical_key(p))
        throw std::runtime_error(
            (st->source().empty() ? std::string("evaluated-space store")
                                  : st->source()) +
            ": snapshot point " + std::to_string(i) +
            " does not match the space (stored " +
            canonical_key(it->second.point) + ", expected " +
            canonical_key(p) + ")");
      out.results[static_cast<size_t>(i)] = it->second;
    }
    out.store_hits = space_.size() - static_cast<index_t>(misses.size());
    if (!misses.empty()) {
      // Batched misses: one evaluate_points call, so they share the
      // process-wide pool (and each other's memo-cache warmth).
      std::vector<DesignPoint> pts;
      pts.reserve(misses.size());
      for (const index_t i : misses) pts.push_back(space_.at(i));
      const std::vector<EvalResult> fresh = eval_->evaluate_points(pts);
      for (size_t j = 0; j < misses.size(); ++j)
        out.results[static_cast<size_t>(misses[j])] = fresh[j];
      out.fresh_evaluations = static_cast<index_t>(misses.size());
    }
  } else {
    out.results = eval_->evaluate_space(space_);
    out.fresh_evaluations = space_.size();
  }
  out.front = slice_front(out.results, out.global_front_size);
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();

  if (st != nullptr && out.fresh_evaluations > 0)
    st->put(hash, scoring, cfg_.scored_by_label(), space_.size(), out.results);
  if (owned_store_ != nullptr && !cfg_.store_out.empty() &&
      !owned_store_->save_file(cfg_.store_out))
    throw std::runtime_error("failed to write " + cfg_.store_out);

  if (eval_->calibrator() && !cfg_.calibration_csv.empty() &&
      !eval_->calibrator()->unit_factors_csv().write(cfg_.calibration_csv))
    throw std::runtime_error("failed to write " + cfg_.calibration_csv);
  return out;
}

SweepOutcome SweepSession::run_search() {
  SweepOutcome out;
  EvalStore* st = store();
  if (owned_store_ != nullptr && !cfg_.store_in.empty())
    owned_store_->load_file(cfg_.store_in);

  if (eval_->calibrator() && !cfg_.calibration_csv.empty() &&
      std::ifstream(cfg_.calibration_csv).good())
    out.calibration_families_loaded = static_cast<i64>(
        eval_->calibrator()->load_unit_factors_csv(cfg_.calibration_csv));

  const std::string hash = config_space_hash(space_);
  const std::string scoring = cfg_.scoring_key();
  const auto t0 = std::chrono::steady_clock::now();
  const std::shared_ptr<const EvalStore::Entry> entry =
      st != nullptr ? st->find(hash, scoring) : nullptr;
  if (entry != nullptr && entry->space_points != space_.size()) {
    throw std::runtime_error(
        (st->source().empty() ? std::string("evaluated-space store")
                              : st->source()) +
        ": snapshot for space hash " + hash + " records " +
        std::to_string(entry->space_points) + " points but the space has " +
        std::to_string(space_.size()));
  }
  if (entry == nullptr && owned_store_ != nullptr && !cfg_.store_in.empty()) {
    throw std::runtime_error(cfg_.store_in + ": no snapshot for space hash " +
                             hash + " under scoring \"" + scoring +
                             "\" — re-run the search with --store-out to "
                             "record one");
  }

  if (entry != nullptr) {
    // The scoring key pins (strategy, budget, search seed), and the
    // trajectory those denote is deterministic — so the entry's sparse
    // rows are the complete answer, not a partial snapshot to top up.
    out.results.reserve(entry->results.size());
    for (const auto& [i, r] : entry->results) {
      const DesignPoint p = space_.at(i);
      if (canonical_key(r.point) != canonical_key(p))
        throw std::runtime_error(
            (st->source().empty() ? std::string("evaluated-space store")
                                  : st->source()) +
            ": snapshot point " + std::to_string(i) +
            " does not match the space (stored " + canonical_key(r.point) +
            ", expected " + canonical_key(p) + ")");
      out.results.push_back(r);
    }
    out.store_hits = static_cast<index_t>(entry->results.size());
  } else {
    SearchDriver driver(space_, *eval_, cfg_.search_options());
    const std::map<index_t, EvalResult> rows = driver.run();
    out.search = driver.stats();
    out.fresh_evaluations = static_cast<index_t>(rows.size());
    out.results.reserve(rows.size());
    for (const auto& [i, r] : rows) out.results.push_back(r);
    if (st != nullptr && !rows.empty())
      st->merge_rows(hash, scoring, cfg_.scored_by_label(), space_.size(),
                     rows);
  }
  out.front = slice_front(out.results, out.global_front_size);
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();

  if (owned_store_ != nullptr && !cfg_.store_out.empty() &&
      !owned_store_->save_file(cfg_.store_out))
    throw std::runtime_error("failed to write " + cfg_.store_out);
  if (eval_->calibrator() && !cfg_.calibration_csv.empty() &&
      !eval_->calibrator()->unit_factors_csv().write(cfg_.calibration_csv))
    throw std::runtime_error("failed to write " + cfg_.calibration_csv);
  return out;
}

bool SweepSession::verify_serial(const SweepOutcome& out, std::ostream& err) {
  SweepConfig scfg = cfg_;
  scfg.threads = 1;
  scfg.sim_threads = 1;  // fully serial: no layer-level parallelism either
  // The serial run must actually evaluate — a store answering both runs
  // would verify nothing but the store's own determinism.
  scfg.store_in.clear();
  scfg.store_out.clear();
  SweepSession serial(scfg);
  // Identical calibration inputs: the serial evaluator preloads the saved
  // factors when a CSV path is in play (run() above just wrote them);
  // otherwise it refits the same (pure) anchor values.
  SweepOutcome sout = serial.run();
  const std::string a =
      results_csv(sout.front, scfg.scored_by_label()).to_string();
  const std::string b =
      results_csv(out.front, cfg_.scored_by_label()).to_string();
  if (a != b) {
    err << "FAIL: serial and parallel Pareto fronts differ\n";
    return false;
  }
  return true;
}

StatsWriter SweepSession::stats_writer(const SweepOutcome& out) const {
  StatsWriter sw({"stat", "value"});
  const auto put = [&](const std::string& name, auto v) {
    sw.begin_row();
    sw.add(name);
    sw.add(v);
  };
  const auto put_cache = [&](const std::string& name, const CacheStats& s) {
    put(name + "_cache_hits", s.hits);
    put(name + "_cache_misses", s.misses);
    put(name + "_cache_races", s.races);
  };
  put("eval_points", static_cast<i64>(out.results.size()));
  put("fresh_evaluations", out.fresh_evaluations);
  put("store_hits", out.store_hits);
  put("eval_secs", out.secs);
  put("threads", cfg_.resolved_threads());
  put_cache("energy", eval_->energy_cache_stats());
  put_cache("area", eval_->area_cache_stats());
  put_cache("accuracy", eval_->accuracy_cache_stats());
  if (cfg_.backend != EvalBackend::kSim)
    put_cache("latency", eval_->latency_cache_stats());
  if (cfg_.backend != EvalBackend::kAnalytic)
    put_cache("sim", eval_->sim_cache_stats());
  const WorkStealingPool& pool = WorkStealingPool::shared();
  put("pool_threads", pool.num_threads());
  put("pool_runs", pool.run_count());
  put("pool_steals", pool.steal_count());
  if (eval_->calibrator())
    put("calibration_families", eval_->calibrator()->family_count());
  if (cfg_.mixed() && !cfg_.search()) {
    const MixedSweepStats& ms = eval_->mixed_stats();
    put("mixed_total", ms.total);
    put("mixed_promoted", ms.promoted);
    put("mixed_band", ms.band);
    put("mixed_phase1_secs", ms.phase1_secs);
    put("mixed_phase2_secs", ms.phase2_secs);
    put("mixed_rounds", static_cast<i64>(ms.rounds.size()));
  }
  if (cfg_.search()) {
    put("search_strategy", std::string(to_string(cfg_.effective_strategy())));
    put("search_budget", cfg_.budget);
    put("search_evaluated", out.search.evaluated);
    put("search_explored", out.search.explored);
    put("search_rounds", static_cast<i64>(out.search.rounds.size()));
    put_cache("score_tt", eval_->score_tt_stats());
  }
  return sw;
}

}  // namespace apsq::dse
