// Cartesian design-space generator: dataflow × PSUM handling × PE-array
// geometry × buffer sizing × workload. Points are indexed 0..size()-1 in a
// fixed mixed-radix order, so the space never needs materializing and
// every run (serial or parallel) sees the identical enumeration.
#pragma once

#include <string>
#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// MAC-array parallelism triple (Po, Pci, Pco).
struct PeGeometry {
  index_t po = 16;
  index_t pci = 8;
  index_t pco = 8;
};

/// Buffer sizing triple in bytes (ifmap, ofmap, weight).
struct BufferSizing {
  i64 ifmap_bytes = 256 * 1024;
  i64 ofmap_bytes = 256 * 1024;
  i64 weight_bytes = 128 * 1024;
};

class ConfigSpace {
 public:
  // Axes. Every combination is one design point; empty axes are invalid.
  std::vector<std::string> workloads;
  std::vector<Dataflow> dataflows;
  std::vector<PsumConfig> psum_configs;
  std::vector<PeGeometry> geometries;
  std::vector<BufferSizing> buffers;

  // Operand precisions shared by every point (W8A8 in the paper).
  int act_bits = 8;
  int weight_bits = 8;

  /// Number of points (product of axis lengths).
  index_t size() const;

  /// Decode point `i` (0 <= i < size()). The index is interpreted in
  /// mixed radix with the workload axis slowest and the buffer axis
  /// fastest, so neighbouring indices share workload/energy sub-keys and
  /// the memo cache warms quickly.
  DesignPoint at(index_t i) const;

  void validate() const;

  /// The paper-centred sweep used by `apsq_dse` and the bench: all four
  /// workloads, all three dataflows, PSUM bits 4–16 with APSQ group sizes
  /// 1–4 plus prior-work PSQ and the INT32/INT16 baselines, two PE-array
  /// geometries (DNN and LLM parallelism), and two buffer sizings —
  /// 1248 points.
  static ConfigSpace paper_default();

  /// A small space (few dozen points) for tests.
  static ConfigSpace smoke();

  /// The default PSUM-handling axis: APSQ at {4,6,8,12,16} bits ×
  /// gs {1..4}, PSQ (prior work, independent per-tile quantization) at the
  /// same bit-widths, and the INT32 full-precision baseline — 26 settings,
  /// all distinct canonical keys.
  static std::vector<PsumConfig> default_psum_axis();
};

}  // namespace apsq::dse
