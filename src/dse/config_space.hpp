// Cartesian design-space generator: dataflow × PSUM handling × PE-array
// geometry × buffer sizing × workload, optionally refined by per-component
// buffer-byte and operand-precision axes. Points are indexed 0..size()-1
// in a fixed mixed-radix order, so the space never needs materializing and
// every run (serial or parallel) sees the identical enumeration. Axes are
// declared data (AxisDesc: name, value count, decoder), so the index
// arithmetic — 64-bit throughout, overflow-checked — lives in one generic
// decode loop instead of per-axis divmod chains.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dse/design_point.hpp"

namespace apsq::dse {

/// MAC-array parallelism triple (Po, Pci, Pco).
struct PeGeometry {
  index_t po = 16;
  index_t pci = 8;
  index_t pco = 8;
};

/// Buffer sizing triple in bytes (ifmap, ofmap, weight).
struct BufferSizing {
  i64 ifmap_bytes = 256 * 1024;
  i64 ofmap_bytes = 256 * 1024;
  i64 weight_bytes = 128 * 1024;
};

/// One enumeration axis, declared as data: a name, how many values it
/// takes, and a decoder writing value index `v` (0 <= v < count) into a
/// DesignPoint. `apply` captures the owning ConfigSpace by reference, so
/// descriptors must not outlive the space that produced them.
struct AxisDesc {
  std::string name;
  index_t count = 0;
  std::function<void(DesignPoint&, index_t)> apply;
};

class ConfigSpace {
 public:
  // Coarse axes. Every combination is one design point; empty coarse axes
  // are invalid.
  std::vector<std::string> workloads;
  std::vector<Dataflow> dataflows;
  std::vector<PsumConfig> psum_configs;
  std::vector<PeGeometry> geometries;
  std::vector<BufferSizing> buffers;

  // Operand precisions shared by every point (W8A8 in the paper) — unless
  // the fine precision axes below override them per point.
  int act_bits = 8;
  int weight_bits = 8;

  // Optional fine-grained axes. Each non-empty list multiplies the space
  // as its own (faster-varying) axis whose decoder overrides the single
  // field the coarse buffer axis / precision scalars set. Empty lists
  // leave the legacy five-axis enumeration — indices, sizes, and
  // config_space_hash — byte-identical.
  std::vector<i64> ifmap_bytes_axis;
  std::vector<i64> ofmap_bytes_axis;
  std::vector<i64> weight_bytes_axis;
  std::vector<int> act_bits_axis;
  std::vector<int> weight_bits_axis;

  /// The enumeration axes in decode order: workload slowest, then
  /// dataflow, psum, geometry, buffers, then any fine axes — the last
  /// axis varies fastest, so neighbouring indices share workload/energy
  /// sub-keys and the memo caches warm quickly.
  std::vector<AxisDesc> axes() const;

  /// Number of points (product of axis lengths), computed in 64-bit with
  /// an overflow check: a space too large for index_t throws instead of
  /// silently wrapping into a plausible-looking smaller size.
  index_t size() const;

  /// Decode point `i` (0 <= i < size()) by walking axes() in mixed radix.
  DesignPoint at(index_t i) const;

  void validate() const;

  /// The paper-centred sweep used by `apsq_dse` and the bench: all four
  /// workloads, all three dataflows, PSUM bits 4–16 with APSQ group sizes
  /// 1–4 plus prior-work PSQ and the INT32/INT16 baselines, two PE-array
  /// geometries (DNN and LLM parallelism), and two buffer sizings —
  /// 1248 points.
  static ConfigSpace paper_default();

  /// A small space (few dozen points) for tests.
  static ConfigSpace smoke();

  /// The fine-grained paper superset: the paper's workload / dataflow /
  /// PSUM axes crossed with a 96-point PE-geometry grid, per-component
  /// buffer capacities from 32 KB to 512 KB, and per-point operand
  /// precisions — ~6.2 × 10⁷ points. Exhaustive enumeration is infeasible
  /// here by design; this is the budgeted-search target space.
  static ConfigSpace fine_default();

  /// The default PSUM-handling axis: APSQ at {4,6,8,12,16} bits ×
  /// gs {1..4}, PSQ (prior work, independent per-tile quantization) at the
  /// same bit-widths, and the INT32 full-precision baseline — 26 settings,
  /// all distinct canonical keys.
  static std::vector<PsumConfig> default_psum_axis();
};

}  // namespace apsq::dse
