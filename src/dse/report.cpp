#include "dse/report.hpp"

#include "common/stats_writer.hpp"

namespace apsq::dse {

std::string format_double(double v) { return apsq::format_double(v); }

namespace {

std::vector<std::string> result_row(const EvalResult& r) {
  const DesignPoint& p = r.point;
  std::vector<std::string> row = {p.workload,
                                  to_string(p.dataflow),
                                  std::to_string(p.psum.psum_bits),
                                  std::to_string(p.psum.apsq ? 1 : 0),
                                  std::to_string(p.psum.group_size),
                                  std::to_string(p.acc.po),
                                  std::to_string(p.acc.pci),
                                  std::to_string(p.acc.pco),
                                  std::to_string(p.acc.ifmap_buf_bytes),
                                  std::to_string(p.acc.ofmap_buf_bytes),
                                  std::to_string(p.acc.weight_buf_bytes)};
  for (int i = 0; i < kObjectiveCount; ++i)
    row.push_back(format_double(r.obj.get(static_cast<Objective>(i))));
  return row;
}

/// Human-readable column header / rendering for one objective. Extend
/// alongside the Objective enum so the front table stays generic.
const char* objective_header(Objective o) {
  switch (o) {
    case Objective::kEnergy: return "Energy (uJ)";
    case Objective::kArea: return "Area (mm2)";
    case Objective::kError: return "Error";
    case Objective::kLatency: return "Latency (ms)";
    case Objective::kPeUtilization: return "PE util";
    case Objective::kDramBwHeadroom: return "BW headroom";
    case Objective::kThroughputPerArea: return "GMAC/s/mm2";
  }
  return "";
}

std::string objective_display(Objective o, double v) {
  switch (o) {
    case Objective::kEnergy: return Table::num(v / 1e6, 1);
    case Objective::kArea: return Table::num(v / 1e6, 3);
    case Objective::kError: return Table::num(v, 6);
    case Objective::kLatency: return Table::num(v * 1e3, 3);
    case Objective::kPeUtilization: return Table::num(v, 3);
    case Objective::kDramBwHeadroom: return Table::num(v, 3);
    case Objective::kThroughputPerArea: return Table::num(v, 2);
  }
  return "";
}

}  // namespace

CsvWriter results_csv(const std::vector<EvalResult>& results,
                      const std::string& scored_by) {
  std::vector<std::string> header = {
      "workload", "dataflow",        "psum_bits",       "apsq",
      "group_size", "po",            "pci",             "pco",
      "ifmap_buf_bytes", "ofmap_buf_bytes", "weight_buf_bytes"};
  for (int i = 0; i < kObjectiveCount; ++i)
    header.push_back(objective_column(static_cast<Objective>(i)));
  if (!scored_by.empty()) header.push_back("scored_by");
  CsvWriter csv(header);
  for (const EvalResult& r : results) {
    std::vector<std::string> row = result_row(r);
    if (!scored_by.empty())
      row.push_back(r.scored_by.empty() ? scored_by : r.scored_by);
    csv.add_row(row);
  }
  return csv;
}

Table front_table(const std::vector<EvalResult>& front) {
  std::vector<std::string> header = {"Workload", "Dataflow", "PSUM", "gs",
                                     "PE (Po,Pci,Pco)", "Bufs (KB)"};
  for (int i = 0; i < kObjectiveCount; ++i)
    header.push_back(objective_header(static_cast<Objective>(i)));
  Table t(header);
  for (const EvalResult& r : front) {
    const DesignPoint& p = r.point;
    const std::string psum_label =
        (p.psum.apsq ? "APSQ INT" : (p.psum.psum_bits >= 32 ? "INT" : "PSQ INT")) +
        std::to_string(p.psum.psum_bits);
    std::vector<std::string> row = {
        p.workload, to_string(p.dataflow), psum_label,
        std::to_string(p.psum.group_size),
        std::to_string(p.acc.po) + "," + std::to_string(p.acc.pci) + "," +
            std::to_string(p.acc.pco),
        std::to_string(p.acc.ifmap_buf_bytes / 1024) + "/" +
            std::to_string(p.acc.ofmap_buf_bytes / 1024) + "/" +
            std::to_string(p.acc.weight_buf_bytes / 1024)};
    for (int i = 0; i < kObjectiveCount; ++i) {
      const Objective o = static_cast<Objective>(i);
      row.push_back(objective_display(o, r.obj.get(o)));
    }
    t.add_row(row);
  }
  return t;
}

}  // namespace apsq::dse
