#include "dse/report.hpp"

#include <algorithm>

#include "common/stats_writer.hpp"
#include "dse/evaluator.hpp"
#include "sim/stats.hpp"

namespace apsq::dse {

std::string format_double(double v) { return apsq::format_double(v); }

namespace {

std::vector<std::string> result_row(const EvalResult& r) {
  const DesignPoint& p = r.point;
  std::vector<std::string> row = {p.workload,
                                  to_string(p.dataflow),
                                  std::to_string(p.psum.psum_bits),
                                  std::to_string(p.psum.apsq ? 1 : 0),
                                  std::to_string(p.psum.group_size),
                                  std::to_string(p.acc.po),
                                  std::to_string(p.acc.pci),
                                  std::to_string(p.acc.pco),
                                  std::to_string(p.acc.ifmap_buf_bytes),
                                  std::to_string(p.acc.ofmap_buf_bytes),
                                  std::to_string(p.acc.weight_buf_bytes)};
  for (int i = 0; i < kObjectiveCount; ++i)
    row.push_back(format_double(r.obj.get(static_cast<Objective>(i))));
  return row;
}

/// Human-readable column header / rendering for one objective. Extend
/// alongside the Objective enum so the front table stays generic.
const char* objective_header(Objective o) {
  switch (o) {
    case Objective::kEnergy: return "Energy (uJ)";
    case Objective::kArea: return "Area (mm2)";
    case Objective::kError: return "Error";
    case Objective::kLatency: return "Latency (ms)";
    case Objective::kPeUtilization: return "PE util";
    case Objective::kDramBwHeadroom: return "BW headroom";
    case Objective::kThroughputPerArea: return "GMAC/s/mm2";
  }
  return "";
}

std::string objective_display(Objective o, double v) {
  switch (o) {
    case Objective::kEnergy: return Table::num(v / 1e6, 1);
    case Objective::kArea: return Table::num(v / 1e6, 3);
    case Objective::kError: return Table::num(v, 6);
    case Objective::kLatency: return Table::num(v * 1e3, 3);
    case Objective::kPeUtilization: return Table::num(v, 3);
    case Objective::kDramBwHeadroom: return Table::num(v, 3);
    case Objective::kThroughputPerArea: return Table::num(v, 2);
  }
  return "";
}

}  // namespace

CsvWriter results_csv(const std::vector<EvalResult>& results,
                      const std::string& scored_by) {
  std::vector<std::string> header = {
      "workload", "dataflow",        "psum_bits",       "apsq",
      "group_size", "po",            "pci",             "pco",
      "ifmap_buf_bytes", "ofmap_buf_bytes", "weight_buf_bytes"};
  for (int i = 0; i < kObjectiveCount; ++i)
    header.push_back(objective_column(static_cast<Objective>(i)));
  if (!scored_by.empty()) header.push_back("scored_by");
  CsvWriter csv(header);
  for (const EvalResult& r : results) {
    std::vector<std::string> row = result_row(r);
    if (!scored_by.empty())
      row.push_back(r.scored_by.empty() ? scored_by : r.scored_by);
    csv.add_row(row);
  }
  return csv;
}

Table front_table(const std::vector<EvalResult>& front) {
  std::vector<std::string> header = {"Workload", "Dataflow", "PSUM", "gs",
                                     "PE (Po,Pci,Pco)", "Bufs (KB)"};
  for (int i = 0; i < kObjectiveCount; ++i)
    header.push_back(objective_header(static_cast<Objective>(i)));
  Table t(header);
  for (const EvalResult& r : front) {
    const DesignPoint& p = r.point;
    const std::string psum_label =
        (p.psum.apsq ? "APSQ INT" : (p.psum.psum_bits >= 32 ? "INT" : "PSQ INT")) +
        std::to_string(p.psum.psum_bits);
    std::vector<std::string> row = {
        p.workload, to_string(p.dataflow), psum_label,
        std::to_string(p.psum.group_size),
        std::to_string(p.acc.po) + "," + std::to_string(p.acc.pci) + "," +
            std::to_string(p.acc.pco),
        std::to_string(p.acc.ifmap_buf_bytes / 1024) + "/" +
            std::to_string(p.acc.ofmap_buf_bytes / 1024) + "/" +
            std::to_string(p.acc.weight_buf_bytes / 1024)};
    for (int i = 0; i < kObjectiveCount; ++i) {
      const Objective o = static_cast<Objective>(i);
      row.push_back(objective_display(o, r.obj.get(o)));
    }
    t.add_row(row);
  }
  return t;
}

StatsWriter layer_stats_writer(Evaluator& eval,
                               const std::vector<EvalResult>& front, size_t k,
                               const std::string& fallback_label) {
  StatsWriter sw({"workload", "dataflow", "psum_bits", "apsq", "group_size",
                  "po", "pci", "pco", "ifmap_buf_bytes", "ofmap_buf_bytes",
                  "weight_buf_bytes", "scored_by", "layer", "layer_class",
                  "rows", "ci", "co", "repeat", "tile_cycles", "mac_ops",
                  "pe_utilization", "compute_s", "dram_s", "latency_s",
                  "compute_stall_s", "dram_idle_s", "sram_bytes", "dram_bytes",
                  "dram_ifmap_bytes", "dram_weight_bytes", "dram_psum_bytes",
                  "dram_ofmap_bytes", "dram_bw_occupancy", "dram_bound"});
  const size_t n = k == 0 ? front.size() : std::min(front.size(), k);
  for (size_t i = 0; i < n; ++i) {
    const EvalResult& r = front[i];
    const std::string provenance =
        r.scored_by.empty() ? fallback_label : r.scored_by;
    const EvalBackend fidelity = provenance == "analytic"
                                     ? EvalBackend::kAnalytic
                                     : EvalBackend::kSim;
    const WorkloadTelemetry t = eval.telemetry_for(r.point, fidelity);
    const DesignPoint& p = r.point;
    for (const LayerStats& ls : t.rows) {
      sw.begin_row();
      sw.add(p.workload);
      sw.add(to_string(p.dataflow));
      sw.add(p.psum.psum_bits);
      sw.add(p.psum.apsq ? 1 : 0);
      sw.add(p.psum.group_size);
      sw.add(p.acc.po);
      sw.add(p.acc.pci);
      sw.add(p.acc.pco);
      sw.add(p.acc.ifmap_buf_bytes);
      sw.add(p.acc.ofmap_buf_bytes);
      sw.add(p.acc.weight_buf_bytes);
      sw.add(t.source);
      sw.add(ls.layer_name);
      sw.add(ls.layer_class);
      sw.add(ls.shape.rows);
      sw.add(ls.shape.ci);
      sw.add(ls.shape.co);
      sw.add(ls.repeat);
      sw.add(ls.perf.tile_cycles);
      sw.add(ls.perf.mac_ops);
      sw.add(ls.perf.utilization);
      sw.add(ls.perf.compute_time_s);
      sw.add(ls.perf.dram_time_s);
      sw.add(ls.perf.latency_s);
      sw.add(ls.compute_stall_s);
      sw.add(ls.dram_idle_s);
      sw.add(ls.sram_bytes);
      sw.add(ls.perf.dram_bytes);
      sw.add(ls.dram_operand_bytes[0]);
      sw.add(ls.dram_operand_bytes[1]);
      sw.add(ls.dram_operand_bytes[2]);
      sw.add(ls.dram_operand_bytes[3]);
      sw.add(ls.dram_bw_occupancy);
      sw.add(ls.perf.dram_bound);
    }
  }
  return sw;
}

}  // namespace apsq::dse
