#include "dse/report.hpp"

#include <cstdio>

namespace apsq::dse {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

namespace {

std::vector<std::string> result_row(const EvalResult& r) {
  const DesignPoint& p = r.point;
  return {p.workload,
          to_string(p.dataflow),
          std::to_string(p.psum.psum_bits),
          std::to_string(p.psum.apsq ? 1 : 0),
          std::to_string(p.psum.group_size),
          std::to_string(p.acc.po),
          std::to_string(p.acc.pci),
          std::to_string(p.acc.pco),
          std::to_string(p.acc.ifmap_buf_bytes),
          std::to_string(p.acc.ofmap_buf_bytes),
          std::to_string(p.acc.weight_buf_bytes),
          format_double(r.obj.energy_pj),
          format_double(r.obj.area_um2),
          format_double(r.obj.error)};
}

}  // namespace

CsvWriter results_csv(const std::vector<EvalResult>& results) {
  CsvWriter csv({"workload", "dataflow", "psum_bits", "apsq", "group_size",
                 "po", "pci", "pco", "ifmap_buf_bytes", "ofmap_buf_bytes",
                 "weight_buf_bytes", "energy_pj", "area_um2", "error"});
  for (const EvalResult& r : results) csv.add_row(result_row(r));
  return csv;
}

Table front_table(const std::vector<EvalResult>& front) {
  Table t({"Workload", "Dataflow", "PSUM", "gs", "PE (Po,Pci,Pco)",
           "Bufs (KB)", "Energy (uJ)", "Area (mm2)", "Error"});
  for (const EvalResult& r : front) {
    const DesignPoint& p = r.point;
    const std::string psum_label =
        (p.psum.apsq ? "APSQ INT" : (p.psum.psum_bits >= 32 ? "INT" : "PSQ INT")) +
        std::to_string(p.psum.psum_bits);
    t.add_row({p.workload, to_string(p.dataflow), psum_label,
               std::to_string(p.psum.group_size),
               std::to_string(p.acc.po) + "," + std::to_string(p.acc.pci) +
                   "," + std::to_string(p.acc.pco),
               std::to_string(p.acc.ifmap_buf_bytes / 1024) + "/" +
                   std::to_string(p.acc.ofmap_buf_bytes / 1024) + "/" +
                   std::to_string(p.acc.weight_buf_bytes / 1024),
               Table::num(r.obj.energy_pj / 1e6, 1),
               Table::num(r.obj.area_um2 / 1e6, 3),
               Table::num(r.obj.error, 6)});
  }
  return t;
}

}  // namespace apsq::dse
