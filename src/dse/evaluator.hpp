// Parallel, memoizing design-point scorer with pluggable fidelity.
//
// Each point is scored on four objectives: workload energy, synthesis
// area ±RAE (src/rae), the PSUM quantization-error accuracy proxy
// (accuracy_proxy.hpp), and workload latency. Two backends supply the
// energy/latency pair:
//
//   analytic — closed-form access counts (src/energy, Eqs. 1–6) and the
//              tile/bandwidth performance model (src/sim/performance);
//   sim      — drives the bit-accurate simulator (run_workload /
//              Accelerator::run_gemm) with a per-point SimConfig and
//              converts the *measured* SRAM/DRAM byte counts into energy
//              via the same EnergyCosts table, and measured cycles/DRAM
//              traffic into latency. Raw sim scores are of the scaled
//              proxy workload (WorkloadRunOptions.shrink / max_dim), so
//              absolute values are smaller than analytic full-scale ones;
//              with `calibrate` set, a dse::Calibrator (calibrate.hpp)
//              rescales the measured components into the analytic
//              backend's absolute units, so the two backends' fronts mix.
//
// Sub-evaluations are memoized independently under canonical sub-keys.
// Area depends only on the accelerator geometry and the accuracy proxy
// only on (workload, psum, pci), so a cartesian sweep reuses the
// overwhelming majority of those two; energy/latency depend on every field
// of the point, so their caches pay off for repeated evaluations of the
// same point (re-runs, overlapping spaces), not within one cartesian
// sweep. All scoring functions are pure, every worker derives its
// randomness per work item via Rng::stream, and results land in
// index-addressed slots, so a parallel sweep is byte-identical to a serial
// one. Parallel evaluation runs on the process-wide
// WorkStealingPool::shared(): the point-level loop and run_workload's
// layer-level loop submit into the same pool (nested scopes compose), so
// sim-backed sweeps parallelize at both levels without oversubscribing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dse/calibrate.hpp"
#include "dse/config_space.hpp"
#include "dse/design_point.hpp"
#include "energy/costs.hpp"
#include "rae/area_model.hpp"
#include "sim/workload_runner.hpp"

#include <mutex>

namespace apsq::dse {

/// Fidelity backend for the energy and latency objectives.
enum class EvalBackend {
  kAnalytic,  ///< closed-form models (fast; full-scale workloads)
  kSim,       ///< cycle-level simulator (slow; scaled proxy workloads)
};

const char* to_string(EvalBackend b);
/// Parse "analytic" | "sim"; throws on anything else.
EvalBackend parse_backend(const std::string& name);

struct EvaluatorOptions {
  /// 1 = score points serially on the calling thread; > 1 = score them on
  /// the process-wide shared pool (whose width is hardware_threads(), or
  /// APSQ_POOL_THREADS if set — see WorkStealingPool::shared()). Results
  /// are byte-identical either way.
  int threads = 1;
  u64 seed = 0xD5EULL;     ///< accuracy-proxy stream seed
  EvalBackend backend = EvalBackend::kAnalytic;
  EnergyCosts costs = EnergyCosts::horowitz();
  AreaLibrary area_lib = AreaLibrary::tsmc28_typical();
  PerfConfig perf;         ///< clock / DRAM bandwidth for the latency objective
  /// Scaling and seed for the sim backend. With sim.threads > 1 each
  /// point's layers run as a nested scope on the same shared pool, so
  /// point- and layer-level parallelism compose.
  WorkloadRunOptions sim;
  /// Sim backend only: rescale measured energies/latencies into the
  /// analytic backend's absolute units via dse::Calibrator.
  bool calibrate = false;
};

/// Counters for one sub-evaluation cache. Under contention two workers may
/// both compute the same missing entry; the loser's insert is counted as a
/// `race` (the cached value is identical either way, so only the counters
/// — never the results — are schedule-dependent). For any schedule,
/// hits + misses + races == number of lookups.
struct CacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 races = 0;

  i64 lookups() const { return hits + misses + races; }
};

class Evaluator {
 public:
  explicit Evaluator(EvaluatorOptions opt = EvaluatorOptions{});
  ~Evaluator();

  /// Score one point (memoized, thread-safe).
  EvalResult evaluate(const DesignPoint& p);

  /// Score every point of the space with the evaluator's persistent
  /// work-stealing pool. Output order is the space's enumeration order
  /// regardless of thread count.
  std::vector<EvalResult> evaluate_space(const ConfigSpace& space);

  /// Score an explicit point list (same determinism guarantees).
  std::vector<EvalResult> evaluate_points(const std::vector<DesignPoint>& pts);

  CacheStats energy_cache_stats() const;
  CacheStats area_cache_stats() const;
  CacheStats accuracy_cache_stats() const;
  CacheStats latency_cache_stats() const;
  CacheStats sim_cache_stats() const;

  const EvaluatorOptions& options() const { return opt_; }

  /// The sim↔analytic calibrator, non-null iff options().calibrate and the
  /// sim backend are both active. Exposed so callers can persist / preload
  /// its fitted unit factors (apsq_dse --calibration-csv).
  Calibrator* calibrator() { return calibrator_.get(); }

  /// Bundled-workload registry ("bert", "llama2", "segformer",
  /// "efficientvit" at the paper's input sizes). Throws on unknown names.
  static const Workload& workload(const std::string& name);

 private:
  /// Energy + latency of one simulated (scaled) workload run.
  struct SimScore {
    double energy_pj = 0.0;
    double latency_s = 0.0;
  };

  template <typename V>
  struct Cache {
    mutable std::mutex mu;
    std::unordered_map<std::string, V> map;
    CacheStats stats;
  };
  template <typename V, typename Fn>
  V cached(Cache<V>& cache, const std::string& key, Fn&& compute);
  template <typename V>
  CacheStats stats_of(const Cache<V>& cache) const;

  double energy_for(const DesignPoint& p);
  double area_for(const DesignPoint& p);
  double error_for(const DesignPoint& p);
  double latency_for(const DesignPoint& p);
  SimScore sim_score_for(const DesignPoint& p);
  /// Index loop over points: inline when threads == 1, on the shared pool
  /// otherwise.
  void parallel_for_points(index_t n, const std::function<void(index_t)>& fn);

  EvaluatorOptions opt_;
  Cache<double> energy_cache_;
  Cache<double> area_cache_;
  Cache<double> accuracy_cache_;
  Cache<double> latency_cache_;
  Cache<SimScore> sim_cache_;
  std::unique_ptr<Calibrator> calibrator_;  ///< sim backend + calibrate only
};

}  // namespace apsq::dse
