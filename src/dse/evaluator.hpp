// Parallel, memoizing design-point scorer.
//
// Each point is scored on three objectives by the repo's analytical
// models: workload energy (src/energy), synthesis area ±RAE (src/rae),
// and the PSUM quantization-error accuracy proxy (accuracy_proxy.hpp).
// The three sub-evaluations are memoized independently under canonical
// sub-keys. Area depends only on the accelerator geometry and the accuracy
// proxy only on (workload, psum, pci), so a cartesian sweep reuses the
// overwhelming majority of those two; energy depends on every field of the
// point, so its cache pays off for repeated evaluations of the same point
// (re-runs, overlapping spaces), not within one cartesian sweep. All scoring functions are
// pure, every worker derives its randomness per work item via
// Rng::stream, and results land in index-addressed slots, so a parallel
// sweep is byte-identical to a serial one.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "dse/config_space.hpp"
#include "dse/design_point.hpp"
#include "energy/costs.hpp"
#include "rae/area_model.hpp"

#include <mutex>

namespace apsq::dse {

struct EvaluatorOptions {
  int threads = 1;         ///< worker count for evaluate_space
  u64 seed = 0xD5EULL;     ///< accuracy-proxy stream seed
  EnergyCosts costs = EnergyCosts::horowitz();
  AreaLibrary area_lib = AreaLibrary::tsmc28_typical();
};

/// Hit/miss counters for one sub-evaluation cache. Under contention two
/// workers may both compute the same missing entry (both count a miss);
/// the cached value is identical either way, so only the counters — never
/// the results — are schedule-dependent.
struct CacheStats {
  i64 hits = 0;
  i64 misses = 0;
};

class Evaluator {
 public:
  explicit Evaluator(EvaluatorOptions opt = EvaluatorOptions{});

  /// Score one point (memoized, thread-safe).
  EvalResult evaluate(const DesignPoint& p);

  /// Score every point of the space with the work-stealing pool.
  /// Output order is the space's enumeration order regardless of thread
  /// count.
  std::vector<EvalResult> evaluate_space(const ConfigSpace& space);

  /// Score an explicit point list (same determinism guarantees).
  std::vector<EvalResult> evaluate_points(const std::vector<DesignPoint>& pts);

  CacheStats energy_cache_stats() const;
  CacheStats area_cache_stats() const;
  CacheStats accuracy_cache_stats() const;

  const EvaluatorOptions& options() const { return opt_; }

  /// Bundled-workload registry ("bert", "llama2", "segformer",
  /// "efficientvit" at the paper's input sizes). Throws on unknown names.
  static const Workload& workload(const std::string& name);

 private:
  struct Cache {
    mutable std::mutex mu;
    std::unordered_map<std::string, double> map;
    CacheStats stats;
  };
  template <typename Fn>
  double cached(Cache& cache, const std::string& key, Fn&& compute);

  double energy_for(const DesignPoint& p);
  double area_for(const DesignPoint& p);
  double error_for(const DesignPoint& p);

  EvaluatorOptions opt_;
  Cache energy_cache_;
  Cache area_cache_;
  Cache accuracy_cache_;
};

}  // namespace apsq::dse
