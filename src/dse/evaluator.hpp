// Parallel, memoizing design-point scorer with pluggable fidelity.
//
// Each point is scored on the full objective vector: the core minimize
// quartet — workload energy, synthesis area ±RAE (src/rae), the PSUM
// quantization-error accuracy proxy (accuracy_proxy.hpp), and workload
// latency — plus the telemetry-derived maximize trio (pe_utilization,
// dram_bw_headroom, throughput_per_area; see sim/stats.hpp). Two backends
// supply the performance-derived objectives:
//
//   analytic — closed-form access counts (src/energy, Eqs. 1–6) and the
//              tile/bandwidth performance model (src/sim/performance);
//   sim      — drives the bit-accurate simulator (run_workload /
//              Accelerator::run_gemm) with a per-point SimConfig and
//              converts the *measured* SRAM/DRAM byte counts into energy
//              via the same EnergyCosts table, and measured cycles/DRAM
//              traffic into latency. Raw sim scores are of the scaled
//              proxy workload (WorkloadRunOptions.shrink / max_dim), so
//              absolute values are smaller than analytic full-scale ones;
//              with `calibrate` set, a dse::Calibrator (calibrate.hpp)
//              rescales the measured components into the analytic
//              backend's absolute units, so the two backends' fronts mix.
//   mixed    — multi-fidelity: phase 1 scores the whole space with the
//              analytic backend, phase 2 promotes near-front points to
//              the *calibrated* sim backend and re-scores only those.
//              Three promotion rules share one ranked-margin primitive
//              (dse/pareto): a fixed ε-dominance band (promote_band), an
//              adaptive band that widens geometrically until the promoted
//              front is stable for K consecutive rounds (promote_adaptive
//              — the front-stability stopping rule), and a hard budget of
//              the N best points by ε-dominance margin (promote_budget).
//              Each result records its provenance in
//              EvalResult::scored_by; the front is then extracted over
//              the promoted (uniform-fidelity) subset. This buys sim
//              fidelity where it matters — on and near the front — at a
//              small multiple of the analytic sweep's cost.
//
// Sub-evaluations are memoized independently under canonical sub-keys.
// Area depends only on the accelerator geometry and the accuracy proxy
// only on (workload, psum, pci), so a cartesian sweep reuses the
// overwhelming majority of those two; energy/latency depend on every field
// of the point, so their caches pay off for repeated evaluations of the
// same point (re-runs, overlapping spaces), not within one cartesian
// sweep. All scoring functions are pure, every worker derives its
// randomness per work item via Rng::stream, and results land in
// index-addressed slots, so a parallel sweep is byte-identical to a serial
// one. Parallel evaluation runs on the process-wide
// WorkStealingPool::shared(): the point-level loop and run_workload's
// layer-level loop submit into the same pool (nested scopes compose), so
// sim-backed sweeps parallelize at both levels without oversubscribing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dse/calibrate.hpp"
#include "dse/config_space.hpp"
#include "dse/design_point.hpp"
#include "dse/tt.hpp"
#include "energy/costs.hpp"
#include "rae/area_model.hpp"
#include "sim/workload_runner.hpp"

namespace apsq::dse {

/// Fidelity backend for the energy and latency objectives.
enum class EvalBackend {
  kAnalytic,  ///< closed-form models (fast; full-scale workloads)
  kSim,       ///< cycle-level simulator (slow; scaled proxy workloads)
  kMixed,     ///< analytic prefilter → calibrated-sim promotion (two-phase)
};

const char* to_string(EvalBackend b);
/// Parse "analytic" | "sim" | "mixed"; throws on anything else.
EvalBackend parse_backend(const std::string& name);

/// How the mixed backend selects the analytic points phase 2 promotes to
/// the calibrated simulator.
enum class PromoteMode {
  kBand,      ///< fixed ε-dominance slack (promote_band)
  kAdaptive,  ///< widen the band geometrically until the sim front is stable
  kBudget,    ///< the promote_budget best points by ε-dominance margin
};

const char* to_string(PromoteMode m);

/// One promotion round of a mixed sweep. A fixed-band or budget sweep has
/// exactly one; an adaptive sweep has one per band widening, so the
/// per-round counts show where the simulation time went and when the
/// front-stability rule fired.
struct MixedRoundStats {
  /// The ε slack this round promoted at. Budget mode records the largest
  /// selected margin — the fixed band the budget turned out to buy.
  double band = 0.0;
  index_t promoted_new = 0;    ///< points first simulated this round
  index_t promoted_total = 0;  ///< cumulative sim-scored points
  index_t front_size = 0;      ///< promoted-front size after this round
  bool front_changed = false;  ///< did this round's front differ from the last?
  double secs = 0.0;           ///< selection + simulation wall time
};

/// Per-phase accounting of the last mixed-fidelity sweep: how many points
/// the analytic prefilter scored, how many the promotion rule handed to
/// the calibrated simulator (and in which rounds), and the wall time each
/// phase took.
struct MixedSweepStats {
  index_t total = 0;     ///< points in the sweep (phase-1 evaluations)
  index_t promoted = 0;  ///< points re-scored by the sim (phase-2 evaluations)
  PromoteMode mode = PromoteMode::kBand;
  /// The final ε slack: the fixed band, the adaptive stopping band, or the
  /// effective band a budget bought (its largest selected margin).
  double band = 0.0;
  index_t budget = 0;  ///< budget mode only: the requested N
  std::vector<MixedRoundStats> rounds;
  double phase1_secs = 0.0;
  double phase2_secs = 0.0;
};

struct EvaluatorOptions {
  /// 1 = score points serially on the calling thread; > 1 = score them on
  /// the process-wide shared pool (whose width is hardware_threads(), or
  /// APSQ_POOL_THREADS if set — see WorkStealingPool::shared()). Results
  /// are byte-identical either way.
  int threads = 1;
  u64 seed = 0xD5EULL;     ///< accuracy-proxy stream seed
  EvalBackend backend = EvalBackend::kAnalytic;
  EnergyCosts costs = EnergyCosts::horowitz();
  AreaLibrary area_lib = AreaLibrary::tsmc28_typical();
  PerfConfig perf;         ///< clock / DRAM bandwidth for the latency objective
  /// Scaling and seed for the sim backend. With sim.threads > 1 each
  /// point's layers run as a nested scope on the same shared pool, so
  /// point- and layer-level parallelism compose.
  WorkloadRunOptions sim;
  /// Sim backend only: rescale measured energies/latencies into the
  /// analytic backend's absolute units via dse::Calibrator. The mixed
  /// backend forces this on — phase-2 sim scores must be comparable with
  /// the phase-1 analytic scores they sit next to.
  bool calibrate = false;
  /// Mixed backend: relative ε-dominance slack selecting which analytic
  /// points phase 2 promotes to the calibrated simulator (see
  /// epsilon_band in dse/pareto.hpp). 0 promotes the analytic front only;
  /// a non-finite band promotes everything (degenerates to --backend sim
  /// --calibrate). Ignored when promote_adaptive or promote_budget is set.
  double promote_band = 0.05;
  /// Mixed backend: adaptive promotion (the front-stability stopping
  /// rule). Phase 2 starts from the analytic front (band 0), then widens
  /// the band geometrically — adaptive_start, ·growth, ·growth², … —
  /// re-simulating only the newly promoted points each round (the sim and
  /// calibration memo caches carry everything already paid for) and
  /// re-extracting the promoted front. It stops once the front is
  /// unchanged for adaptive_stability consecutive widenings, or when
  /// every point is promoted. Replaces the hand-tuned fixed band with a
  /// rule that spends simulation only while it still moves the answer.
  bool promote_adaptive = false;
  double adaptive_start = 0.0125;  ///< first non-zero band in the ladder
  double adaptive_growth = 2.0;    ///< band multiplier per widening (> 1)
  int adaptive_stability = 2;      ///< unchanged-front rounds before stopping
  /// Mixed backend: promote exactly this many *distinct configurations* —
  /// the best by ε-dominance margin (best_by_margin in dse/pareto.hpp) —
  /// instead of a band. 0 disables budget mode; a budget >= the space
  /// size promotes everything (the budget analogue of band = ∞). If the
  /// evaluated point list repeats a configuration, every duplicate slot
  /// of a selected one is re-scored — they must agree in fidelity, and
  /// the sim memo makes the repeats free — so the slot counts in
  /// MixedSweepStats can exceed the budget by the number of selected
  /// duplicates. Mutually exclusive with promote_adaptive.
  index_t promote_budget = 0;
  /// Sim backend with calibrate: fit latency/energy factors per
  /// (workload, dataflow, psum, layer-class) instead of per workload
  /// (Calibrator::class_factors_for). Finer-grained — a class whose
  /// buffer-fit regime changes differently under scaling gets its own
  /// cycle factor — but the per-layer roll-up sums in a different FP
  /// order than the per-workload aggregate formula, so it is opt-in to
  /// keep default sweeps byte-stable.
  bool calibrate_per_class = false;
  /// Mixed backend: the objective subset the promotion band / margin is
  /// measured in. Should match the objectives the caller extracts fronts
  /// over.
  ObjectiveSet promote_objectives = ObjectiveSet::core();
};

class Evaluator {
 public:
  explicit Evaluator(EvaluatorOptions opt = EvaluatorOptions{});
  ~Evaluator();

  /// Score one point (memoized, thread-safe).
  EvalResult evaluate(const DesignPoint& p);

  /// The point-at-a-time scoring oracle: score one point at an explicit
  /// single-fidelity backend (kAnalytic or kSim — never kMixed), memoized
  /// whole-result in the shared transposition table under the point's
  /// canonical key + fidelity tag. Thread-safe and pure, so parallel
  /// search workers hitting overlapping points pay each score once.
  EvalResult evaluate_point(const DesignPoint& p, EvalBackend fidelity);

  /// Batch flavour of evaluate_point: every point at the same explicit
  /// fidelity, results in index-addressed slots (byte-identical across
  /// thread counts), parallel on the shared pool when threads > 1.
  std::vector<EvalResult> evaluate_points_at(
      const std::vector<DesignPoint>& pts, EvalBackend fidelity);

  /// Per-layer telemetry of one point at an explicit single-fidelity
  /// backend (kAnalytic or kSim — never kMixed). The sim flavour re-runs
  /// the workload (the scoring cache keeps scalars, not layer rows), so
  /// this is for dumping a handful of front points (--layer-stats-csv),
  /// not for the scoring hot path; with an active calibrator the rows are
  /// lifted by the point's per-workload factors (source "sim+cal").
  WorkloadTelemetry telemetry_for(const DesignPoint& p, EvalBackend fidelity);

  /// Score every point of the space with the evaluator's persistent
  /// work-stealing pool. Output order is the space's enumeration order
  /// regardless of thread count.
  std::vector<EvalResult> evaluate_space(const ConfigSpace& space);

  /// Score an explicit point list (same determinism guarantees).
  std::vector<EvalResult> evaluate_points(const std::vector<DesignPoint>& pts);

  CacheStats energy_cache_stats() const;
  CacheStats area_cache_stats() const;
  CacheStats accuracy_cache_stats() const;
  CacheStats latency_cache_stats() const;
  CacheStats sim_cache_stats() const;
  /// Whole-result oracle table (evaluate_point) counters.
  CacheStats score_tt_stats() const;

  /// Phase accounting of the most recent mixed-backend evaluate_space /
  /// evaluate_points call (all-zero before the first one).
  const MixedSweepStats& mixed_stats() const { return mixed_stats_; }

  const EvaluatorOptions& options() const { return opt_; }

  /// The sim↔analytic calibrator, non-null iff options().calibrate and the
  /// sim backend are both active. Exposed so callers can persist / preload
  /// its fitted unit factors (apsq_dse --calibration-csv).
  Calibrator* calibrator() { return calibrator_.get(); }

  /// Bundled-workload registry ("bert", "llama2", "segformer",
  /// "efficientvit" at the paper's input sizes). Throws on unknown names.
  static const Workload& workload(const std::string& name);

 private:
  /// Scalars of one simulated (scaled) workload run: the energy/latency
  /// pair plus the telemetry-derived objective inputs. Cached per point,
  /// so every objective a mixed sweep compares is pure and memoized.
  struct SimScore {
    double energy_pj = 0.0;
    double latency_s = 0.0;
    double pe_utilization = 0.0;     ///< MAC-weighted mean (dimensionless)
    double dram_bw_occupancy = 0.0;  ///< Σ dram_time / Σ latency
    double macs = 0.0;               ///< full-scale useful MACs
  };

  /// Analytic performance scalars of one point (the latency objective and
  /// the telemetry-derived objective inputs), one cache entry per point.
  struct PerfScore {
    double latency_s = 0.0;
    double pe_utilization = 0.0;
    double dram_bw_occupancy = 0.0;
    double macs = 0.0;
  };

  double energy_for(const DesignPoint& p);
  double area_for(const DesignPoint& p);
  double error_for(const DesignPoint& p);
  PerfScore perf_score_for(const DesignPoint& p);
  SimScore sim_score_for(const DesignPoint& p);
  /// Score one point at an explicit single-fidelity backend (kAnalytic or
  /// kSim — never kMixed). The building block both the single-backend
  /// paths and the two mixed phases go through.
  EvalResult evaluate_at(const DesignPoint& p, EvalBackend fidelity);
  /// The two-phase mixed-fidelity pipeline over an explicit point list;
  /// records mixed_stats_.
  std::vector<EvalResult> mixed_sweep(const std::vector<DesignPoint>& pts);
  /// Index loop over points: inline when threads == 1, on the shared pool
  /// otherwise.
  void parallel_for_points(index_t n, const std::function<void(index_t)>& fn);

  EvaluatorOptions opt_;
  MixedSweepStats mixed_stats_;
  // Every memo is one sharded TranspositionTable (dse/tt.hpp): the
  // sub-evaluation tables below plus the whole-result oracle table.
  TranspositionTable<double> energy_tt_;
  TranspositionTable<double> area_tt_;
  TranspositionTable<double> accuracy_tt_;
  TranspositionTable<PerfScore> latency_tt_;
  TranspositionTable<SimScore> sim_tt_;
  TranspositionTable<EvalResult> score_tt_;
  std::unique_ptr<Calibrator> calibrator_;  ///< sim/mixed + calibrate only
};

/// The results a mixed sweep re-scored with the simulator (scored_by
/// "sim" / "sim+cal"). The mixed Pareto front is extracted over this
/// subset — all its members carry the same fidelity, so dominance never
/// compares an analytic score against a measured one.
std::vector<EvalResult> promoted_subset(const std::vector<EvalResult>& results);

}  // namespace apsq::dse
