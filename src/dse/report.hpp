// CSV / table rendering for DSE results. Formatting is centralized here
// so the CLI, the bench, and the determinism tests all agree: doubles are
// printed with "%.17g" (round-trip exact), making "parallel == serial"
// checkable as byte equality on the emitted CSV.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "dse/design_point.hpp"

namespace apsq::dse {

/// Round-trip-exact decimal rendering of a double.
std::string format_double(double v);

/// One row per result: the full configuration plus every objective (one
/// column per Objective, in enum order).
CsvWriter results_csv(const std::vector<EvalResult>& results);

/// Human-readable front table, rows ordered as given.
Table front_table(const std::vector<EvalResult>& front);

}  // namespace apsq::dse
