// CSV / table rendering for DSE results. Formatting is centralized here
// so the CLI, the bench, and the determinism tests all agree: doubles are
// printed with "%.17g" (round-trip exact), making "parallel == serial"
// checkable as byte equality on the emitted CSV.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "dse/design_point.hpp"

namespace apsq::dse {

/// Round-trip-exact decimal rendering of a double.
std::string format_double(double v);

/// One row per result: the full configuration plus every objective (one
/// column per Objective, in enum order). A non-empty `scored_by` label
/// (e.g. "analytic", "sim", "sim+cal", "mixed") appends a `scored_by`
/// column so a persisted CSV records which backend — and whether
/// calibration — stands behind its absolute numbers. Rows carrying their
/// own EvalResult::scored_by provenance (every evaluator-produced result;
/// mandatory for mixed sweeps, whose rows differ in fidelity) print that
/// instead of the sweep-level label.
CsvWriter results_csv(const std::vector<EvalResult>& results,
                      const std::string& scored_by = "");

/// Human-readable front table, rows ordered as given.
Table front_table(const std::vector<EvalResult>& front);

}  // namespace apsq::dse
