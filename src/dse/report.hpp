// CSV / table rendering for DSE results. Formatting is centralized here
// so the CLI, the bench, and the determinism tests all agree: doubles are
// printed with "%.17g" (round-trip exact), making "parallel == serial"
// checkable as byte equality on the emitted CSV.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "dse/design_point.hpp"

// Forward-declared (not included) so report.hpp doesn't re-export
// apsq::format_double next to apsq::dse::format_double — consumers of
// layer_stats_writer include common/stats_writer.hpp themselves.
namespace apsq {
class StatsWriter;
}

namespace apsq::dse {

class Evaluator;

/// Round-trip-exact decimal rendering of a double.
std::string format_double(double v);

/// One row per result: the full configuration plus every objective (one
/// column per Objective, in enum order). A non-empty `scored_by` label
/// (e.g. "analytic", "sim", "sim+cal", "mixed") appends a `scored_by`
/// column so a persisted CSV records which backend — and whether
/// calibration — stands behind its absolute numbers. Rows carrying their
/// own EvalResult::scored_by provenance (every evaluator-produced result;
/// mandatory for mixed sweeps, whose rows differ in fidelity) print that
/// instead of the sweep-level label.
CsvWriter results_csv(const std::vector<EvalResult>& results,
                      const std::string& scored_by = "");

/// Human-readable front table, rows ordered as given.
Table front_table(const std::vector<EvalResult>& front);

/// Per-layer telemetry of the leading `k` front rows (0 = every row): each
/// point is re-scored at its own fidelity (scored_by "analytic" → the
/// analytic models, anything else → the simulator; `fallback_label` stands
/// in for rows without provenance) and contributes one row per layer
/// instance — cycles, utilization, stall/idle split, SRAM/DRAM traffic by
/// operand, bandwidth occupancy — prefixed with the same point-identity
/// columns results_csv uses, so the two files join on them. The apsq_dse
/// --layer-stats-csv table.
StatsWriter layer_stats_writer(Evaluator& eval,
                               const std::vector<EvalResult>& front, size_t k,
                               const std::string& fallback_label);

}  // namespace apsq::dse
