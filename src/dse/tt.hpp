// Sharded, thread-safe transposition table: the one memoization mechanism
// behind every Evaluator sub-cache and the point-score oracle parallel
// searchers share. Keys are canonical strings (dse/design_point.hpp
// canonical_key and its sub-key derivatives), values are computed at most
// once per shard winner: lookup checks under the shard lock, computes
// outside it, and the first inserter wins — a loser's identical value is
// discarded and counted as a `race`, so results are schedule-independent
// and only the counters vary. Sharding by key hash keeps 8–16 parallel
// searchers from serializing on one mutex.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"

namespace apsq::dse {

/// Counters for one table (aggregated across shards). Under contention
/// two workers may both compute the same missing entry; the loser's
/// insert is counted as a `race` (the cached value is identical either
/// way, so only the counters — never the results — are
/// schedule-dependent). For any schedule,
/// hits + misses + races == number of lookups.
struct CacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 races = 0;

  i64 lookups() const { return hits + misses + races; }
};

template <typename V>
class TranspositionTable {
 public:
  /// `shard_count` is rounded up to a power of two (mask-selectable).
  explicit TranspositionTable(size_t shard_count = 16) {
    size_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  /// Return the memoized value for `key`, computing it via `compute()`
  /// (outside any lock) on a miss. First writer wins; every path returns
  /// the table's value.
  template <typename Fn>
  V lookup_or_compute(const std::string& key, Fn&& compute) {
    Shard& s = shard_for(key);
    {
      MutexLock lock(s.mu);
      auto it = s.map.find(key);
      if (it != s.map.end()) {
        ++s.stats.hits;
        return it->second;
      }
    }
    V value = compute();
    MutexLock lock(s.mu);
    auto [it, inserted] = s.map.emplace(key, std::move(value));
    if (inserted)
      ++s.stats.misses;
    else
      ++s.stats.races;
    return it->second;
  }

  /// Counters summed over shards (a consistent-enough snapshot: each
  /// shard is read under its own lock).
  CacheStats stats() const {
    CacheStats total;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);
      total.hits += s->stats.hits;
      total.misses += s->stats.misses;
      total.races += s->stats.races;
    }
    return total;
  }

  /// Distinct memoized keys across all shards.
  i64 entries() const {
    i64 n = 0;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);
      n += static_cast<i64>(s->map.size());
    }
    return n;
  }

 private:
  /// One shard: map and counters move together under one mutex, so a
  /// counter update outside the map's critical section is a compile error
  /// under Clang -Wthread-safety, not a TSan-lottery ticket.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, V> map APSQ_GUARDED_BY(mu);
    CacheStats stats APSQ_GUARDED_BY(mu);
  };

  Shard& shard_for(const std::string& key) const {
    // Shard choice only spreads contention — it never affects results —
    // so std::hash is fine even though it is not specified across
    // implementations.
    const size_t h = std::hash<std::string>{}(key);
    return *shards_[h & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace apsq::dse
