#include "dse/design_point.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "dse/names.hpp"

namespace apsq::dse {

namespace {

/// Row of the shared naming table (dse/names.hpp) for one objective —
/// the single place the name/column/direction strings live.
const ObjectiveName& name_row(Objective o) {
  const auto& table = objective_names();
  const size_t i = static_cast<size_t>(o);
  APSQ_CHECK_MSG(i < table.size() && table[i].objective == o,
                 "objective naming table out of sync");
  return table[i];
}

}  // namespace

void DesignPoint::validate() const {
  APSQ_CHECK_MSG(!workload.empty(), "design point needs a workload name");
  psum.validate();
  acc.validate();
}

std::string canonical_key(const DesignPoint& p) {
  std::ostringstream os;
  os << "wl=" << p.workload << "|df=" << to_string(p.dataflow)
     << "|pb=" << p.psum.psum_bits << "|apsq=" << (p.psum.apsq ? 1 : 0)
     << "|gs=" << p.psum.group_size << "|po=" << p.acc.po
     << "|pci=" << p.acc.pci << "|pco=" << p.acc.pco
     << "|bi=" << p.acc.ifmap_buf_bytes << "|bo=" << p.acc.ofmap_buf_bytes
     << "|bw=" << p.acc.weight_buf_bytes << "|ab=" << p.acc.act_bits
     << "|wb=" << p.acc.weight_bits;
  return os.str();
}

const char* to_string(Objective o) { return name_row(o).name; }

const char* objective_column(Objective o) { return name_row(o).column; }

Direction objective_direction(Objective o) { return name_row(o).direction; }

double Objectives::get(Objective o) const {
  switch (o) {
    case Objective::kEnergy: return energy_pj;
    case Objective::kArea: return area_um2;
    case Objective::kError: return error;
    case Objective::kLatency: return latency_s;
    case Objective::kPeUtilization: return pe_utilization;
    case Objective::kDramBwHeadroom: return dram_bw_headroom;
    case Objective::kThroughputPerArea: return throughput_per_area;
  }
  APSQ_CHECK_MSG(false, "unknown objective");
  return 0.0;
}

double Objectives::minimized(Objective o) const {
  switch (o) {
    case Objective::kPeUtilization:
    case Objective::kDramBwHeadroom:
      // Both live in [0, 1]; clamp so factor noise slightly above 1 can
      // never produce a negative value (the ε-band machinery requires
      // non-negative minimized objectives).
      return std::max(0.0, 1.0 - get(o));
    case Objective::kThroughputPerArea:
      // Monotone-decreasing and finite for every v >= 0, including the
      // default-constructed 0 (1/v would be +inf there and trip the
      // finiteness gate on hand-built results).
      return 1.0 / (1.0 + std::max(0.0, get(o)));
    default:
      return get(o);
  }
}

bool Objectives::all_finite() const {
  for (int i = 0; i < kObjectiveCount; ++i)
    if (!std::isfinite(get(static_cast<Objective>(i)))) return false;
  return true;
}

void Objectives::set(Objective o, double v) {
  switch (o) {
    case Objective::kEnergy: energy_pj = v; return;
    case Objective::kArea: area_um2 = v; return;
    case Objective::kError: error = v; return;
    case Objective::kLatency: latency_s = v; return;
    case Objective::kPeUtilization: pe_utilization = v; return;
    case Objective::kDramBwHeadroom: dram_bw_headroom = v; return;
    case Objective::kThroughputPerArea: throughput_per_area = v; return;
  }
  APSQ_CHECK_MSG(false, "unknown objective");
}

ObjectiveSet::ObjectiveSet() {
  active_.fill(false);
  for (int i = 0; i < kCoreObjectiveCount; ++i)
    active_[static_cast<size_t>(i)] = true;
  rebuild_list();
}

ObjectiveSet ObjectiveSet::all() {
  ObjectiveSet s;
  s.active_.fill(true);
  s.rebuild_list();
  return s;
}

void ObjectiveSet::rebuild_list() {
  list_.clear();
  for (int i = 0; i < kObjectiveCount; ++i)
    if (active_[static_cast<size_t>(i)])
      list_.push_back(static_cast<Objective>(i));
}

ObjectiveSet ObjectiveSet::parse(const std::string& csv) {
  // invalid_argument (a logic_error, but without APSQ_CHECK's file/line
  // prefix) keeps the message clean for CLI diagnostics — parse_enum_flag
  // prints it verbatim after the flag name.
  ObjectiveSet s;
  s.active_.fill(false);
  std::stringstream in(csv);
  std::string name;
  bool any = false;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    // parse_objective names the valid list in its message (the shared
    // naming table), so the CLI, spec, and daemon paths all reject with
    // identical text.
    const Objective o = parse_objective(name);
    if (s.active_[static_cast<size_t>(o)])
      throw std::invalid_argument("duplicate objective: " + name);
    s.active_[static_cast<size_t>(o)] = true;
    any = true;
  }
  if (!any) throw std::invalid_argument("objective list is empty");
  s.rebuild_list();
  return s;
}

std::string ObjectiveSet::to_string() const {
  std::string out;
  for (Objective o : list_) {
    if (!out.empty()) out += ',';
    out += dse::to_string(o);
  }
  return out;
}

bool dominates(const Objectives& a, const Objectives& b,
               const ObjectiveSet& objectives) {
  bool strictly_better = false;
  for (Objective o : objectives.list()) {
    const double av = a.minimized(o), bv = b.minimized(o);
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace apsq::dse
