#include "dse/design_point.hpp"

#include <sstream>

#include "common/check.hpp"

namespace apsq::dse {

void DesignPoint::validate() const {
  APSQ_CHECK_MSG(!workload.empty(), "design point needs a workload name");
  psum.validate();
  acc.validate();
}

std::string canonical_key(const DesignPoint& p) {
  std::ostringstream os;
  os << "wl=" << p.workload << "|df=" << to_string(p.dataflow)
     << "|pb=" << p.psum.psum_bits << "|apsq=" << (p.psum.apsq ? 1 : 0)
     << "|gs=" << p.psum.group_size << "|po=" << p.acc.po
     << "|pci=" << p.acc.pci << "|pco=" << p.acc.pco
     << "|bi=" << p.acc.ifmap_buf_bytes << "|bo=" << p.acc.ofmap_buf_bytes
     << "|bw=" << p.acc.weight_buf_bytes << "|ab=" << p.acc.act_bits
     << "|wb=" << p.acc.weight_bits;
  return os.str();
}

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.energy_pj > b.energy_pj || a.area_um2 > b.area_um2 ||
      a.error > b.error)
    return false;
  return a.energy_pj < b.energy_pj || a.area_um2 < b.area_um2 ||
         a.error < b.error;
}

}  // namespace apsq::dse
