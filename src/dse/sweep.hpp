// Library-level sweep engine: the orchestration `apsq_dse` used to
// hand-assemble, packaged so any embedder — the CLI, tests, benches, a
// batch job runner, a future daemon — runs identical sweeps
// programmatically.
//
//   SweepConfig   — one declarative sweep description: space, fidelity
//                   backend, objective planes, promotion rule,
//                   calibration, scaling, threading. validate() holds the
//                   cross-field consistency rules (the CLI's former
//                   flag_requires / flags_exclusive block), so the flag
//                   path and the JSON job-spec path reject inconsistent
//                   configs with identical messages.
//   SweepSession  — owns the ConfigSpace and the Evaluator a config
//                   denotes, runs the sweep (optionally answering from /
//                   recording into an EvalStore), extracts the fronts,
//                   and can re-verify the result against a fully serial
//                   re-run.
//
// A session attached to an EvalStore answers warm queries without
// evaluating: if the store holds a snapshot for this space (canonical
// hash) under this scoring identity (scoring_key()), the stored results
// are re-sliced — a different objective subset, a constraint filter, a
// margin ranking — and only missing points are evaluated, batched
// together through the process-wide shared pool.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/stats_writer.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/search.hpp"

namespace apsq::dse {

class EvalStore;

/// How a session covers its space: exhaustively score every point, or
/// explore under an evaluation budget (SearchDriver).
enum class RunMode {
  kSweep,   ///< enumerate and score the whole space
  kSearch,  ///< budgeted search (--budget, --strategy, --search-seed)
};

const char* to_string(RunMode m);
/// Parse "sweep" | "search"; throws std::invalid_argument otherwise.
RunMode parse_run_mode(const std::string& name);

/// Largest space an exhaustive sweep will enumerate. Past this, sweep
/// mode is rejected up front (validate()) with a pointer to
/// --mode search: materializing 10⁶+ results is never what was meant.
inline constexpr index_t kMaxExhaustiveSweepPoints = index_t{1} << 20;

/// Everything one sweep needs, declaratively. Field semantics and
/// defaults mirror the apsq_dse flags one-to-one (the *_set booleans
/// record "explicitly given", which the consistency rules need — an
/// explicit --promote-band outside the mixed backend is an error, the
/// default value is not).
struct SweepConfig {
  /// "paper" (1248 pts) | "smoke" (8 pts) | "fine" (~6×10⁷ pts,
  /// search-only).
  std::string space = "paper";
  EvalBackend backend = EvalBackend::kAnalytic;
  /// Exhaustive sweep (default) or budgeted search.
  RunMode mode = RunMode::kSweep;
  SearchStrategy strategy = SearchStrategy::kHalving;
  bool strategy_set = false;
  i64 budget = 0;  ///< search mode: fidelity-evaluation budget (required)
  bool budget_set = false;
  u64 search_seed = 1;  ///< search-trajectory seed (not the scoring seed)
  bool search_seed_set = false;
  /// The plane fronts are extracted (and re-sliced) in.
  ObjectiveSet objectives;
  /// Mixed backend: the plane promotion margins are measured in. Follows
  /// `objectives` unless explicitly set — fixing it while varying
  /// `objectives` is how a stored mixed sweep stays re-sliceable.
  ObjectiveSet promote_objectives;
  bool promote_objectives_set = false;
  int threads = 0;      ///< 0 = hardware concurrency
  int sim_threads = 0;  ///< 0 = follow threads (sim/mixed backends only)
  u64 seed = 0xD5EULL;
  i64 shrink = 32;   ///< sim backend: dimension divisor
  i64 max_dim = 48;  ///< sim backend: dimension clamp
  bool calibrate = false;
  double promote_band = 0.05;
  bool promote_band_set = false;
  bool promote_adaptive = false;
  i64 promote_budget = 0;
  bool promote_budget_set = false;
  bool calibrate_per_class = false;
  /// Load fitted calibration unit factors from here if the file exists,
  /// and persist them here after the sweep.
  std::string calibration_csv;
  /// Answer this sweep from a snapshot file (error if it has no matching
  /// snapshot) / snapshot the evaluated space here afterwards.
  std::string store_in;
  std::string store_out;
  /// Optional constraint filter applied to the front basis before
  /// extraction — comma list of `objective<=value` / `objective>=value`
  /// terms (e.g. "area<=2.5e6,latency<=0.01"), values in natural units.
  std::string where;

  bool mixed() const { return backend == EvalBackend::kMixed; }
  bool search() const { return mode == RunMode::kSearch; }

  /// The strategy a search runs: the explicit one, else halving for the
  /// mixed backend (it is the budgeted mixed pipeline) and evolve for the
  /// single-fidelity ones.
  SearchStrategy effective_strategy() const;

  /// The SearchOptions this config denotes (search mode only).
  SearchOptions search_options() const;

  /// Cross-field consistency rules — the single authority both the CLI
  /// and the job-spec path run, so both reject an inconsistent config
  /// with the identical message and exit 1. Writes the first violation to
  /// `err` and returns false.
  bool validate(std::ostream& err = std::cerr) const;

  /// The ConfigSpace `space` names. validate() has already vetted the
  /// name; this throws std::invalid_argument on an unknown one.
  ConfigSpace make_space() const;

  /// threads, with 0 resolved to the hardware concurrency.
  int resolved_threads() const;

  /// promote_objectives if explicitly set, else objectives — the plane
  /// the evaluator's promotion actually runs in.
  ObjectiveSet effective_promote_objectives() const;

  /// The EvaluatorOptions this config denotes (what the CLI's main() used
  /// to assemble inline).
  EvaluatorOptions evaluator_options() const;

  /// Sweep-level provenance label ("analytic", "sim", "sim+cal",
  /// "mixed") — the results_csv fallback for rows without their own.
  std::string scored_by_label() const;

  /// Canonical identity of everything that determines the *values* of
  /// this sweep's results (backend, seed, scaling, calibration mode,
  /// promotion rule and plane — but not threads, output paths, or the
  /// slicing objectives, which never change a score). Two configs with
  /// equal scoring keys over the same space produce byte-identical result
  /// sets, which is what lets an EvalStore snapshot stand in for a fresh
  /// evaluation.
  std::string scoring_key() const;
};

/// One term of a `where` constraint filter.
struct Constraint {
  Objective objective = Objective::kEnergy;
  bool upper_bound = true;  ///< true: value <= bound; false: value >= bound
  double bound = 0.0;
};

/// Parse a comma list of "objective<=value" / "objective>=value" terms.
/// Throws std::invalid_argument on unknown objective names, malformed
/// terms, or a non-finite bound. An empty string yields no constraints.
std::vector<Constraint> parse_constraints(const std::string& text);

/// The subset of `results` satisfying every constraint (natural units).
std::vector<EvalResult> filter_results(const std::vector<EvalResult>& results,
                                       const std::vector<Constraint>& cs);

/// The per-workload Pareto front `cfg` denotes over `results`: the basis
/// is the promoted subset for mixed sweeps (dominance only compares
/// equal-fidelity scores), filtered by `constraints`;
/// `global_front_size`, when non-null, receives the size of the
/// cross-workload front over the same basis. SweepSession and the daemon
/// dispatcher both extract through here, so their fronts are
/// byte-identical by construction.
std::vector<EvalResult> extract_front(const SweepConfig& cfg,
                                      const std::vector<Constraint>& constraints,
                                      const std::vector<EvalResult>& results,
                                      size_t* global_front_size = nullptr);

/// What one sweep produced, plus the accounting a report needs.
struct SweepOutcome {
  /// Every scored point, in enumeration order. An exhaustive sweep covers
  /// the whole space; a budgeted search holds only the (sparse) rows it
  /// explored — results.size() is nowhere near space.size() then.
  std::vector<EvalResult> results;
  /// Per-workload Pareto front over cfg.objectives (after the `where`
  /// filter; over the promoted subset for mixed sweeps).
  std::vector<EvalResult> front;
  /// Size of the cross-workload (global) front over the same basis.
  size_t global_front_size = 0;
  double secs = 0.0;  ///< wall time of the evaluate/lookup phase
  /// Points actually scored by this run. A fully warm store re-slice
  /// reports 0 here — the acceptance signal that no evaluation was paid.
  index_t fresh_evaluations = 0;
  index_t store_hits = 0;  ///< points answered from the EvalStore
  /// Families loaded from calibration_csv (-1: no load happened).
  i64 calibration_families_loaded = -1;
  /// Search mode, cold runs only: the driver's round/budget accounting
  /// (all-zero on a warm store replay — nothing ran).
  SearchStats search;
};

class SweepSession {
 public:
  /// The config must already be validate()d — the constructor re-checks
  /// and throws std::invalid_argument on a violation (so programmatic
  /// embedders cannot skip the rules), and pins the shared pool width to
  /// the config's thread count (first session wins, like the CLI did).
  ///
  /// `store` attaches an external evaluated-space store shared across
  /// sessions (the batch job runner's mode); the caller keeps ownership
  /// and handles load/save. Without one, the session creates a private
  /// store on demand when store_in / store_out are set, loading store_in
  /// itself (and failing hard if it has no snapshot for this sweep).
  explicit SweepSession(SweepConfig cfg, EvalStore* store = nullptr);
  ~SweepSession();

  /// Run the sweep: answer from the store where possible, evaluate the
  /// (batched) misses, record the full result set back into the store,
  /// extract the fronts, persist calibration factors / the store snapshot
  /// when configured. Throws std::runtime_error on store/calibration I/O
  /// or consistency failures.
  SweepOutcome run();

  /// Re-run fully serially (threads = 1, no store) and require the
  /// per-workload front CSV to be byte-identical to `out`'s. Returns
  /// false (after writing a diagnostic to `err`) on a mismatch — the
  /// CLI's --verify-serial.
  bool verify_serial(const SweepOutcome& out, std::ostream& err = std::cerr);

  /// The --stats-json table for one outcome: eval/cache/pool counters,
  /// store hit accounting, calibration family count, mixed phase
  /// timings.
  StatsWriter stats_writer(const SweepOutcome& out) const;

  Evaluator& evaluator() { return *eval_; }
  const ConfigSpace& space() const { return space_; }
  const SweepConfig& config() const { return cfg_; }
  /// The attached store (external or private), nullptr when none.
  EvalStore* store();

 private:
  std::vector<EvalResult> slice_front(const std::vector<EvalResult>& results,
                                      size_t& global_front_size) const;
  /// The search-mode body of run(): answer whole from a store entry under
  /// the search scoring key (its sparse rows ARE the complete output of
  /// this deterministic trajectory), or run the SearchDriver cold and
  /// merge its rows into the store.
  SweepOutcome run_search();

  SweepConfig cfg_;
  ConfigSpace space_;
  std::vector<Constraint> constraints_;
  std::unique_ptr<Evaluator> eval_;
  EvalStore* external_store_ = nullptr;
  std::unique_ptr<EvalStore> owned_store_;
};

}  // namespace apsq::dse
