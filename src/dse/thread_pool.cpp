#include "dse/thread_pool.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace apsq::dse {

// A mutex-guarded deque is plenty here: DSE tasks are microseconds to
// milliseconds each, so lock traffic is noise next to the work. (A
// lock-free Chase–Lev deque would buy nothing at this granularity.)
struct WorkStealingPool::Queue {
  std::mutex mu;
  std::deque<index_t> items;
};

WorkStealingPool::WorkStealingPool(int num_threads)
    : num_threads_(num_threads) {
  APSQ_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
}

WorkStealingPool::~WorkStealingPool() = default;

int WorkStealingPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool WorkStealingPool::try_pop_own(index_t w, index_t& idx) {
  Queue& q = *queues_[static_cast<size_t>(w)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.items.empty()) return false;
  idx = q.items.front();
  q.items.pop_front();
  return true;
}

bool WorkStealingPool::try_steal(index_t thief, index_t& idx) {
  for (index_t k = 1; k < num_threads_; ++k) {
    const index_t victim = (thief + k) % num_threads_;
    Queue& q = *queues_[static_cast<size_t>(victim)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.items.empty()) continue;
    idx = q.items.back();
    q.items.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::worker_loop(index_t w,
                                   const std::function<void(index_t)>& fn) {
  index_t idx;
  for (;;) {
    if (try_pop_own(w, idx) || try_steal(w, idx))
      fn(idx);
    else
      return;  // every deque drained; in-flight tasks belong to other workers
  }
}

void WorkStealingPool::parallel_for(index_t n,
                                    const std::function<void(index_t)>& fn) {
  APSQ_CHECK(n >= 0);
  if (n == 0) return;
  if (num_threads_ == 1) {
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Seed each deque with a contiguous chunk (owner pops front, thieves
  // take the back, so steals grab the work the owner would reach last).
  for (index_t w = 0; w < num_threads_; ++w) {
    const index_t lo = w * n / num_threads_;
    const index_t hi = (w + 1) * n / num_threads_;
    Queue& q = *queues_[static_cast<size_t>(w)];
    std::lock_guard<std::mutex> lock(q.mu);
    for (index_t i = lo; i < hi; ++i) q.items.push_back(i);
  }

  // Mirror the single-thread error behaviour as closely as threads allow:
  // after the first captured exception no further tasks start (in-flight
  // ones finish), instead of running the rest of the sweep to completion.
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::atomic<bool> stop{false};
  auto guarded = [&](index_t i) {
    if (stop.load(std::memory_order_relaxed)) return;
    try {
      fn(i);
    } catch (...) {
      stop.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads_) - 1);
  for (index_t w = 1; w < num_threads_; ++w)
    workers.emplace_back([&, w] { worker_loop(w, guarded); });
  worker_loop(0, guarded);  // the calling thread is worker 0
  for (auto& t : workers) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace apsq::dse
