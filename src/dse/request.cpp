#include "dse/request.hpp"

#include <cmath>
#include <stdexcept>

#include "common/json.hpp"

namespace apsq::dse {

namespace {

/// The flag ranges, mirrored so a request rejects exactly what the CLI
/// does.
constexpr i64 kDimMax = i64{1} << 30;
constexpr i64 kBudgetMax = i64{1} << 40;
constexpr int kThreadsMax = 4096;
constexpr int kTopMax = 1 << 20;

i64 as_i64_in(const JsonValue& v, const std::string& source,
              const std::string& where, const std::string& key, i64 lo,
              i64 hi) {
  const i64 n = v.as_i64();
  if (n < lo || n > hi)
    request_error(source, where,
                  "\"" + key + "\" must be in [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "], got " + std::to_string(n));
  return n;
}

int as_int_in(const JsonValue& v, const std::string& source,
              const std::string& where, const std::string& key, i64 lo,
              i64 hi) {
  return static_cast<int>(as_i64_in(v, source, where, key, lo, hi));
}

}  // namespace

void request_error(const std::string& source, const std::string& where,
                   const std::string& reason) {
  throw std::runtime_error(source + ": " + where + ": " + reason);
}

bool apply_request_field(const std::string& key, const JsonValue& v,
                         RequestSpec& r, const std::string& source,
                         const std::string& where) {
  SweepConfig& c = r.config;
  try {
    if (key == "name") {
      r.name = v.as_string();
    } else if (key == "space") {
      c.space = v.as_string();
    } else if (key == "backend") {
      c.backend = parse_backend(v.as_string());
    } else if (key == "objectives") {
      c.objectives = ObjectiveSet::parse(v.as_string());
    } else if (key == "promote_objectives") {
      c.promote_objectives = ObjectiveSet::parse(v.as_string());
      c.promote_objectives_set = true;
    } else if (key == "threads") {
      c.threads = as_int_in(v, source, where, key, 1, kThreadsMax);
    } else if (key == "sim_threads") {
      c.sim_threads = as_int_in(v, source, where, key, 1, kThreadsMax);
    } else if (key == "seed") {
      // JSON numbers are doubles, so seeds above 2^53 are not exactly
      // representable — as_i64 rejects them rather than rounding.
      const i64 s = v.as_i64();
      if (s < 0) request_error(source, where, "\"seed\" must be >= 0");
      c.seed = static_cast<u64>(s);
    } else if (key == "shrink") {
      c.shrink = as_int_in(v, source, where, key, 1, kDimMax);
    } else if (key == "max_dim") {
      c.max_dim = as_int_in(v, source, where, key, 1, kDimMax);
    } else if (key == "calibrate") {
      c.calibrate = v.as_bool();
    } else if (key == "calibrate_per_class") {
      c.calibrate_per_class = v.as_bool();
    } else if (key == "calibration_csv") {
      c.calibration_csv = v.as_string();
    } else if (key == "promote_band") {
      const double b = v.as_number();
      if (!(b >= 0.0))
        request_error(source, where, "\"promote_band\" must be >= 0");
      c.promote_band = b;
      c.promote_band_set = true;
    } else if (key == "promote_adaptive") {
      c.promote_adaptive = v.as_bool();
    } else if (key == "promote_budget") {
      c.promote_budget = as_i64_in(v, source, where, key, 1, kBudgetMax);
      c.promote_budget_set = true;
    } else if (key == "mode") {
      c.mode = parse_run_mode(v.as_string());
    } else if (key == "strategy") {
      c.strategy = parse_strategy(v.as_string());
      c.strategy_set = true;
    } else if (key == "budget") {
      c.budget = as_i64_in(v, source, where, key, 1, kBudgetMax);
      c.budget_set = true;
    } else if (key == "search_seed") {
      const i64 s = v.as_i64();
      if (s < 0) request_error(source, where, "\"search_seed\" must be >= 0");
      c.search_seed = static_cast<u64>(s);
      c.search_seed_set = true;
    } else if (key == "where") {
      c.where = v.as_string();
      parse_constraints(c.where);  // reject malformed filters at parse time
    } else if (key == "csv") {
      r.csv = v.as_string();
    } else if (key == "front_csv") {
      r.front_csv = v.as_string();
    } else if (key == "top") {
      r.top = as_int_in(v, source, where, key, 0, kTopMax);
    } else {
      return false;
    }
  } catch (const std::runtime_error&) {
    throw;  // already source-prefixed (the request_error calls above)
  } catch (const std::exception& ex) {
    // Type mismatches from the JsonValue accessors and value errors from
    // parse_backend / ObjectiveSet::parse / parse_constraints: attach the
    // source, the context, and the key they came from.
    request_error(source, where, "\"" + key + "\": " + ex.what());
  }
  return true;
}

void apply_request_object(const JsonValue& obj, RequestSpec& r,
                          const std::string& source, const std::string& where,
                          bool allow_name) {
  for (const auto& [key, value] : obj.members()) {
    if (key == "name" && !allow_name)
      request_error(source, where, "\"name\" is not a defaults field");
    if (!apply_request_field(key, value, r, source, where))
      request_error(source, where, "unknown key \"" + key + "\"");
  }
}

}  // namespace apsq::dse
