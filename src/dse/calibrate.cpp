#include "dse/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "dse/report.hpp"
#include "energy/energy_model.hpp"
#include "sim/performance.hpp"

namespace apsq::dse {

SimConfig sim_config_for(const DesignPoint& p) {
  SimConfig c;
  c.arch = p.acc;
  c.dataflow = p.dataflow;
  c.psum = p.psum;
  if (p.dataflow == Dataflow::kOS && p.psum.apsq)
    c.psum = PsumConfig::baseline_int32();
  return c;
}

namespace {

/// The calibrated component vector, in the same units the simulator
/// measures: bytes moved per memory level, tile cycles, MAC ops.
struct Components {
  double sram_bytes = 0.0;
  double dram_bytes = 0.0;
  double cycles = 0.0;
  double macs = 0.0;
};

/// Closed-form components of a workload under (dataflow, arch, psum) —
/// the analytic side of every calibration ratio.
Components analytic_components(Dataflow df, const Workload& w,
                               const AcceleratorConfig& acc,
                               const PsumConfig& psum,
                               const EnergyCosts& costs,
                               const PerfConfig& perf) {
  const EnergyBreakdown e = workload_energy(df, w, acc, psum, costs);
  const WorkloadPerformance p = workload_performance(df, w, acc, psum, perf);
  Components c;
  c.sram_bytes = e.sram_pj / costs.esram_pj_per_byte;
  c.dram_bytes = e.dram_pj / costs.edram_pj_per_byte;
  c.cycles = static_cast<double>(p.total_cycles);
  c.macs = static_cast<double>(p.total_macs);
  return c;
}

Components measured_components(const SimStats& s) {
  Components c;
  c.sram_bytes = static_cast<double>(s.sram.total_bytes());
  c.dram_bytes = static_cast<double>(s.dram.total_bytes());
  c.cycles = static_cast<double>(s.cycles);
  c.macs = static_cast<double>(s.mac_ops);
  return c;
}

/// Component ratio with identity fallback: a component absent on either
/// side (an empty workload, a zero-traffic lane) calibrates to 1 rather
/// than 0 or inf, so downstream math stays finite.
double ratio(double num, double den) {
  return (den > 0.0 && num > 0.0) ? num / den : 1.0;
}

CalibrationFactors component_ratios(const Components& num,
                                    const Components& den) {
  CalibrationFactors f;
  f.sram_bytes = ratio(num.sram_bytes, den.sram_bytes);
  f.dram_bytes = ratio(num.dram_bytes, den.dram_bytes);
  f.cycles = ratio(num.cycles, den.cycles);
  f.macs = ratio(num.macs, den.macs);
  return f;
}

/// Anchor geometry: the small fully-resident array + fat-buffer regime of
/// tests/sim/sim_vs_analytic_test.cpp, where sim and analytic agree to
/// floating-point precision except for PSUM byte rounding — exactly the
/// daylight the unit factors are meant to absorb.
AcceleratorConfig anchor_arch() {
  AcceleratorConfig a;
  a.po = 4;
  a.pci = 4;
  a.pco = 4;
  a.ifmap_buf_bytes = i64{1} << 24;
  a.ofmap_buf_bytes = i64{1} << 24;
  a.weight_buf_bytes = i64{1} << 24;
  return a;
}

/// The workload's distinct scaled layer shapes, largest MACs first (ties
/// keep workload order) — a deterministic anchor list.
std::vector<LayerShape> anchor_shapes(const Workload& w,
                                      const WorkloadRunOptions& sweep,
                                      index_t max_anchors) {
  std::vector<LayerShape> distinct;
  for (const LayerShape& layer : w.layers) {
    const LayerShape s = scale_layer(layer, sweep);
    const bool seen =
        std::any_of(distinct.begin(), distinct.end(), [&](const LayerShape& d) {
          return d.rows == s.rows && d.ci == s.ci && d.co == s.co;
        });
    if (!seen) distinct.push_back(s);
  }
  std::stable_sort(
      distinct.begin(), distinct.end(),
      [](const LayerShape& a, const LayerShape& b) { return a.macs() > b.macs(); });
  if (static_cast<index_t>(distinct.size()) > max_anchors)
    distinct.resize(static_cast<size_t>(max_anchors));
  return distinct;
}

i64 parse_csv_i64(const std::string& field, const std::string& path) {
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  APSQ_CHECK_MSG(end && *end == '\0' && !field.empty(),
                 "bad integer '" << field << "' in " << path);
  return static_cast<i64>(v);
}

u64 parse_csv_u64(const std::string& field, const std::string& path) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  APSQ_CHECK_MSG(end && *end == '\0' && !field.empty() && field[0] != '-',
                 "bad unsigned integer '" << field << "' in " << path);
  return static_cast<u64>(v);
}

/// The one place the family-key format lives: family_key() and the CSV
/// loader both build keys here, so they can never drift apart.
std::string family_key_from_fields(const std::string& workload,
                                   const std::string& dataflow, int psum_bits,
                                   int apsq, int group_size) {
  std::ostringstream os;
  os << "wl=" << workload << "|df=" << dataflow << "|pb=" << psum_bits
     << "|apsq=" << apsq << "|gs=" << group_size;
  return os.str();
}

double parse_csv_double(const std::string& field, const std::string& path) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  APSQ_CHECK_MSG(end && *end == '\0' && !field.empty() && std::isfinite(v),
                 "bad number '" << field << "' in " << path);
  return v;
}

}  // namespace

Calibrator::Calibrator(Options opt) : opt_(std::move(opt)) {
  APSQ_CHECK_MSG(opt_.anchors_per_family >= 1,
                 "calibration needs at least one anchor per family");
}

std::string Calibrator::family_key(const std::string& workload,
                                   const SimConfig& cfg) {
  return family_key_from_fields(workload, to_string(cfg.dataflow),
                                cfg.psum.psum_bits, cfg.psum.apsq ? 1 : 0,
                                static_cast<int>(cfg.psum.group_size));
}

CalibrationFactors Calibrator::fit_unit_factors(const Workload& w,
                                                const SimConfig& cfg) const {
  // Anchor runs execute the sweep's scaled shapes *unscaled* (shrink = 1),
  // serially — they are small by construction and may already be running
  // inside a pool task.
  WorkloadRunOptions anchor_opt;
  anchor_opt.shrink = 1;
  anchor_opt.max_dim = i64{1} << 30;
  anchor_opt.seed = opt_.sim.seed;
  anchor_opt.threads = 1;

  SimConfig anchor_cfg = cfg;
  anchor_cfg.arch = anchor_arch();

  Components sim_sum, analytic_sum;
  for (const LayerShape& shape :
       anchor_shapes(w, opt_.sim, opt_.anchors_per_family)) {
    Workload anchor;
    anchor.name = "anchor";
    anchor.layers.push_back({shape.name, shape.rows, shape.ci, shape.co, 1});

    const WorkloadRunResult r = run_workload(anchor, anchor_cfg, anchor_opt);
    const Components m = measured_components(r.total);
    const Components a =
        analytic_components(anchor_cfg.dataflow, anchor, anchor_cfg.arch,
                            anchor_cfg.psum, opt_.costs, opt_.perf);
    sim_sum.sram_bytes += m.sram_bytes;
    sim_sum.dram_bytes += m.dram_bytes;
    sim_sum.cycles += m.cycles;
    sim_sum.macs += m.macs;
    analytic_sum.sram_bytes += a.sram_bytes;
    analytic_sum.dram_bytes += a.dram_bytes;
    analytic_sum.cycles += a.cycles;
    analytic_sum.macs += a.macs;
  }
  return component_ratios(analytic_sum, sim_sum);
}

CalibrationFactors Calibrator::unit_factors(const std::string& workload_name,
                                            const Workload& w,
                                            const SimConfig& cfg) {
  const std::string key = family_key(workload_name, cfg);
  {
    MutexLock lock(mu_);
    const auto it = families_.find(key);
    if (it != families_.end()) return it->second.f;
  }
  // Fit outside the lock; a racing duplicate fit computes the identical
  // value (pure function of family + options), so first-writer-wins.
  Family fam;
  fam.workload = workload_name;
  fam.dataflow = to_string(cfg.dataflow);
  fam.psum_bits = cfg.psum.psum_bits;
  fam.apsq = cfg.psum.apsq ? 1 : 0;
  fam.group_size = static_cast<int>(cfg.psum.group_size);
  fam.f = fit_unit_factors(w, cfg);
  MutexLock lock(mu_);
  return families_.emplace(key, fam).first->second.f;
}

CalibrationFactors Calibrator::scale_factors(const Workload& w,
                                             const DesignPoint& p) const {
  const SimConfig cfg = sim_config_for(p);
  const Workload scaled = scale_workload(w, opt_.sim);
  const Components full = analytic_components(cfg.dataflow, w, cfg.arch,
                                              cfg.psum, opt_.costs, opt_.perf);
  const Components small = analytic_components(
      cfg.dataflow, scaled, cfg.arch, cfg.psum, opt_.costs, opt_.perf);
  return component_ratios(full, small);
}

CalibrationFactors Calibrator::factors_for(const std::string& workload_name,
                                           const Workload& w,
                                           const DesignPoint& p) {
  return unit_factors(workload_name, w, sim_config_for(p))
      .compose(scale_factors(w, p));
}

CalibrationFactors Calibrator::class_unit_factors(
    const std::string& workload_name, const std::string& layer_class,
    const Workload& class_workload, const SimConfig& cfg) {
  const std::string key =
      family_key(workload_name, cfg) + "|lc=" + layer_class;
  {
    MutexLock lock(mu_);
    const auto it = class_families_.find(key);
    if (it != class_families_.end()) return it->second;
  }
  // Pure function of (family, class layers, options): a racing duplicate
  // fit computes the identical value, first-writer-wins.
  const CalibrationFactors f = fit_unit_factors(class_workload, cfg);
  MutexLock lock(mu_);
  return class_families_.emplace(key, f).first->second;
}

ClassFactors Calibrator::class_factors_for(const std::string& workload_name,
                                           const Workload& w,
                                           const DesignPoint& p) {
  const SimConfig cfg = sim_config_for(p);
  // Partition the workload by layer class, preserving layer order inside
  // each class (std::map: classes iterate in name order — deterministic).
  std::map<std::string, Workload> by_class;
  for (const LayerShape& layer : w.layers) {
    Workload& sub = by_class[layer_class_of(layer.name)];
    if (sub.name.empty()) sub.name = w.name;
    sub.layers.push_back(layer);
  }

  ClassFactors cf;
  cf.fallback = factors_for(workload_name, w, p);
  for (const auto& [cls, sub] : by_class) {
    // Per-class unit ∘ scale chain, each side restricted to the class's
    // own layers. DesignPoint carries no layer list, so scale_factors(sub,
    // p) evaluates the closed forms at exactly these layers.
    const CalibrationFactors unit =
        class_unit_factors(workload_name, cls, sub, cfg);
    cf.by_class.emplace(cls, unit.compose(scale_factors(sub, p)));
  }
  return cf;
}

double Calibrator::calibrated_energy_pj(const WorkloadRunResult& r,
                                        const CalibrationFactors& f) const {
  // Eq. 1 over the calibrated components — identical to
  // SimStats::energy_pj when every factor is 1.
  return f.sram_bytes * static_cast<double>(r.total.sram.total_bytes()) *
             opt_.costs.esram_pj_per_byte +
         f.dram_bytes * static_cast<double>(r.total.dram.total_bytes()) *
             opt_.costs.edram_pj_per_byte +
         f.macs * static_cast<double>(r.total.mac_ops) * opt_.costs.emac_pj;
}

double Calibrator::calibrated_latency_s(const WorkloadRunResult& r,
                                        const CalibrationFactors& f) const {
  const PerfConfig& perf = opt_.perf;
  APSQ_CHECK(std::isfinite(perf.clock_hz) && perf.clock_hz > 0.0);
  APSQ_CHECK(std::isfinite(perf.dram_bandwidth_gbps) &&
             perf.dram_bandwidth_gbps > 0.0);
  double total_s = 0.0;
  for (const LayerRunStats& lr : r.layers) {
    const double compute_s =
        f.cycles * static_cast<double>(lr.stats.cycles) / perf.clock_hz;
    const double dram_s = f.dram_bytes *
                          static_cast<double>(lr.stats.dram.total_bytes()) /
                          (perf.dram_bandwidth_gbps * 1e9);
    total_s += std::max(compute_s, dram_s) * static_cast<double>(lr.repeat);
  }
  return total_s;
}

double Calibrator::calibrated_energy_pj(const WorkloadRunResult& r,
                                        const ClassFactors& cf) const {
  // Eq. 1 per layer with that layer's class factors, × repeat, summed.
  double total_pj = 0.0;
  for (const LayerRunStats& lr : r.layers) {
    const CalibrationFactors& f = cf.for_class(layer_class_of(lr.name));
    const double layer_pj =
        f.sram_bytes * static_cast<double>(lr.stats.sram.total_bytes()) *
            opt_.costs.esram_pj_per_byte +
        f.dram_bytes * static_cast<double>(lr.stats.dram.total_bytes()) *
            opt_.costs.edram_pj_per_byte +
        f.macs * static_cast<double>(lr.stats.mac_ops) * opt_.costs.emac_pj;
    total_pj += layer_pj * static_cast<double>(lr.repeat);
  }
  return total_pj;
}

double Calibrator::calibrated_latency_s(const WorkloadRunResult& r,
                                        const ClassFactors& cf) const {
  const PerfConfig& perf = opt_.perf;
  APSQ_CHECK(std::isfinite(perf.clock_hz) && perf.clock_hz > 0.0);
  APSQ_CHECK(std::isfinite(perf.dram_bandwidth_gbps) &&
             perf.dram_bandwidth_gbps > 0.0);
  double total_s = 0.0;
  for (const LayerRunStats& lr : r.layers) {
    const CalibrationFactors& f = cf.for_class(layer_class_of(lr.name));
    const double compute_s =
        f.cycles * static_cast<double>(lr.stats.cycles) / perf.clock_hz;
    const double dram_s = f.dram_bytes *
                          static_cast<double>(lr.stats.dram.total_bytes()) /
                          (perf.dram_bandwidth_gbps * 1e9);
    total_s += std::max(compute_s, dram_s) * static_cast<double>(lr.repeat);
  }
  return total_s;
}

index_t Calibrator::family_count() const {
  MutexLock lock(mu_);
  return static_cast<index_t>(families_.size());
}

std::vector<std::string> Calibrator::family_keys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(families_.size());
  for (const auto& [key, family] : families_) {
    (void)family;
    keys.push_back(key);
  }
  return keys;  // families_ is a std::map — already key-sorted
}

CsvWriter Calibrator::unit_factors_csv() const {
  // The shrink/max_dim/seed/anchors columns record the fit context: unit
  // factors are a function of the anchor shapes (hence of the sweep's
  // scaling) and of the operand seed, so the loader refuses rows fitted
  // under different options instead of silently applying them.
  CsvWriter csv({"workload", "dataflow", "psum_bits", "apsq", "group_size",
                 "shrink", "max_dim", "seed", "anchors", "sram_factor",
                 "dram_factor", "cycle_factor", "mac_factor"});
  MutexLock lock(mu_);
  for (const auto& [key, fam] : families_) {  // std::map: sorted by key
    (void)key;
    csv.add_row({fam.workload, fam.dataflow, std::to_string(fam.psum_bits),
                 std::to_string(fam.apsq), std::to_string(fam.group_size),
                 std::to_string(opt_.sim.shrink),
                 std::to_string(opt_.sim.max_dim),
                 std::to_string(opt_.sim.seed),
                 std::to_string(opt_.anchors_per_family),
                 format_double(fam.f.sram_bytes),
                 format_double(fam.f.dram_bytes), format_double(fam.f.cycles),
                 format_double(fam.f.macs)});
  }
  return csv;
}

index_t Calibrator::load_unit_factors_csv(const std::string& path) {
  std::ifstream in(path);
  APSQ_CHECK_MSG(in, "cannot open calibration CSV: " << path);
  std::string line;
  APSQ_CHECK_MSG(std::getline(in, line), "empty calibration CSV: " << path);
  // Tolerate a trailing \r (a CSV edited on Windows).
  if (!line.empty() && line.back() == '\r') line.pop_back();
  APSQ_CHECK_MSG(
      line ==
          "workload,dataflow,psum_bits,apsq,group_size,shrink,max_dim,seed,"
          "anchors,sram_factor,dram_factor,cycle_factor,mac_factor",
      "unexpected calibration CSV header in " << path << ": " << line);

  index_t loaded = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    APSQ_CHECK_MSG(fields.size() == 13,
                   "expected 13 fields, got " << fields.size() << " in "
                                              << path << ": " << line);
    Family fam;
    fam.workload = fields[0];
    fam.dataflow = fields[1];
    fam.psum_bits = static_cast<int>(parse_csv_i64(fields[2], path));
    fam.apsq = static_cast<int>(parse_csv_i64(fields[3], path));
    fam.group_size = static_cast<int>(parse_csv_i64(fields[4], path));
    // Reject rows fitted under a different scaling or seed: the anchor
    // shapes — and therefore the factors — would not match this sweep.
    const i64 shrink = parse_csv_i64(fields[5], path);
    const i64 max_dim = parse_csv_i64(fields[6], path);
    const u64 seed = parse_csv_u64(fields[7], path);
    const i64 anchors = parse_csv_i64(fields[8], path);
    APSQ_CHECK_MSG(shrink == opt_.sim.shrink && max_dim == opt_.sim.max_dim &&
                       seed == opt_.sim.seed &&
                       anchors == opt_.anchors_per_family,
                   path << " was fitted with shrink=" << shrink << " max_dim="
                        << max_dim << " seed=" << seed << " anchors="
                        << anchors << ", but this sweep uses shrink="
                        << opt_.sim.shrink << " max_dim=" << opt_.sim.max_dim
                        << " seed=" << opt_.sim.seed << " anchors="
                        << opt_.anchors_per_family << " — refit (delete the "
                        << "CSV) or rerun with matching options");
    fam.f.sram_bytes = parse_csv_double(fields[9], path);
    fam.f.dram_bytes = parse_csv_double(fields[10], path);
    fam.f.cycles = parse_csv_double(fields[11], path);
    fam.f.macs = parse_csv_double(fields[12], path);

    const std::string key = family_key_from_fields(
        fam.workload, fam.dataflow, fam.psum_bits, fam.apsq, fam.group_size);
    MutexLock lock(mu_);
    families_[key] = fam;  // a loaded row overrides a fitted one
    ++loaded;
  }
  return loaded;
}

}  // namespace apsq::dse
