// Budgeted search over a lazily-decoded ConfigSpace: the alternative to
// exhaustive sweep once fine-grained axes push the space past what
// enumerate-and-score can touch (ConfigSpace::fine_default() is ~6×10⁷
// points). Two strategies, both driving the Evaluator's point-at-a-time
// oracle (evaluate_point / evaluate_points_at, memoized in the shared
// transposition table so parallel searchers and successive rounds never
// pay a score twice):
//
//   halving — successive halving over analytic fidelity with
//             calibrated-sim promotion (mixed backend only). An analytic
//             exploration pass scores a deterministic stratified sample
//             (the whole space when it fits the exploration cap), then
//             the adaptive ε-dominance-band ladder of the mixed sweep
//             (promotion_margins, front-stability stopping) promotes
//             near-front points to the calibrated simulator — except the
//             promotion set is capped at `budget` points, best
//             ranked-margin first. With a budget at least as large as the
//             ladder's natural promotion count, the trajectory — and the
//             front — is byte-identical to the exhaustive adaptive mixed
//             sweep's.
//   evolve  — seeded evolutionary / local search at a single fidelity
//             (analytic or sim backend). A stratified seed batch, then
//             rounds of ±1-step neighbours of the current per-workload
//             front plus random injections, batch-scored until the
//             budget is spent, the front is stable, or no unseen
//             candidate remains.
//
// Both strategies are deterministic given (seed, budget): candidate
// selection is single-threaded and pure, randomness comes from
// Rng::stream(seed, round), and batch scoring lands in index-addressed
// slots — so the result is byte-identical at any thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dse/config_space.hpp"
#include "dse/design_point.hpp"
#include "dse/evaluator.hpp"

namespace apsq::dse {

enum class SearchStrategy {
  kHalving,  ///< analytic exploration → budgeted calibrated-sim promotion
  kEvolve,   ///< seeded evolutionary/local search at one fidelity
};

const char* to_string(SearchStrategy s);
/// Parse "halving" | "evolve"; throws std::invalid_argument on anything
/// else (message lists the valid names, parse_enum_flag prints it).
SearchStrategy parse_strategy(const std::string& name);

struct SearchOptions {
  SearchStrategy strategy = SearchStrategy::kHalving;
  /// Evaluations the search may spend at its scoring fidelity: sim
  /// promotions for halving (analytic exploration rides free), oracle
  /// calls for evolve. Must be >= 1.
  i64 budget = 0;
  /// Search-trajectory seed (candidate sampling / injections) — distinct
  /// from the evaluator's scoring seed, so re-seeding the search never
  /// changes any point's score.
  u64 seed = 1;
  /// The objective plane candidate selection (margins, fronts) is
  /// measured in. Should match the objectives the caller extracts fronts
  /// over.
  ObjectiveSet objectives = ObjectiveSet::core();
  // Halving band ladder — the same constants as the adaptive mixed sweep
  // (EvaluatorOptions), so an unconstraining budget reproduces it.
  double adaptive_start = 0.0125;
  double adaptive_growth = 2.0;
  int adaptive_stability = 2;
};

/// One search round (halving: one band widening; evolve: one generation).
struct SearchRoundStats {
  double band = 0.0;        ///< halving only: the ε slack promoted at
  index_t candidates = 0;   ///< points the round considered
  index_t evaluated_new = 0;  ///< budget-charged evaluations this round
  index_t front_size = 0;
  bool front_changed = false;
  double secs = 0.0;
};

struct SearchStats {
  SearchStrategy strategy = SearchStrategy::kHalving;
  i64 budget = 0;
  index_t explored = 0;   ///< halving: analytic exploration evaluations
  index_t evaluated = 0;  ///< budget-charged evaluations (<= budget)
  std::vector<SearchRoundStats> rounds;
  double secs = 0.0;
};

class SearchDriver {
 public:
  /// `space` and `eval` must outlive the driver. Halving requires an
  /// evaluator with the mixed backend; evolve a single-fidelity one.
  SearchDriver(const ConfigSpace& space, Evaluator& eval, SearchOptions opt);

  /// Run the search. Returns the scored rows keyed by point index —
  /// sparse (nowhere near size() on a large space), byte-identical for a
  /// fixed (seed, budget) at any thread count. Halving rows mix
  /// fidelities exactly like a mixed sweep's (promoted rows carry
  /// scored_by "sim+cal"); extract fronts over the promoted subset.
  std::map<index_t, EvalResult> run();

  const SearchStats& stats() const { return stats_; }

 private:
  std::map<index_t, EvalResult> run_halving();
  std::map<index_t, EvalResult> run_evolve();
  /// `count` strata over [0, n), one uniform pick per stratum via `rng` —
  /// strictly increasing, so the result is sorted and duplicate-free.
  std::vector<index_t> stratified_sample(index_t n, index_t count, Rng rng) const;

  const ConfigSpace& space_;
  Evaluator& eval_;
  SearchOptions opt_;
  SearchStats stats_;
};

}  // namespace apsq::dse
