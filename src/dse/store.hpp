// Persistent evaluated-space store: snapshot / reload of scored design
// points, so follow-up queries re-slice a paid-for sweep instead of
// re-paying it.
//
// A snapshot entry is keyed by the *canonical config-space hash* (what
// was swept) plus a *scoring key* (how it was scored —
// SweepConfig::scoring_key(): backend, seed, scaling, calibration mode,
// promotion rule). Within an entry, results are keyed by point index in
// the space's enumeration order; each row carries the full point
// identity, its scored_by provenance, and every objective of
// ObjectiveSet::all() — so a reloaded entry can be re-sliced over any
// objective subset, constraint-filtered, or margin-ranked without
// touching the evaluator, and the fronts come out byte-identical to a
// fresh sweep (doubles round-trip through "%.17g").
//
// Snapshots are JSON (the emit side mirrors StatsWriter's conventions;
// the read side is common/json.hpp). Loading is strict *and atomic*: an
// unreadable, truncated, malformed, or version-mismatched file throws
// std::runtime_error naming the file and the reason, and leaves the
// in-memory store exactly as it was — a corrupt snapshot must never
// crash the process, silently stand in for real results, or leave a
// half-merged entry set behind.
//
// Thread safety: the store is internally synchronized (one batch of job
// specs shares a single store across sessions today; the planned resident
// daemon will serve it to concurrent front queries). Entries are
// copy-on-write — find() hands out a shared_ptr to an immutable Entry, so
// a reader re-slicing a snapshot is never invalidated by a concurrent
// put() or load_file() replacing the entry under the same key. The map
// and source path are APSQ_GUARDED_BY(mu_); entries themselves are
// immutable once published and need no lock.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "dse/config_space.hpp"
#include "dse/design_point.hpp"

namespace apsq::dse {

/// Canonical 64-bit FNV-1a hash (16 hex digits) of a config space: every
/// axis value in order, plus the shared precisions. Two spaces with equal
/// hashes enumerate the identical point sequence, which is what lets a
/// snapshot be addressed by (hash, index) instead of shipping the space.
std::string config_space_hash(const ConfigSpace& space);

/// Append one scored result as JSON object members (no braces): the full
/// point identity, its scored_by provenance, and every objective column —
/// field names and order exactly as snapshot rows persist them. Shared by
/// the snapshot serializer and the daemon's wire responses, so the two
/// formats cannot drift.
void append_result_json(std::ostream& os, const EvalResult& r);

class EvalStore {
 public:
  /// One snapshot: a scored space under one scoring identity. Immutable
  /// once published into a store (copy-on-write: put() replaces the whole
  /// entry).
  struct Entry {
    std::string space_hash;
    std::string scoring;       ///< SweepConfig::scoring_key()
    std::string backend;       ///< sweep-level provenance label
    index_t space_points = 0;  ///< space size when snapshotted
    std::map<index_t, EvalResult> results;  ///< point index → scored result

    bool complete() const {
      return static_cast<index_t>(results.size()) == space_points;
    }
  };

  EvalStore() = default;

  /// Merge-load a snapshot file. An entry with the same (hash, scoring)
  /// key replaces any in-memory one. Returns the number of entries
  /// loaded. Throws std::runtime_error — message prefixed with `path` —
  /// on an unreadable file, a parse error, a wrong format marker or
  /// version, or any malformed/duplicate/out-of-range row; on a throw the
  /// store is left unchanged (all-or-nothing merge).
  size_t load_file(const std::string& path) APSQ_EXCLUDES(mu_);

  /// Serialize every entry (sorted by key — byte-stable across runs).
  std::string to_json() const APSQ_EXCLUDES(mu_);
  /// Write to `path`; false on I/O failure. The snapshot is a consistent
  /// point-in-time view: a concurrent put() lands either wholly before or
  /// wholly after it, never half-way through a row.
  bool save_file(const std::string& path) const APSQ_EXCLUDES(mu_);

  /// The entry for (space_hash, scoring), or nullptr. The returned entry
  /// is an immutable snapshot: it stays valid (and unchanged) even if a
  /// concurrent put() replaces the store's entry under the same key.
  std::shared_ptr<const Entry> find(const std::string& space_hash,
                                    const std::string& scoring) const
      APSQ_EXCLUDES(mu_);

  /// Record a full sweep: results[i] is point index i of the space.
  /// Replaces any existing entry under the same key.
  void put(const std::string& space_hash, const std::string& scoring,
           const std::string& backend_label, index_t space_points,
           const std::vector<EvalResult>& results) APSQ_EXCLUDES(mu_);

  /// Record a sparse subset (budgeted search over a space too large to
  /// materialize densely): union-merge `rows` — point index → result —
  /// into any existing entry under the key, new rows winning collisions
  /// (one scoring identity ⇒ identical values, so a collision only
  /// re-asserts a row). Copy-on-write like put(): readers holding the old
  /// entry are unaffected.
  void merge_rows(const std::string& space_hash, const std::string& scoring,
                  const std::string& backend_label, index_t space_points,
                  const std::map<index_t, EvalResult>& rows)
      APSQ_EXCLUDES(mu_);

  size_t entry_count() const APSQ_EXCLUDES(mu_);
  index_t result_count() const APSQ_EXCLUDES(mu_);

  /// The last load_file path ("" before any load) — for diagnostics that
  /// should name the snapshot a stale result came from.
  std::string source() const APSQ_EXCLUDES(mu_);

 private:
  /// key = space_hash + '\n' + scoring (neither contains '\n'). Values
  /// are shared with readers; replaced, never mutated, under mu_.
  std::map<std::string, std::shared_ptr<const Entry>> entries_
      APSQ_GUARDED_BY(mu_);
  std::string source_ APSQ_GUARDED_BY(mu_);
  mutable Mutex mu_;
};

}  // namespace apsq::dse
