// Persistent evaluated-space store: snapshot / reload of scored design
// points, so follow-up queries re-slice a paid-for sweep instead of
// re-paying it.
//
// A snapshot entry is keyed by the *canonical config-space hash* (what
// was swept) plus a *scoring key* (how it was scored —
// SweepConfig::scoring_key(): backend, seed, scaling, calibration mode,
// promotion rule). Within an entry, results are keyed by point index in
// the space's enumeration order; each row carries the full point
// identity, its scored_by provenance, and every objective of
// ObjectiveSet::all() — so a reloaded entry can be re-sliced over any
// objective subset, constraint-filtered, or margin-ranked without
// touching the evaluator, and the fronts come out byte-identical to a
// fresh sweep (doubles round-trip through "%.17g").
//
// Snapshots are JSON (the emit side mirrors StatsWriter's conventions;
// the read side is common/json.hpp). Loading is strict: an unreadable,
// truncated, malformed, or version-mismatched file throws
// std::runtime_error naming the file and the reason — a corrupt snapshot
// must never crash the process or silently stand in for real results.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dse/config_space.hpp"
#include "dse/design_point.hpp"

namespace apsq::dse {

/// Canonical 64-bit FNV-1a hash (16 hex digits) of a config space: every
/// axis value in order, plus the shared precisions. Two spaces with equal
/// hashes enumerate the identical point sequence, which is what lets a
/// snapshot be addressed by (hash, index) instead of shipping the space.
std::string config_space_hash(const ConfigSpace& space);

class EvalStore {
 public:
  /// One snapshot: a scored space under one scoring identity.
  struct Entry {
    std::string space_hash;
    std::string scoring;       ///< SweepConfig::scoring_key()
    std::string backend;       ///< sweep-level provenance label
    index_t space_points = 0;  ///< space size when snapshotted
    std::map<index_t, EvalResult> results;  ///< point index → scored result

    bool complete() const {
      return static_cast<index_t>(results.size()) == space_points;
    }
  };

  EvalStore() = default;

  /// Merge-load a snapshot file. An entry with the same (hash, scoring)
  /// key replaces any in-memory one. Returns the number of entries
  /// loaded. Throws std::runtime_error — message prefixed with `path` —
  /// on an unreadable file, a parse error, a wrong format marker or
  /// version, or any malformed/duplicate/out-of-range row.
  size_t load_file(const std::string& path);

  /// Serialize every entry (sorted by key — byte-stable across runs).
  std::string to_json() const;
  /// Write to `path`; false on I/O failure.
  bool save_file(const std::string& path) const;

  /// The entry for (space_hash, scoring), or nullptr.
  const Entry* find(const std::string& space_hash,
                    const std::string& scoring) const;

  /// Record a full sweep: results[i] is point index i of the space.
  /// Replaces any existing entry under the same key.
  void put(const std::string& space_hash, const std::string& scoring,
           const std::string& backend_label, index_t space_points,
           const std::vector<EvalResult>& results);

  size_t entry_count() const { return entries_.size(); }
  index_t result_count() const;

  /// The last load_file path ("" before any load) — for diagnostics that
  /// should name the snapshot a stale result came from.
  const std::string& source() const { return source_; }

 private:
  /// key = space_hash + '\n' + scoring (neither contains '\n').
  std::map<std::string, Entry> entries_;
  std::string source_;
};

}  // namespace apsq::dse
