#include "dse/names.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "dse/evaluator.hpp"

namespace apsq::dse {

namespace {

template <typename Table>
std::string join_names(const Table& table, char sep) {
  std::string out;
  for (const auto& row : table) {
    if (!out.empty()) out += sep;
    out += row.name;
  }
  return out;
}

}  // namespace

const std::array<ObjectiveName, kObjectiveCount>& objective_names() {
  static const std::array<ObjectiveName, kObjectiveCount> kTable = {{
      {Objective::kEnergy, "energy", "energy_pj", Direction::kMinimize},
      {Objective::kArea, "area", "area_um2", Direction::kMinimize},
      {Objective::kError, "error", "error", Direction::kMinimize},
      {Objective::kLatency, "latency", "latency_s", Direction::kMinimize},
      {Objective::kPeUtilization, "pe_utilization", "pe_utilization",
       Direction::kMaximize},
      {Objective::kDramBwHeadroom, "dram_bw_headroom", "dram_bw_headroom",
       Direction::kMaximize},
      {Objective::kThroughputPerArea, "throughput_per_area",
       "throughput_per_area", Direction::kMaximize},
  }};
  return kTable;
}

std::string objective_name_list(char sep) {
  return join_names(objective_names(), sep);
}

Objective parse_objective(const std::string& name) {
  for (const ObjectiveName& row : objective_names())
    if (name == row.name) return row.objective;
  // invalid_argument (not APSQ_CHECK) keeps the message clean for CLI
  // diagnostics — parse_enum_flag prints it verbatim after the flag name.
  throw std::invalid_argument("unknown objective: " + name + " (expected " +
                              objective_name_list() + ")");
}

const std::array<BackendName, kBackendCount>& backend_names() {
  static const std::array<BackendName, kBackendCount> kTable = {{
      {EvalBackend::kAnalytic, "analytic"},
      {EvalBackend::kSim, "sim"},
      {EvalBackend::kMixed, "mixed"},
  }};
  return kTable;
}

std::string backend_name_list(char sep) {
  return join_names(backend_names(), sep);
}

const std::array<const char*, kSpaceCount>& space_names() {
  static const std::array<const char*, kSpaceCount> kTable = {"paper", "smoke",
                                                              "fine"};
  return kTable;
}

std::string space_name_list(char sep) {
  std::string out;
  for (const char* name : space_names()) {
    if (!out.empty()) out += sep;
    out += name;
  }
  return out;
}

bool known_space_name(const std::string& name) {
  for (const char* known : space_names())
    if (name == known) return true;
  return false;
}

}  // namespace apsq::dse
