// Work-stealing parallel-for pool for the DSE evaluator.
//
// Each worker owns a deque seeded with a contiguous chunk of the index
// range; it pops work from the front of its own deque and, when empty,
// steals from the back of a victim's. Stealing keeps the pool busy when
// per-point cost is skewed (cache misses evaluate full workloads, hits
// return instantly). Determinism comes from the caller: tasks write to
// disjoint, index-addressed slots, so scheduling order never affects
// results.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace apsq::dse {

class WorkStealingPool {
 public:
  /// `num_threads` >= 1; values above the task count are harmless.
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();  // out-of-line: Queue is an incomplete type here

  /// Run fn(i) at most once for every i in [0, n) — exactly once when no
  /// task throws — blocking until done. fn must be safe to call from
  /// multiple threads. Exceptions: the first captured exception is
  /// rethrown here and stops the run early; tasks not yet started when it
  /// was captured are skipped (in-flight ones finish), mirroring the
  /// abort-at-first-throw behaviour of the single-thread path.
  /// num_threads == 1 runs inline on the calling thread (no worker
  /// threads at all).
  void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  int num_threads() const { return num_threads_; }

  /// Tasks executed by a worker other than the one whose deque initially
  /// held them (diagnostic; exercised by tests and the bench).
  i64 steal_count() const { return steals_.load(); }

  /// Threads the hardware supports (>= 1 even when unknown).
  static int hardware_threads();

 private:
  struct Queue;
  void worker_loop(index_t w, const std::function<void(index_t)>& fn);
  bool try_pop_own(index_t w, index_t& idx);
  bool try_steal(index_t thief, index_t& idx);

  int num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::atomic<i64> steals_{0};
};

}  // namespace apsq::dse
