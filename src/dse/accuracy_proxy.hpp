// Quantization-error accuracy proxy for the DSE engine.
//
// Training the QAT proxies (bench_accuracy.hpp) per design point is hours
// of work per sweep; the DSE objective instead scores a PSUM config by the
// relative mean-squared reconstruction error of tile-based accumulation —
// the same signal Fig. 5 shows tracking task accuracy: error grows as
// PSUM bits shrink and falls as the APSQ group size grows. Synthetic PSUM
// tile streams are drawn per (workload, layer) from Rng::stream, so the
// proxy is a pure function of (workload, psum, pci, seed) — evaluation
// order and thread count never change it.
#pragma once

#include "energy/layer_shape.hpp"
#include "energy/psum_config.hpp"

namespace apsq::dse {

/// Relative MSE of the accumulated output versus exact accumulation,
/// averaged over up to four representative layers (largest-MAC layers
/// with distinct accumulation depths). `pci` sets the tile count
/// np = ceil(ci / pci), matching the hardware's ci-dimension tiling.
/// Full-precision configs (>= 32-bit storage, no APSQ) return exactly 0.
double psum_error_proxy(const Workload& w, const PsumConfig& psum,
                        index_t pci, u64 seed);

}  // namespace apsq::dse
