#include "dse/evaluator.hpp"

#include <sstream>

#include "common/check.hpp"
#include "dse/accuracy_proxy.hpp"
#include "dse/thread_pool.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"

namespace apsq::dse {

Evaluator::Evaluator(EvaluatorOptions opt) : opt_(opt) {
  APSQ_CHECK_MSG(opt_.threads >= 1, "Evaluator needs >= 1 thread");
}

const Workload& Evaluator::workload(const std::string& name) {
  // Built once, never mutated afterwards — safe to share across workers.
  static const std::unordered_map<std::string, Workload> registry = [] {
    std::unordered_map<std::string, Workload> r;
    r.emplace("bert", bert_base_workload());
    r.emplace("llama2", llama2_7b_workload());
    r.emplace("segformer", segformer_b0_workload());
    r.emplace("efficientvit", efficientvit_b1_workload());
    return r;
  }();
  const auto it = registry.find(name);
  APSQ_CHECK_MSG(it != registry.end(), "unknown workload: " << name);
  return it->second;
}

template <typename Fn>
double Evaluator::cached(Cache& cache, const std::string& key, Fn&& compute) {
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      ++cache.stats.hits;
      return it->second;
    }
  }
  // Compute outside the lock; a racing duplicate computes the identical
  // value (all scoring functions are pure), so first-writer-wins is safe.
  const double value = compute();
  std::lock_guard<std::mutex> lock(cache.mu);
  ++cache.stats.misses;
  return cache.map.emplace(key, value).first->second;
}

double Evaluator::energy_for(const DesignPoint& p) {
  return cached(energy_cache_, canonical_key(p), [&] {
    return workload_energy(p.dataflow, workload(p.workload), p.acc, p.psum,
                           opt_.costs)
        .total_pj();
  });
}

double Evaluator::area_for(const DesignPoint& p) {
  // Area ignores workload and dataflow; the RAE is only instantiated for
  // APSQ configs (a plain low-bit or full-precision PSUM path needs no
  // requantization engine).
  std::ostringstream key;
  key << "po=" << p.acc.po << "|pci=" << p.acc.pci << "|pco=" << p.acc.pco
      << "|bi=" << p.acc.ifmap_buf_bytes << "|bo=" << p.acc.ofmap_buf_bytes
      << "|bw=" << p.acc.weight_buf_bytes << "|ab=" << p.acc.act_bits
      << "|wb=" << p.acc.weight_bits << "|rae=" << (p.psum.apsq ? 1 : 0);
  return cached(area_cache_, key.str(), [&] {
    return p.psum.apsq
               ? accelerator_with_rae_area(p.acc, opt_.area_lib).total_um2()
               : baseline_accelerator_area(p.acc, opt_.area_lib).total_um2();
  });
}

double Evaluator::error_for(const DesignPoint& p) {
  std::ostringstream key;
  key << "wl=" << p.workload << "|pb=" << p.psum.psum_bits
      << "|apsq=" << (p.psum.apsq ? 1 : 0) << "|gs=" << p.psum.group_size
      << "|pci=" << p.acc.pci;
  return cached(accuracy_cache_, key.str(), [&] {
    return psum_error_proxy(workload(p.workload), p.psum, p.acc.pci,
                            opt_.seed);
  });
}

EvalResult Evaluator::evaluate(const DesignPoint& p) {
  p.validate();
  EvalResult r;
  r.point = p;
  r.obj.energy_pj = energy_for(p);
  r.obj.area_um2 = area_for(p);
  r.obj.error = error_for(p);
  return r;
}

std::vector<EvalResult> Evaluator::evaluate_space(const ConfigSpace& space) {
  space.validate();
  std::vector<EvalResult> out(static_cast<size_t>(space.size()));
  WorkStealingPool pool(opt_.threads);
  pool.parallel_for(space.size(),
                    [&](index_t i) { out[static_cast<size_t>(i)] = evaluate(space.at(i)); });
  return out;
}

std::vector<EvalResult> Evaluator::evaluate_points(
    const std::vector<DesignPoint>& pts) {
  std::vector<EvalResult> out(pts.size());
  WorkStealingPool pool(opt_.threads);
  pool.parallel_for(static_cast<index_t>(pts.size()),
                    [&](index_t i) { out[static_cast<size_t>(i)] = evaluate(pts[static_cast<size_t>(i)]); });
  return out;
}

CacheStats Evaluator::energy_cache_stats() const {
  std::lock_guard<std::mutex> lock(energy_cache_.mu);
  return energy_cache_.stats;
}
CacheStats Evaluator::area_cache_stats() const {
  std::lock_guard<std::mutex> lock(area_cache_.mu);
  return area_cache_.stats;
}
CacheStats Evaluator::accuracy_cache_stats() const {
  std::lock_guard<std::mutex> lock(accuracy_cache_.mu);
  return accuracy_cache_.stats;
}

}  // namespace apsq::dse
