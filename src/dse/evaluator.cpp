#include "dse/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "dse/accuracy_proxy.hpp"
#include "dse/names.hpp"
#include "dse/pareto.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"
#include "sim/performance.hpp"
#include "sim/stats.hpp"

namespace apsq::dse {

const char* to_string(EvalBackend b) {
  const auto& table = backend_names();
  const size_t i = static_cast<size_t>(b);
  APSQ_CHECK_MSG(i < table.size() && table[i].backend == b,
                 "backend naming table out of sync");
  return table[i].name;
}

EvalBackend parse_backend(const std::string& name) {
  for (const BackendName& row : backend_names())
    if (name == row.name) return row.backend;
  // invalid_argument (not APSQ_CHECK) keeps the message clean for CLI
  // diagnostics — parse_enum_flag prints it verbatim after the flag name.
  throw std::invalid_argument("unknown backend: " + name + " (expected " +
                              backend_name_list() + ")");
}

const char* to_string(PromoteMode m) {
  switch (m) {
    case PromoteMode::kBand: return "band";
    case PromoteMode::kAdaptive: return "adaptive";
    case PromoteMode::kBudget: return "budget";
  }
  APSQ_CHECK_MSG(false, "unknown promote mode");
  return "";
}

Evaluator::Evaluator(EvaluatorOptions opt) : opt_(opt) {
  APSQ_CHECK_MSG(opt_.threads >= 1, "Evaluator needs >= 1 thread");
  APSQ_CHECK_MSG(opt_.sim.threads >= 1, "sim runner needs >= 1 thread");
  APSQ_CHECK_MSG(opt_.promote_band >= 0.0,
                 "promote_band must be >= 0, got " << opt_.promote_band);
  APSQ_CHECK_MSG(opt_.promote_budget >= 0,
                 "promote_budget must be >= 0, got " << opt_.promote_budget);
  APSQ_CHECK_MSG(!(opt_.promote_adaptive && opt_.promote_budget > 0),
                 "adaptive and budgeted promotion are mutually exclusive");
  APSQ_CHECK_MSG(opt_.adaptive_start > 0.0 &&
                     std::isfinite(opt_.adaptive_start),
                 "adaptive_start must be a positive finite band, got "
                     << opt_.adaptive_start);
  APSQ_CHECK_MSG(opt_.adaptive_growth > 1.0,
                 "adaptive_growth must be > 1, got " << opt_.adaptive_growth);
  APSQ_CHECK_MSG(opt_.adaptive_stability >= 1,
                 "adaptive_stability must be >= 1, got "
                     << opt_.adaptive_stability);
  // Mixed puts phase-2 sim scores next to phase-1 analytic ones, so the
  // sim scores must be in analytic absolute units: calibration is not
  // optional there.
  if (opt_.backend == EvalBackend::kMixed) opt_.calibrate = true;
  if (opt_.calibrate && opt_.backend != EvalBackend::kAnalytic) {
    Calibrator::Options copt;
    copt.sim = opt_.sim;
    copt.costs = opt_.costs;
    copt.perf = opt_.perf;
    calibrator_ = std::make_unique<Calibrator>(copt);
  }
}

Evaluator::~Evaluator() = default;

const Workload& Evaluator::workload(const std::string& name) {
  // Built once, never mutated afterwards — safe to share across workers.
  static const std::unordered_map<std::string, Workload> registry = [] {
    std::unordered_map<std::string, Workload> r;
    r.emplace("bert", bert_base_workload());
    r.emplace("llama2", llama2_7b_workload());
    r.emplace("segformer", segformer_b0_workload());
    r.emplace("efficientvit", efficientvit_b1_workload());
    return r;
  }();
  const auto it = registry.find(name);
  APSQ_CHECK_MSG(it != registry.end(), "unknown workload: " << name);
  return it->second;
}

double Evaluator::energy_for(const DesignPoint& p) {
  return energy_tt_.lookup_or_compute(canonical_key(p), [&] {
    return workload_energy(p.dataflow, workload(p.workload), p.acc, p.psum,
                           opt_.costs)
        .total_pj();
  });
}

double Evaluator::area_for(const DesignPoint& p) {
  // Area ignores workload and dataflow; the RAE is only instantiated for
  // APSQ configs (a plain low-bit or full-precision PSUM path needs no
  // requantization engine).
  std::ostringstream key;
  key << "po=" << p.acc.po << "|pci=" << p.acc.pci << "|pco=" << p.acc.pco
      << "|bi=" << p.acc.ifmap_buf_bytes << "|bo=" << p.acc.ofmap_buf_bytes
      << "|bw=" << p.acc.weight_buf_bytes << "|ab=" << p.acc.act_bits
      << "|wb=" << p.acc.weight_bits << "|rae=" << (p.psum.apsq ? 1 : 0);
  return area_tt_.lookup_or_compute(key.str(), [&] {
    return p.psum.apsq
               ? accelerator_with_rae_area(p.acc, opt_.area_lib).total_um2()
               : baseline_accelerator_area(p.acc, opt_.area_lib).total_um2();
  });
}

double Evaluator::error_for(const DesignPoint& p) {
  std::ostringstream key;
  key << "wl=" << p.workload << "|pb=" << p.psum.psum_bits
      << "|apsq=" << (p.psum.apsq ? 1 : 0) << "|gs=" << p.psum.group_size
      << "|pci=" << p.acc.pci;
  return accuracy_tt_.lookup_or_compute(key.str(), [&] {
    return psum_error_proxy(workload(p.workload), p.psum, p.acc.pci,
                            opt_.seed);
  });
}

Evaluator::PerfScore Evaluator::perf_score_for(const DesignPoint& p) {
  return latency_tt_.lookup_or_compute(canonical_key(p), [&]() -> PerfScore {
    const WorkloadPerformance perf = workload_performance(
        p.dataflow, workload(p.workload), p.acc, p.psum, opt_.perf);
    PerfScore s;
    s.latency_s = perf.total_latency_s;
    s.pe_utilization = perf.mean_utilization;
    s.dram_bw_occupancy = perf.total_latency_s > 0.0
                              ? perf.total_dram_time_s / perf.total_latency_s
                              : 0.0;
    s.macs = static_cast<double>(perf.total_macs);
    return s;
  });
}

Evaluator::SimScore Evaluator::sim_score_for(const DesignPoint& p) {
  return sim_tt_.lookup_or_compute(canonical_key(p), [&]() -> SimScore {
    // With sim.threads > 1 the layer loop submits a nested scope into the
    // process-wide shared pool — the same pool a parallel evaluate_space
    // is running on — so point- and layer-level parallelism compose
    // without oversubscription (the pool's width bounds concurrency).
    const Workload& w = workload(p.workload);
    const SimConfig cfg = sim_config_for(p);
    const WorkloadRunResult r = run_workload(w, cfg, opt_.sim);
    SimScore s;
    // Utilization is a ratio of the scaled proxy's own measurements, so it
    // needs no calibration — and the run_* helpers are allocation-free,
    // keeping the scoring hot path free of telemetry-row construction.
    s.pe_utilization = run_pe_utilization(
        r, static_cast<double>(cfg.arch.po) * static_cast<double>(cfg.arch.pci) *
               static_cast<double>(cfg.arch.pco));
    if (calibrator_) {
      if (opt_.calibrate_per_class) {
        const ClassFactors cf = calibrator_->class_factors_for(p.workload, w, p);
        s.energy_pj = calibrator_->calibrated_energy_pj(r, cf);
        s.latency_s = calibrator_->calibrated_latency_s(r, cf);
        s.dram_bw_occupancy = run_dram_bw_occupancy(r, opt_.perf, cf.fallback);
        s.macs = cf.fallback.macs * static_cast<double>(r.total.mac_ops);
      } else {
        const CalibrationFactors f = calibrator_->factors_for(p.workload, w, p);
        s.energy_pj = calibrator_->calibrated_energy_pj(r, f);
        s.latency_s = calibrator_->calibrated_latency_s(r, f);
        s.dram_bw_occupancy = run_dram_bw_occupancy(r, opt_.perf, f);
        s.macs = f.macs * static_cast<double>(r.total.mac_ops);
      }
    } else {
      s.energy_pj = r.energy_pj(opt_.costs);
      s.latency_s = r.latency_s(opt_.perf);
      s.dram_bw_occupancy =
          run_dram_bw_occupancy(r, opt_.perf, CalibrationFactors{});
      s.macs = static_cast<double>(r.total.mac_ops);
    }
    return s;
  });
}

WorkloadTelemetry Evaluator::telemetry_for(const DesignPoint& p,
                                           EvalBackend fidelity) {
  p.validate();
  APSQ_CHECK_MSG(fidelity != EvalBackend::kMixed,
                 "telemetry_for needs a single-fidelity backend");
  const Workload& w = workload(p.workload);
  WorkloadTelemetry t;
  if (fidelity == EvalBackend::kAnalytic) {
    t = analytic_telemetry(p.dataflow, w, p.acc, p.psum, opt_.perf);
  } else {
    const SimConfig cfg = sim_config_for(p);
    const WorkloadRunResult r = run_workload(w, cfg, opt_.sim);
    if (calibrator_) {
      const CalibrationFactors f = calibrator_->factors_for(p.workload, w, p);
      t = sim_telemetry(r, cfg, opt_.perf, f, "sim+cal");
    } else {
      t = sim_telemetry(r, cfg, opt_.perf);
    }
  }
  t.workload = p.workload;  // the registry key, matching results_csv rows
  return t;
}

EvalResult Evaluator::evaluate_at(const DesignPoint& p, EvalBackend fidelity) {
  p.validate();
  EvalResult r;
  r.point = p;
  r.obj.area_um2 = area_for(p);
  r.obj.error = error_for(p);
  double macs = 0.0;
  if (fidelity == EvalBackend::kSim) {
    const SimScore s = sim_score_for(p);
    r.obj.energy_pj = s.energy_pj;
    r.obj.latency_s = s.latency_s;
    r.obj.pe_utilization = s.pe_utilization;
    r.obj.dram_bw_headroom = std::max(0.0, 1.0 - s.dram_bw_occupancy);
    macs = s.macs;
    r.scored_by = calibrator_ ? "sim+cal" : "sim";
  } else {
    const PerfScore s = perf_score_for(p);
    r.obj.energy_pj = energy_for(p);
    r.obj.latency_s = s.latency_s;
    r.obj.pe_utilization = s.pe_utilization;
    r.obj.dram_bw_headroom = std::max(0.0, 1.0 - s.dram_bw_occupancy);
    macs = s.macs;
    r.scored_by = "analytic";
  }
  // Effective GMAC/s per mm² of silicon; 0 for a degenerate point rather
  // than inf/NaN (the finiteness gate below would reject those).
  r.obj.throughput_per_area =
      r.obj.latency_s > 0.0 && r.obj.area_um2 > 0.0
          ? (macs / 1e9 / r.obj.latency_s) / (r.obj.area_um2 / 1e6)
          : 0.0;
  // A NaN objective would make Pareto dominance non-transitive and poison
  // front extraction; reject it at ingestion, where the offending point is
  // still known.
  APSQ_CHECK_MSG(r.obj.all_finite(),
                 "non-finite objective for " << canonical_key(p));
  return r;
}

EvalResult Evaluator::evaluate_point(const DesignPoint& p,
                                     EvalBackend fidelity) {
  APSQ_CHECK_MSG(fidelity != EvalBackend::kMixed,
                 "evaluate_point needs a single-fidelity backend");
  // Whole-result memo: the fidelity tag keeps one point's analytic and
  // sim scores as distinct rows — a mixed-pipeline promotion must never
  // be answered by the analytic prefilter's entry.
  const std::string key =
      (fidelity == EvalBackend::kSim ? "s|" : "a|") + canonical_key(p);
  return score_tt_.lookup_or_compute(key, [&] { return evaluate_at(p, fidelity); });
}

std::vector<EvalResult> Evaluator::evaluate_points_at(
    const std::vector<DesignPoint>& pts, EvalBackend fidelity) {
  std::vector<EvalResult> out(pts.size());
  parallel_for_points(static_cast<index_t>(pts.size()), [&](index_t i) {
    out[static_cast<size_t>(i)] =
        evaluate_point(pts[static_cast<size_t>(i)], fidelity);
  });
  return out;
}

EvalResult Evaluator::evaluate(const DesignPoint& p) {
  // A single point is trivially its own Pareto front, so the mixed
  // backend always promotes it: score it at sim fidelity.
  return evaluate_point(p, opt_.backend == EvalBackend::kAnalytic
                               ? EvalBackend::kAnalytic
                               : EvalBackend::kSim);
}

std::vector<EvalResult> Evaluator::evaluate_space(const ConfigSpace& space) {
  space.validate();
  std::vector<DesignPoint> pts;
  if (opt_.backend == EvalBackend::kMixed) {
    // Materialize the space once; the mixed pipeline indexes the point
    // list twice (phase 1 everywhere, phase 2 on the promoted slots).
    pts.reserve(static_cast<size_t>(space.size()));
    for (index_t i = 0; i < space.size(); ++i) pts.push_back(space.at(i));
    return mixed_sweep(pts);
  }
  std::vector<EvalResult> out(static_cast<size_t>(space.size()));
  parallel_for_points(space.size(), [&](index_t i) {
    out[static_cast<size_t>(i)] = evaluate(space.at(i));
  });
  return out;
}

std::vector<EvalResult> Evaluator::evaluate_points(
    const std::vector<DesignPoint>& pts) {
  if (opt_.backend == EvalBackend::kMixed) return mixed_sweep(pts);
  std::vector<EvalResult> out(pts.size());
  parallel_for_points(static_cast<index_t>(pts.size()), [&](index_t i) {
    out[static_cast<size_t>(i)] = evaluate(pts[static_cast<size_t>(i)]);
  });
  return out;
}

std::vector<EvalResult> Evaluator::mixed_sweep(
    const std::vector<DesignPoint>& pts) {
  using clock = std::chrono::steady_clock;
  MixedSweepStats stats;
  stats.total = static_cast<index_t>(pts.size());
  stats.mode = opt_.promote_adaptive  ? PromoteMode::kAdaptive
               : opt_.promote_budget > 0 ? PromoteMode::kBudget
                                         : PromoteMode::kBand;
  stats.budget = opt_.promote_budget;

  // Phase 1: cheap analytic scores for every point, in parallel on the
  // shared pool. Deterministic: results land in index-addressed slots.
  const auto t0 = clock::now();
  std::vector<EvalResult> out(pts.size());
  parallel_for_points(static_cast<index_t>(pts.size()), [&](index_t i) {
    out[static_cast<size_t>(i)] =
        evaluate_point(pts[static_cast<size_t>(i)], EvalBackend::kAnalytic);
  });
  stats.phase1_secs = std::chrono::duration<double>(clock::now() - t0).count();

  // Phase 2: promotion rounds. Every mode selects per workload — the
  // workload is a scenario, not a knob, so a point must survive against
  // its own workload's candidates (every cross-workload front member is
  // also a per-workload front member, so the global front is covered
  // too). Selection is pure and key-ordered, hence identical across
  // thread counts.
  const auto t1 = clock::now();
  std::vector<std::string> keys;
  keys.reserve(pts.size());
  for (const DesignPoint& p : pts) keys.push_back(canonical_key(p));
  std::vector<bool> simulated(pts.size(), false);
  index_t promoted_total = 0;

  // Re-score every not-yet-simulated slot whose key the selection names
  // with the calibrated sim, in slot order. The calibrator fits anchor
  // families lazily, so only promoted (workload, dataflow, psum) families
  // ever pay for anchor runs — and across adaptive rounds the sim and
  // calibration memo caches carry everything already paid for, so a round
  // only simulates its newly promoted points. `r0` is the caller's
  // selection start time, so rs.secs covers selection + simulation.
  const auto run_round = [&](double band, clock::time_point r0,
                             const std::unordered_set<std::string>& selected) {
    std::vector<index_t> fresh;  // slots to re-score, index order
    for (size_t i = 0; i < pts.size(); ++i)
      if (!simulated[i] && selected.count(keys[i])) {
        simulated[i] = true;
        fresh.push_back(static_cast<index_t>(i));
      }
    parallel_for_points(static_cast<index_t>(fresh.size()), [&](index_t j) {
      const index_t i = fresh[static_cast<size_t>(j)];
      out[static_cast<size_t>(i)] =
          evaluate_point(pts[static_cast<size_t>(i)], EvalBackend::kSim);
    });
    promoted_total += static_cast<index_t>(fresh.size());
    MixedRoundStats rs;
    rs.band = band;
    rs.promoted_new = static_cast<index_t>(fresh.size());
    rs.promoted_total = promoted_total;
    rs.secs = std::chrono::duration<double>(clock::now() - r0).count();
    return rs;
  };
  const auto keys_of_results = [](const std::vector<EvalResult>& results) {
    std::unordered_set<std::string> selected;
    selected.reserve(results.size());
    for (const EvalResult& r : results) selected.insert(canonical_key(r.point));
    return selected;
  };
  // The promoted front as a key list. Keys alone decide front stability:
  // a point's sim score is memoized and pure, so its objectives are
  // byte-identical in every round it appears — the front changes iff its
  // membership does.
  const auto front_keys_now = [&] {
    std::vector<std::string> fk;
    for (const EvalResult& f : pareto_front_by_workload(
             promoted_subset(out), opt_.promote_objectives))
      fk.push_back(canonical_key(f.point));
    return fk;
  };

  if (stats.mode == PromoteMode::kBudget) {
    const auto r0 = clock::now();
    std::vector<PromotionMargin> ranked =
        ranked_margins_by_workload(out, opt_.promote_objectives);
    if (static_cast<size_t>(opt_.promote_budget) < ranked.size())
      ranked.resize(static_cast<size_t>(opt_.promote_budget));
    std::unordered_set<std::string> selected;
    selected.reserve(ranked.size());
    for (const PromotionMargin& m : ranked)
      selected.insert(canonical_key(m.result.point));
    // The effective band the budget bought: the largest selected margin —
    // the rank order is margin-ascending, so that is the cut's last entry.
    const double effective_band =
        ranked.empty() ? 0.0 : ranked.back().enter_band;
    MixedRoundStats rs = run_round(effective_band, r0, selected);
    rs.front_size = static_cast<index_t>(front_keys_now().size());
    rs.front_changed = true;
    stats.band = effective_band;
    stats.rounds.push_back(rs);
  } else if (stats.mode == PromoteMode::kBand) {
    const auto r0 = clock::now();
    MixedRoundStats rs = run_round(
        opt_.promote_band, r0,
        keys_of_results(epsilon_band_by_workload(out, opt_.promote_band,
                                                 opt_.promote_objectives)));
    rs.front_size = static_cast<index_t>(front_keys_now().size());
    rs.front_changed = true;
    stats.band = opt_.promote_band;
    stats.rounds.push_back(rs);
  } else {
    // Adaptive: band ladder 0, start, start·growth, … — round 0 promotes
    // the analytic front itself, each widening adds its ε-shell. Stop
    // when the promoted front has been stable for adaptive_stability
    // consecutive widenings (the front-stability rule), or when every
    // point is already promoted (wider bands can select nothing new).
    //
    // Margins are computed once, over the phase-1 scores `out` still
    // holds here: from round 0 on, `out` mixes fidelities as promoted
    // slots acquire calibrated-sim values, and bands re-derived from
    // those would silently reshape the analytic prefilter geometry (a
    // sim score landing below its analytic estimate widens its
    // neighbours' apparent gaps, which could starve true front points
    // the same band over analytic scores — and the fixed --promote-band
    // path — would promote). Each round then just thresholds the fixed
    // margins at its band, so successive selections are nested and the
    // per-round work is O(n) instead of a fresh front extraction.
    std::vector<std::pair<std::string, PromotionMargin>> margins;
    for (PromotionMargin& m :
         promotion_margins_by_workload(out, opt_.promote_objectives)) {
      std::string key = canonical_key(m.result.point);
      margins.emplace_back(std::move(key), std::move(m));
    }
    double band = 0.0;
    int stable = 0;
    std::vector<std::string> prev_front;
    for (int round = 0;; ++round) {
      const auto r0 = clock::now();
      if (round == 1)
        band = opt_.adaptive_start;
      else if (round > 1)
        band *= opt_.adaptive_growth;
      std::unordered_set<std::string> selected;
      for (const auto& [key, margin] : margins)
        if (margin.in_band(band)) selected.insert(key);
      MixedRoundStats rs = run_round(band, r0, selected);
      std::vector<std::string> front = front_keys_now();
      rs.front_size = static_cast<index_t>(front.size());
      rs.front_changed = round == 0 || front != prev_front;
      prev_front = std::move(front);
      stats.rounds.push_back(rs);
      if (promoted_total == stats.total) break;
      if (round > 0) stable = rs.front_changed ? 0 : stable + 1;
      if (stable >= opt_.adaptive_stability) break;
    }
    stats.band = band;
  }

  stats.promoted = promoted_total;
  stats.phase2_secs = std::chrono::duration<double>(clock::now() - t1).count();
  mixed_stats_ = stats;
  return out;
}

std::vector<EvalResult> promoted_subset(
    const std::vector<EvalResult>& results) {
  std::vector<EvalResult> out;
  for (const EvalResult& r : results)
    if (r.scored_by == "sim" || r.scored_by == "sim+cal") out.push_back(r);
  return out;
}

void Evaluator::parallel_for_points(
    index_t n, const std::function<void(index_t)>& fn) {
  if (opt_.threads > 1) {
    WorkStealingPool::shared().parallel_for(n, fn);
  } else {
    for (index_t i = 0; i < n; ++i) fn(i);
  }
}

CacheStats Evaluator::energy_cache_stats() const { return energy_tt_.stats(); }
CacheStats Evaluator::area_cache_stats() const { return area_tt_.stats(); }
CacheStats Evaluator::accuracy_cache_stats() const {
  return accuracy_tt_.stats();
}
CacheStats Evaluator::latency_cache_stats() const {
  return latency_tt_.stats();
}
CacheStats Evaluator::sim_cache_stats() const { return sim_tt_.stats(); }
CacheStats Evaluator::score_tt_stats() const { return score_tt_.stats(); }

}  // namespace apsq::dse
