#include "dse/evaluator.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "dse/accuracy_proxy.hpp"
#include "dse/pareto.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"
#include "sim/performance.hpp"

namespace apsq::dse {

const char* to_string(EvalBackend b) {
  switch (b) {
    case EvalBackend::kAnalytic: return "analytic";
    case EvalBackend::kSim: return "sim";
    case EvalBackend::kMixed: return "mixed";
  }
  APSQ_CHECK_MSG(false, "unknown backend");
  return "";
}

EvalBackend parse_backend(const std::string& name) {
  if (name == "analytic") return EvalBackend::kAnalytic;
  if (name == "sim") return EvalBackend::kSim;
  if (name == "mixed") return EvalBackend::kMixed;
  // invalid_argument (not APSQ_CHECK) keeps the message clean for CLI
  // diagnostics — parse_enum_flag prints it verbatim after the flag name.
  throw std::invalid_argument("unknown backend: " + name +
                              " (expected analytic|sim|mixed)");
}

Evaluator::Evaluator(EvaluatorOptions opt) : opt_(opt) {
  APSQ_CHECK_MSG(opt_.threads >= 1, "Evaluator needs >= 1 thread");
  APSQ_CHECK_MSG(opt_.sim.threads >= 1, "sim runner needs >= 1 thread");
  APSQ_CHECK_MSG(opt_.promote_band >= 0.0,
                 "promote_band must be >= 0, got " << opt_.promote_band);
  // Mixed puts phase-2 sim scores next to phase-1 analytic ones, so the
  // sim scores must be in analytic absolute units: calibration is not
  // optional there.
  if (opt_.backend == EvalBackend::kMixed) opt_.calibrate = true;
  if (opt_.calibrate && opt_.backend != EvalBackend::kAnalytic) {
    Calibrator::Options copt;
    copt.sim = opt_.sim;
    copt.costs = opt_.costs;
    copt.perf = opt_.perf;
    calibrator_ = std::make_unique<Calibrator>(copt);
  }
}

Evaluator::~Evaluator() = default;

const Workload& Evaluator::workload(const std::string& name) {
  // Built once, never mutated afterwards — safe to share across workers.
  static const std::unordered_map<std::string, Workload> registry = [] {
    std::unordered_map<std::string, Workload> r;
    r.emplace("bert", bert_base_workload());
    r.emplace("llama2", llama2_7b_workload());
    r.emplace("segformer", segformer_b0_workload());
    r.emplace("efficientvit", efficientvit_b1_workload());
    return r;
  }();
  const auto it = registry.find(name);
  APSQ_CHECK_MSG(it != registry.end(), "unknown workload: " << name);
  return it->second;
}

template <typename V, typename Fn>
V Evaluator::cached(Cache<V>& cache, const std::string& key, Fn&& compute) {
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      ++cache.stats.hits;
      return it->second;
    }
  }
  // Compute outside the lock; a racing duplicate computes the identical
  // value (all scoring functions are pure), so first-writer-wins is safe.
  const V value = compute();
  std::lock_guard<std::mutex> lock(cache.mu);
  const auto [it, inserted] = cache.map.emplace(key, value);
  if (inserted)
    ++cache.stats.misses;
  else
    ++cache.stats.races;  // a racing worker beat us to the insert
  return it->second;
}

template <typename V>
CacheStats Evaluator::stats_of(const Cache<V>& cache) const {
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.stats;
}

double Evaluator::energy_for(const DesignPoint& p) {
  return cached(energy_cache_, canonical_key(p), [&] {
    return workload_energy(p.dataflow, workload(p.workload), p.acc, p.psum,
                           opt_.costs)
        .total_pj();
  });
}

double Evaluator::area_for(const DesignPoint& p) {
  // Area ignores workload and dataflow; the RAE is only instantiated for
  // APSQ configs (a plain low-bit or full-precision PSUM path needs no
  // requantization engine).
  std::ostringstream key;
  key << "po=" << p.acc.po << "|pci=" << p.acc.pci << "|pco=" << p.acc.pco
      << "|bi=" << p.acc.ifmap_buf_bytes << "|bo=" << p.acc.ofmap_buf_bytes
      << "|bw=" << p.acc.weight_buf_bytes << "|ab=" << p.acc.act_bits
      << "|wb=" << p.acc.weight_bits << "|rae=" << (p.psum.apsq ? 1 : 0);
  return cached(area_cache_, key.str(), [&] {
    return p.psum.apsq
               ? accelerator_with_rae_area(p.acc, opt_.area_lib).total_um2()
               : baseline_accelerator_area(p.acc, opt_.area_lib).total_um2();
  });
}

double Evaluator::error_for(const DesignPoint& p) {
  std::ostringstream key;
  key << "wl=" << p.workload << "|pb=" << p.psum.psum_bits
      << "|apsq=" << (p.psum.apsq ? 1 : 0) << "|gs=" << p.psum.group_size
      << "|pci=" << p.acc.pci;
  return cached(accuracy_cache_, key.str(), [&] {
    return psum_error_proxy(workload(p.workload), p.psum, p.acc.pci,
                            opt_.seed);
  });
}

double Evaluator::latency_for(const DesignPoint& p) {
  return cached(latency_cache_, canonical_key(p), [&] {
    return workload_performance(p.dataflow, workload(p.workload), p.acc,
                                p.psum, opt_.perf)
        .total_latency_s;
  });
}

Evaluator::SimScore Evaluator::sim_score_for(const DesignPoint& p) {
  return cached(sim_cache_, canonical_key(p), [&]() -> SimScore {
    // With sim.threads > 1 the layer loop submits a nested scope into the
    // process-wide shared pool — the same pool a parallel evaluate_space
    // is running on — so point- and layer-level parallelism compose
    // without oversubscription (the pool's width bounds concurrency).
    const Workload& w = workload(p.workload);
    const WorkloadRunResult r = run_workload(w, sim_config_for(p), opt_.sim);
    if (calibrator_) {
      const CalibrationFactors f = calibrator_->factors_for(p.workload, w, p);
      return SimScore{calibrator_->calibrated_energy_pj(r, f),
                      calibrator_->calibrated_latency_s(r, f)};
    }
    return SimScore{r.energy_pj(opt_.costs), r.latency_s(opt_.perf)};
  });
}

EvalResult Evaluator::evaluate_at(const DesignPoint& p, EvalBackend fidelity) {
  p.validate();
  EvalResult r;
  r.point = p;
  r.obj.area_um2 = area_for(p);
  r.obj.error = error_for(p);
  if (fidelity == EvalBackend::kSim) {
    const SimScore s = sim_score_for(p);
    r.obj.energy_pj = s.energy_pj;
    r.obj.latency_s = s.latency_s;
    r.scored_by = calibrator_ ? "sim+cal" : "sim";
  } else {
    r.obj.energy_pj = energy_for(p);
    r.obj.latency_s = latency_for(p);
    r.scored_by = "analytic";
  }
  // A NaN objective would make Pareto dominance non-transitive and poison
  // front extraction; reject it at ingestion, where the offending point is
  // still known.
  APSQ_CHECK_MSG(r.obj.all_finite(),
                 "non-finite objective for " << canonical_key(p));
  return r;
}

EvalResult Evaluator::evaluate(const DesignPoint& p) {
  // A single point is trivially its own Pareto front, so the mixed
  // backend always promotes it: score it at sim fidelity.
  return evaluate_at(p, opt_.backend == EvalBackend::kAnalytic
                            ? EvalBackend::kAnalytic
                            : EvalBackend::kSim);
}

std::vector<EvalResult> Evaluator::evaluate_space(const ConfigSpace& space) {
  space.validate();
  std::vector<DesignPoint> pts;
  if (opt_.backend == EvalBackend::kMixed) {
    // Materialize the space once; the mixed pipeline indexes the point
    // list twice (phase 1 everywhere, phase 2 on the promoted slots).
    pts.reserve(static_cast<size_t>(space.size()));
    for (index_t i = 0; i < space.size(); ++i) pts.push_back(space.at(i));
    return mixed_sweep(pts);
  }
  std::vector<EvalResult> out(static_cast<size_t>(space.size()));
  parallel_for_points(space.size(), [&](index_t i) {
    out[static_cast<size_t>(i)] = evaluate(space.at(i));
  });
  return out;
}

std::vector<EvalResult> Evaluator::evaluate_points(
    const std::vector<DesignPoint>& pts) {
  if (opt_.backend == EvalBackend::kMixed) return mixed_sweep(pts);
  std::vector<EvalResult> out(pts.size());
  parallel_for_points(static_cast<index_t>(pts.size()), [&](index_t i) {
    out[static_cast<size_t>(i)] = evaluate(pts[static_cast<size_t>(i)]);
  });
  return out;
}

std::vector<EvalResult> Evaluator::mixed_sweep(
    const std::vector<DesignPoint>& pts) {
  using clock = std::chrono::steady_clock;
  MixedSweepStats stats;
  stats.total = static_cast<index_t>(pts.size());
  stats.band = opt_.promote_band;

  // Phase 1: cheap analytic scores for every point, in parallel on the
  // shared pool. Deterministic: results land in index-addressed slots.
  const auto t0 = clock::now();
  std::vector<EvalResult> out(pts.size());
  parallel_for_points(static_cast<index_t>(pts.size()), [&](index_t i) {
    out[static_cast<size_t>(i)] =
        evaluate_at(pts[static_cast<size_t>(i)], EvalBackend::kAnalytic);
  });
  stats.phase1_secs = std::chrono::duration<double>(clock::now() - t0).count();

  // Promotion: the per-workload analytic front plus its ε-band. The band
  // is computed per workload because the workload is a scenario, not a
  // knob — a point must survive against its own workload's candidates.
  // (Every cross-workload front member is also a per-workload front
  // member, so the global front is covered too.) The extraction is pure
  // and key-ordered, hence identical across thread counts.
  const auto t1 = clock::now();
  const std::vector<EvalResult> band = epsilon_band_by_workload(
      out, opt_.promote_band, opt_.promote_objectives);
  std::unordered_set<std::string> promoted_keys;
  promoted_keys.reserve(band.size());
  for (const EvalResult& b : band) promoted_keys.insert(canonical_key(b.point));
  std::vector<index_t> promoted;  // result slots to re-score, index order
  for (size_t i = 0; i < pts.size(); ++i)
    if (promoted_keys.count(canonical_key(pts[i])))
      promoted.push_back(static_cast<index_t>(i));
  stats.promoted = static_cast<index_t>(promoted.size());

  // Phase 2: calibrated sim re-scores for the promoted slots only. The
  // calibrator fits anchor families lazily, so only the promoted
  // (workload, dataflow, psum) families ever pay for anchor runs.
  parallel_for_points(static_cast<index_t>(promoted.size()), [&](index_t j) {
    const index_t i = promoted[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] =
        evaluate_at(pts[static_cast<size_t>(i)], EvalBackend::kSim);
  });
  stats.phase2_secs = std::chrono::duration<double>(clock::now() - t1).count();

  mixed_stats_ = stats;
  return out;
}

std::vector<EvalResult> promoted_subset(
    const std::vector<EvalResult>& results) {
  std::vector<EvalResult> out;
  for (const EvalResult& r : results)
    if (r.scored_by == "sim" || r.scored_by == "sim+cal") out.push_back(r);
  return out;
}

void Evaluator::parallel_for_points(
    index_t n, const std::function<void(index_t)>& fn) {
  if (opt_.threads > 1) {
    WorkStealingPool::shared().parallel_for(n, fn);
  } else {
    for (index_t i = 0; i < n; ++i) fn(i);
  }
}

CacheStats Evaluator::energy_cache_stats() const {
  return stats_of(energy_cache_);
}
CacheStats Evaluator::area_cache_stats() const { return stats_of(area_cache_); }
CacheStats Evaluator::accuracy_cache_stats() const {
  return stats_of(accuracy_cache_);
}
CacheStats Evaluator::latency_cache_stats() const {
  return stats_of(latency_cache_);
}
CacheStats Evaluator::sim_cache_stats() const { return stats_of(sim_cache_); }

}  // namespace apsq::dse
