#include "dse/jobspec.hpp"

#include <stdexcept>

#include "common/json.hpp"

namespace apsq::dse {

namespace {

/// Job-spec files are v1 of the spec schema.
constexpr i64 kSchemaVersion = 1;

}  // namespace

JobSpec JobSpec::parse(const JsonValue& doc, const std::string& source) {
  if (!doc.is_object())
    request_error(source, "spec", "top-level value is not an object");
  // Version gate first: a future spec is rejected naming the version and
  // the supported range, not whichever of its keys happens to be new.
  json_schema_version(doc, source, 1, kSchemaVersion);
  JobSpec spec;
  JobExperiment defaults;
  const JsonValue* experiments = nullptr;
  try {
    for (const auto& [key, value] : doc.members()) {
      if (key == "schema_version") {
        // validated above
      } else if (key == "store_in") {
        spec.store_in = value.as_string();
      } else if (key == "store_out") {
        spec.store_out = value.as_string();
      } else if (key == "defaults") {
        apply_request_object(value, defaults, source, "defaults",
                             /*allow_name=*/false);
      } else if (key == "experiments") {
        experiments = &value;
      } else {
        request_error(source, "spec", "unknown key \"" + key + "\"");
      }
    }
    if (experiments == nullptr)
      request_error(source, "spec", "missing \"experiments\" array");
    if (experiments->size() == 0)
      request_error(source, "spec", "\"experiments\" is empty");
    for (size_t i = 0; i < experiments->size(); ++i) {
      JobExperiment e = defaults;  // field-by-field override starts here
      e.name = "exp" + std::to_string(i);
      apply_request_object(experiments->at(i), e, source,
                           "experiment " + std::to_string(i),
                           /*allow_name=*/true);
      spec.experiments.push_back(std::move(e));
    }
  } catch (const std::runtime_error&) {
    throw;  // already source-prefixed
  } catch (const std::exception& ex) {
    // Structural type errors (e.g. "experiments" not an array).
    throw std::runtime_error(source + ": " + ex.what());
  }
  return spec;
}

JobSpec JobSpec::parse_file(const std::string& path) {
  return parse(json_parse_file(path), path);
}

}  // namespace apsq::dse
