#include "dse/jobspec.hpp"

#include <cmath>
#include <stdexcept>

#include "common/json.hpp"

namespace apsq::dse {

namespace {

/// The flag ranges, mirrored so a spec rejects exactly what the CLI does.
constexpr i64 kDimMax = i64{1} << 30;
constexpr i64 kBudgetMax = i64{1} << 40;
constexpr int kThreadsMax = 4096;
constexpr int kTopMax = 1 << 20;

[[noreturn]] void bad(const std::string& source, const std::string& where,
                      const std::string& reason) {
  throw std::runtime_error(source + ": " + where + ": " + reason);
}

int as_int_in(const JsonValue& v, const std::string& source,
              const std::string& where, const std::string& key, i64 lo,
              i64 hi) {
  const i64 n = v.as_i64();
  if (n < lo || n > hi)
    bad(source, where,
        "\"" + key + "\" must be in [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "], got " + std::to_string(n));
  return static_cast<int>(n);
}

/// Apply one recognized field to an experiment. Returns false on an
/// unrecognized key (the caller names it — with the experiment — and
/// throws).
bool apply_field(const std::string& key, const JsonValue& v, JobExperiment& e,
                 const std::string& source, const std::string& where) {
  SweepConfig& c = e.config;
  try {
    if (key == "name") {
      e.name = v.as_string();
    } else if (key == "space") {
      c.space = v.as_string();
    } else if (key == "backend") {
      c.backend = parse_backend(v.as_string());
    } else if (key == "objectives") {
      c.objectives = ObjectiveSet::parse(v.as_string());
    } else if (key == "promote_objectives") {
      c.promote_objectives = ObjectiveSet::parse(v.as_string());
      c.promote_objectives_set = true;
    } else if (key == "threads") {
      c.threads = as_int_in(v, source, where, key, 1, kThreadsMax);
    } else if (key == "sim_threads") {
      c.sim_threads = as_int_in(v, source, where, key, 1, kThreadsMax);
    } else if (key == "seed") {
      // JSON numbers are doubles, so seeds above 2^53 are not exactly
      // representable — as_i64 rejects them rather than rounding.
      const i64 s = v.as_i64();
      if (s < 0) bad(source, where, "\"seed\" must be >= 0");
      c.seed = static_cast<u64>(s);
    } else if (key == "shrink") {
      c.shrink = as_int_in(v, source, where, key, 1, kDimMax);
    } else if (key == "max_dim") {
      c.max_dim = as_int_in(v, source, where, key, 1, kDimMax);
    } else if (key == "calibrate") {
      c.calibrate = v.as_bool();
    } else if (key == "calibrate_per_class") {
      c.calibrate_per_class = v.as_bool();
    } else if (key == "calibration_csv") {
      c.calibration_csv = v.as_string();
    } else if (key == "promote_band") {
      const double b = v.as_number();
      if (!(b >= 0.0)) bad(source, where, "\"promote_band\" must be >= 0");
      c.promote_band = b;
      c.promote_band_set = true;
    } else if (key == "promote_adaptive") {
      c.promote_adaptive = v.as_bool();
    } else if (key == "promote_budget") {
      c.promote_budget = as_int_in(v, source, where, key, 1, kBudgetMax);
      c.promote_budget_set = true;
    } else if (key == "where") {
      c.where = v.as_string();
      parse_constraints(c.where);  // reject malformed filters at parse time
    } else if (key == "csv") {
      e.csv = v.as_string();
    } else if (key == "front_csv") {
      e.front_csv = v.as_string();
    } else if (key == "top") {
      e.top = as_int_in(v, source, where, key, 0, kTopMax);
    } else {
      return false;
    }
  } catch (const std::runtime_error&) {
    throw;  // already source-prefixed (the bad() calls above)
  } catch (const std::exception& ex) {
    // Type mismatches from the JsonValue accessors and value errors from
    // parse_backend / ObjectiveSet::parse / parse_constraints: attach the
    // source, the experiment, and the key they came from.
    bad(source, where, "\"" + key + "\": " + ex.what());
  }
  return true;
}

void apply_object(const JsonValue& obj, JobExperiment& e,
                  const std::string& source, const std::string& where,
                  bool allow_name) {
  for (const auto& [key, value] : obj.members()) {
    if (key == "name" && !allow_name)
      bad(source, where, "\"name\" is not a defaults field");
    if (!apply_field(key, value, e, source, where))
      bad(source, where, "unknown key \"" + key + "\"");
  }
}

}  // namespace

JobSpec JobSpec::parse(const JsonValue& doc, const std::string& source) {
  if (!doc.is_object()) bad(source, "spec", "top-level value is not an object");
  JobSpec spec;
  JobExperiment defaults;
  const JsonValue* experiments = nullptr;
  try {
    for (const auto& [key, value] : doc.members()) {
      if (key == "store_in") {
        spec.store_in = value.as_string();
      } else if (key == "store_out") {
        spec.store_out = value.as_string();
      } else if (key == "defaults") {
        apply_object(value, defaults, source, "defaults",
                     /*allow_name=*/false);
      } else if (key == "experiments") {
        experiments = &value;
      } else {
        bad(source, "spec", "unknown key \"" + key + "\"");
      }
    }
    if (experiments == nullptr)
      bad(source, "spec", "missing \"experiments\" array");
    if (experiments->size() == 0)
      bad(source, "spec", "\"experiments\" is empty");
    for (size_t i = 0; i < experiments->size(); ++i) {
      JobExperiment e = defaults;  // field-by-field override starts here
      e.name = "exp" + std::to_string(i);
      apply_object(experiments->at(i), e, source,
                   "experiment " + std::to_string(i), /*allow_name=*/true);
      spec.experiments.push_back(std::move(e));
    }
  } catch (const std::runtime_error&) {
    throw;  // already source-prefixed
  } catch (const std::exception& ex) {
    // Structural type errors (e.g. "experiments" not an array).
    throw std::runtime_error(source + ": " + ex.what());
  }
  return spec;
}

JobSpec JobSpec::parse_file(const std::string& path) {
  return parse(json_parse_file(path), path);
}

}  // namespace apsq::dse
