// Sim↔analytic calibration for simulator-backed DSE sweeps.
//
// The sim backend scores *scaled* proxy workloads (WorkloadRunOptions
// shrink / max_dim), so its raw energies and latencies are orders of
// magnitude below the analytic backend's full-scale numbers — fine for
// ranking points within one sweep, useless for mixing fronts across
// backends. Like an instrument calibration chain that ties raw detector
// counts to physical units, the Calibrator closes that gap in two links:
//
//   unit factors  — per (workload, dataflow, PSUM-config) family, a small
//                   set of *unscaled* anchor shapes (shrink = 1 at the
//                   sweep's scaled dimensions, the regime
//                   tests/sim/sim_vs_analytic_test.cpp cross-validates)
//                   is run through the simulator and through the
//                   closed-form models; the per-component ratios
//                   Σ analytic / Σ measured absorb any systematic
//                   daylight between the two (e.g. whole-tile PSUM byte
//                   rounding). By construction they are ≈ 1.
//   scale factors — per design point, the closed-form models — which are
//                   element-exact at every size — are evaluated at the
//                   full workload dimensions and at the sweep's scaled
//                   dimensions; the component ratios full / scaled carry
//                   the measurement up to full scale, including regime
//                   changes the naive MAC ratio misses (a layer that fits
//                   in the buffers when shrunk but spills at full size).
//
// Components are calibrated independently — SRAM bytes, DRAM bytes,
// cycles, MACs — and recombined through the same cost/performance
// formulas the uncalibrated paths use, so a calibrated sim energy is in
// the same absolute pJ as the analytic backend while retaining whatever
// the simulator measured beyond the closed forms. All fits are pure
// functions of (family, options); fitting is memoized and thread-safe,
// and results are byte-identical regardless of evaluation order. Unit
// factors persist to CSV so repeated sweeps can skip the anchor runs.
#pragma once

#include <map>
#include <string>

#include "common/annotations.hpp"
#include "common/csv.hpp"
#include "dse/design_point.hpp"
#include "sim/stats.hpp"
#include "sim/workload_runner.hpp"

namespace apsq::dse {

/// The simulator configuration a design point denotes. OS keeps PSUMs in
/// PE registers, so APSQ has nothing to quantize there — the simulator
/// refuses the combination; map it to the traffic-equivalent INT32
/// baseline (the analytic model likewise charges OS zero PSUM traffic).
SimConfig sim_config_for(const DesignPoint& p);

/// Per-component multiplicative factors applied to a scaled sim
/// measurement. Identity factors leave the measurement untouched. An
/// alias of the sim layer's ComponentScale (sim/stats.hpp), so telemetry
/// code can consume calibration factors without a dse dependency.
using CalibrationFactors = ComponentScale;

/// Per-layer-class calibration factors for one (workload, design point):
/// the finer-grained alternative to a single per-workload factor vector.
/// A workload mixing regimes — huge DRAM-bound GEMMs next to tiny
/// resident depthwise layers — gets one cycle factor per layer class
/// instead of one blended factor that is wrong for both.
struct ClassFactors {
  std::map<std::string, CalibrationFactors> by_class;  ///< layer_class → f
  /// Applied to layers whose class has no dedicated fit (defensive; the
  /// fitting path covers every class present in the workload).
  CalibrationFactors fallback;

  const CalibrationFactors& for_class(const std::string& layer_class) const {
    const auto it = by_class.find(layer_class);
    return it != by_class.end() ? it->second : fallback;
  }
};

class Calibrator {
 public:
  struct Options {
    /// The sweep's scaling (shrink / max_dim / seed). Anchor runs reuse
    /// the seed but always execute at shrink = 1.
    WorkloadRunOptions sim;
    EnergyCosts costs = EnergyCosts::horowitz();
    PerfConfig perf;
    /// Unscaled anchor shapes fitted per family (the workload's largest
    /// distinct scaled layer shapes). More anchors, better unit fit.
    index_t anchors_per_family = 3;
  };

  explicit Calibrator(Options opt);

  /// Stable identity of a calibration family: the fields the unit fit
  /// depends on (workload, dataflow, effective PSUM handling).
  static std::string family_key(const std::string& workload,
                                const SimConfig& cfg);

  /// Unit factors for the family of (workload `w` named `workload_name`,
  /// cfg.dataflow, cfg.psum) — fitted from unscaled anchor runs on first
  /// use, memoized (and loadable from CSV) afterwards. Thread-safe; a
  /// racing duplicate fit computes the identical value.
  CalibrationFactors unit_factors(const std::string& workload_name,
                                  const Workload& w, const SimConfig& cfg);

  /// Scale-up factors for one point: closed-form components at the full
  /// workload dimensions over the same components at the sweep's scaled
  /// dimensions. Pure and cheap (no simulation).
  CalibrationFactors scale_factors(const Workload& w,
                                   const DesignPoint& p) const;

  /// unit_factors ∘ scale_factors for one point.
  CalibrationFactors factors_for(const std::string& workload_name,
                                 const Workload& w, const DesignPoint& p);

  /// Per-layer-class factors for one point: the workload is partitioned
  /// by layer_class_of, and each class gets its own unit ∘ scale chain
  /// fitted on the class-restricted sub-workload (anchors from that
  /// class's scaled shapes, scale ratios from that class's closed-form
  /// components). Classes whose buffer-fit regime changes differently
  /// under scaling — the blind spot of the per-workload fit — calibrate
  /// independently. Class unit fits are memoized separately from the
  /// per-workload families (same thread-safety contract) and are not
  /// persisted to the unit-factors CSV. The fallback is the per-workload
  /// factors_for vector.
  ClassFactors class_factors_for(const std::string& workload_name,
                                 const Workload& w, const DesignPoint& p);

  /// Measured scaled run → absolute full-scale energy (pJ), via the same
  /// Eq. 1 cost table the uncalibrated path uses.
  double calibrated_energy_pj(const WorkloadRunResult& r,
                              const CalibrationFactors& f) const;

  /// Measured scaled run → absolute full-scale latency (s): per layer
  /// max(calibrated cycles / clock, calibrated DRAM bytes / bandwidth),
  /// × repeat, summed — the measured twin of workload_performance.
  double calibrated_latency_s(const WorkloadRunResult& r,
                              const CalibrationFactors& f) const;

  /// Per-layer-class twins of the two methods above: each measured layer
  /// is lifted by its own class's factors before the roll-up. With every
  /// class mapped to the same factor vector these match the per-workload
  /// results (up to FP summation order in the energy case — the
  /// per-workload path sums traffic before scaling, this one scales
  /// before summing), which is why the per-workload path stays the
  /// default and per-class is opt-in.
  double calibrated_energy_pj(const WorkloadRunResult& r,
                              const ClassFactors& cf) const;
  double calibrated_latency_s(const WorkloadRunResult& r,
                              const ClassFactors& cf) const;

  const Options& options() const { return opt_; }

  /// Families fitted (or loaded) so far. Fitting is lazy — a family pays
  /// for its anchor runs only when factors_for first touches it — so a
  /// mixed-fidelity sweep, which simulates only promoted points, fits
  /// only the promoted families; an *adaptive* mixed sweep additionally
  /// reuses every fit across its widening rounds (the memo is keyed by
  /// family, not by round), so each round pays anchors only for families
  /// its newly promoted points introduce.
  index_t family_count() const;

  /// Their keys, sorted (family_key format). The mixed sweep summary
  /// reports these to show which slice of the space paid for anchors.
  std::vector<std::string> family_keys() const;

  /// Fitted unit factors as CSV (rows sorted by family key — stable
  /// across runs and thread counts). Each row also records the fit
  /// context (shrink / max_dim / seed / anchor count) the factors depend
  /// on.
  CsvWriter unit_factors_csv() const;

  /// Seed the unit-factor memo from a CSV produced by unit_factors_csv();
  /// returns the number of families loaded. Throws on malformed rows and
  /// on rows whose fit context does not match this calibrator's options —
  /// factors fitted under a different scaling or seed must be refit, not
  /// silently applied.
  index_t load_unit_factors_csv(const std::string& path);

 private:
  /// One fitted family, with the fields needed to round-trip the CSV.
  struct Family {
    std::string workload;
    std::string dataflow;
    int psum_bits = 32;
    int apsq = 0;
    int group_size = 1;
    CalibrationFactors f;
  };

  CalibrationFactors fit_unit_factors(const Workload& w,
                                      const SimConfig& cfg) const;

  /// Class-scoped unit factors (family_key + "|lc=<class>"), fitted from
  /// the class-restricted sub-workload. Memoized like unit_factors; kept
  /// out of families_ so the persisted CSV format stays unchanged.
  CalibrationFactors class_unit_factors(const std::string& workload_name,
                                        const std::string& layer_class,
                                        const Workload& class_workload,
                                        const SimConfig& cfg);

  Options opt_;
  mutable Mutex mu_;
  /// key → fitted unit factors.
  std::map<std::string, Family> families_ APSQ_GUARDED_BY(mu_);
  /// key|lc=class → fitted class unit factors (not persisted).
  std::map<std::string, CalibrationFactors> class_families_
      APSQ_GUARDED_BY(mu_);
};

}  // namespace apsq::dse
