#include "dse/search.hpp"

#include <chrono>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "dse/pareto.hpp"

namespace apsq::dse {

namespace {

using clock_t_ = std::chrono::steady_clock;

double secs_since(clock_t_::time_point t0) {
  return std::chrono::duration<double>(clock_t_::now() - t0).count();
}

/// Front-membership keys of the per-workload Pareto front — keys alone
/// decide front stability (scores are memoized and pure, so a point's
/// objectives are byte-identical in every round it appears).
std::vector<std::string> front_keys(const std::vector<EvalResult>& results,
                                    const ObjectiveSet& objectives) {
  std::vector<std::string> keys;
  for (const EvalResult& f : pareto_front_by_workload(results, objectives))
    keys.push_back(canonical_key(f.point));
  return keys;
}

}  // namespace

const char* to_string(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kHalving: return "halving";
    case SearchStrategy::kEvolve: return "evolve";
  }
  APSQ_CHECK_MSG(false, "unknown search strategy");
  return "";
}

SearchStrategy parse_strategy(const std::string& name) {
  if (name == "halving") return SearchStrategy::kHalving;
  if (name == "evolve") return SearchStrategy::kEvolve;
  throw std::invalid_argument("unknown strategy: " + name +
                              " (expected halving|evolve)");
}

SearchDriver::SearchDriver(const ConfigSpace& space, Evaluator& eval,
                           SearchOptions opt)
    : space_(space), eval_(eval), opt_(opt) {
  space_.validate();
  APSQ_CHECK_MSG(opt_.budget >= 1, "search budget must be >= 1");
  if (opt_.strategy == SearchStrategy::kHalving) {
    APSQ_CHECK_MSG(eval_.options().backend == EvalBackend::kMixed,
                   "halving search needs the mixed backend");
  } else {
    APSQ_CHECK_MSG(eval_.options().backend != EvalBackend::kMixed,
                   "evolve search needs a single-fidelity backend");
  }
}

std::vector<index_t> SearchDriver::stratified_sample(index_t n, index_t count,
                                                     Rng rng) const {
  APSQ_CHECK_MSG(count >= 1 && count <= n,
                 "stratified sample count out of range");
  // Stratum boundaries are n·k/count; guard the product — a space large
  // enough to overflow it is far beyond what sampling counts here reach.
  index_t check = 0;
  APSQ_CHECK_MSG(!__builtin_mul_overflow(n, count, &check),
                 "stratified sample boundaries overflow 64-bit arithmetic");
  std::vector<index_t> out;
  out.reserve(static_cast<size_t>(count));
  for (index_t k = 0; k < count; ++k) {
    const index_t lo = n * k / count;
    const index_t hi = n * (k + 1) / count;
    out.push_back(lo + rng.uniform_index(hi - lo));
  }
  return out;
}

std::map<index_t, EvalResult> SearchDriver::run() {
  const auto t0 = clock_t_::now();
  stats_ = SearchStats{};
  stats_.strategy = opt_.strategy;
  stats_.budget = opt_.budget;
  std::map<index_t, EvalResult> rows = opt_.strategy == SearchStrategy::kHalving
                                           ? run_halving()
                                           : run_evolve();
  stats_.secs = secs_since(t0);
  return rows;
}

std::map<index_t, EvalResult> SearchDriver::run_halving() {
  const index_t n = space_.size();
  // Exploration cap: analytic scoring is cheap, so explore a generous
  // multiple of the promotion budget — or the whole space when it fits.
  const index_t cap =
      std::min<index_t>(n, std::max<index_t>(4096, 16 * opt_.budget));
  std::vector<index_t> indices;
  if (cap == n) {
    indices.reserve(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) indices.push_back(i);
  } else {
    indices = stratified_sample(n, cap, Rng::stream(opt_.seed, 0));
  }
  std::vector<DesignPoint> pts;
  pts.reserve(indices.size());
  for (index_t i : indices) pts.push_back(space_.at(i));

  // Exploration: analytic scores for the whole sample (rides free of the
  // budget, which pays only for sim promotions).
  std::vector<EvalResult> out =
      eval_.evaluate_points_at(pts, EvalBackend::kAnalytic);
  stats_.explored = static_cast<index_t>(out.size());

  // Margins once, over the analytic scores (the same
  // fixed-analytic-geometry rule as the adaptive mixed sweep — see the
  // rationale in Evaluator::mixed_sweep). The budget then admits the
  // best-margin `budget` keys; each ladder round promotes the in-band
  // subset of that admitted set, so an unconstraining budget replicates
  // the adaptive trajectory exactly.
  std::vector<std::pair<std::string, PromotionMargin>> margins;
  for (PromotionMargin& m :
       promotion_margins_by_workload(out, opt_.objectives)) {
    std::string key = canonical_key(m.result.point);
    margins.emplace_back(std::move(key), std::move(m));
  }
  std::vector<PromotionMargin> ranked =
      ranked_margins_by_workload(out, opt_.objectives);
  if (static_cast<size_t>(opt_.budget) < ranked.size())
    ranked.resize(static_cast<size_t>(opt_.budget));
  std::unordered_set<std::string> allowed;
  allowed.reserve(ranked.size());
  for (const PromotionMargin& m : ranked)
    allowed.insert(canonical_key(m.result.point));

  std::vector<bool> simulated(out.size(), false);
  index_t promoted_total = 0;
  double band = 0.0;
  int stable = 0;
  std::vector<std::string> prev_front;
  for (int round = 0;; ++round) {
    const auto r0 = clock_t_::now();
    if (round == 1)
      band = opt_.adaptive_start;
    else if (round > 1)
      band *= opt_.adaptive_growth;
    std::unordered_set<std::string> selected;
    for (const auto& [key, margin] : margins)
      if (margin.in_band(band) && allowed.count(key)) selected.insert(key);
    std::vector<index_t> fresh;  // sample slots to re-score, slot order
    for (size_t i = 0; i < out.size(); ++i)
      if (!simulated[i] && selected.count(canonical_key(out[i].point))) {
        simulated[i] = true;
        fresh.push_back(static_cast<index_t>(i));
      }
    std::vector<DesignPoint> promote;
    promote.reserve(fresh.size());
    for (index_t i : fresh) promote.push_back(pts[static_cast<size_t>(i)]);
    const std::vector<EvalResult> sim =
        eval_.evaluate_points_at(promote, EvalBackend::kSim);
    for (size_t j = 0; j < fresh.size(); ++j)
      out[static_cast<size_t>(fresh[j])] = sim[j];
    promoted_total += static_cast<index_t>(fresh.size());

    SearchRoundStats rs;
    rs.band = band;
    rs.candidates = static_cast<index_t>(selected.size());
    rs.evaluated_new = static_cast<index_t>(fresh.size());
    std::vector<std::string> front =
        front_keys(promoted_subset(out), opt_.objectives);
    rs.front_size = static_cast<index_t>(front.size());
    rs.front_changed = round == 0 || front != prev_front;
    rs.secs = secs_since(r0);
    prev_front = std::move(front);
    stats_.rounds.push_back(rs);
    if (promoted_total >= static_cast<index_t>(allowed.size())) break;
    if (round > 0) stable = rs.front_changed ? 0 : stable + 1;
    if (stable >= opt_.adaptive_stability) break;
  }
  stats_.evaluated = promoted_total;

  std::map<index_t, EvalResult> rows;
  for (size_t i = 0; i < indices.size(); ++i)
    rows.emplace(indices[i], std::move(out[i]));
  return rows;
}

std::map<index_t, EvalResult> SearchDriver::run_evolve() {
  const index_t n = space_.size();
  const EvalBackend fidelity = eval_.options().backend == EvalBackend::kAnalytic
                                   ? EvalBackend::kAnalytic
                                   : EvalBackend::kSim;
  // Per-axis radices for neighbour moves: a candidate's mixed-radix
  // digits, each nudged ±1 within its axis.
  std::vector<index_t> radix;
  for (const AxisDesc& a : space_.axes()) radix.push_back(a.count);
  const auto digits_of = [&](index_t i) {
    std::vector<index_t> d(radix.size(), 0);
    for (size_t a = radix.size(); a-- > 0;) {
      d[a] = i % radix[a];
      i /= radix[a];
    }
    return d;
  };
  const auto index_of = [&](const std::vector<index_t>& d) {
    index_t i = 0;
    for (size_t a = 0; a < radix.size(); ++a) i = i * radix[a] + d[a];
    return i;
  };

  std::map<index_t, EvalResult> archive;
  std::unordered_map<std::string, index_t> key_to_index;
  i64 remaining = opt_.budget;
  const auto score_batch = [&](const std::vector<index_t>& batch) {
    std::vector<DesignPoint> pts;
    pts.reserve(batch.size());
    for (index_t i : batch) pts.push_back(space_.at(i));
    const std::vector<EvalResult> scored =
        eval_.evaluate_points_at(pts, fidelity);
    for (size_t j = 0; j < batch.size(); ++j) {
      key_to_index.emplace(canonical_key(scored[j].point), batch[j]);
      archive.emplace(batch[j], scored[j]);
    }
    remaining -= static_cast<i64>(batch.size());
    stats_.evaluated += static_cast<index_t>(batch.size());
  };
  const auto archive_values = [&] {
    std::vector<EvalResult> v;
    v.reserve(archive.size());
    for (const auto& [i, r] : archive) v.push_back(r);
    return v;
  };

  // Seed generation: a stratified sample sized a quarter of the budget
  // (floor 16) — enough spread to give the neighbourhood moves footholds
  // in every region, leaving most of the budget to exploitation.
  {
    const auto r0 = clock_t_::now();
    const index_t seeds = std::min<index_t>(
        std::min<index_t>(remaining, n),
        std::max<index_t>(16, static_cast<index_t>(opt_.budget / 4)));
    score_batch(stratified_sample(n, seeds, Rng::stream(opt_.seed, 0)));
    SearchRoundStats rs;
    rs.candidates = seeds;
    rs.evaluated_new = seeds;
    std::vector<std::string> front = front_keys(archive_values(), opt_.objectives);
    rs.front_size = static_cast<index_t>(front.size());
    rs.front_changed = true;
    rs.secs = secs_since(r0);
    stats_.rounds.push_back(rs);
  }

  std::vector<std::string> prev_front =
      front_keys(archive_values(), opt_.objectives);
  int stable = 0;
  for (u64 round = 1; remaining > 0; ++round) {
    const auto r0 = clock_t_::now();
    // Candidates: every ±1-per-axis neighbour of the current per-workload
    // front, plus random injections to keep exploring. std::set gives a
    // deduped, ascending — hence deterministic — candidate order.
    std::set<index_t> candidates;
    for (const EvalResult& f :
         pareto_front_by_workload(archive_values(), opt_.objectives)) {
      const auto it = key_to_index.find(canonical_key(f.point));
      APSQ_CHECK_MSG(it != key_to_index.end(),
                     "front member missing from the search archive");
      const std::vector<index_t> d = digits_of(it->second);
      for (size_t a = 0; a < radix.size(); ++a) {
        for (index_t step : {index_t{-1}, index_t{1}}) {
          if (d[a] + step < 0 || d[a] + step >= radix[a]) continue;
          std::vector<index_t> nd = d;
          nd[a] += step;
          candidates.insert(index_of(nd));
        }
      }
    }
    Rng rng = Rng::stream(opt_.seed, round);
    const index_t injections =
        std::max<index_t>(8, static_cast<index_t>(opt_.budget / 16));
    for (index_t j = 0; j < injections; ++j)
      candidates.insert(rng.uniform_index(n));
    const index_t considered = static_cast<index_t>(candidates.size());

    std::vector<index_t> batch;
    for (index_t c : candidates) {
      if (archive.count(c)) continue;
      if (static_cast<i64>(batch.size()) >= remaining) break;
      batch.push_back(c);
    }
    if (batch.empty()) break;  // neighbourhood exhausted, budget unspent
    score_batch(batch);

    SearchRoundStats rs;
    rs.candidates = considered;
    rs.evaluated_new = static_cast<index_t>(batch.size());
    std::vector<std::string> front =
        front_keys(archive_values(), opt_.objectives);
    rs.front_size = static_cast<index_t>(front.size());
    rs.front_changed = front != prev_front;
    rs.secs = secs_since(r0);
    prev_front = std::move(front);
    stats_.rounds.push_back(rs);
    stable = rs.front_changed ? 0 : stable + 1;
    if (stable >= opt_.adaptive_stability) break;
  }
  return archive;
}

}  // namespace apsq::dse
