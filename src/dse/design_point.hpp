// A single point in the accelerator design space and its scoring
// objectives. The DSE engine (config_space / evaluator / pareto) sweeps
// thousands of these across the paper's four workloads.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "energy/access_counts.hpp"
#include "energy/accelerator_config.hpp"
#include "energy/psum_config.hpp"

namespace apsq::dse {

/// One fully-specified accelerator + workload configuration.
///
/// `workload` names one of the bundled models ("bert", "llama2",
/// "segformer", "efficientvit" — see evaluator.hpp's registry); the rest
/// is exactly what the analytical models in src/energy and src/rae take.
struct DesignPoint {
  std::string workload = "bert";
  Dataflow dataflow = Dataflow::kWS;
  PsumConfig psum;
  AcceleratorConfig acc;

  void validate() const;
};

/// Stable, fully-identifying text key for a design point. Two points with
/// the same key are the same configuration; the key doubles as the
/// memoization / tie-breaking identity, so its format must stay
/// deterministic (pure integers, fixed field order, no doubles).
std::string canonical_key(const DesignPoint& p);

/// The DSE objectives, in storage order. The first four (the core set)
/// are minimized; the telemetry-derived trio is maximized — dominance and
/// Pareto extraction read them through Objectives::minimized(), which maps
/// every objective into minimize-space, so the front machinery stays
/// uniform. Extending the engine with a new objective means adding an
/// enumerator here, a field + switch case in Objectives, a direction in
/// objective_direction, and a name in to_string/objective_column;
/// dominance, Pareto extraction, and CSV emission pick it up generically.
enum class Objective : int {
  kEnergy = 0,   ///< workload energy in pJ
  kArea = 1,     ///< accelerator area in µm²
  kError = 2,    ///< PSUM quantization-error accuracy proxy
  kLatency = 3,  ///< end-to-end workload latency in seconds
  kPeUtilization = 4,     ///< MAC-weighted mean PE-array utilization (max)
  kDramBwHeadroom = 5,    ///< 1 − DRAM-bandwidth occupancy (max)
  kThroughputPerArea = 6, ///< effective GMAC/s per mm² (max)
};

inline constexpr int kObjectiveCount = 7;
/// The always-on minimize quartet (energy, area, error, latency) — the
/// default objective set and the plane mixed-fidelity promotion measures
/// margins in unless told otherwise.
inline constexpr int kCoreObjectiveCount = 4;

/// Whether better means smaller or larger for an objective.
enum class Direction { kMinimize, kMaximize };

Direction objective_direction(Objective o);

/// Short flag-style name ("energy", ..., "pe_utilization").
const char* to_string(Objective o);
/// CSV column name ("energy_pj", "area_um2", "error", "latency_s",
/// "pe_utilization", "dram_bw_headroom", "throughput_per_area").
const char* objective_column(Objective o);

/// The DSE objective values for one point, stored in natural units (a
/// maximize objective stores the value a user would want to see — e.g.
/// utilization 0.92 — not its minimized transform).
struct Objectives {
  double energy_pj = 0.0;  ///< workload energy (Eq. 1; analytic or measured)
  double area_um2 = 0.0;   ///< synthesis-area model (Table II composition)
  double error = 0.0;      ///< PSUM quantization-error accuracy proxy (MSE)
  double latency_s = 0.0;  ///< workload latency (performance model / sim)
  /// MAC-weighted mean per-layer PE-array utilization in [0, 1]
  /// (telemetry registry, sim/stats.hpp). Maximized.
  double pe_utilization = 0.0;
  /// 1 − DRAM-bandwidth occupancy (occupancy = total DRAM time / total
  /// latency) in [0, 1]. Maximized: headroom left for co-located traffic.
  double dram_bw_headroom = 0.0;
  /// Effective throughput per silicon area, GMAC/s per mm². Maximized.
  double throughput_per_area = 0.0;

  double get(Objective o) const;
  void set(Objective o, double v);

  /// The value the dominance/front machinery compares: the natural value
  /// for a minimize objective, a monotone-decreasing non-negative
  /// transform for a maximize one (1 − v for the two unit-interval
  /// metrics, 1 / (1 + v) for throughput_per_area — finite even at the
  /// default 0). Finite natural values map to finite minimized values.
  double minimized(Objective o) const;

  /// True iff every objective is a finite number. NaN breaks the
  /// transitivity Pareto dominance relies on (a NaN point is dominated by
  /// nothing and dominates nothing), so scorers reject non-finite values
  /// at ingestion and pareto_front refuses them outright.
  bool all_finite() const;
};

/// An ordered subset of the objectives, used to parameterize dominance and
/// Pareto extraction. Defaults to the core quartet; parse() accepts a
/// comma list of to_string names (e.g. "energy,area,latency" or
/// "energy,latency,pe_utilization").
class ObjectiveSet {
 public:
  /// The core objectives (energy, area, error, latency) — the default.
  ObjectiveSet();

  static ObjectiveSet core() { return ObjectiveSet(); }

  /// Every objective, telemetry trio included.
  static ObjectiveSet all();

  /// Parse a comma-separated name list. Throws on unknown or duplicate
  /// names and on an empty list.
  static ObjectiveSet parse(const std::string& csv);

  bool contains(Objective o) const {
    return active_[static_cast<size_t>(o)];
  }

  /// Active objectives in enum (storage) order, independent of the order
  /// names were listed in parse() — keeps downstream iteration canonical.
  const std::vector<Objective>& list() const { return list_; }

  size_t size() const { return list_.size(); }

  /// Canonical comma list of the active objective names.
  std::string to_string() const;

 private:
  std::array<bool, kObjectiveCount> active_{};
  std::vector<Objective> list_;
  void rebuild_list();
};

/// Strict Pareto dominance over the active objectives, compared in
/// minimized space (so maximize objectives participate with the right
/// sense): `a` is no worse than `b` in every active objective and
/// strictly better in at least one.
bool dominates(const Objectives& a, const Objectives& b,
               const ObjectiveSet& objectives = ObjectiveSet::core());

/// A scored design point. `scored_by` records the fidelity provenance of
/// the objective values ("analytic", "sim", "sim+cal"); a mixed-fidelity
/// sweep returns results of both provenances side by side, so the label
/// lives on the result, not on the sweep. Empty means "unspecified"
/// (hand-built results in tests / benches).
struct EvalResult {
  DesignPoint point;
  Objectives obj;
  std::string scored_by;
};

}  // namespace apsq::dse
