// A single point in the accelerator design space and its three scoring
// objectives. The DSE engine (config_space / evaluator / pareto) sweeps
// thousands of these across the paper's four workloads.
#pragma once

#include <string>

#include "energy/access_counts.hpp"
#include "energy/accelerator_config.hpp"
#include "energy/psum_config.hpp"

namespace apsq::dse {

/// One fully-specified accelerator + workload configuration.
///
/// `workload` names one of the bundled models ("bert", "llama2",
/// "segformer", "efficientvit" — see evaluator.hpp's registry); the rest
/// is exactly what the analytical models in src/energy and src/rae take.
struct DesignPoint {
  std::string workload = "bert";
  Dataflow dataflow = Dataflow::kWS;
  PsumConfig psum;
  AcceleratorConfig acc;

  void validate() const;
};

/// Stable, fully-identifying text key for a design point. Two points with
/// the same key are the same configuration; the key doubles as the
/// memoization / tie-breaking identity, so its format must stay
/// deterministic (pure integers, fixed field order, no doubles).
std::string canonical_key(const DesignPoint& p);

/// The three DSE objectives — all minimized.
struct Objectives {
  double energy_pj = 0.0;  ///< workload energy (analytical model, Eq. 1)
  double area_um2 = 0.0;   ///< synthesis-area model (Table II composition)
  double error = 0.0;      ///< PSUM quantization-error accuracy proxy (MSE)
};

/// Strict Pareto dominance: `a` is no worse than `b` in every objective
/// and strictly better in at least one.
bool dominates(const Objectives& a, const Objectives& b);

/// A scored design point.
struct EvalResult {
  DesignPoint point;
  Objectives obj;
};

}  // namespace apsq::dse
