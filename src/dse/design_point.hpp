// A single point in the accelerator design space and its scoring
// objectives. The DSE engine (config_space / evaluator / pareto) sweeps
// thousands of these across the paper's four workloads.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "energy/access_counts.hpp"
#include "energy/accelerator_config.hpp"
#include "energy/psum_config.hpp"

namespace apsq::dse {

/// One fully-specified accelerator + workload configuration.
///
/// `workload` names one of the bundled models ("bert", "llama2",
/// "segformer", "efficientvit" — see evaluator.hpp's registry); the rest
/// is exactly what the analytical models in src/energy and src/rae take.
struct DesignPoint {
  std::string workload = "bert";
  Dataflow dataflow = Dataflow::kWS;
  PsumConfig psum;
  AcceleratorConfig acc;

  void validate() const;
};

/// Stable, fully-identifying text key for a design point. Two points with
/// the same key are the same configuration; the key doubles as the
/// memoization / tie-breaking identity, so its format must stay
/// deterministic (pure integers, fixed field order, no doubles).
std::string canonical_key(const DesignPoint& p);

/// The DSE objectives, in storage order — all minimized. Extending the
/// engine with a new objective means adding an enumerator here, a field +
/// switch case in Objectives, and a name in to_string/objective_column;
/// dominance, Pareto extraction, and CSV emission pick it up generically.
enum class Objective : int {
  kEnergy = 0,   ///< workload energy in pJ
  kArea = 1,     ///< accelerator area in µm²
  kError = 2,    ///< PSUM quantization-error accuracy proxy
  kLatency = 3,  ///< end-to-end workload latency in seconds
};

inline constexpr int kObjectiveCount = 4;

/// Short flag-style name ("energy", "area", "error", "latency").
const char* to_string(Objective o);
/// CSV column name ("energy_pj", "area_um2", "error", "latency_s").
const char* objective_column(Objective o);

/// The DSE objective values for one point — all minimized.
struct Objectives {
  double energy_pj = 0.0;  ///< workload energy (Eq. 1; analytic or measured)
  double area_um2 = 0.0;   ///< synthesis-area model (Table II composition)
  double error = 0.0;      ///< PSUM quantization-error accuracy proxy (MSE)
  double latency_s = 0.0;  ///< workload latency (performance model / sim)

  double get(Objective o) const;
  void set(Objective o, double v);

  /// True iff every objective is a finite number. NaN breaks the
  /// transitivity Pareto dominance relies on (a NaN point is dominated by
  /// nothing and dominates nothing), so scorers reject non-finite values
  /// at ingestion and pareto_front refuses them outright.
  bool all_finite() const;
};

/// An ordered subset of the objectives, used to parameterize dominance and
/// Pareto extraction. Defaults to all kObjectiveCount objectives; parse()
/// accepts a comma list of to_string names (e.g. "energy,area,latency").
class ObjectiveSet {
 public:
  /// All objectives active (the default everywhere).
  ObjectiveSet();

  static ObjectiveSet all() { return ObjectiveSet(); }

  /// Parse a comma-separated name list. Throws on unknown or duplicate
  /// names and on an empty list.
  static ObjectiveSet parse(const std::string& csv);

  bool contains(Objective o) const {
    return active_[static_cast<size_t>(o)];
  }

  /// Active objectives in enum (storage) order, independent of the order
  /// names were listed in parse() — keeps downstream iteration canonical.
  const std::vector<Objective>& list() const { return list_; }

  size_t size() const { return list_.size(); }

  /// Canonical comma list of the active objective names.
  std::string to_string() const;

 private:
  std::array<bool, kObjectiveCount> active_{};
  std::vector<Objective> list_;
  void rebuild_list();
};

/// Strict Pareto dominance over the active objectives: `a` is no worse
/// than `b` in every active objective and strictly better in at least one.
bool dominates(const Objectives& a, const Objectives& b,
               const ObjectiveSet& objectives = ObjectiveSet::all());

/// A scored design point. `scored_by` records the fidelity provenance of
/// the objective values ("analytic", "sim", "sim+cal"); a mixed-fidelity
/// sweep returns results of both provenances side by side, so the label
/// lives on the result, not on the sweep. Empty means "unspecified"
/// (hand-built results in tests / benches).
struct EvalResult {
  DesignPoint point;
  Objectives obj;
  std::string scored_by;
};

}  // namespace apsq::dse
