#include "dse/accuracy_proxy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "quant/apsq.hpp"
#include "quant/psum_calib.hpp"

namespace apsq::dse {

namespace {

// Proxy tile geometry: small enough to keep a full sweep cheap, large
// enough that the relative-MSE estimate is stable to ~1%.
constexpr index_t kTileRows = 16;
constexpr index_t kTileCols = 16;
constexpr index_t kMaxTiles = 256;   // caps np for very deep accumulations
constexpr index_t kMaxLayers = 4;

// FNV-1a, so stream indices are stable across standard libraries
// (std::hash makes no such promise).
u64 fnv1a(const std::string& s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Representative layers: largest-MAC first, distinct accumulation depths
/// (ci), deterministic tie-break on layer order.
std::vector<const LayerShape*> representative_layers(const Workload& w) {
  std::vector<size_t> order(w.layers.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return w.layers[a].macs() > w.layers[b].macs();
  });
  std::vector<const LayerShape*> picked;
  std::vector<index_t> seen_ci;
  for (size_t i : order) {
    const LayerShape& l = w.layers[i];
    if (std::find(seen_ci.begin(), seen_ci.end(), l.ci) != seen_ci.end())
      continue;
    picked.push_back(&l);
    seen_ci.push_back(l.ci);
    if (static_cast<index_t>(picked.size()) == kMaxLayers) break;
  }
  return picked;
}

double layer_relative_mse(const LayerShape& layer, const PsumConfig& psum,
                          index_t pci, u64 seed, const std::string& wname) {
  const index_t np =
      std::min<index_t>(kMaxTiles, std::max<index_t>(1, (layer.ci + pci - 1) / pci));

  // The tile stream depends only on (seed, workload, layer) — every PSUM
  // config is scored against identical inputs.
  Rng rng = Rng::stream(seed, fnv1a(wname + "/" + layer.name) ^
                                  static_cast<u64>(layer.ci));
  std::vector<TensorF> tiles;
  tiles.reserve(static_cast<size_t>(np));
  for (index_t t = 0; t < np; ++t) {
    TensorF tile({kTileRows, kTileCols});
    for (index_t e = 0; e < tile.numel(); ++e)
      tile[e] = static_cast<float>(rng.normal(0.0, 8.0));
    tiles.push_back(std::move(tile));
  }

  const TensorF exact =
      accumulate_psums(tiles, PsumMode::kExact, QuantSpec::int8(), {1.0});

  // Power-of-two scale calibrated on the final accumulated range, exactly
  // as QuantDense does for the QAT path (see quant_dense.cpp).
  const QuantSpec spec{psum.psum_bits, true};
  double max_out = 0.0;
  for (index_t e = 0; e < exact.numel(); ++e)
    max_out = std::max(max_out, std::fabs(static_cast<double>(exact[e])));
  PsumScaleCalibrator calib(spec, 0.0);
  calib.observe_abs_max(max_out);
  const double alpha = std::exp2(calib.exponent());

  const PsumMode mode = psum.apsq ? PsumMode::kApsq : PsumMode::kPsq;
  const TensorF approx =
      accumulate_psums(tiles, mode, spec, {alpha}, psum.group_size);

  double num = 0.0, den = 0.0;
  for (index_t e = 0; e < exact.numel(); ++e) {
    const double d = static_cast<double>(approx[e]) - static_cast<double>(exact[e]);
    num += d * d;
    den += static_cast<double>(exact[e]) * static_cast<double>(exact[e]);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double psum_error_proxy(const Workload& w, const PsumConfig& psum,
                        index_t pci, u64 seed) {
  APSQ_CHECK(pci > 0);
  psum.validate();
  if (!psum.apsq && psum.psum_bits >= 32) return 0.0;  // exact storage

  const std::vector<const LayerShape*> layers = representative_layers(w);
  APSQ_CHECK_MSG(!layers.empty(), "workload has no layers");
  double sum = 0.0;
  for (const LayerShape* l : layers)
    sum += layer_relative_mse(*l, psum, pci, seed, w.name);
  return sum / static_cast<double>(layers.size());
}

}  // namespace apsq::dse
