#include "dse/store.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "common/stats_writer.hpp"

namespace apsq::dse {

namespace {

constexpr const char* kFormat = "apsq-evalstore";
constexpr int kSchemaVersion = 1;

Dataflow parse_dataflow(const std::string& name) {
  if (name == "IS") return Dataflow::kIS;
  if (name == "WS") return Dataflow::kWS;
  if (name == "OS") return Dataflow::kOS;
  throw std::invalid_argument("unknown dataflow: " + name +
                              " (expected IS|WS|OS)");
}

/// FNV-1a over a byte string — deterministic, dependency-free, and plenty
/// for addressing (a collision additionally has to survive the per-row
/// canonical-key check the consumer runs).
u64 fnv1a(const std::string& s) {
  u64 h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<u64>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

std::string entry_key(const std::string& space_hash,
                      const std::string& scoring) {
  return space_hash + '\n' + scoring;
}

}  // namespace

std::string config_space_hash(const ConfigSpace& space) {
  // A canonical text rendering of every axis value, in axis order. The
  // mixed-radix enumeration is a pure function of this description, so
  // equal descriptions ⇒ identical point sequences.
  std::ostringstream os;
  os << "workloads=";
  for (const std::string& w : space.workloads) os << w << ';';
  os << "|dataflows=";
  for (const Dataflow df : space.dataflows) os << to_string(df) << ';';
  os << "|psum=";
  for (const PsumConfig& pc : space.psum_configs)
    os << pc.psum_bits << ',' << (pc.apsq ? 1 : 0) << ',' << pc.group_size
       << ';';
  os << "|geom=";
  for (const PeGeometry& g : space.geometries)
    os << g.po << ',' << g.pci << ',' << g.pco << ';';
  os << "|buf=";
  for (const BufferSizing& b : space.buffers)
    os << b.ifmap_bytes << ',' << b.ofmap_bytes << ',' << b.weight_bytes
       << ';';
  os << "|ab=" << space.act_bits << "|wb=" << space.weight_bits;
  // Fine axes append new sections only when present, so every legacy
  // space's hash input — hence its hash, and every snapshot keyed by it —
  // is byte-identical to before they existed.
  const auto fine_i64 = [&os](const char* tag, const std::vector<i64>& axis) {
    if (axis.empty()) return;
    os << '|' << tag << '=';
    for (const i64 v : axis) os << v << ';';
  };
  fine_i64("fbi", space.ifmap_bytes_axis);
  fine_i64("fbo", space.ofmap_bytes_axis);
  fine_i64("fbw", space.weight_bytes_axis);
  const auto fine_int = [&os](const char* tag, const std::vector<int>& axis) {
    if (axis.empty()) return;
    os << '|' << tag << '=';
    for (const int v : axis) os << v << ';';
  };
  fine_int("fab", space.act_bits_axis);
  fine_int("fwb", space.weight_bits_axis);
  const u64 h = fnv1a(os.str());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(hex);
}

void append_result_json(std::ostream& os, const EvalResult& r) {
  const DesignPoint& p = r.point;
  os << "\"workload\": \"" << json_escape(p.workload) << "\", \"dataflow\": \""
     << to_string(p.dataflow) << "\", \"psum_bits\": " << p.psum.psum_bits
     << ", \"apsq\": " << (p.psum.apsq ? 1 : 0)
     << ", \"group_size\": " << p.psum.group_size << ", \"po\": " << p.acc.po
     << ", \"pci\": " << p.acc.pci << ", \"pco\": " << p.acc.pco
     << ", \"ifmap_buf_bytes\": " << p.acc.ifmap_buf_bytes
     << ", \"ofmap_buf_bytes\": " << p.acc.ofmap_buf_bytes
     << ", \"weight_buf_bytes\": " << p.acc.weight_buf_bytes
     << ", \"act_bits\": " << p.acc.act_bits
     << ", \"weight_bits\": " << p.acc.weight_bits << ", \"scored_by\": \""
     << json_escape(r.scored_by) << "\"";
  for (int o = 0; o < kObjectiveCount; ++o) {
    const Objective obj = static_cast<Objective>(o);
    os << ", \"" << objective_column(obj)
       << "\": " << format_double(r.obj.get(obj));
  }
}

std::shared_ptr<const EvalStore::Entry> EvalStore::find(
    const std::string& space_hash, const std::string& scoring) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(entry_key(space_hash, scoring));
  return it != entries_.end() ? it->second : nullptr;
}

void EvalStore::put(const std::string& space_hash, const std::string& scoring,
                    const std::string& backend_label, index_t space_points,
                    const std::vector<EvalResult>& results) {
  // Build the entry outside the lock (copying 10³–10⁶ results is the
  // expensive part), publish it with a pointer swap under it.
  auto e = std::make_shared<Entry>();
  e->space_hash = space_hash;
  e->scoring = scoring;
  e->backend = backend_label;
  e->space_points = space_points;
  for (size_t i = 0; i < results.size(); ++i)
    e->results.emplace(static_cast<index_t>(i), results[i]);
  MutexLock lock(mu_);
  entries_[entry_key(space_hash, scoring)] = std::move(e);
}

void EvalStore::merge_rows(const std::string& space_hash,
                           const std::string& scoring,
                           const std::string& backend_label,
                           index_t space_points,
                           const std::map<index_t, EvalResult>& rows) {
  auto e = std::make_shared<Entry>();
  e->space_hash = space_hash;
  e->scoring = scoring;
  e->backend = backend_label;
  e->space_points = space_points;
  // Read-modify-write of the published entry: the whole merge holds mu_,
  // so two concurrent merges can never lose each other's rows. The row
  // sets are sparse (search results, bounded by the budget), so copying
  // under the lock is cheap — unlike put(), which copies whole spaces and
  // therefore builds outside it.
  MutexLock lock(mu_);
  const auto it = entries_.find(entry_key(space_hash, scoring));
  if (it != entries_.end()) e->results = it->second->results;
  for (const auto& [i, r] : rows) e->results[i] = r;
  entries_[entry_key(space_hash, scoring)] = std::move(e);
}

size_t EvalStore::entry_count() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string EvalStore::source() const {
  MutexLock lock(mu_);
  return source_;
}

index_t EvalStore::result_count() const {
  MutexLock lock(mu_);
  index_t n = 0;
  for (const auto& [key, e] : entries_)
    n += static_cast<index_t>(e->results.size());
  return n;
}

std::string EvalStore::to_json() const {
  // Pin a consistent view: copy the (small) pointer map under the lock,
  // then serialize the immutable entries without holding it — a put()
  // racing a save lands wholly before or wholly after this snapshot.
  std::map<std::string, std::shared_ptr<const Entry>> entries;
  {
    MutexLock lock(mu_);
    entries = entries_;
  }
  std::ostringstream os;
  os << "{\n  \"format\": \"" << kFormat
     << "\",\n  \"schema_version\": " << kSchemaVersion
     << ",\n  \"entries\": [";
  bool first_entry = true;
  for (const auto& [key, ep] : entries) {
    const Entry& e = *ep;
    os << (first_entry ? "\n" : ",\n");
    first_entry = false;
    os << "    {\"space_hash\": \"" << json_escape(e.space_hash)
       << "\", \"scoring\": \"" << json_escape(e.scoring)
       << "\", \"backend\": \"" << json_escape(e.backend)
       << "\", \"points\": " << e.space_points << ", \"results\": [";
    bool first_row = true;
    for (const auto& [idx, r] : e.results) {
      os << (first_row ? "\n" : ",\n");
      first_row = false;
      os << "      {\"i\": " << idx << ", ";
      append_result_json(os, r);
      os << "}";
    }
    os << (first_row ? "]}" : "\n    ]}");
  }
  os << (first_entry ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

bool EvalStore::save_file(const std::string& path) const {
  // Write-to-temp + rename: a crash (or disk-full) mid-write must never
  // leave a truncated snapshot under `path` — the strict loader would
  // reject it and the evaluated space would be lost. The temp lives next
  // to the target so the rename stays within one filesystem.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << to_json();
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

size_t EvalStore::load_file(const std::string& path) {
  // Every failure below names the file and the reason — a snapshot that
  // cannot be trusted must be rejected loudly, never crashed on or
  // silently replaced by a fresh evaluation the caller didn't ask for.
  const auto bad = [&](const std::string& reason) -> std::runtime_error {
    return std::runtime_error(path + ": " + reason);
  };
  JsonValue doc = json_parse_file(path);  // already path-prefixed
  try {
    if (!doc.is_object()) throw bad("not an evaluated-space snapshot (top-level value is not an object)");
    const JsonValue* format = doc.find("format");
    if (format == nullptr || !format->is_string() ||
        format->as_string() != kFormat)
      throw bad(std::string("not an evaluated-space snapshot (missing ") +
                "\"format\": \"" + kFormat + "\")");
    // Pre-daemon snapshots carried the schema version under "version" —
    // same integer, same meaning — so both spellings load as v1 and both
    // reject a future version with the same message.
    const char* vkey = doc.find("schema_version") == nullptr &&
                               doc.find("version") != nullptr
                           ? "version"
                           : "schema_version";
    json_schema_version(doc, path, 1, kSchemaVersion, vkey);
    const JsonValue& entries = doc.get("entries");
    // Stage into a local list and commit in one step at the end: a file
    // whose 40th entry is malformed must not leave entries 1–39 merged
    // (they would silently answer queries for a snapshot that was
    // rejected).
    std::vector<std::shared_ptr<const Entry>> staged;
    for (size_t ei = 0; ei < entries.size(); ++ei) {
      const JsonValue& je = entries.at(ei);
      Entry e;
      e.space_hash = je.get("space_hash").as_string();
      e.scoring = je.get("scoring").as_string();
      e.backend = je.get("backend").as_string();
      e.space_points = je.get("points").as_i64();
      if (e.space_points <= 0)
        throw bad("entry " + std::to_string(ei) +
                  ": non-positive point count");
      const JsonValue& rows = je.get("results");
      if (static_cast<index_t>(rows.size()) > e.space_points)
        throw bad("entry " + std::to_string(ei) + ": " +
                  std::to_string(rows.size()) + " results for a " +
                  std::to_string(e.space_points) + "-point space");
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        const JsonValue& row = rows.at(ri);
        const index_t idx = row.get("i").as_i64();
        if (idx < 0 || idx >= e.space_points)
          throw bad("entry " + std::to_string(ei) + ": point index " +
                    std::to_string(idx) + " out of range [0, " +
                    std::to_string(e.space_points) + ")");
        EvalResult r;
        DesignPoint& p = r.point;
        p.workload = row.get("workload").as_string();
        p.dataflow = parse_dataflow(row.get("dataflow").as_string());
        p.psum.psum_bits = static_cast<int>(row.get("psum_bits").as_i64());
        p.psum.apsq = row.get("apsq").as_i64() != 0;
        p.psum.group_size = row.get("group_size").as_i64();
        p.acc.po = row.get("po").as_i64();
        p.acc.pci = row.get("pci").as_i64();
        p.acc.pco = row.get("pco").as_i64();
        p.acc.ifmap_buf_bytes = row.get("ifmap_buf_bytes").as_i64();
        p.acc.ofmap_buf_bytes = row.get("ofmap_buf_bytes").as_i64();
        p.acc.weight_buf_bytes = row.get("weight_buf_bytes").as_i64();
        p.acc.act_bits = static_cast<int>(row.get("act_bits").as_i64());
        p.acc.weight_bits = static_cast<int>(row.get("weight_bits").as_i64());
        p.validate();
        r.scored_by = row.get("scored_by").as_string();
        for (int o = 0; o < kObjectiveCount; ++o) {
          const Objective obj = static_cast<Objective>(o);
          r.obj.set(obj, row.get(objective_column(obj)).as_number());
        }
        if (!r.obj.all_finite())
          throw bad("entry " + std::to_string(ei) + ", point " +
                    std::to_string(idx) + ": non-finite objective value");
        if (!e.results.emplace(idx, std::move(r)).second)
          throw bad("entry " + std::to_string(ei) + ": duplicate point index " +
                    std::to_string(idx));
      }
      staged.push_back(std::make_shared<const Entry>(std::move(e)));
    }
    MutexLock lock(mu_);
    for (std::shared_ptr<const Entry>& ep : staged)
      entries_[entry_key(ep->space_hash, ep->scoring)] = std::move(ep);
    source_ = path;
    return staged.size();
  } catch (const std::runtime_error&) {
    throw;  // already file-prefixed
  } catch (const std::exception& e) {
    // JsonValue accessor / DesignPoint::validate failures: wrap with the
    // file name so "missing key \"po\"" is attributable.
    throw bad(std::string("malformed snapshot: ") + e.what());
  }
}

}  // namespace apsq::dse
