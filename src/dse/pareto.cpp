#include "dse/pareto.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace apsq::dse {

bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives) {
  const std::string key = canonical_key(candidate.point);
  for (const EvalResult& other : points) {
    if (!dominates(other.obj, candidate.obj, objectives)) continue;
    if (canonical_key(other.point) == key) continue;
    return true;
  }
  return false;
}

std::vector<EvalResult> pareto_front(const std::vector<EvalResult>& points,
                                     const ObjectiveSet& objectives) {
  // Sort by precomputed key first: the filter below then emits the front
  // in key order no matter how the caller ordered the input.
  struct Keyed {
    std::string key;
    const EvalResult* result;
  };
  std::vector<Keyed> sorted;
  sorted.reserve(points.size());
  for (const EvalResult& p : points) sorted.push_back({canonical_key(p.point), &p});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });

  std::vector<EvalResult> front;
  const std::string* prev_key = nullptr;
  for (const Keyed& cand : sorted) {
    if (prev_key && cand.key == *prev_key) continue;  // exact duplicate config
    prev_key = &cand.key;
    bool dominated = false;
    for (const Keyed& other : sorted) {
      if (other.result == cand.result ||
          !dominates(other.result->obj, cand.result->obj, objectives))
        continue;
      dominated = true;
      break;
    }
    if (!dominated) front.push_back(*cand.result);
  }
  return front;
}

std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<EvalResult> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<EvalResult> front = pareto_front(group, objectives);
    out.insert(out.end(), std::make_move_iterator(front.begin()),
               std::make_move_iterator(front.end()));
  }
  return out;
}

}  // namespace apsq::dse
