#include "dse/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/check.hpp"

namespace apsq::dse {

bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives) {
  const std::string key = canonical_key(candidate.point);
  for (const EvalResult& other : points) {
    if (!dominates(other.obj, candidate.obj, objectives)) continue;
    if (canonical_key(other.point) == key) continue;
    return true;
  }
  return false;
}

namespace {

/// Lexicographic order over the active objectives. A dominator is ≤ the
/// dominated point in every active objective and < in at least one, so it
/// sorts strictly earlier — the invariant the sweep in pareto_front
/// builds on. (This is also why non-finite objectives are rejected:
/// NaN breaks both this order and dominance transitivity.)
bool objectives_less(const Objectives& a, const Objectives& b,
                     const ObjectiveSet& objectives) {
  for (Objective o : objectives.list()) {
    const double av = a.get(o), bv = b.get(o);
    if (av != bv) return av < bv;
  }
  return false;
}

/// Shared preamble of pareto_front and epsilon_band: candidates in
/// canonical-key order with exact duplicate configurations collapsed to
/// the first occurrence.
std::vector<const EvalResult*> deduped_in_key_order(
    const std::vector<EvalResult>& points) {
  struct Keyed {
    std::string key;
    const EvalResult* result;
  };
  std::vector<Keyed> sorted;
  sorted.reserve(points.size());
  for (const EvalResult& p : points)
    sorted.push_back({canonical_key(p.point), &p});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<const EvalResult*> candidates;
  candidates.reserve(sorted.size());
  const std::string* prev_key = nullptr;
  for (const Keyed& cand : sorted) {
    if (prev_key && cand.key == *prev_key) continue;  // exact duplicate config
    prev_key = &cand.key;
    candidates.push_back(cand.result);
  }
  return candidates;
}

/// The dominance filter of pareto_front over already-validated, deduped,
/// key-ordered candidates — shared with epsilon_band so the promotion
/// path never re-keys or re-validates the input. Survivors come back in
/// key order.
std::vector<const EvalResult*> front_of(
    const std::vector<const EvalResult*>& candidates,
    const ObjectiveSet& objectives) {
  // Sweep in ascending lexicographic objective order: any dominator of a
  // point sorts strictly before it, and (by transitivity over finite
  // values) every dominated point is dominated by a member of the
  // incremental front. Each candidate is therefore compared against the
  // front built so far — typically far smaller than the candidate set —
  // instead of every other point, and the scan stops at the first
  // dominator found.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return objectives_less(candidates[a]->obj, candidates[b]->obj, objectives);
  });

  std::vector<bool> dominated(candidates.size(), false);
  std::vector<size_t> front_members;  // sweep order, non-dominated so far
  for (const size_t idx : order) {
    bool dom = false;
    for (const size_t f : front_members) {
      if (dominates(candidates[f]->obj, candidates[idx]->obj, objectives)) {
        dom = true;
        break;
      }
    }
    if (dom)
      dominated[idx] = true;
    else
      front_members.push_back(idx);
  }

  // Emit survivors in key order — byte-identical to the full O(n²) scan.
  std::vector<const EvalResult*> front;
  front.reserve(front_members.size());
  for (size_t i = 0; i < candidates.size(); ++i)
    if (!dominated[i]) front.push_back(candidates[i]);
  return front;
}

}  // namespace

std::vector<EvalResult> pareto_front(const std::vector<EvalResult>& points,
                                     const ObjectiveSet& objectives) {
  // Sort by precomputed key first: the filter below then emits the front
  // in key order no matter how the caller ordered the input, and exact
  // duplicate configurations collapse to one candidate.
  for (const EvalResult& p : points)
    for (const Objective o : objectives.list())
      APSQ_CHECK_MSG(std::isfinite(p.obj.get(o)),
                     "non-finite " << to_string(o)
                                   << " in pareto_front candidate "
                                   << canonical_key(p.point));
  const std::vector<const EvalResult*> candidates =
      deduped_in_key_order(points);
  const std::vector<const EvalResult*> survivors =
      front_of(candidates, objectives);
  std::vector<EvalResult> front;
  front.reserve(survivors.size());
  for (const EvalResult* s : survivors) front.push_back(*s);
  return front;
}

bool epsilon_dominates(const Objectives& a, const Objectives& b, double band,
                       const ObjectiveSet& objectives) {
  APSQ_CHECK_MSG(band >= 0.0, "epsilon band must be >= 0, got " << band);
  bool strictly_better = false;
  for (Objective o : objectives.list()) {
    const double av = a.get(o) * (1.0 + band), bv = b.get(o);
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

std::vector<EvalResult> epsilon_band(const std::vector<EvalResult>& points,
                                     double band,
                                     const ObjectiveSet& objectives) {
  APSQ_CHECK_MSG(band >= 0.0, "epsilon band must be >= 0, got " << band);
  for (const EvalResult& p : points)
    for (const Objective o : objectives.list()) {
      const double v = p.obj.get(o);
      // The band is a multiplicative slack, so besides the usual
      // finiteness requirement every active objective must be >= 0 (true
      // of all DSE objectives: pJ, µm², MSE, seconds).
      APSQ_CHECK_MSG(std::isfinite(v) && v >= 0.0,
                     "epsilon_band needs finite non-negative objectives; got "
                         << to_string(o) << " = " << v << " for "
                         << canonical_key(p.point));
    }
  const std::vector<const EvalResult*> candidates =
      deduped_in_key_order(points);

  std::vector<EvalResult> out;
  out.reserve(candidates.size());
  if (!std::isfinite(band)) {
    // Infinite slack keeps everything (and sidesteps 0 · ∞ in the
    // comparison): the mixed sweep's "promote every point" degenerate.
    for (const EvalResult* c : candidates) out.push_back(*c);
    return out;
  }

  // If any point ε-dominates p, so does some front member: a dominator f
  // of the ε-dominator q satisfies f·(1+band) ≤ q·(1+band) ≤ p
  // componentwise, strict wherever q was strict. Checking candidates
  // against the front alone is therefore exact and keeps the scan
  // O(n·|front|). Front members themselves are never ε-dominated
  // (ε-dominance within the front would imply plain dominance for
  // non-negative objectives), so the band always contains the front.
  const std::vector<const EvalResult*> front = front_of(candidates, objectives);
  for (const EvalResult* cand : candidates) {
    bool dominated = false;
    for (const EvalResult* f : front) {
      if (epsilon_dominates(f->obj, cand->obj, band, objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(*cand);
  }
  return out;
}

std::vector<EvalResult> epsilon_band_by_workload(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<EvalResult> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<EvalResult> band_set = epsilon_band(group, band, objectives);
    out.insert(out.end(), std::make_move_iterator(band_set.begin()),
               std::make_move_iterator(band_set.end()));
  }
  return out;
}

std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<EvalResult> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<EvalResult> front = pareto_front(group, objectives);
    out.insert(out.end(), std::make_move_iterator(front.begin()),
               std::make_move_iterator(front.end()));
  }
  return out;
}

}  // namespace apsq::dse
