#include "dse/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "common/check.hpp"

namespace apsq::dse {

bool is_dominated(const EvalResult& candidate,
                  const std::vector<EvalResult>& points,
                  const ObjectiveSet& objectives) {
  const std::string key = canonical_key(candidate.point);
  for (const EvalResult& other : points) {
    if (!dominates(other.obj, candidate.obj, objectives)) continue;
    if (canonical_key(other.point) == key) continue;
    return true;
  }
  return false;
}

namespace {

/// Lexicographic order over the active objectives in minimized space. A
/// dominator is ≤ the dominated point in every active objective and < in
/// at least one, so it sorts strictly earlier — the invariant the sweep
/// in pareto_front builds on. (This is also why non-finite objectives are
/// rejected: NaN breaks both this order and dominance transitivity.)
bool objectives_less(const Objectives& a, const Objectives& b,
                     const ObjectiveSet& objectives) {
  for (Objective o : objectives.list()) {
    const double av = a.minimized(o), bv = b.minimized(o);
    if (av != bv) return av < bv;
  }
  return false;
}

/// Shared preamble of pareto_front and epsilon_band: candidates in
/// canonical-key order with exact duplicate configurations collapsed to
/// the first occurrence.
std::vector<const EvalResult*> deduped_in_key_order(
    const std::vector<EvalResult>& points) {
  struct Keyed {
    std::string key;
    const EvalResult* result;
  };
  std::vector<Keyed> sorted;
  sorted.reserve(points.size());
  for (const EvalResult& p : points)
    sorted.push_back({canonical_key(p.point), &p});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<const EvalResult*> candidates;
  candidates.reserve(sorted.size());
  const std::string* prev_key = nullptr;
  for (const Keyed& cand : sorted) {
    if (prev_key && cand.key == *prev_key) continue;  // exact duplicate config
    prev_key = &cand.key;
    candidates.push_back(cand.result);
  }
  return candidates;
}

/// The dominance filter of pareto_front over already-validated, deduped,
/// key-ordered candidates — shared with epsilon_band so the promotion
/// path never re-keys or re-validates the input. Survivors come back in
/// key order.
std::vector<const EvalResult*> front_of(
    const std::vector<const EvalResult*>& candidates,
    const ObjectiveSet& objectives) {
  // Sweep in ascending lexicographic objective order: any dominator of a
  // point sorts strictly before it, and (by transitivity over finite
  // values) every dominated point is dominated by a member of the
  // incremental front. Each candidate is therefore compared against the
  // front built so far — typically far smaller than the candidate set —
  // instead of every other point, and the scan stops at the first
  // dominator found.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return objectives_less(candidates[a]->obj, candidates[b]->obj, objectives);
  });

  std::vector<bool> dominated(candidates.size(), false);
  std::vector<size_t> front_members;  // sweep order, non-dominated so far
  for (const size_t idx : order) {
    bool dom = false;
    for (const size_t f : front_members) {
      if (dominates(candidates[f]->obj, candidates[idx]->obj, objectives)) {
        dom = true;
        break;
      }
    }
    if (dom)
      dominated[idx] = true;
    else
      front_members.push_back(idx);
  }

  // Emit survivors in key order — byte-identical to the full O(n²) scan.
  std::vector<const EvalResult*> front;
  front.reserve(front_members.size());
  for (size_t i = 0; i < candidates.size(); ++i)
    if (!dominated[i]) front.push_back(candidates[i]);
  return front;
}

}  // namespace

std::vector<EvalResult> pareto_front(const std::vector<EvalResult>& points,
                                     const ObjectiveSet& objectives) {
  // Sort by precomputed key first: the filter below then emits the front
  // in key order no matter how the caller ordered the input, and exact
  // duplicate configurations collapse to one candidate.
  for (const EvalResult& p : points)
    for (const Objective o : objectives.list())
      APSQ_CHECK_MSG(std::isfinite(p.obj.get(o)),
                     "non-finite " << to_string(o)
                                   << " in pareto_front candidate "
                                   << canonical_key(p.point));
  const std::vector<const EvalResult*> candidates =
      deduped_in_key_order(points);
  const std::vector<const EvalResult*> survivors =
      front_of(candidates, objectives);
  std::vector<EvalResult> front;
  front.reserve(survivors.size());
  for (const EvalResult* s : survivors) front.push_back(*s);
  return front;
}

bool epsilon_dominates(const Objectives& a, const Objectives& b, double band,
                       const ObjectiveSet& objectives, double abs_floor) {
  APSQ_CHECK_MSG(band >= 0.0, "epsilon band must be >= 0, got " << band);
  APSQ_CHECK_MSG(abs_floor >= 0.0,
                 "epsilon abs_floor must be >= 0, got " << abs_floor);
  bool strictly_better = false;
  for (Objective o : objectives.list()) {
    const double av = a.minimized(o) * (1.0 + band) + band * abs_floor;
    const double bv = b.minimized(o);
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

namespace {

/// Validation shared by the margin-based promotion family: the band is a
/// multiplicative slack, so besides the usual finiteness requirement
/// every active objective must be >= 0 (true of all DSE objectives: pJ,
/// µm², MSE, seconds).
void check_band_objectives(const std::vector<EvalResult>& points,
                           const ObjectiveSet& objectives, double abs_floor) {
  APSQ_CHECK_MSG(abs_floor >= 0.0,
                 "epsilon abs_floor must be >= 0, got " << abs_floor);
  for (const EvalResult& p : points)
    for (const Objective o : objectives.list()) {
      // Finiteness is checked on the natural value: the clamps inside
      // minimized() would silently map NaN to a finite number (e.g.
      // std::max(0.0, NaN) == 0.0) and mask a broken scorer.
      const double v = p.obj.get(o);
      APSQ_CHECK_MSG(std::isfinite(v) && p.obj.minimized(o) >= 0.0,
                     "epsilon_band needs finite non-negative objectives; got "
                         << to_string(o) << " = " << v << " for "
                         << canonical_key(p.point));
    }
}

/// Margin computation over already-validated, deduped, key-ordered
/// candidates. Margins are measured against the front only, which is
/// exact: a plain dominator f of any ε-dominator q of p satisfies
/// f·(1+b) + b·floor ≤ q·(1+b) + b·floor ≤ p componentwise (strict
/// wherever q was strict), so f excludes p at every band q does. Front
/// members themselves are never ε-dominated (that would imply plain
/// dominance within the front for non-negative objectives), so every
/// margin is well-defined and the band always contains the front.
std::vector<PromotionMargin> margins_of(
    const std::vector<const EvalResult*>& candidates,
    const ObjectiveSet& objectives, double abs_floor) {
  const std::vector<const EvalResult*> front = front_of(candidates, objectives);
  std::vector<PromotionMargin> out;
  out.reserve(candidates.size());
  for (const EvalResult* cand : candidates) {
    // Per objective, f's ε-dominance constraint f_o·(1+b) + b·floor ≤
    // cand_o *holds* for b up to hold_o := (cand_o − f_o) / (f_o + floor)
    // and is *strict* for b < that same bound — except when the
    // denominator is 0 (f_o == 0 at abs_floor == 0): there the inflated
    // value stays 0, so the constraint holds at every band and is strict
    // iff cand_o > 0, never on an exact tie (a vacuous constraint must
    // not shield a candidate that is worse elsewhere). f therefore
    // excludes cand on [0, min_o hold_o] ∩ [0, max_o strict_o) and the
    // candidate enters the band at the latest exclusion endpoint over
    // all front members.
    double enter = 0.0;
    bool inclusive = true;
    for (const EvalResult* f : front) {
      double min_hold = std::numeric_limits<double>::infinity();
      double max_strict = -std::numeric_limits<double>::infinity();
      for (Objective o : objectives.list()) {
        const double fv = f->obj.minimized(o), cv = cand->obj.minimized(o);
        const double denom = fv + abs_floor;
        double hold, strict;
        if (denom > 0.0) {
          hold = strict = (cv - fv) / denom;
        } else {
          hold = std::numeric_limits<double>::infinity();
          strict = cv > 0.0 ? hold : -hold;
        }
        min_hold = std::min(min_hold, hold);
        max_strict = std::max(max_strict, strict);
      }
      if (max_strict <= 0.0) continue;  // never strictly better
      if (min_hold < 0.0) continue;     // cand strictly better somewhere
      // min_hold < max_strict: some objective is still strict at the
      // hold bound, so the endpoint itself is excluded and cand enters
      // only beyond it. Otherwise strictness runs out first — at
      // b == max_strict no strict win is left — and cand is already in
      // the band at that (inclusive) threshold.
      const double f_enter = std::min(min_hold, max_strict);
      const bool entry_inclusive = min_hold >= max_strict;
      if (f_enter > enter ||
          (f_enter == enter && inclusive && !entry_inclusive)) {
        enter = f_enter;
        inclusive = entry_inclusive;
      }
    }
    out.push_back(PromotionMargin{*cand, enter, inclusive});
  }
  return out;
}

}  // namespace

std::vector<PromotionMargin> promotion_margins(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives,
    double abs_floor) {
  check_band_objectives(points, objectives, abs_floor);
  return margins_of(deduped_in_key_order(points), objectives, abs_floor);
}

std::vector<PromotionMargin> promotion_margins_by_workload(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives,
    double abs_floor) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<PromotionMargin> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<PromotionMargin> margins =
        promotion_margins(group, objectives, abs_floor);
    out.insert(out.end(), std::make_move_iterator(margins.begin()),
               std::make_move_iterator(margins.end()));
  }
  return out;
}

std::vector<PromotionMargin> ranked_margins_by_workload(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives,
    double abs_floor) {
  std::vector<PromotionMargin> margins =
      promotion_margins_by_workload(points, objectives, abs_floor);
  // Rank: closest to the front first. At equal margins a threshold-
  // inclusive point enters the band strictly before an exclusive one;
  // remaining ties break on the canonical key, so the cut at any budget
  // boundary is total-ordered and schedule-independent (keys are unique
  // after dedup). Keys are precomputed once — building them inside the
  // comparator would pay an allocation per comparison.
  std::vector<size_t> order(margins.size());
  std::vector<std::string> keys;
  keys.reserve(margins.size());
  for (size_t i = 0; i < margins.size(); ++i) {
    order[i] = i;
    keys.push_back(canonical_key(margins[i].result.point));
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (margins[a].enter_band != margins[b].enter_band)
      return margins[a].enter_band < margins[b].enter_band;
    if (margins[a].enter_inclusive != margins[b].enter_inclusive)
      return margins[a].enter_inclusive;
    return keys[a] < keys[b];
  });
  std::vector<PromotionMargin> ranked;
  ranked.reserve(margins.size());
  for (const size_t i : order) ranked.push_back(std::move(margins[i]));
  return ranked;
}

std::vector<EvalResult> best_by_margin(const std::vector<EvalResult>& points,
                                       index_t n,
                                       const ObjectiveSet& objectives,
                                       double abs_floor) {
  APSQ_CHECK_MSG(n >= 0, "margin budget must be >= 0, got " << n);
  std::vector<PromotionMargin> ranked =
      ranked_margins_by_workload(points, objectives, abs_floor);
  if (static_cast<size_t>(n) < ranked.size())
    ranked.resize(static_cast<size_t>(n));
  std::vector<EvalResult> out;
  out.reserve(ranked.size());
  for (PromotionMargin& m : ranked) out.push_back(std::move(m.result));
  return out;
}

std::vector<EvalResult> epsilon_band(const std::vector<EvalResult>& points,
                                     double band,
                                     const ObjectiveSet& objectives,
                                     double abs_floor) {
  APSQ_CHECK_MSG(band >= 0.0, "epsilon band must be >= 0, got " << band);
  const std::vector<PromotionMargin> margins =
      promotion_margins(points, objectives, abs_floor);
  std::vector<EvalResult> out;
  out.reserve(margins.size());
  if (!std::isfinite(band)) {
    // Infinite slack keeps everything outright (margins are finite except
    // in the abs_floor == 0 zero-objective degenerate, where ∞ > ∞ would
    // wrongly drop points): the mixed sweep's "promote every point" mode.
    for (const PromotionMargin& m : margins) out.push_back(m.result);
    return out;
  }
  for (const PromotionMargin& m : margins)
    if (m.in_band(band)) out.push_back(m.result);
  return out;
}

std::vector<EvalResult> epsilon_band_by_workload(
    const std::vector<EvalResult>& points, double band,
    const ObjectiveSet& objectives, double abs_floor) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<EvalResult> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<EvalResult> band_set =
        epsilon_band(group, band, objectives, abs_floor);
    out.insert(out.end(), std::make_move_iterator(band_set.begin()),
               std::make_move_iterator(band_set.end()));
  }
  return out;
}

std::vector<EvalResult> pareto_front_by_workload(
    const std::vector<EvalResult>& points, const ObjectiveSet& objectives) {
  std::map<std::string, std::vector<EvalResult>> groups;  // sorted by name
  for (const EvalResult& p : points) groups[p.point.workload].push_back(p);
  std::vector<EvalResult> out;
  for (const auto& [name, group] : groups) {
    (void)name;
    std::vector<EvalResult> front = pareto_front(group, objectives);
    out.insert(out.end(), std::make_move_iterator(front.begin()),
               std::make_move_iterator(front.end()));
  }
  return out;
}

}  // namespace apsq::dse
