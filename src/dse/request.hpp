// RequestSpec: the one validated "please run this sweep and shape the
// report like so" object every entry point shares. A daemon request, a
// --jobs experiment, and a CLI invocation all deserialize into this
// struct through apply_request_field(), so the three paths recognize the
// same keys, enforce the same ranges, and reject with the same messages —
// the request API exists once, not once per transport.
//
// The recognized JSON keys mirror the apsq_dse flags one-to-one:
//
//   name, space, backend, objectives, promote_objectives, threads,
//   sim_threads, seed, shrink, max_dim, calibrate, calibrate_per_class,
//   calibration_csv, promote_band, promote_adaptive, promote_budget,
//   where, csv, front_csv, top
//
// Parsing is strict (unknown key / wrong type / out-of-range value throw
// naming the source, the context, and the key) but deliberately
// per-field: the cross-field consistency rules stay in
// SweepConfig::validate(), which the driver runs after assembly.
#pragma once

#include <string>

#include "dse/sweep.hpp"

namespace apsq {
class JsonValue;
}

namespace apsq::dse {

/// One request: a sweep plus its report shape.
struct RequestSpec {
  std::string name;  ///< experiment / request label
  SweepConfig config;
  std::string csv;        ///< write every evaluated point here
  std::string front_csv;  ///< write the front here
  int top = 20;           ///< front rows to print / return (0 = all)
};

/// Throw the canonical request-parse error: "<source>: <where>: <reason>"
/// as std::runtime_error. `source` is the spec path or "request";
/// `where` the context ("experiment 2", "defaults", "request").
[[noreturn]] void request_error(const std::string& source,
                                const std::string& where,
                                const std::string& reason);

/// Apply one recognized field to a request. Returns false on an
/// unrecognized key (the caller decides whether that is an error — the
/// job-spec path names the experiment, the daemon names the request).
/// Type mismatches and out-of-range values throw via request_error.
bool apply_request_field(const std::string& key, const JsonValue& v,
                         RequestSpec& r, const std::string& source,
                         const std::string& where);

/// Apply every member of a JSON object, rejecting unknown keys. With
/// `allow_name` false, "name" is rejected too (a defaults block cannot
/// name anything).
void apply_request_object(const JsonValue& obj, RequestSpec& r,
                          const std::string& source, const std::string& where,
                          bool allow_name);

}  // namespace apsq::dse
