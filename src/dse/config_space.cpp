#include "dse/config_space.hpp"

#include "common/check.hpp"

namespace apsq::dse {

index_t ConfigSpace::size() const {
  return static_cast<index_t>(workloads.size()) *
         static_cast<index_t>(dataflows.size()) *
         static_cast<index_t>(psum_configs.size()) *
         static_cast<index_t>(geometries.size()) *
         static_cast<index_t>(buffers.size());
}

DesignPoint ConfigSpace::at(index_t i) const {
  APSQ_CHECK_MSG(i >= 0 && i < size(), "design-point index out of range");
  const index_t nb = static_cast<index_t>(buffers.size());
  const index_t ng = static_cast<index_t>(geometries.size());
  const index_t np = static_cast<index_t>(psum_configs.size());
  const index_t nd = static_cast<index_t>(dataflows.size());

  const index_t bi = i % nb;
  i /= nb;
  const index_t gi = i % ng;
  i /= ng;
  const index_t pi = i % np;
  i /= np;
  const index_t di = i % nd;
  i /= nd;
  const index_t wi = i;

  DesignPoint p;
  p.workload = workloads[static_cast<size_t>(wi)];
  p.dataflow = dataflows[static_cast<size_t>(di)];
  p.psum = psum_configs[static_cast<size_t>(pi)];
  const PeGeometry& g = geometries[static_cast<size_t>(gi)];
  const BufferSizing& b = buffers[static_cast<size_t>(bi)];
  p.acc.po = g.po;
  p.acc.pci = g.pci;
  p.acc.pco = g.pco;
  p.acc.ifmap_buf_bytes = b.ifmap_bytes;
  p.acc.ofmap_buf_bytes = b.ofmap_bytes;
  p.acc.weight_buf_bytes = b.weight_bytes;
  p.acc.act_bits = act_bits;
  p.acc.weight_bits = weight_bits;
  return p;
}

void ConfigSpace::validate() const {
  APSQ_CHECK_MSG(!workloads.empty() && !dataflows.empty() &&
                     !psum_configs.empty() && !geometries.empty() &&
                     !buffers.empty(),
                 "every ConfigSpace axis needs at least one value");
  for (const auto& pc : psum_configs) pc.validate();
  for (const auto& g : geometries) APSQ_CHECK(g.po > 0 && g.pci > 0 && g.pco > 0);
  for (const auto& b : buffers)
    APSQ_CHECK(b.ifmap_bytes > 0 && b.ofmap_bytes > 0 && b.weight_bytes > 0);
  APSQ_CHECK(act_bits > 0 && weight_bits > 0);
}

std::vector<PsumConfig> ConfigSpace::default_psum_axis() {
  std::vector<PsumConfig> axis;
  for (int bits : {4, 6, 8, 12, 16})
    for (index_t gs = 1; gs <= 4; ++gs)
      axis.push_back(PsumConfig::apsq_bits(bits, gs));
  // Prior-work PSQ: low-bit storage, independent per-tile quantization.
  // (16-bit PSQ doubles as the INT16 baseline of Fig. 1.)
  for (int bits : {4, 6, 8, 12, 16}) axis.push_back(PsumConfig{bits, false, 1});
  axis.push_back(PsumConfig::baseline_int32());
  return axis;
}

ConfigSpace ConfigSpace::paper_default() {
  ConfigSpace s;
  s.workloads = {"bert", "llama2", "segformer", "efficientvit"};
  s.dataflows = {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS};
  s.psum_configs = default_psum_axis();
  // §IV-A DNN parallelism and the §IV-D LLM-decoding parallelism.
  s.geometries = {PeGeometry{16, 8, 8}, PeGeometry{1, 32, 32}};
  // Paper buffers and a half-sized variant (probes the spill cliffs).
  s.buffers = {BufferSizing{256 * 1024, 256 * 1024, 128 * 1024},
               BufferSizing{128 * 1024, 128 * 1024, 64 * 1024}};
  return s;
}

ConfigSpace ConfigSpace::smoke() {
  ConfigSpace s;
  s.workloads = {"bert"};
  s.dataflows = {Dataflow::kWS, Dataflow::kIS};
  s.psum_configs = {PsumConfig::baseline_int32(), PsumConfig::apsq_int8(1),
                    PsumConfig::apsq_int8(4), PsumConfig{8, false, 1}};
  s.geometries = {PeGeometry{16, 8, 8}};
  s.buffers = {BufferSizing{}};
  return s;
}

}  // namespace apsq::dse
