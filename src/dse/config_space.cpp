#include "dse/config_space.hpp"

#include "common/check.hpp"

namespace apsq::dse {

std::vector<AxisDesc> ConfigSpace::axes() const {
  std::vector<AxisDesc> ax;
  ax.push_back({"workload", static_cast<index_t>(workloads.size()),
                [this](DesignPoint& p, index_t v) {
                  p.workload = workloads[static_cast<size_t>(v)];
                }});
  ax.push_back({"dataflow", static_cast<index_t>(dataflows.size()),
                [this](DesignPoint& p, index_t v) {
                  p.dataflow = dataflows[static_cast<size_t>(v)];
                }});
  ax.push_back({"psum", static_cast<index_t>(psum_configs.size()),
                [this](DesignPoint& p, index_t v) {
                  p.psum = psum_configs[static_cast<size_t>(v)];
                }});
  ax.push_back({"geometry", static_cast<index_t>(geometries.size()),
                [this](DesignPoint& p, index_t v) {
                  const PeGeometry& g = geometries[static_cast<size_t>(v)];
                  p.acc.po = g.po;
                  p.acc.pci = g.pci;
                  p.acc.pco = g.pco;
                }});
  ax.push_back({"buffers", static_cast<index_t>(buffers.size()),
                [this](DesignPoint& p, index_t v) {
                  const BufferSizing& b = buffers[static_cast<size_t>(v)];
                  p.acc.ifmap_buf_bytes = b.ifmap_bytes;
                  p.acc.ofmap_buf_bytes = b.ofmap_bytes;
                  p.acc.weight_buf_bytes = b.weight_bytes;
                }});
  // Fine axes append after the coarse ones (faster-varying) and override
  // the single field the coarse decode already wrote, so a legacy space
  // (all fine axes empty) enumerates byte-identically to the historic
  // five-axis divmod chain.
  if (!ifmap_bytes_axis.empty())
    ax.push_back({"ifmap_bytes", static_cast<index_t>(ifmap_bytes_axis.size()),
                  [this](DesignPoint& p, index_t v) {
                    p.acc.ifmap_buf_bytes = ifmap_bytes_axis[static_cast<size_t>(v)];
                  }});
  if (!ofmap_bytes_axis.empty())
    ax.push_back({"ofmap_bytes", static_cast<index_t>(ofmap_bytes_axis.size()),
                  [this](DesignPoint& p, index_t v) {
                    p.acc.ofmap_buf_bytes = ofmap_bytes_axis[static_cast<size_t>(v)];
                  }});
  if (!weight_bytes_axis.empty())
    ax.push_back({"weight_bytes",
                  static_cast<index_t>(weight_bytes_axis.size()),
                  [this](DesignPoint& p, index_t v) {
                    p.acc.weight_buf_bytes =
                        weight_bytes_axis[static_cast<size_t>(v)];
                  }});
  if (!act_bits_axis.empty())
    ax.push_back({"act_bits", static_cast<index_t>(act_bits_axis.size()),
                  [this](DesignPoint& p, index_t v) {
                    p.acc.act_bits = act_bits_axis[static_cast<size_t>(v)];
                  }});
  if (!weight_bits_axis.empty())
    ax.push_back({"weight_bits", static_cast<index_t>(weight_bits_axis.size()),
                  [this](DesignPoint& p, index_t v) {
                    p.acc.weight_bits = weight_bits_axis[static_cast<size_t>(v)];
                  }});
  return ax;
}

index_t ConfigSpace::size() const {
  index_t n = 1;
  for (const AxisDesc& axis : axes()) {
    index_t next = 0;
    APSQ_CHECK_MSG(!__builtin_mul_overflow(n, axis.count, &next),
                   "config-space size overflows 64-bit index arithmetic");
    n = next;
  }
  return n;
}

DesignPoint ConfigSpace::at(index_t i) const {
  APSQ_CHECK_MSG(i >= 0 && i < size(), "design-point index out of range");
  const std::vector<AxisDesc> ax = axes();
  // Mixed-radix digits, last axis fastest. All 64-bit: a digit of a
  // >2³²-point space must never pass through a narrower intermediate.
  std::vector<index_t> digit(ax.size(), 0);
  for (size_t a = ax.size(); a-- > 0;) {
    digit[a] = i % ax[a].count;
    i /= ax[a].count;
  }
  DesignPoint p;
  p.acc.act_bits = act_bits;
  p.acc.weight_bits = weight_bits;
  for (size_t a = 0; a < ax.size(); ++a) ax[a].apply(p, digit[a]);
  return p;
}

void ConfigSpace::validate() const {
  APSQ_CHECK_MSG(!workloads.empty() && !dataflows.empty() &&
                     !psum_configs.empty() && !geometries.empty() &&
                     !buffers.empty(),
                 "every ConfigSpace axis needs at least one value");
  for (const auto& pc : psum_configs) pc.validate();
  for (const auto& g : geometries) APSQ_CHECK(g.po > 0 && g.pci > 0 && g.pco > 0);
  for (const auto& b : buffers)
    APSQ_CHECK(b.ifmap_bytes > 0 && b.ofmap_bytes > 0 && b.weight_bytes > 0);
  APSQ_CHECK(act_bits > 0 && weight_bits > 0);
  for (i64 v : ifmap_bytes_axis) APSQ_CHECK(v > 0);
  for (i64 v : ofmap_bytes_axis) APSQ_CHECK(v > 0);
  for (i64 v : weight_bytes_axis) APSQ_CHECK(v > 0);
  for (int v : act_bits_axis) APSQ_CHECK(v > 0);
  for (int v : weight_bits_axis) APSQ_CHECK(v > 0);
}

std::vector<PsumConfig> ConfigSpace::default_psum_axis() {
  std::vector<PsumConfig> axis;
  for (int bits : {4, 6, 8, 12, 16})
    for (index_t gs = 1; gs <= 4; ++gs)
      axis.push_back(PsumConfig::apsq_bits(bits, gs));
  // Prior-work PSQ: low-bit storage, independent per-tile quantization.
  // (16-bit PSQ doubles as the INT16 baseline of Fig. 1.)
  for (int bits : {4, 6, 8, 12, 16}) axis.push_back(PsumConfig{bits, false, 1});
  axis.push_back(PsumConfig::baseline_int32());
  return axis;
}

ConfigSpace ConfigSpace::paper_default() {
  ConfigSpace s;
  s.workloads = {"bert", "llama2", "segformer", "efficientvit"};
  s.dataflows = {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS};
  s.psum_configs = default_psum_axis();
  // §IV-A DNN parallelism and the §IV-D LLM-decoding parallelism.
  s.geometries = {PeGeometry{16, 8, 8}, PeGeometry{1, 32, 32}};
  // Paper buffers and a half-sized variant (probes the spill cliffs).
  s.buffers = {BufferSizing{256 * 1024, 256 * 1024, 128 * 1024},
               BufferSizing{128 * 1024, 128 * 1024, 64 * 1024}};
  return s;
}

ConfigSpace ConfigSpace::smoke() {
  ConfigSpace s;
  s.workloads = {"bert"};
  s.dataflows = {Dataflow::kWS, Dataflow::kIS};
  s.psum_configs = {PsumConfig::baseline_int32(), PsumConfig::apsq_int8(1),
                    PsumConfig::apsq_int8(4), PsumConfig{8, false, 1}};
  s.geometries = {PeGeometry{16, 8, 8}};
  s.buffers = {BufferSizing{}};
  return s;
}

ConfigSpace ConfigSpace::fine_default() {
  ConfigSpace s;
  s.workloads = {"bert", "llama2", "segformer", "efficientvit"};
  s.dataflows = {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS};
  s.psum_configs = default_psum_axis();
  // Parallelism grid spanning the paper's DNN (16,8,8) and LLM (1,32,32)
  // corners: 6 × 4 × 4 = 96 geometries.
  for (index_t po : {1, 2, 4, 8, 16, 32})
    for (index_t pci : {4, 8, 16, 32})
      for (index_t pco : {4, 8, 16, 32})
        s.geometries.push_back(PeGeometry{po, pci, pco});
  // The coarse buffer axis degenerates to one placeholder entry; the fine
  // per-component axes below override each field independently.
  s.buffers = {BufferSizing{}};
  for (i64 kb : {64, 96, 128, 192, 256, 384, 512})
    s.ifmap_bytes_axis.push_back(kb * 1024);
  s.ofmap_bytes_axis = s.ifmap_bytes_axis;
  for (i64 kb : {32, 48, 64, 96, 128, 192, 256})
    s.weight_bytes_axis.push_back(kb * 1024);
  s.act_bits_axis = {4, 6, 8};
  s.weight_bits_axis = {4, 8};
  return s;
}

}  // namespace apsq::dse
