// Analytical accelerator configuration (Fig. 2 / §IV-A).
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

struct AcceleratorConfig {
  // MAC-array parallelism.
  index_t po = 16;   ///< output-pixel (token) parallelism
  index_t pci = 8;   ///< input-channel parallelism
  index_t pco = 8;   ///< output-channel parallelism

  // On-chip buffer capacities in bytes (§IV-A: 256 KB ifmap, 256 KB ofmap,
  // 128 KB weight).
  i64 ifmap_buf_bytes = 256 * 1024;
  i64 ofmap_buf_bytes = 256 * 1024;
  i64 weight_buf_bytes = 128 * 1024;

  // Operand precisions in bits (W8A8 throughout the paper).
  int act_bits = 8;
  int weight_bits = 8;

  void validate() const {
    APSQ_CHECK(po > 0 && pci > 0 && pco > 0);
    APSQ_CHECK(ifmap_buf_bytes > 0 && ofmap_buf_bytes > 0 && weight_buf_bytes > 0);
    APSQ_CHECK(act_bits > 0 && weight_bits > 0);
  }

  double act_bytes() const { return act_bits / 8.0; }
  double weight_bytes() const { return weight_bits / 8.0; }

  /// The paper's CNN/Transformer configuration (§IV-A).
  static AcceleratorConfig dnn_default() { return AcceleratorConfig{}; }

  /// The paper's LLM decoding configuration: Po=1, Pci=32, Pco=32.
  static AcceleratorConfig llm_default() {
    AcceleratorConfig c;
    c.po = 1;
    c.pci = 32;
    c.pco = 32;
    return c;
  }
};

}  // namespace apsq
