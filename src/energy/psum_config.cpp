#include "energy/psum_config.hpp"

namespace apsq {

double PsumConfig::beta(int act_bits) const {
  APSQ_CHECK(act_bits > 0);
  return static_cast<double>(psum_bits) / static_cast<double>(act_bits);
}

}  // namespace apsq
