// Layer shape description for the analytical energy model.
//
// Every workload layer is modeled as a GEMM / pointwise-convolution:
//   ofmap[rows, co] = ifmap[rows, ci] · weight[ci, co]
// where `rows` is the number of output pixels / tokens (Ho·Wo in the
// paper's notation; the spatial tiling is one-dimensional over rows with
// tile height Po). Attention matmuls put the K/V operand in the weight
// role. `repeat` folds identical layers (e.g. 12 BERT encoder blocks).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace apsq {

struct LayerShape {
  std::string name;
  index_t rows = 0;  ///< Ho·Wo (tokens / output pixels)
  index_t ci = 0;    ///< input channels (accumulation dimension)
  index_t co = 0;    ///< output channels
  index_t repeat = 1;

  /// MACs for one instance of the layer.
  i64 macs() const { return static_cast<i64>(rows) * ci * co; }

  /// ifmap / weight / ofmap sizes in elements (one instance).
  i64 ifmap_elems() const { return static_cast<i64>(rows) * ci; }
  i64 weight_elems() const { return static_cast<i64>(ci) * co; }
  i64 ofmap_elems() const { return static_cast<i64>(rows) * co; }
};

/// A named list of layers == one model workload.
struct Workload {
  std::string name;
  std::vector<LayerShape> layers;

  i64 total_macs() const;
};

}  // namespace apsq
