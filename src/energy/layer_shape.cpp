#include "energy/layer_shape.hpp"

namespace apsq {

i64 Workload::total_macs() const {
  i64 total = 0;
  for (const auto& l : layers) total += l.macs() * l.repeat;
  return total;
}

}  // namespace apsq
