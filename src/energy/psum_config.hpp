// PSUM precision / handling configuration for the energy model (Eq. 2's β
// factor plus the gs-dependent buffer footprint of §III-B / §IV-C).
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

struct PsumConfig {
  int psum_bits = 32;     ///< stored PSUM precision
  bool apsq = false;      ///< true: APSQ grouping active (low-bit storage)
  index_t group_size = 1; ///< gs (only meaningful when apsq == true)

  /// β of Eq. (2): PSUM precision relative to the activation precision.
  double beta(int act_bits) const;

  /// Bytes occupied by one stored PSUM element.
  double bytes_per_elem() const { return psum_bits / 8.0; }

  /// Footprint multiplier: the grouping strategy keeps gs quantized tiles
  /// live per group (Algorithm 1), so the PSUM working set scales by gs.
  index_t footprint_multiplier() const { return apsq ? group_size : 1; }

  void validate() const {
    APSQ_CHECK(psum_bits >= 2 && psum_bits <= 64);
    APSQ_CHECK(group_size >= 1);
  }

  /// INT32-PSUM baseline of the paper's experiments.
  static PsumConfig baseline_int32() { return PsumConfig{32, false, 1}; }
  /// INT16 PSUM (Fig. 1 middle bars).
  static PsumConfig baseline_int16() { return PsumConfig{16, false, 1}; }
  /// APSQ with INT8 PSUMs and group size gs (the paper's main setting).
  static PsumConfig apsq_int8(index_t gs) { return PsumConfig{8, true, gs}; }
  /// APSQ at reduced precision (Fig. 5's INT6/INT4 bars).
  static PsumConfig apsq_bits(int bits, index_t gs) {
    return PsumConfig{bits, true, gs};
  }
};

}  // namespace apsq
