#include "energy/costs.hpp"

namespace apsq {

EnergyCosts EnergyCosts::horowitz() { return EnergyCosts{}; }

}  // namespace apsq
