#include "energy/energy_model.hpp"

namespace apsq {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  ifmap_pj += other.ifmap_pj;
  weight_pj += other.weight_pj;
  psum_pj += other.psum_pj;
  ofmap_pj += other.ofmap_pj;
  mac_pj += other.mac_pj;
  sram_pj += other.sram_pj;
  dram_pj += other.dram_pj;
  return *this;
}

EnergyBreakdown layer_energy(Dataflow df, const LayerShape& layer,
                             const AcceleratorConfig& acc,
                             const PsumConfig& psum, const EnergyCosts& costs) {
  const AccessCounts n = compute_access_counts(df, layer, acc, psum);

  const double si = static_cast<double>(layer.ifmap_elems()) * acc.act_bytes();
  const double sw =
      static_cast<double>(layer.weight_elems()) * acc.weight_bytes();
  const double so = static_cast<double>(layer.ofmap_elems()) * acc.act_bytes();
  // Eq. (2): PSUM traffic is scaled by β relative to the ofmap size —
  // equivalently, each PSUM element moves psum bytes instead of act bytes.
  const double sp =
      static_cast<double>(layer.ofmap_elems()) * psum.bytes_per_elem();

  EnergyBreakdown e;
  auto lane = [&](double size_bytes, i64 n_sram, i64 n_dram) {
    const double sram = size_bytes * static_cast<double>(n_sram) *
                        costs.esram_pj_per_byte;
    const double dram = size_bytes * static_cast<double>(n_dram) *
                        costs.edram_pj_per_byte;
    e.sram_pj += sram;
    e.dram_pj += dram;
    return sram + dram;
  };

  e.ifmap_pj = lane(si, n.ifmap_sram, n.ifmap_dram);
  e.weight_pj = lane(sw, n.weight_sram, n.weight_dram);
  e.psum_pj = lane(sp, n.psum_sram, n.psum_dram);
  e.ofmap_pj = lane(so, n.ofmap_sram, n.ofmap_dram);
  e.mac_pj = static_cast<double>(layer.macs()) * costs.emac_pj;
  return e;
}

EnergyBreakdown workload_energy(Dataflow df, const Workload& w,
                                const AcceleratorConfig& acc,
                                const PsumConfig& psum,
                                const EnergyCosts& costs) {
  EnergyBreakdown total;
  for (const auto& layer : w.layers) {
    EnergyBreakdown e = layer_energy(df, layer, acc, psum, costs);
    for (index_t r = 0; r < layer.repeat; ++r) total += e;
  }
  return total;
}

double normalized_energy(Dataflow df, const Workload& w,
                         const AcceleratorConfig& acc, const PsumConfig& cfg,
                         const EnergyCosts& costs) {
  const double base =
      workload_energy(df, w, acc, PsumConfig::baseline_int32(), costs).total_pj();
  const double e = workload_energy(df, w, acc, cfg, costs).total_pj();
  APSQ_CHECK(base > 0.0);
  return e / base;
}

}  // namespace apsq
