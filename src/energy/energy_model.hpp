// Total-energy evaluation (Eqs. 1–2) with per-component breakdown — the
// engine behind Fig. 1, Fig. 5, Fig. 6, and Table IV.
#pragma once

#include <vector>

#include "energy/access_counts.hpp"
#include "energy/costs.hpp"

namespace apsq {

/// Energy of one layer (or a whole workload), split the way Fig. 1 plots
/// it: ifmap / weight / psum / ofmap data movement plus MAC ops, and also
/// split by memory level.
struct EnergyBreakdown {
  double ifmap_pj = 0.0;
  double weight_pj = 0.0;
  double psum_pj = 0.0;
  double ofmap_pj = 0.0;
  double mac_pj = 0.0;

  double sram_pj = 0.0;
  double dram_pj = 0.0;

  double total_pj() const {
    return ifmap_pj + weight_pj + psum_pj + ofmap_pj + mac_pj;
  }
  /// Fraction of total energy spent on PSUM traffic (the 69% of Fig. 1).
  double psum_fraction() const {
    const double t = total_pj();
    return t > 0.0 ? psum_pj / t : 0.0;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/// Energy of a single layer instance under a dataflow / PSUM config.
EnergyBreakdown layer_energy(Dataflow df, const LayerShape& layer,
                             const AcceleratorConfig& acc,
                             const PsumConfig& psum,
                             const EnergyCosts& costs = EnergyCosts::horowitz());

/// Energy of a whole workload (sums layer_energy × repeat).
EnergyBreakdown workload_energy(Dataflow df, const Workload& w,
                                const AcceleratorConfig& acc,
                                const PsumConfig& psum,
                                const EnergyCosts& costs = EnergyCosts::horowitz());

/// Convenience: energy of `cfg` normalized to the INT32 baseline
/// (the y-axis of Figs. 5 and 6).
double normalized_energy(Dataflow df, const Workload& w,
                         const AcceleratorConfig& acc, const PsumConfig& cfg,
                         const EnergyCosts& costs = EnergyCosts::horowitz());

}  // namespace apsq
