// Output-Stationary access counts — analogue of Eqs. (3)–(6) derived in
// DESIGN.md §3.1 (the paper gives no OS equations; it notes OS "updates
// PSUMs directly within low-cost registers", so N^p = 0 by construction).
//
// Each Po×Pco output tile stays in PE registers while all ⌈Ci/Pci⌉ operand
// tiles stream past: the ifmap is re-read once per output-channel tile
// group and the weights once per output-row tile group.
#include "common/math_util.hpp"
#include "energy/access_counts.hpp"

namespace apsq {

namespace detail {

AccessCounts os_access_counts(const LayerShape& layer,
                              const AcceleratorConfig& acc,
                              const PsumConfig& psum) {
  acc.validate();
  psum.validate();
  AccessCounts n;

  const i64 row_tiles = ceil_div(layer.rows, acc.po);
  const i64 co_tiles = ceil_div(layer.co, acc.pco);

  // Same resident ci-slice criterion as WS (see dataflow_ws.cpp).
  const double si_tile_bytes = static_cast<double>(layer.rows) *
                               static_cast<double>(acc.pci) * acc.act_bytes();
  const double sw_bytes =
      static_cast<double>(layer.weight_elems()) * acc.weight_bytes();
  n.ifmap_fits = si_tile_bytes <= static_cast<double>(acc.ifmap_buf_bytes);
  n.weight_fits = sw_bytes <= static_cast<double>(acc.weight_buf_bytes);

  // PSUMs never leave the PE registers.
  n.psum_fits = true;
  n.psum_footprint_bytes = 0.0;
  n.psum_sram = 0;
  n.psum_dram = 0;

  n.ifmap_sram = n.ifmap_fits ? 1 + co_tiles : 2 * co_tiles;
  n.ifmap_dram = n.ifmap_fits ? 1 : co_tiles;

  n.weight_sram = n.weight_fits ? 1 + row_tiles : 2 * row_tiles;
  n.weight_dram = n.weight_fits ? 1 : row_tiles;

  n.ofmap_sram = 2;
  n.ofmap_dram = 1;

  return n;
}

}  // namespace detail

const char* to_string(Dataflow df) {
  switch (df) {
    case Dataflow::kIS: return "IS";
    case Dataflow::kWS: return "WS";
    case Dataflow::kOS: return "OS";
  }
  return "?";
}

namespace detail {
AccessCounts is_access_counts(const LayerShape&, const AcceleratorConfig&,
                              const PsumConfig&);
AccessCounts ws_access_counts(const LayerShape&, const AcceleratorConfig&,
                              const PsumConfig&);
}  // namespace detail

AccessCounts compute_access_counts(Dataflow df, const LayerShape& layer,
                                   const AcceleratorConfig& acc,
                                   const PsumConfig& psum) {
  APSQ_CHECK_MSG(layer.rows > 0 && layer.ci > 0 && layer.co > 0,
                 "degenerate layer shape for " << layer.name);
  switch (df) {
    case Dataflow::kIS: return detail::is_access_counts(layer, acc, psum);
    case Dataflow::kWS: return detail::ws_access_counts(layer, acc, psum);
    case Dataflow::kOS: return detail::os_access_counts(layer, acc, psum);
  }
  APSQ_CHECK_MSG(false, "unreachable");
  return {};
}

}  // namespace apsq
