// Input-Stationary access counts — Eqs. (3) and (4).
//
// IS keeps an ifmap tile of Po rows pinned in the PE-array registers;
// weights stream over it and PSUMs accumulate in the output buffer. The
// number of ifmap tile positions T = ⌈rows/Po⌉ plays the role of
// ⌈Hi/Pih⌉⌈Wi/Piw⌉ in the paper (1-D row tiling, see layer_shape.hpp).
#include "common/math_util.hpp"
#include "energy/access_counts.hpp"

namespace apsq {

namespace detail {

AccessCounts is_access_counts(const LayerShape& layer,
                              const AcceleratorConfig& acc,
                              const PsumConfig& psum) {
  acc.validate();
  psum.validate();
  AccessCounts n;

  const i64 tile_positions = ceil_div(layer.rows, acc.po);
  const i64 ci_tiles = ceil_div(layer.ci, acc.pci);

  const double sw_bytes =
      static_cast<double>(layer.weight_elems()) * acc.weight_bytes();
  n.weight_fits = sw_bytes <= static_cast<double>(acc.weight_buf_bytes);

  // PSUM working set (Eq. 3's (Co/Pco)·S̃p with S̃p = bytes·Po·Pco,
  // times the gs footprint multiplier of the grouping strategy).
  n.psum_footprint_bytes = psum.bytes_per_elem() *
                           static_cast<double>(psum.footprint_multiplier()) *
                           static_cast<double>(layer.co) *
                           static_cast<double>(acc.po);
  n.psum_fits =
      n.psum_footprint_bytes <= static_cast<double>(acc.ofmap_buf_bytes);
  n.ifmap_fits = true;  // IS pins the ifmap tile; residency is by design.

  // Eq. (3) — SRAM.
  n.weight_sram = n.weight_fits ? 1 + tile_positions : 2 * tile_positions;
  n.ifmap_sram = 2;
  n.psum_sram = (n.psum_fits ? 2 : 4) * (ci_tiles - 1);
  n.ofmap_sram = 2;

  // Eq. (4) — DRAM.
  n.weight_dram = n.weight_fits ? 1 : tile_positions;
  n.ifmap_dram = 1;
  n.psum_dram = n.psum_fits ? 0 : 2 * (ci_tiles - 1);
  n.ofmap_dram = 1;

  return n;
}

}  // namespace detail

}  // namespace apsq
