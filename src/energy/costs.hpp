// Per-access energy costs (Eq. 1), following Horowitz, ISSCC 2014 [21] —
// the same source the paper uses.
#pragma once

namespace apsq {

/// Energy cost table. Units: picojoules. SRAM/DRAM costs are per *byte*
/// moved; the MAC cost is per INT8 multiply-accumulate operation.
struct EnergyCosts {
  double edram_pj_per_byte = 156.0;  ///< DDR3: ~1.3 nJ per 64-bit access
  double esram_pj_per_byte = 7.5;    ///< 100-KB-class on-chip SRAM macro
  double emac_pj = 0.55;  ///< INT8 multiply + 32-bit accumulate + pipeline reg

  static EnergyCosts horowitz();
};

}  // namespace apsq
