// Weight-Stationary access counts — Eqs. (5) and (6).
//
// WS pins a Pci×Pco weight kernel in the PE array; ifmap tiles stream over
// it. The ifmap must be re-fetched for every output-channel tile group
// ⌈Co/Pco⌉, and PSUMs for all ⌈rows/Po⌉ output tiles are live at once —
// hence the (Ho·Wo/Po)·S̃p footprint of Eq. (5), the term APSQ attacks.
#include "common/math_util.hpp"
#include "energy/access_counts.hpp"

namespace apsq {

namespace detail {

AccessCounts ws_access_counts(const LayerShape& layer,
                              const AcceleratorConfig& acc,
                              const PsumConfig& psum) {
  acc.validate();
  psum.validate();
  AccessCounts n;

  const i64 co_tiles = ceil_div(layer.co, acc.pco);
  const i64 ci_tiles = ceil_div(layer.ci, acc.pci);

  // S̃i — the enlarged input tile of Eq. (5): the ci-slice that must stay
  // resident while the co tile groups iterate (rows × Pci for a pointwise
  // GEMM; see [16] for the general conv enlargement).
  const double si_tile_bytes = static_cast<double>(layer.rows) *
                               static_cast<double>(acc.pci) * acc.act_bytes();
  n.ifmap_fits = si_tile_bytes <= static_cast<double>(acc.ifmap_buf_bytes);
  n.weight_fits = true;  // WS pins the weight tile; residency is by design.

  // (Ho·Wo/Po)·S̃p with S̃p = bytes·Po·Pco → bytes·rows·Pco, scaled by the
  // grouping footprint multiplier.
  n.psum_footprint_bytes = psum.bytes_per_elem() *
                           static_cast<double>(psum.footprint_multiplier()) *
                           static_cast<double>(layer.rows) *
                           static_cast<double>(acc.pco);
  n.psum_fits =
      n.psum_footprint_bytes <= static_cast<double>(acc.ofmap_buf_bytes);

  // Eq. (5) — SRAM.
  n.ifmap_sram = n.ifmap_fits ? 1 + co_tiles : 2 * co_tiles;
  n.weight_sram = 2;
  n.psum_sram = (n.psum_fits ? 2 : 4) * (ci_tiles - 1);
  n.ofmap_sram = 2;

  // Eq. (6) — DRAM.
  n.ifmap_dram = n.ifmap_fits ? 1 : co_tiles;
  n.weight_dram = 1;
  n.psum_dram = n.psum_fits ? 0 : 2 * (ci_tiles - 1);
  n.ofmap_dram = 1;

  return n;
}

}  // namespace detail

}  // namespace apsq
