// Per-element access counts N^{i/w/p/o}_{s/d} of Eqs. (3)–(6), plus the
// OS-dataflow analogue derived in DESIGN.md §3.1.
#pragma once

#include "energy/accelerator_config.hpp"
#include "energy/layer_shape.hpp"
#include "energy/psum_config.hpp"

namespace apsq {

enum class Dataflow { kIS, kWS, kOS };

const char* to_string(Dataflow df);

/// How many times each element of a tensor is moved at each memory level.
/// (The model is per-element: total bytes = size × count × bytes/elem.)
struct AccessCounts {
  // SRAM
  i64 ifmap_sram = 0;
  i64 weight_sram = 0;
  i64 psum_sram = 0;
  i64 ofmap_sram = 0;
  // DRAM
  i64 ifmap_dram = 0;
  i64 weight_dram = 0;
  i64 psum_dram = 0;
  i64 ofmap_dram = 0;

  // Diagnostics
  bool weight_fits = false;  ///< Sw ≤ Bw (IS/OS) — weights resident on-chip
  bool ifmap_fits = false;   ///< S̃i ≤ Bi (WS/OS)
  bool psum_fits = false;    ///< PSUM working set ≤ Bo

  /// PSUM working-set bytes the fit decision was made on.
  double psum_footprint_bytes = 0.0;
};

/// Evaluate the access-count equations for one layer.
/// IS: Eqs. (3)–(4).  WS: Eqs. (5)–(6).  OS: DESIGN.md §3.1.
///
/// Buffer-fit comparisons use ≤ (see DESIGN.md §3.1 "fit convention").
AccessCounts compute_access_counts(Dataflow df, const LayerShape& layer,
                                   const AcceleratorConfig& acc,
                                   const PsumConfig& psum);

}  // namespace apsq
