#include "sim/memory.hpp"

namespace apsq {

const char* to_string(Operand op) {
  switch (op) {
    case Operand::kIfmap: return "ifmap";
    case Operand::kWeight: return "weight";
    case Operand::kPsum: return "psum";
    case Operand::kOfmap: return "ofmap";
  }
  return "?";
}

i64 TrafficCounters::total_bytes() const {
  i64 t = 0;
  for (i64 b : read_bytes) t += b;
  for (i64 b : write_bytes) t += b;
  return t;
}

Sram::Sram(std::string name, i64 capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {
  APSQ_CHECK(capacity_ > 0);
}

}  // namespace apsq
