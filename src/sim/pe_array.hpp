// The Po × Pci × Pco multiply-accumulate array (Fig. 2).
//
// One "cycle" consumes an ifmap tile [Po × Pci] and a weight tile
// [Pci × Pco] and produces/updates a PSUM tile [Po × Pco] with exact
// INT8 × INT8 → INT32 arithmetic.
#pragma once

#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

class PeArray {
 public:
  PeArray(index_t po, index_t pci, index_t pco);

  index_t po() const { return po_; }
  index_t pci() const { return pci_; }
  index_t pco() const { return pco_; }

  /// psum[po×pco] += a[po×pci] · w[pci×pco]; ragged tiles allowed (rows /
  /// cols may be smaller than the array at tensor edges). Counts one cycle
  /// and rows·k·cols MACs.
  void mac_tile(const TensorI8& a, const TensorI8& w, TensorI32& psum);

  i64 cycles() const { return cycles_; }
  i64 mac_ops() const { return mac_ops_; }

  /// MAC issue slots offered so far: cycles · po · pci · pco.
  i64 mac_slots() const { return cycles_ * po_ * pci_ * pco_; }

  /// Fraction of issue slots that performed useful MACs (< 1 on ragged
  /// edge tiles) — the per-array view of LayerPerformance::utilization.
  double utilization() const {
    return cycles_ > 0 ? static_cast<double>(mac_ops_) /
                             static_cast<double>(mac_slots())
                       : 0.0;
  }

  void reset();

 private:
  index_t po_, pci_, pco_;
  i64 cycles_ = 0;
  i64 mac_ops_ = 0;
};

}  // namespace apsq
