#include "sim/workload_runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "tensor/matmul.hpp"

namespace apsq {

namespace {

TensorI8 random_operand(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

void accumulate(SimStats& total, const SimStats& s, index_t repeat) {
  total.cycles += s.cycles * repeat;
  total.mac_ops += s.mac_ops * repeat;
  for (size_t k = 0; k < 4; ++k) {
    total.sram.read_bytes[k] += s.sram.read_bytes[k] * repeat;
    total.sram.write_bytes[k] += s.sram.write_bytes[k] * repeat;
    total.dram.read_bytes[k] += s.dram.read_bytes[k] * repeat;
    total.dram.write_bytes[k] += s.dram.write_bytes[k] * repeat;
  }
  total.psum_boundary.init_write_sram_bytes +=
      s.psum_boundary.init_write_sram_bytes * repeat;
  total.psum_boundary.final_read_sram_bytes +=
      s.psum_boundary.final_read_sram_bytes * repeat;
  total.psum_spilled = total.psum_spilled || s.psum_spilled;
}

}  // namespace

LayerShape scale_layer(const LayerShape& layer, const WorkloadRunOptions& opt) {
  APSQ_CHECK(opt.shrink >= 1 && opt.max_dim >= 1);
  auto scale = [&](index_t d) {
    return std::min(opt.max_dim, std::max<index_t>(1, d / opt.shrink));
  };
  LayerShape s = layer;
  s.rows = scale(layer.rows);
  s.ci = scale(layer.ci);
  s.co = scale(layer.co);
  return s;
}

WorkloadRunResult run_workload(const Workload& w, const SimConfig& cfg,
                               const WorkloadRunOptions& opt) {
  WorkloadRunResult result;
  Rng rng(opt.seed);

  for (const auto& layer : w.layers) {
    const LayerShape scaled = scale_layer(layer, opt);
    const TensorI8 x = random_operand({scaled.rows, scaled.ci}, rng);
    const TensorI8 wt = random_operand({scaled.ci, scaled.co}, rng);

    SimConfig layer_cfg = cfg;
    if (cfg.psum.apsq || cfg.psq_prior_work) {
      // Auto-calibrate the PSUM shift from the exact outputs, matching the
      // nearest-pow2 rule the QAT calibrator uses.
      const TensorI32 exact = matmul_i8(x, wt);
      i64 mx = 1;
      for (index_t i = 0; i < exact.numel(); ++i)
        mx = std::max<i64>(mx, std::abs(static_cast<i64>(exact[i])));
      const double needed = static_cast<double>(mx) / 127.0;
      const int e = std::max(
          0, static_cast<int>(round_half_away(std::log2(needed))));
      layer_cfg.psum_exponents = {e};
    }

    Accelerator acc(layer_cfg);
    SimResult r = acc.run_gemm(x, wt);

    accumulate(result.total, r.stats, layer.repeat);
    result.layers.push_back(
        LayerRunStats{layer.name, scaled, std::move(r.stats), layer.repeat});
  }
  return result;
}

}  // namespace apsq
