#include "sim/workload_runner.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"
#include "tensor/matmul.hpp"

namespace apsq {

namespace {

TensorI8 random_operand(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

/// Deterministic RNG stream index for a scaled shape: operands are drawn
/// per shape (not per layer position), so identical shapes see identical
/// operands regardless of execution order — the property that makes the
/// per-shape calibration memo sound and layer-parallel runs byte-identical.
u64 shape_stream_key(const LayerShape& s) {
  u64 h = 0x243F6A8885A308D3ULL;  // arbitrary non-zero offset basis
  for (u64 d : {static_cast<u64>(s.rows), static_cast<u64>(s.ci),
                static_cast<u64>(s.co)}) {
    h ^= d + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void accumulate(SimStats& total, const SimStats& s, index_t repeat) {
  total.cycles += s.cycles * repeat;
  total.mac_ops += s.mac_ops * repeat;
  total.sram.add_scaled(s.sram, repeat);
  total.dram.add_scaled(s.dram, repeat);
  total.psum_boundary.init_write_sram_bytes +=
      s.psum_boundary.init_write_sram_bytes * repeat;
  total.psum_boundary.final_read_sram_bytes +=
      s.psum_boundary.final_read_sram_bytes * repeat;
  total.psum_spilled = total.psum_spilled || s.psum_spilled;
}

/// Per-(shape, seed) memo for the calibration exponent. The exact GEMM it
/// avoids costs as much as the simulated layer itself, so workloads with
/// repeated shapes (every transformer) roughly halve their APSQ sim time.
/// Thread-safe; a race double-computes the identical value (benign).
class CalibrationMemo {
 public:
  int get_or_compute(const LayerShape& shape, const TensorI8& x,
                     const TensorI8& wt) {
    const u64 key = shape_stream_key(shape);
    {
      MutexLock lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) return it->second;
    }
    const TensorI32 exact = matmul_i8(x, wt);
    const int e = calibrate_psum_exponent(exact);
    MutexLock lock(mu_);
    ++computed_;
    return map_.emplace(key, e).first->second;
  }

  /// Exact GEMMs actually run (losers of a compute race included — the
  /// work was done even if the insert wasn't first). The memo owns its
  /// counter so the count moves under the same mutex as the map it
  /// describes, instead of a caller-stack reference the static analysis
  /// cannot tie to the lock.
  index_t computed() const {
    MutexLock lock(mu_);
    return computed_;
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<u64, int> map_ APSQ_GUARDED_BY(mu_);
  index_t computed_ APSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

LayerShape scale_layer(const LayerShape& layer, const WorkloadRunOptions& opt) {
  APSQ_CHECK(opt.shrink >= 1 && opt.max_dim >= 1);
  auto scale = [&](index_t d) {
    return std::min(opt.max_dim, std::max<index_t>(1, d / opt.shrink));
  };
  LayerShape s = layer;
  s.rows = scale(layer.rows);
  s.ci = scale(layer.ci);
  s.co = scale(layer.co);
  return s;
}

Workload scale_workload(const Workload& w, const WorkloadRunOptions& opt) {
  Workload scaled;
  scaled.name = w.name;
  scaled.layers.reserve(w.layers.size());
  for (const LayerShape& layer : w.layers)
    scaled.layers.push_back(scale_layer(layer, opt));
  return scaled;
}

int psum_exponent_for_max(i64 max_abs) {
  APSQ_CHECK(max_abs >= 0);
  // Nearest-pow2 rule, matching the QAT calibrator; clamped to the RAE
  // shifter's representable exponents [0, 31] (psum_dequantize_shift is a
  // left shift of an i32 code — 32 and above would be unrepresentable).
  const double needed = static_cast<double>(std::max<i64>(1, max_abs)) / 127.0;
  const int e = static_cast<int>(round_half_away(std::log2(needed)));
  return std::min(31, std::max(0, e));
}

int calibrate_psum_exponent(const TensorI32& exact) {
  i64 mx = 1;
  for (index_t i = 0; i < exact.numel(); ++i)
    mx = std::max<i64>(mx, std::abs(static_cast<i64>(exact[i])));
  return psum_exponent_for_max(mx);
}

double WorkloadRunResult::latency_s(const PerfConfig& perf) const {
  APSQ_CHECK(std::isfinite(perf.clock_hz) && perf.clock_hz > 0.0);
  APSQ_CHECK(std::isfinite(perf.dram_bandwidth_gbps) &&
             perf.dram_bandwidth_gbps > 0.0);
  double total_s = 0.0;
  for (const LayerRunStats& lr : layers) {
    const double compute_s =
        static_cast<double>(lr.stats.cycles) / perf.clock_hz;
    const double dram_s = static_cast<double>(lr.stats.dram.total_bytes()) /
                          (perf.dram_bandwidth_gbps * 1e9);
    total_s += std::max(compute_s, dram_s) * static_cast<double>(lr.repeat);
  }
  return total_s;
}

WorkloadRunResult run_workload(const Workload& w, const SimConfig& cfg,
                               const WorkloadRunOptions& opt,
                               WorkStealingPool* pool) {
  APSQ_CHECK(opt.threads >= 1);
  WorkloadRunResult result;
  const index_t n = static_cast<index_t>(w.layers.size());
  result.layers.resize(static_cast<size_t>(n));

  CalibrationMemo memo;

  auto run_layer = [&](index_t li) {
    const LayerShape& layer = w.layers[static_cast<size_t>(li)];
    const LayerShape scaled = scale_layer(layer, opt);
    Rng rng = Rng::stream(opt.seed, shape_stream_key(scaled));
    const TensorI8 x = random_operand({scaled.rows, scaled.ci}, rng);
    const TensorI8 wt = random_operand({scaled.ci, scaled.co}, rng);

    SimConfig layer_cfg = cfg;
    if (cfg.psum.apsq || cfg.psq_prior_work) {
      // Auto-calibrate the PSUM shift from the exact outputs (memoized:
      // identical shapes share operands, hence the exponent).
      layer_cfg.psum_exponents = {memo.get_or_compute(scaled, x, wt)};
    }

    Accelerator acc(layer_cfg);
    SimResult r = acc.run_gemm(x, wt);
    result.layers[static_cast<size_t>(li)] =
        LayerRunStats{layer.name, scaled, std::move(r.stats), layer.repeat};
  };

  if (opt.threads > 1 && n > 1) {
    (pool ? *pool : WorkStealingPool::shared()).parallel_for(n, run_layer);
  } else {
    for (index_t li = 0; li < n; ++li) run_layer(li);
  }

  // Aggregate serially in layer order so totals are schedule-independent.
  for (const LayerRunStats& lr : result.layers)
    accumulate(result.total, lr.stats, lr.repeat);
  result.calibration_count = memo.computed();
  return result;
}

}  // namespace apsq
