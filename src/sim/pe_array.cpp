#include "sim/pe_array.hpp"

#include "common/check.hpp"

namespace apsq {

PeArray::PeArray(index_t po, index_t pci, index_t pco)
    : po_(po), pci_(pci), pco_(pco) {
  APSQ_CHECK(po > 0 && pci > 0 && pco > 0);
}

void PeArray::mac_tile(const TensorI8& a, const TensorI8& w, TensorI32& psum) {
  APSQ_CHECK(a.rank() == 2 && w.rank() == 2 && psum.rank() == 2);
  const index_t rows = a.dim(0), k = a.dim(1), cols = w.dim(1);
  APSQ_CHECK_MSG(rows <= po_ && k <= pci_ && cols <= pco_,
                 "tile exceeds PE-array dimensions");
  APSQ_CHECK(w.dim(0) == k && psum.dim(0) == rows && psum.dim(1) == cols);

  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) {
      i32 acc = psum(i, j);
      for (index_t kk = 0; kk < k; ++kk)
        acc += static_cast<i32>(a(i, kk)) * static_cast<i32>(w(kk, j));
      psum(i, j) = acc;
    }

  ++cycles_;
  mac_ops_ += rows * k * cols;
}

void PeArray::reset() {
  cycles_ = 0;
  mac_ops_ = 0;
}

}  // namespace apsq
