// Whole-workload execution through the bit-accurate simulator.
//
// Real model layers (16384×768×3072 GEMMs) are too large to push element
// by element through a cycle-faithful simulator on a laptop, so the runner
// executes each layer at a reduced scale — dimensions divided by `shrink`
// and clamped — with randomly drawn INT8 operands, auto-calibrated PSUM
// exponents, and traffic/cycle statistics aggregated across layer repeats.
// Because the access-count model is exact at every size (see
// tests/sim/counts_vs_analytical_test.cpp), the shrunken run validates the
// same loop-nest behaviour the analytical energy model assumes at full
// scale.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/accelerator.hpp"

namespace apsq {

struct WorkloadRunOptions {
  index_t shrink = 8;        ///< divide every dimension by this
  index_t max_dim = 128;     ///< clamp any dimension after shrinking
  u64 seed = 1;
};

struct LayerRunStats {
  std::string name;
  LayerShape scaled_shape;
  SimStats stats;       ///< one instance at the scaled shape
  index_t repeat = 1;
};

struct WorkloadRunResult {
  std::vector<LayerRunStats> layers;
  SimStats total;       ///< aggregated over layers × repeat

  /// Measured energy of the scaled run (Eq. 1 over measured traffic).
  double energy_pj(const EnergyCosts& costs = EnergyCosts::horowitz()) const {
    return total.energy_pj(costs);
  }
};

/// Scale a layer for simulation (each dim max(1, dim/shrink), clamped).
LayerShape scale_layer(const LayerShape& layer, const WorkloadRunOptions& opt);

/// Execute a whole workload through the accelerator simulator.
WorkloadRunResult run_workload(const Workload& w, const SimConfig& cfg,
                               const WorkloadRunOptions& opt = {});

}  // namespace apsq
