// Whole-workload execution through the bit-accurate simulator.
//
// Real model layers (16384×768×3072 GEMMs) are too large to push element
// by element through a cycle-faithful simulator on a laptop, so the runner
// executes each layer at a reduced scale — dimensions divided by `shrink`
// and clamped — with randomly drawn INT8 operands, auto-calibrated PSUM
// exponents, and traffic/cycle statistics aggregated across layer repeats.
// Because the access-count model is exact at every size (see
// tests/sim/counts_vs_analytical_test.cpp), the shrunken run validates the
// same loop-nest behaviour the analytical energy model assumes at full
// scale.
//
// Layers run independently: operands and the calibration exponent are a
// pure function of (scaled shape, seed), so layers can execute on the
// work-stealing pool in any order — and identical shapes share one
// calibration — while totals stay byte-identical to a serial run.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/accelerator.hpp"
#include "sim/performance.hpp"

namespace apsq {

class WorkStealingPool;

struct WorkloadRunOptions {
  index_t shrink = 8;        ///< divide every dimension by this
  index_t max_dim = 128;     ///< clamp any dimension after shrinking
  u64 seed = 1;
  int threads = 1;           ///< layer-parallel workers (1 = serial)
};

struct LayerRunStats {
  std::string name;
  LayerShape scaled_shape;
  SimStats stats;       ///< one instance at the scaled shape
  index_t repeat = 1;
};

struct WorkloadRunResult {
  std::vector<LayerRunStats> layers;
  SimStats total;       ///< aggregated over layers × repeat

  /// Exact-GEMM PSUM calibrations actually executed. Equals the number of
  /// distinct (shape requiring calibration) in a serial run; under
  /// parallel execution a race may recompute a shape once more (the value
  /// is identical either way), so this is a diagnostic, not part of the
  /// deterministic result surface.
  index_t calibration_count = 0;

  /// Measured energy of the scaled run (Eq. 1 over measured traffic).
  double energy_pj(const EnergyCosts& costs = EnergyCosts::horowitz()) const {
    return total.energy_pj(costs);
  }

  /// Measured latency of the scaled run: per layer
  /// max(cycles / clock, DRAM bytes / bandwidth) × repeat, summed — the
  /// measured twin of workload_performance's double-buffered overlap model.
  double latency_s(const PerfConfig& perf = PerfConfig{}) const;
};

/// Scale a layer for simulation (each dim max(1, dim/shrink), clamped).
LayerShape scale_layer(const LayerShape& layer, const WorkloadRunOptions& opt);

/// scale_layer applied to every layer (repeat counts preserved) — the
/// proxy workload a sim-backed sweep actually executes. The calibrator
/// evaluates the analytic models at exactly this scaled workload to fit
/// scaled→full factors (dse/calibrate.hpp).
Workload scale_workload(const Workload& w, const WorkloadRunOptions& opt);

/// Nearest-pow2 shift exponent for a PSUM magnitude (the rule the QAT
/// calibrator uses), clamped to the RAE shifter's representable range
/// [0, 31]. Exposed for the clamp tests.
int psum_exponent_for_max(i64 max_abs);

/// psum_exponent_for_max over the magnitude extremum of exact outputs.
int calibrate_psum_exponent(const TensorI32& exact);

/// Execute a whole workload through the accelerator simulator. With
/// opt.threads > 1 layers run on `pool` (or the process-wide
/// WorkStealingPool::shared() when null); calls from inside a pool task —
/// e.g. a parallel DSE sweep's per-point evaluation — submit a nested
/// scope into the same pool, so point- and layer-level parallelism
/// compose. Results are byte-identical to a serial run either way.
WorkloadRunResult run_workload(const Workload& w, const SimConfig& cfg,
                               const WorkloadRunOptions& opt = {},
                               WorkStealingPool* pool = nullptr);

}  // namespace apsq
