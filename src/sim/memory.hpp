// Byte-accounting memory models for the accelerator simulator.
//
// The simulator carries real tensor data through the datapath (the MAC
// array and RAE arithmetic are bit-exact); the SRAM/DRAM objects model
// *capacity and traffic*: every transfer is charged to a counter, split by
// operand kind so the counts can be compared 1:1 against the analytical
// Eqs. (3)–(6) (tests/sim/counts_vs_analytical_test.cpp).
#pragma once

#include <array>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

enum class Operand { kIfmap = 0, kWeight = 1, kPsum = 2, kOfmap = 3 };

const char* to_string(Operand op);

/// Read/write byte counters per operand kind.
struct TrafficCounters {
  std::array<i64, 4> read_bytes{};
  std::array<i64, 4> write_bytes{};

  i64 reads(Operand op) const { return read_bytes[static_cast<size_t>(op)]; }
  i64 writes(Operand op) const { return write_bytes[static_cast<size_t>(op)]; }
  i64 total(Operand op) const { return reads(op) + writes(op); }
  i64 total_bytes() const;

  void add_read(Operand op, i64 bytes) {
    APSQ_DCHECK(bytes >= 0);
    read_bytes[static_cast<size_t>(op)] += bytes;
  }
  void add_write(Operand op, i64 bytes) {
    APSQ_DCHECK(bytes >= 0);
    write_bytes[static_cast<size_t>(op)] += bytes;
  }

  /// Accumulate `other` × repeat into this counter (integer arithmetic —
  /// order-independent, so aggregates stay schedule-independent).
  void add_scaled(const TrafficCounters& other, i64 repeat) {
    APSQ_DCHECK(repeat >= 0);
    for (size_t k = 0; k < 4; ++k) {
      read_bytes[k] += other.read_bytes[k] * repeat;
      write_bytes[k] += other.write_bytes[k] * repeat;
    }
  }
};

/// On-chip SRAM buffer: capacity-checked byte accounting.
class Sram {
 public:
  Sram(std::string name, i64 capacity_bytes);

  const std::string& name() const { return name_; }
  i64 capacity_bytes() const { return capacity_; }

  void read(Operand op, i64 bytes) { traffic_.add_read(op, bytes); }
  void write(Operand op, i64 bytes) { traffic_.add_write(op, bytes); }

  /// Would a working set of `bytes` be resident? (The fit test of
  /// DESIGN.md §3.1: ≤ capacity.)
  bool fits(double bytes) const {
    return bytes <= static_cast<double>(capacity_);
  }

  const TrafficCounters& traffic() const { return traffic_; }
  void reset() { traffic_ = TrafficCounters{}; }

 private:
  std::string name_;
  i64 capacity_;
  TrafficCounters traffic_;
};

/// Off-chip DRAM: unbounded capacity, traffic accounting only.
class Dram {
 public:
  void read(Operand op, i64 bytes) { traffic_.add_read(op, bytes); }
  void write(Operand op, i64 bytes) { traffic_.add_write(op, bytes); }
  const TrafficCounters& traffic() const { return traffic_; }
  void reset() { traffic_ = TrafficCounters{}; }

 private:
  TrafficCounters traffic_;
};

}  // namespace apsq
