// Bit-accurate tile-based accelerator simulator (Fig. 2).
//
// The simulator executes a W8A8 GEMM the way the analytical model of
// §II-A assumes the hardware does:
//
//   WS: weights pinned per (ci, co) tile, ifmap rows streamed, PSUMs for
//       every output row tile live simultaneously in the ofmap buffer;
//   IS: ifmap row tiles pinned, weights streamed, PSUMs live for all
//       output channels of the pinned rows;
//   OS: each output tile accumulates in PE registers while all ci tiles
//       stream past — PSUMs never touch memory, so APSQ has nothing to
//       quantize (supported for baseline comparisons only).
//
// Arithmetic is exact INT8×INT8→INT32 in the PE array; PSUM handling goes
// through either a full-precision accumulator (baseline) or a RaeEngine
// per output-tile position (APSQ, §III-C). Memory traffic is charged to
// byte counters whose totals match Eqs. (3)–(6) element-for-element
// (tests/sim/counts_vs_analytical_test.cpp); the init-write / final-read
// PSUM boundary events the paper folds into the ofmap term are kept in
// separate counters (see SimStats).
#pragma once

#include <vector>

#include "energy/access_counts.hpp"
#include "energy/energy_model.hpp"
#include "sim/memory.hpp"
#include "sim/pe_array.hpp"
#include "tensor/tensor.hpp"

namespace apsq {

struct SimConfig {
  AcceleratorConfig arch;
  Dataflow dataflow = Dataflow::kWS;
  PsumConfig psum = PsumConfig::baseline_int32();
  /// Shift exponents per ci-tile for the APSQ path (size ⌈Ci/Pci⌉ or 1).
  std::vector<int> psum_exponents = {0};
  /// Model prior-work PSQ ([19], [20]): every PSUM tile is quantized and
  /// immediately dequantized (the ADC bottleneck is narrowed), but the
  /// accumulator and the stored PSUMs stay at full precision — which is
  /// why PSQ saves no memory traffic (§I). Requires psum.apsq == false.
  bool psq_prior_work = false;
};

/// PSUM traffic at the accumulation boundary (first write, final read) —
/// physically PSUM accesses, but attributed to the ofmap term by the
/// paper's Eqs. (3)–(6); kept separate so both views are available.
struct PsumBoundaryTraffic {
  i64 init_write_sram_bytes = 0;
  i64 final_read_sram_bytes = 0;
};

struct SimStats {
  i64 cycles = 0;
  i64 mac_ops = 0;
  TrafficCounters sram;
  TrafficCounters dram;
  PsumBoundaryTraffic psum_boundary;
  bool psum_spilled = false;

  /// Energy of the simulated execution under the Horowitz cost table,
  /// evaluated from the *measured* traffic (Eq. 1 with measured N).
  double energy_pj(const EnergyCosts& costs = EnergyCosts::horowitz()) const;
};

struct SimResult {
  TensorI64 ofmap;  ///< product-scale outputs [M, Co]
  SimStats stats;
};

class Accelerator {
 public:
  explicit Accelerator(SimConfig config);

  /// Run one GEMM: x [M, Ci] int8, w [Ci, Co] int8.
  SimResult run_gemm(const TensorI8& x, const TensorI8& w);

  const SimConfig& config() const { return cfg_; }

 private:
  SimResult run_ws(const TensorI8& x, const TensorI8& w);
  SimResult run_is(const TensorI8& x, const TensorI8& w);
  SimResult run_os(const TensorI8& x, const TensorI8& w);

  SimConfig cfg_;
};

}  // namespace apsq
