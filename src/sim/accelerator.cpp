#include "sim/accelerator.hpp"

#include <optional>

#include "common/math_util.hpp"
#include "rae/rae_engine.hpp"
#include "tensor/tile.hpp"

namespace apsq {

namespace {

/// Bytes occupied by `elems` PSUM elements at the configured precision.
i64 psum_bytes(index_t elems, const PsumConfig& p) {
  return (elems * p.psum_bits + 7) / 8;
}

/// PSUM state for one output-tile position: exact INT64 accumulation
/// (baseline) or a RaeEngine (APSQ). Also owns the live-tile counter that
/// drives the traffic attribution described in accelerator.hpp.
class PsumLane {
 public:
  PsumLane(Shape tile_shape, const SimConfig& cfg, index_t nci)
      : shape_(std::move(tile_shape)), nci_(nci) {
    if (cfg.psum.apsq) {
      RaeEngine::Options o;
      o.group_size = cfg.psum.group_size;
      o.num_tiles = nci;
      o.spec = QuantSpec{cfg.psum.psum_bits, true};
      o.exponents = cfg.psum_exponents;
      rae_.emplace(shape_, o);
    } else {
      acc_ = TensorI64(shape_, 0);
      if (cfg.psq_prior_work) {
        psq_spec_ = QuantSpec{8, true};
        psq_exponents_ = cfg.psum_exponents;
      }
    }
  }

  /// Number of stored tiles a fold at step `i` would read.
  index_t reads_at(index_t i, index_t gs) const {
    const bool fold = !rae_.has_value() || (i % gs) == 0 || i == nci_ - 1;
    return fold ? live_ : 0;
  }

  void push(index_t i, const TensorI32& tile, index_t gs) {
    if (rae_) {
      const bool fold = rae_->s2_for(i);
      rae_->push(tile);
      live_ = fold ? 1 : live_ + 1;
    } else if (psq_spec_.has_value()) {
      // Prior-work PSQ: quantize/dequantize each tile through the narrow
      // converter, accumulate at full precision.
      const int exp =
          psq_exponents_.size() == 1
              ? psq_exponents_.front()
              : psq_exponents_[static_cast<size_t>(i)];
      for (index_t e = 0; e < tile.numel(); ++e)
        acc_[e] += psum_dequantize_shift(
            psum_quantize_shift(tile[e], exp, *psq_spec_), exp);
      live_ = 1;
    } else {
      for (index_t e = 0; e < tile.numel(); ++e)
        acc_[e] += static_cast<i64>(tile[e]);
      live_ = 1;  // baseline: read-modify-write every step
      (void)gs;
    }
    ++pushed_;
  }

  TensorI64 output() const {
    APSQ_CHECK(pushed_ == nci_);
    return rae_ ? rae_->output() : acc_;
  }

  const Shape& shape() const { return shape_; }
  index_t elems() const { return shape_numel(shape_); }

 private:
  Shape shape_;
  index_t nci_;
  index_t pushed_ = 0;
  index_t live_ = 0;
  std::optional<RaeEngine> rae_;
  std::optional<QuantSpec> psq_spec_;
  std::vector<int> psq_exponents_;
  TensorI64 acc_;
};

/// Charges PSUM accumulation traffic with the spill behaviour of
/// Eqs. (3)–(6): a resident read/write touches SRAM once; a spilled one
/// additionally moves through DRAM (fill on read, drain on write).
struct PsumTrafficModel {
  Sram* obuf;
  Dram* dram;
  bool spilled;

  void read(i64 bytes) const {
    if (spilled) {
      dram->read(Operand::kPsum, bytes);
      obuf->write(Operand::kPsum, bytes);
    }
    obuf->read(Operand::kPsum, bytes);
  }
  void write(i64 bytes) const {
    obuf->write(Operand::kPsum, bytes);
    if (spilled) {
      obuf->read(Operand::kPsum, bytes);
      dram->write(Operand::kPsum, bytes);
    }
  }
};

void merge_traffic(TrafficCounters& dst, const TrafficCounters& src) {
  for (size_t k = 0; k < 4; ++k) {
    dst.read_bytes[k] += src.read_bytes[k];
    dst.write_bytes[k] += src.write_bytes[k];
  }
}

}  // namespace

double SimStats::energy_pj(const EnergyCosts& costs) const {
  return static_cast<double>(sram.total_bytes()) * costs.esram_pj_per_byte +
         static_cast<double>(dram.total_bytes()) * costs.edram_pj_per_byte +
         static_cast<double>(mac_ops) * costs.emac_pj;
}

Accelerator::Accelerator(SimConfig config) : cfg_(std::move(config)) {
  cfg_.arch.validate();
  cfg_.psum.validate();
  APSQ_CHECK_MSG(!cfg_.psum.apsq || cfg_.psum.group_size <= 4,
                 "the RAE supports group sizes up to 4");
  APSQ_CHECK(!cfg_.psum_exponents.empty());
  APSQ_CHECK_MSG(!(cfg_.dataflow == Dataflow::kOS && cfg_.psum.apsq),
                 "OS keeps PSUMs in PE registers; there is nothing for APSQ "
                 "to quantize");
  APSQ_CHECK_MSG(!(cfg_.psq_prior_work && cfg_.psum.apsq),
                 "psq_prior_work models [19]/[20]; it is exclusive with APSQ");
}

SimResult Accelerator::run_gemm(const TensorI8& x, const TensorI8& w) {
  APSQ_CHECK(x.rank() == 2 && w.rank() == 2);
  APSQ_CHECK_MSG(x.dim(1) == w.dim(0), "GEMM inner dimension mismatch");
  switch (cfg_.dataflow) {
    case Dataflow::kWS: return run_ws(x, w);
    case Dataflow::kIS: return run_is(x, w);
    case Dataflow::kOS: return run_os(x, w);
  }
  APSQ_CHECK_MSG(false, "unreachable");
  return {};
}

SimResult Accelerator::run_ws(const TensorI8& x, const TensorI8& w) {
  const index_t m = x.dim(0), ci = x.dim(1), co = w.dim(1);
  const AcceleratorConfig& a = cfg_.arch;
  const index_t nrow = ceil_div(m, a.po), nci = ceil_div(ci, a.pci),
                nco = ceil_div(co, a.pco);

  // Fit decisions — same rules as the analytical model.
  const LayerShape layer{"sim", m, ci, co, 1};
  const AccessCounts counts =
      compute_access_counts(Dataflow::kWS, layer, a, cfg_.psum);

  Sram ibuf("ifmap", a.ifmap_buf_bytes);
  Sram wbuf("weight", a.weight_buf_bytes);
  Sram obuf("ofmap", a.ofmap_buf_bytes);
  Dram dram;
  PeArray pe(a.po, a.pci, a.pco);
  const PsumTrafficModel psum_traffic{&obuf, &dram, !counts.psum_fits};

  SimStats stats;
  stats.psum_spilled = !counts.psum_fits;

  // Resolve per-ci-tile exponents.
  std::vector<int> exps = cfg_.psum_exponents;
  if (exps.size() == 1) exps.assign(static_cast<size_t>(nci), exps[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(exps.size()) == nci,
                 "need one PSUM exponent per ci tile");
  SimConfig lane_cfg = cfg_;
  lane_cfg.psum_exponents = exps;

  // PSUM lanes per output tile position.
  std::vector<PsumLane> lanes;
  lanes.reserve(static_cast<size_t>(nrow * nco));
  for (index_t rt = 0; rt < nrow; ++rt)
    for (index_t ct = 0; ct < nco; ++ct) {
      const TileRect r = clamp_tile(rt * a.po, ct * a.pco, a.po, a.pco, m, co);
      lanes.emplace_back(Shape{r.rows(), r.cols()}, lane_cfg, nci);
    }
  auto lane_at = [&](index_t rt, index_t ct) -> PsumLane& {
    return lanes[static_cast<size_t>(rt * nco + ct)];
  };

  // Weight load: DRAM -> weight buffer, once (WS pins weights by design).
  const i64 sw_bytes = ci * co;
  dram.read(Operand::kWeight, sw_bytes);
  wbuf.write(Operand::kWeight, sw_bytes);

  // Ifmap initial load only if the working slice is resident.
  const i64 si_bytes = m * ci;
  if (counts.ifmap_fits) {
    dram.read(Operand::kIfmap, si_bytes);
    ibuf.write(Operand::kIfmap, si_bytes);
  }

  for (index_t cit = 0; cit < nci; ++cit) {
    for (index_t ct = 0; ct < nco; ++ct) {
      const TileRect wr =
          clamp_tile(cit * a.pci, ct * a.pco, a.pci, a.pco, ci, co);
      wbuf.read(Operand::kWeight, wr.numel());
      const TensorI8 w_tile = extract_tile(w, wr);

      for (index_t rt = 0; rt < nrow; ++rt) {
        const TileRect xr =
            clamp_tile(rt * a.po, cit * a.pci, a.po, a.pci, m, ci);
        if (!counts.ifmap_fits) {
          dram.read(Operand::kIfmap, xr.numel());
          ibuf.write(Operand::kIfmap, xr.numel());
        }
        ibuf.read(Operand::kIfmap, xr.numel());
        const TensorI8 x_tile = extract_tile(x, xr);

        PsumLane& lane = lane_at(rt, ct);
        TensorI32 psum(lane.shape(), 0);
        pe.mac_tile(x_tile, w_tile, psum);

        const i64 tile_bytes = psum_bytes(lane.elems(), cfg_.psum);
        const index_t reads = lane.reads_at(cit, cfg_.psum.group_size);
        if (reads > 0) psum_traffic.read(reads * tile_bytes);
        if (cit == 0) {
          // Boundary write: kept out of the Eq. (5) counters (see header).
          stats.psum_boundary.init_write_sram_bytes += tile_bytes;
        } else {
          psum_traffic.write(tile_bytes);
        }
        lane.push(cit, psum, cfg_.psum.group_size);
      }
    }
  }

  // Drain: final PSUM read (boundary), requantize, ofmap store + DRAM
  // writeback: N_o_s = 2, N_o_d = 1.
  TensorI64 ofmap({m, co}, 0);
  for (index_t rt = 0; rt < nrow; ++rt)
    for (index_t ct = 0; ct < nco; ++ct) {
      PsumLane& lane = lane_at(rt, ct);
      const TileRect r = clamp_tile(rt * a.po, ct * a.pco, a.po, a.pco, m, co);
      stats.psum_boundary.final_read_sram_bytes +=
          psum_bytes(lane.elems(), cfg_.psum);
      insert_tile(ofmap, r, lane.output());
      obuf.write(Operand::kOfmap, r.numel());
      obuf.read(Operand::kOfmap, r.numel());
      dram.write(Operand::kOfmap, r.numel());
    }

  stats.cycles = pe.cycles();
  stats.mac_ops = pe.mac_ops();
  merge_traffic(stats.sram, ibuf.traffic());
  merge_traffic(stats.sram, wbuf.traffic());
  merge_traffic(stats.sram, obuf.traffic());
  merge_traffic(stats.dram, dram.traffic());
  return SimResult{std::move(ofmap), stats};
}

SimResult Accelerator::run_is(const TensorI8& x, const TensorI8& w) {
  const index_t m = x.dim(0), ci = x.dim(1), co = w.dim(1);
  const AcceleratorConfig& a = cfg_.arch;
  const index_t nrow = ceil_div(m, a.po), nci = ceil_div(ci, a.pci),
                nco = ceil_div(co, a.pco);

  const LayerShape layer{"sim", m, ci, co, 1};
  const AccessCounts counts =
      compute_access_counts(Dataflow::kIS, layer, a, cfg_.psum);

  Sram ibuf("ifmap", a.ifmap_buf_bytes);
  Sram wbuf("weight", a.weight_buf_bytes);
  Sram obuf("ofmap", a.ofmap_buf_bytes);
  Dram dram;
  PeArray pe(a.po, a.pci, a.pco);
  const PsumTrafficModel psum_traffic{&obuf, &dram, !counts.psum_fits};

  SimStats stats;
  stats.psum_spilled = !counts.psum_fits;

  std::vector<int> exps = cfg_.psum_exponents;
  if (exps.size() == 1) exps.assign(static_cast<size_t>(nci), exps[0]);
  APSQ_CHECK_MSG(static_cast<index_t>(exps.size()) == nci,
                 "need one PSUM exponent per ci tile");
  SimConfig lane_cfg = cfg_;
  lane_cfg.psum_exponents = exps;

  // Ifmap load: once, stationary by design (N_i_s = 2, N_i_d = 1).
  const i64 si_bytes = m * ci;
  dram.read(Operand::kIfmap, si_bytes);
  ibuf.write(Operand::kIfmap, si_bytes);

  // Weight initial load only if fully resident.
  const i64 sw_bytes = ci * co;
  if (counts.weight_fits) {
    dram.read(Operand::kWeight, sw_bytes);
    wbuf.write(Operand::kWeight, sw_bytes);
  }

  TensorI64 ofmap({m, co}, 0);
  for (index_t rt = 0; rt < nrow; ++rt) {
    // PSUM lanes for this stationary row tile (all output channels live).
    std::vector<PsumLane> lanes;
    lanes.reserve(static_cast<size_t>(nco));
    for (index_t ct = 0; ct < nco; ++ct) {
      const TileRect r = clamp_tile(rt * a.po, ct * a.pco, a.po, a.pco, m, co);
      lanes.emplace_back(Shape{r.rows(), r.cols()}, lane_cfg, nci);
    }

    for (index_t cit = 0; cit < nci; ++cit) {
      const TileRect xr = clamp_tile(rt * a.po, cit * a.pci, a.po, a.pci, m, ci);
      // Stationary rows stream into PE registers once per row tile.
      ibuf.read(Operand::kIfmap, xr.numel());
      const TensorI8 x_tile = extract_tile(x, xr);

      for (index_t ct = 0; ct < nco; ++ct) {
        const TileRect wr =
            clamp_tile(cit * a.pci, ct * a.pco, a.pci, a.pco, ci, co);
        if (counts.weight_fits) {
          wbuf.read(Operand::kWeight, wr.numel());
        } else {
          dram.read(Operand::kWeight, wr.numel());
          wbuf.write(Operand::kWeight, wr.numel());
          wbuf.read(Operand::kWeight, wr.numel());
        }
        const TensorI8 w_tile = extract_tile(w, wr);

        PsumLane& lane = lanes[static_cast<size_t>(ct)];
        TensorI32 psum(lane.shape(), 0);
        pe.mac_tile(x_tile, w_tile, psum);

        const i64 tile_bytes = psum_bytes(lane.elems(), cfg_.psum);
        const index_t reads = lane.reads_at(cit, cfg_.psum.group_size);
        if (reads > 0) psum_traffic.read(reads * tile_bytes);
        if (cit == 0) {
          stats.psum_boundary.init_write_sram_bytes += tile_bytes;
        } else {
          psum_traffic.write(tile_bytes);
        }
        lane.push(cit, psum, cfg_.psum.group_size);
      }
    }

    for (index_t ct = 0; ct < nco; ++ct) {
      PsumLane& lane = lanes[static_cast<size_t>(ct)];
      const TileRect r = clamp_tile(rt * a.po, ct * a.pco, a.po, a.pco, m, co);
      stats.psum_boundary.final_read_sram_bytes +=
          psum_bytes(lane.elems(), cfg_.psum);
      insert_tile(ofmap, r, lane.output());
      obuf.write(Operand::kOfmap, r.numel());
      obuf.read(Operand::kOfmap, r.numel());
      dram.write(Operand::kOfmap, r.numel());
    }
  }

  stats.cycles = pe.cycles();
  stats.mac_ops = pe.mac_ops();
  merge_traffic(stats.sram, ibuf.traffic());
  merge_traffic(stats.sram, wbuf.traffic());
  merge_traffic(stats.sram, obuf.traffic());
  merge_traffic(stats.dram, dram.traffic());
  return SimResult{std::move(ofmap), stats};
}

SimResult Accelerator::run_os(const TensorI8& x, const TensorI8& w) {
  const index_t m = x.dim(0), ci = x.dim(1), co = w.dim(1);
  const AcceleratorConfig& a = cfg_.arch;
  const index_t nrow = ceil_div(m, a.po), nci = ceil_div(ci, a.pci),
                nco = ceil_div(co, a.pco);

  const LayerShape layer{"sim", m, ci, co, 1};
  const AccessCounts counts =
      compute_access_counts(Dataflow::kOS, layer, a, cfg_.psum);

  Sram ibuf("ifmap", a.ifmap_buf_bytes);
  Sram wbuf("weight", a.weight_buf_bytes);
  Sram obuf("ofmap", a.ofmap_buf_bytes);
  Dram dram;
  PeArray pe(a.po, a.pci, a.pco);

  SimStats stats;
  stats.psum_spilled = false;  // PSUMs never leave the PE registers

  // Initial resident loads.
  const i64 si_bytes = m * ci;
  const i64 sw_bytes = ci * co;
  if (counts.ifmap_fits) {
    dram.read(Operand::kIfmap, si_bytes);
    ibuf.write(Operand::kIfmap, si_bytes);
  }
  if (counts.weight_fits) {
    dram.read(Operand::kWeight, sw_bytes);
    wbuf.write(Operand::kWeight, sw_bytes);
  }

  TensorI64 ofmap({m, co}, 0);
  for (index_t rt = 0; rt < nrow; ++rt) {
    for (index_t ct = 0; ct < nco; ++ct) {
      const TileRect orc = clamp_tile(rt * a.po, ct * a.pco, a.po, a.pco, m, co);
      // Output tile pinned in PE registers; stream all ci tiles past it.
      TensorI32 regs({orc.rows(), orc.cols()}, 0);
      for (index_t cit = 0; cit < nci; ++cit) {
        const TileRect xr =
            clamp_tile(rt * a.po, cit * a.pci, a.po, a.pci, m, ci);
        const TileRect wr =
            clamp_tile(cit * a.pci, ct * a.pco, a.pci, a.pco, ci, co);
        if (counts.ifmap_fits) {
          ibuf.read(Operand::kIfmap, xr.numel());
        } else {
          dram.read(Operand::kIfmap, xr.numel());
          ibuf.write(Operand::kIfmap, xr.numel());
          ibuf.read(Operand::kIfmap, xr.numel());
        }
        if (counts.weight_fits) {
          wbuf.read(Operand::kWeight, wr.numel());
        } else {
          dram.read(Operand::kWeight, wr.numel());
          wbuf.write(Operand::kWeight, wr.numel());
          wbuf.read(Operand::kWeight, wr.numel());
        }
        pe.mac_tile(extract_tile(x, xr), extract_tile(w, wr), regs);
      }
      // Drain the finished output tile.
      TensorI64 out_tile({orc.rows(), orc.cols()});
      for (index_t e = 0; e < regs.numel(); ++e)
        out_tile[e] = static_cast<i64>(regs[e]);
      insert_tile(ofmap, orc, out_tile);
      obuf.write(Operand::kOfmap, orc.numel());
      obuf.read(Operand::kOfmap, orc.numel());
      dram.write(Operand::kOfmap, orc.numel());
    }
  }

  stats.cycles = pe.cycles();
  stats.mac_ops = pe.mac_ops();
  merge_traffic(stats.sram, ibuf.traffic());
  merge_traffic(stats.sram, wbuf.traffic());
  merge_traffic(stats.sram, obuf.traffic());
  merge_traffic(stats.dram, dram.traffic());
  return SimResult{std::move(ofmap), stats};
}

}  // namespace apsq
