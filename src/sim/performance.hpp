// Throughput / latency model for the analytical accelerator.
//
// The paper synthesizes at 250 MHz (§IV-C); combining the tile-level cycle
// count (one Po×Pci×Pco MAC tile per cycle), the PE-array utilization on
// ragged tiles, and the DRAM traffic of Eqs. (4)/(6) gives per-layer and
// per-model latency, effective throughput and bandwidth demand — the
// performance side of the energy story.
#pragma once

#include "energy/access_counts.hpp"

namespace apsq {

struct PerfConfig {
  double clock_hz = 250e6;            ///< §IV-C synthesis constraint
  double dram_bandwidth_gbps = 12.8;  ///< DDR3-1600 x64 peak
};

struct LayerPerformance {
  i64 tile_cycles = 0;      ///< PE-array issue slots used
  i64 mac_ops = 0;          ///< useful MACs
  double utilization = 0.0; ///< mac_ops / (tile_cycles · array MACs/cycle)
  double compute_time_s = 0.0;
  double dram_bytes = 0.0;
  double dram_time_s = 0.0;   ///< traffic / peak bandwidth
  double latency_s = 0.0;     ///< max(compute, DRAM) — double-buffered overlap
  bool dram_bound = false;
};

struct WorkloadPerformance {
  double total_latency_s = 0.0;
  double total_compute_time_s = 0.0;
  double total_dram_time_s = 0.0;
  i64 total_cycles = 0;
  i64 total_macs = 0;
  double mean_utilization = 0.0;  ///< MAC-weighted
  index_t dram_bound_layers = 0;
  index_t layer_count = 0;

  /// Effective throughput in GMAC/s over the whole run.
  double effective_gmacs() const {
    return total_latency_s > 0.0 ? static_cast<double>(total_macs) / 1e9 /
                                       total_latency_s
                                 : 0.0;
  }
};

/// Performance of one layer instance under a dataflow / PSUM config.
LayerPerformance layer_performance(Dataflow df, const LayerShape& layer,
                                   const AcceleratorConfig& acc,
                                   const PsumConfig& psum,
                                   const PerfConfig& perf = PerfConfig{});

/// Add one layer instance (× repeat) into a workload roll-up. The exact
/// accumulation expressions live here — shared by workload_performance and
/// the telemetry registry's WorkloadTelemetry::roll_up (sim/stats.hpp) —
/// so per-layer rows sum to the aggregate bit-for-bit, not merely within
/// tolerance. `util_weighted` carries the MAC-weighted utilization
/// numerator across calls; hand it to finalize_mean_utilization once all
/// layers are in.
void accumulate_layer_performance(WorkloadPerformance& total,
                                  const LayerPerformance& p, index_t repeat,
                                  double& util_weighted);

/// Close out a roll-up: mean_utilization = util_weighted / total_macs
/// (0 for an empty workload).
void finalize_mean_utilization(WorkloadPerformance& total,
                               double util_weighted);

/// Whole-workload roll-up (sums layers × repeat).
WorkloadPerformance workload_performance(Dataflow df, const Workload& w,
                                         const AcceleratorConfig& acc,
                                         const PsumConfig& psum,
                                         const PerfConfig& perf = PerfConfig{});

}  // namespace apsq
