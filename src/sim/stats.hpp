// Per-layer telemetry registry for both fidelity backends.
//
// The simulator and the analytic models both roll a workload up to a
// handful of aggregates (WorkloadPerformance, SimStats totals); everything
// per-layer — which layers are DRAM-bound, where the PE array runs ragged,
// how the traffic splits by operand — was thrown away at the roll-up.
// This registry keeps it: one LayerStats row per layer instance, built
// from either backend, with the invariant that summing the rows
// reproduces the existing aggregates *bit-for-bit* (the accumulation
// expressions are shared with workload_performance via
// accumulate_layer_performance, and the sim rows use the exact
// per-component expressions of WorkloadRunResult::latency_s /
// Calibrator::calibrated_latency_s). The registry feeds the StatsWriter
// CSV dumps, the pe_utilization / dram_bw_headroom DSE objectives, and
// the per-layer-class calibration fits.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/performance.hpp"
#include "sim/workload_runner.hpp"

namespace apsq {

/// Per-component multiplicative factors applied to a measured (scaled)
/// simulator run — SRAM bytes, DRAM bytes, cycles, MACs scale
/// independently. Identity factors leave a measurement untouched
/// (1.0 · x == x exactly, so telemetry built with the default scale is
/// byte-identical to the raw measurement). dse::CalibrationFactors is an
/// alias of this type; it lives here so the sim layer can consume
/// calibration factors without depending on dse.
struct ComponentScale {
  double sram_bytes = 1.0;
  double dram_bytes = 1.0;
  double cycles = 1.0;
  double macs = 1.0;

  ComponentScale compose(const ComponentScale& other) const {
    return {sram_bytes * other.sram_bytes, dram_bytes * other.dram_bytes,
            cycles * other.cycles, macs * other.macs};
  }
};

/// One telemetry row: a layer instance (× repeat) as one backend saw it.
struct LayerStats {
  std::string layer_name;
  std::string layer_class;  ///< layer_class_of(layer_name)
  index_t repeat = 1;
  /// The shape this row describes — the full layer for the analytic
  /// backend, the scaled proxy shape for the simulator.
  LayerShape shape;

  /// One-instance performance. tile_cycles / mac_ops stay the measured
  /// integers even under a non-identity ComponentScale (a calibrated
  /// cycle count is fractional); the time fields carry the scale.
  LayerPerformance perf;

  double sram_bytes = 0.0;  ///< on-chip traffic (scaled), one instance
  /// DRAM traffic split by operand (ifmap, weight, psum, ofmap — the
  /// Operand enum order), one instance, scaled. Informational split of
  /// perf.dram_bytes; the sum may differ from it in the last ulp.
  std::array<double, 4> dram_operand_bytes{};

  /// dram_time / latency for this layer, in [0, 1] (dram_time ≤ latency
  /// by the max() in the overlap model).
  double dram_bw_occupancy = 0.0;
  /// Time the PE array sits stalled behind DRAM on a DRAM-bound layer
  /// (dram_time − compute_time), else 0.
  double compute_stall_s = 0.0;
  /// Time the DRAM channel sits idle on a compute-bound layer
  /// (compute_time − dram_time), else 0.
  double dram_idle_s = 0.0;
};

/// A whole run's telemetry: per-layer rows plus the roll-up contract.
struct WorkloadTelemetry {
  std::string workload;
  /// Fidelity provenance: "analytic", "sim", or "sim+cal".
  std::string source;
  std::vector<LayerStats> rows;

  /// Sum the rows back into the aggregate view. Bit-identical to
  /// workload_performance for analytic telemetry and to
  /// WorkloadRunResult::latency_s / Calibrator::calibrated_latency_s for
  /// sim telemetry (identity / calibration scale respectively) — the
  /// tests in tests/sim/stats_test.cpp pin this down with EXPECT_EQ on
  /// doubles. total_cycles / total_macs are the measured integers even
  /// under calibration (see LayerStats::perf).
  WorkloadPerformance roll_up() const;

  /// Σ rows' sram_bytes × repeat.
  double total_sram_bytes() const;
  /// Σ rows' perf.dram_bytes × repeat.
  double total_dram_bytes() const;
  /// Whole-run DRAM-bandwidth occupancy: Σ dram_time / Σ latency
  /// (0 for an empty run). The complement 1 − occupancy is the
  /// dram_bw_headroom DSE objective.
  double dram_bw_occupancy() const;
};

/// Canonical layer class of a layer-instance name: the stage prefix
/// "s<digits>_" (Segformer / EfficientViT stage tags) and a trailing
/// instance index are stripped, so e.g. "s1_q_proj".."s4_q_proj" and
/// "patch_embed1".."patch_embed4" each collapse to one class. Kernel-shape
/// suffixes ("dw3x3", "aggreg5x5") and the functionally distinct
/// "mlp_fc1"/"mlp_fc2" pair keep their digits. This is the key the
/// per-layer-class calibration fits group by.
std::string layer_class_of(const std::string& layer_name);

/// Telemetry of the closed-form models: one row per workload layer at
/// full scale, built from layer_performance and the access-count model
/// (the same per-operand byte sizes the energy model charges).
WorkloadTelemetry analytic_telemetry(Dataflow df, const Workload& w,
                                     const AcceleratorConfig& acc,
                                     const PsumConfig& psum,
                                     const PerfConfig& perf = PerfConfig{});

/// Telemetry of a simulator run: one row per executed layer at the scaled
/// proxy shape, components multiplied by `scale` (identity for raw
/// measurements; a calibrator's factors to lift to full-scale units —
/// pass source "sim+cal" then).
WorkloadTelemetry sim_telemetry(const WorkloadRunResult& r,
                                const SimConfig& cfg,
                                const PerfConfig& perf = PerfConfig{},
                                const ComponentScale& scale = ComponentScale{},
                                const std::string& source = "sim");

/// MAC-weighted mean per-layer PE-array utilization of a run —
/// bit-identical to sim_telemetry(...).roll_up().mean_utilization but
/// allocation-free, for the DSE scoring hot path. `array_macs_per_cycle`
/// is po·pci·pco. Dimensionless, so calibration-independent.
double run_pe_utilization(const WorkloadRunResult& r,
                          double array_macs_per_cycle);

/// Whole-run DRAM-bandwidth occupancy of a run under component scale `f`
/// — bit-identical to sim_telemetry(...).dram_bw_occupancy() but
/// allocation-free, for the DSE scoring hot path.
double run_dram_bw_occupancy(const WorkloadRunResult& r,
                             const PerfConfig& perf, const ComponentScale& f);

}  // namespace apsq
