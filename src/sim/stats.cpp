#include "sim/stats.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/check.hpp"
#include "energy/access_counts.hpp"

namespace apsq {

namespace {

/// Occupancy / stall / idle fields shared by both backends, derived from
/// an already-filled LayerPerformance.
void fill_overlap_fields(LayerStats& row) {
  const LayerPerformance& p = row.perf;
  row.dram_bw_occupancy =
      p.latency_s > 0.0 ? p.dram_time_s / p.latency_s : 0.0;
  row.compute_stall_s =
      p.dram_bound ? p.dram_time_s - p.compute_time_s : 0.0;
  row.dram_idle_s = p.dram_bound ? 0.0 : p.compute_time_s - p.dram_time_s;
}

}  // namespace

WorkloadPerformance WorkloadTelemetry::roll_up() const {
  WorkloadPerformance total;
  double util_weighted = 0.0;
  for (const LayerStats& row : rows)
    accumulate_layer_performance(total, row.perf, row.repeat, util_weighted);
  finalize_mean_utilization(total, util_weighted);
  return total;
}

double WorkloadTelemetry::total_sram_bytes() const {
  double total = 0.0;
  for (const LayerStats& row : rows)
    total += row.sram_bytes * static_cast<double>(row.repeat);
  return total;
}

double WorkloadTelemetry::total_dram_bytes() const {
  double total = 0.0;
  for (const LayerStats& row : rows)
    total += row.perf.dram_bytes * static_cast<double>(row.repeat);
  return total;
}

double WorkloadTelemetry::dram_bw_occupancy() const {
  const WorkloadPerformance total = roll_up();
  return total.total_latency_s > 0.0
             ? total.total_dram_time_s / total.total_latency_s
             : 0.0;
}

std::string layer_class_of(const std::string& layer_name) {
  std::string s = layer_name;
  // Stage prefix "s<digits>_" (e.g. "s1_q_proj", "s3_evit_qkv"): the same
  // block kind recurs per stage; the class spans stages.
  if (s.size() >= 3 && s[0] == 's' &&
      std::isdigit(static_cast<unsigned char>(s[1]))) {
    size_t i = 1;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
      ++i;
    if (i < s.size() && s[i] == '_') s.erase(0, i + 1);
  }
  // Trailing instance index ("patch_embed1".."4", "head_linear1".."4").
  size_t end = s.size();
  while (end > 0 && std::isdigit(static_cast<unsigned char>(s[end - 1])))
    --end;
  if (end == 0 || end == s.size()) return s;  // all digits or none
  // Keep kernel-shape suffixes ("dw3x3", "aggreg5x5") and the
  // functionally distinct mlp_fc1 / mlp_fc2 pair intact.
  if (s[end - 1] == 'x') return s;
  if (end >= 2 && s.compare(end - 2, 2, "fc") == 0) return s;
  s.erase(end);
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

WorkloadTelemetry analytic_telemetry(Dataflow df, const Workload& w,
                                     const AcceleratorConfig& acc,
                                     const PsumConfig& psum,
                                     const PerfConfig& perf) {
  WorkloadTelemetry t;
  t.workload = w.name;
  t.source = "analytic";
  t.rows.reserve(w.layers.size());
  for (const LayerShape& layer : w.layers) {
    LayerStats row;
    row.layer_name = layer.name;
    row.layer_class = layer_class_of(layer.name);
    row.repeat = layer.repeat;
    row.shape = layer;
    row.perf = layer_performance(df, layer, acc, psum, perf);

    // Per-operand byte sizes — exactly what layer_performance and the
    // energy model charge (size × access count × bytes/elem).
    const AccessCounts n = compute_access_counts(df, layer, acc, psum);
    const double si =
        static_cast<double>(layer.ifmap_elems()) * acc.act_bytes();
    const double sw =
        static_cast<double>(layer.weight_elems()) * acc.weight_bytes();
    const double so =
        static_cast<double>(layer.ofmap_elems()) * acc.act_bytes();
    const double sp =
        static_cast<double>(layer.ofmap_elems()) * psum.bytes_per_elem();
    row.sram_bytes = si * static_cast<double>(n.ifmap_sram) +
                     sw * static_cast<double>(n.weight_sram) +
                     sp * static_cast<double>(n.psum_sram) +
                     so * static_cast<double>(n.ofmap_sram);
    row.dram_operand_bytes = {si * static_cast<double>(n.ifmap_dram),
                              sw * static_cast<double>(n.weight_dram),
                              sp * static_cast<double>(n.psum_dram),
                              so * static_cast<double>(n.ofmap_dram)};
    fill_overlap_fields(row);
    t.rows.push_back(std::move(row));
  }
  return t;
}

WorkloadTelemetry sim_telemetry(const WorkloadRunResult& r,
                                const SimConfig& cfg, const PerfConfig& perf,
                                const ComponentScale& scale,
                                const std::string& source) {
  APSQ_CHECK(std::isfinite(perf.clock_hz) && perf.clock_hz > 0.0);
  APSQ_CHECK(std::isfinite(perf.dram_bandwidth_gbps) &&
             perf.dram_bandwidth_gbps > 0.0);
  const double array_macs = static_cast<double>(cfg.arch.po) * cfg.arch.pci *
                            cfg.arch.pco;
  WorkloadTelemetry t;
  t.source = source;
  t.rows.reserve(r.layers.size());
  for (const LayerRunStats& lr : r.layers) {
    LayerStats row;
    row.layer_name = lr.name;
    row.layer_class = layer_class_of(lr.name);
    row.repeat = lr.repeat;
    row.shape = lr.scaled_shape;

    LayerPerformance& p = row.perf;
    p.tile_cycles = lr.stats.cycles;
    p.mac_ops = lr.stats.mac_ops;
    p.utilization =
        p.tile_cycles > 0
            ? static_cast<double>(p.mac_ops) /
                  (static_cast<double>(p.tile_cycles) * array_macs)
            : 0.0;
    // The component expressions below mirror WorkloadRunResult::latency_s
    // (identity scale) and Calibrator::calibrated_latency_s (calibration
    // factors) term for term, so roll_up() reproduces both bit-for-bit.
    p.compute_time_s =
        scale.cycles * static_cast<double>(lr.stats.cycles) / perf.clock_hz;
    p.dram_bytes = scale.dram_bytes *
                   static_cast<double>(lr.stats.dram.total_bytes());
    p.dram_time_s = p.dram_bytes / (perf.dram_bandwidth_gbps * 1e9);
    p.latency_s = std::max(p.compute_time_s, p.dram_time_s);
    p.dram_bound = p.dram_time_s > p.compute_time_s;

    row.sram_bytes = scale.sram_bytes *
                     static_cast<double>(lr.stats.sram.total_bytes());
    for (size_t k = 0; k < 4; ++k)
      row.dram_operand_bytes[k] =
          scale.dram_bytes *
          static_cast<double>(lr.stats.dram.total(static_cast<Operand>(k)));
    fill_overlap_fields(row);
    t.rows.push_back(std::move(row));
  }
  return t;
}

double run_pe_utilization(const WorkloadRunResult& r,
                          double array_macs_per_cycle) {
  i64 total_macs = 0;
  double util_weighted = 0.0;
  for (const LayerRunStats& lr : r.layers) {
    const double util =
        lr.stats.cycles > 0
            ? static_cast<double>(lr.stats.mac_ops) /
                  (static_cast<double>(lr.stats.cycles) * array_macs_per_cycle)
            : 0.0;
    const double rep = static_cast<double>(lr.repeat);
    util_weighted +=
        util * static_cast<double>(lr.stats.mac_ops) * rep;
    total_macs += lr.stats.mac_ops * lr.repeat;
  }
  return total_macs > 0
             ? util_weighted / static_cast<double>(total_macs)
             : 0.0;
}

double run_dram_bw_occupancy(const WorkloadRunResult& r,
                             const PerfConfig& perf, const ComponentScale& f) {
  double total_latency_s = 0.0;
  double total_dram_s = 0.0;
  for (const LayerRunStats& lr : r.layers) {
    const double compute_s =
        f.cycles * static_cast<double>(lr.stats.cycles) / perf.clock_hz;
    const double dram_s =
        f.dram_bytes * static_cast<double>(lr.stats.dram.total_bytes()) /
        (perf.dram_bandwidth_gbps * 1e9);
    const double rep = static_cast<double>(lr.repeat);
    total_latency_s += std::max(compute_s, dram_s) * rep;
    total_dram_s += dram_s * rep;
  }
  return total_latency_s > 0.0 ? total_dram_s / total_latency_s : 0.0;
}

}  // namespace apsq
