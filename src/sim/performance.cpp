#include "sim/performance.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace apsq {

namespace {

/// A zero or non-finite clock / bandwidth would turn every division below
/// into inf or NaN, which then poisons Objectives and breaks Pareto
/// dominance transitivity — reject it at the boundary instead.
void validate_perf(const PerfConfig& perf) {
  APSQ_CHECK_MSG(std::isfinite(perf.clock_hz) && perf.clock_hz > 0.0,
                 "PerfConfig.clock_hz must be finite and positive");
  APSQ_CHECK_MSG(std::isfinite(perf.dram_bandwidth_gbps) &&
                     perf.dram_bandwidth_gbps > 0.0,
                 "PerfConfig.dram_bandwidth_gbps must be finite and positive");
}

}  // namespace

LayerPerformance layer_performance(Dataflow df, const LayerShape& layer,
                                   const AcceleratorConfig& acc,
                                   const PsumConfig& psum,
                                   const PerfConfig& perf) {
  acc.validate();
  validate_perf(perf);

  LayerPerformance p;
  const i64 nrow = ceil_div(layer.rows, acc.po);
  const i64 nci = ceil_div(layer.ci, acc.pci);
  const i64 nco = ceil_div(layer.co, acc.pco);
  p.tile_cycles = nrow * nci * nco;
  p.mac_ops = layer.macs();
  const double array_macs =
      static_cast<double>(acc.po) * acc.pci * acc.pco;
  // A degenerate (zero-dimension) layer issues no tiles; 0/0 here would
  // leak NaN into the MAC-weighted utilization roll-up.
  p.utilization = p.tile_cycles > 0
                      ? static_cast<double>(p.mac_ops) /
                            (static_cast<double>(p.tile_cycles) * array_macs)
                      : 0.0;
  p.compute_time_s = static_cast<double>(p.tile_cycles) / perf.clock_hz;

  // DRAM traffic from the access-count model (Eqs. 4 / 6).
  const AccessCounts n = compute_access_counts(df, layer, acc, psum);
  const double si = static_cast<double>(layer.ifmap_elems()) * acc.act_bytes();
  const double sw =
      static_cast<double>(layer.weight_elems()) * acc.weight_bytes();
  const double so = static_cast<double>(layer.ofmap_elems()) * acc.act_bytes();
  const double sp =
      static_cast<double>(layer.ofmap_elems()) * psum.bytes_per_elem();
  p.dram_bytes = si * static_cast<double>(n.ifmap_dram) +
                 sw * static_cast<double>(n.weight_dram) +
                 sp * static_cast<double>(n.psum_dram) +
                 so * static_cast<double>(n.ofmap_dram);
  p.dram_time_s = p.dram_bytes / (perf.dram_bandwidth_gbps * 1e9);

  p.latency_s = std::max(p.compute_time_s, p.dram_time_s);
  p.dram_bound = p.dram_time_s > p.compute_time_s;
  return p;
}

void accumulate_layer_performance(WorkloadPerformance& total,
                                  const LayerPerformance& p, index_t repeat,
                                  double& util_weighted) {
  const double rep = static_cast<double>(repeat);
  total.total_latency_s += p.latency_s * rep;
  total.total_compute_time_s += p.compute_time_s * rep;
  total.total_dram_time_s += p.dram_time_s * rep;
  total.total_cycles += p.tile_cycles * repeat;
  total.total_macs += p.mac_ops * repeat;
  util_weighted += p.utilization * static_cast<double>(p.mac_ops) * rep;
  if (p.dram_bound) total.dram_bound_layers += repeat;
  total.layer_count += repeat;
}

void finalize_mean_utilization(WorkloadPerformance& total,
                               double util_weighted) {
  total.mean_utilization =
      total.total_macs > 0
          ? util_weighted / static_cast<double>(total.total_macs)
          : 0.0;
}

WorkloadPerformance workload_performance(Dataflow df, const Workload& w,
                                         const AcceleratorConfig& acc,
                                         const PsumConfig& psum,
                                         const PerfConfig& perf) {
  WorkloadPerformance total;
  double util_weighted = 0.0;
  for (const auto& layer : w.layers) {
    const LayerPerformance p = layer_performance(df, layer, acc, psum, perf);
    accumulate_layer_performance(total, p, layer.repeat, util_weighted);
  }
  finalize_mean_utilization(total, util_weighted);
  return total;
}

}  // namespace apsq
