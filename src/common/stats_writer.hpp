// Typed stats table with CSV and JSON serialization — the dump side of
// the telemetry registry (sim/stats.hpp) and of the apsq_dse --stats
// block. A StatsWriter remembers which cells are numeric, so the same
// table serializes as CSV (numbers and strings alike, RFC-4180 quoting
// via CsvWriter) and as a JSON array of objects (numbers unquoted,
// strings escaped) without the caller formatting twice. Doubles render
// with "%.17g" (round-trip exact), the same contract dse::format_double
// delegates to, so dumps stay byte-comparable across serial and parallel
// runs.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/types.hpp"

namespace apsq {

/// Round-trip-exact decimal rendering of a double ("%.17g").
std::string format_double(double v);

/// JSON string-body escaping (quotes, backslashes, control characters —
/// output is the escaped body, without surrounding quotes).
std::string json_escape(const std::string& s);

class StatsWriter {
 public:
  explicit StatsWriter(std::vector<std::string> header);

  /// Start the next row. Rows must be filled to exactly the header arity
  /// before the next begin_row() / serialization (checked).
  void begin_row();

  /// Append a string cell (JSON-quoted) to the current row.
  void add(const std::string& v);
  void add(const char* v) { add(std::string(v)); }
  /// Append numeric cells (JSON-unquoted). index_t aliases i64, so the
  /// i64 overload covers it.
  void add(double v);
  void add(i64 v);
  void add(int v) { add(static_cast<i64>(v)); }
  void add(bool v) { add(static_cast<i64>(v ? 1 : 0)); }

  size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  /// The table as a CsvWriter (header + all rows).
  CsvWriter csv() const;
  /// The table as a JSON array of objects keyed by the header names.
  std::string to_json() const;

  /// Serialize to a file; false on I/O failure.
  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

 private:
  struct Cell {
    std::string text;
    bool quoted = true;  ///< string (true) vs numeric (false) in JSON
  };

  void push(Cell cell);
  void check_complete() const;

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace apsq
