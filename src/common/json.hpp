// Minimal JSON reader — the parsing half of the repo's JSON story.
//
// StatsWriter / bench_json emit JSON; this module reads it back: job
// specs (dse/jobspec.hpp) and evaluated-space snapshots (dse/store.hpp)
// both arrive as files a user or an earlier run wrote. The parser covers
// the full JSON grammar (objects, arrays, strings with escapes, numbers,
// true/false/null) with two deliberate strictnesses on top of RFC 8259:
// duplicate object keys are an error (a spec that silently dropped one of
// two "backend" keys would run the wrong sweep), and trailing garbage
// after the top-level value is an error. Errors throw
// std::invalid_argument with 1-based line:column so a typo in a hand
// edited spec is findable. Object key order is preserved so consumers can
// report the *first* unknown key deterministically.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace apsq {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors: throw std::invalid_argument naming the actual
  /// type on a mismatch, so consumers get "expected a number, got string"
  /// instead of a default value silently standing in.
  bool as_bool() const;
  double as_number() const;
  /// The number as an integer; throws when it has a fractional part or
  /// falls outside i64 (a spec saying `"threads": 2.5` is a mistake, not
  /// a request for 2).
  i64 as_i64() const;
  const std::string& as_string() const;

  /// Arrays: element count / checked indexed access.
  size_t size() const;
  const JsonValue& at(size_t i) const;

  /// Objects: membership, checked lookup (throws naming the key), and
  /// optional lookup (nullptr when absent). `members` preserves source
  /// order for deterministic unknown-key diagnostics.
  bool has(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  static const char* type_name(Type t);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse one JSON document. Throws std::invalid_argument with a 1-based
/// "line L, column C" location on any syntax error, duplicate object key,
/// or trailing non-whitespace after the document.
JsonValue json_parse(const std::string& text);

/// Read and parse a JSON file. Errors (unreadable file, parse failure)
/// throw std::runtime_error whose message starts with the path, so a bad
/// spec or snapshot names the offending file.
JsonValue json_parse_file(const std::string& path);

/// Check a document's `schema_version` against the [lo, hi] range this
/// build understands and return it. A document without the key is treated
/// as version `lo` (every persisted/wire format predating explicit
/// versioning is its v1), so existing files keep loading; a version
/// outside the range throws std::runtime_error naming `source` (the file
/// path or "request"), the found version, and the supported range —
/// future formats are rejected up front instead of failing on whatever
/// key changed. `key` exists for formats that carried the version under
/// an older name.
i64 json_schema_version(const JsonValue& doc, const std::string& source,
                        i64 lo = 1, i64 hi = 1,
                        const char* key = "schema_version");

}  // namespace apsq
