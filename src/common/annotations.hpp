// Clang thread-safety annotations + the annotated lock primitives every
// shared-mutable structure in the repo uses.
//
// The engine's concurrency story — the process-wide WorkStealingPool, the
// Evaluator's memo caches, the Calibrator's anchor fits, the EvalStore's
// snapshot map — used to be checked only at runtime, by whatever races the
// TSan job's inputs happened to exercise. These macros make the locking
// discipline *statically* checkable: a field tagged APSQ_GUARDED_BY(mu)
// cannot be touched without holding mu, a function tagged
// APSQ_REQUIRES(mu) cannot be called without it, and the build fails
// (-Wthread-safety -Werror=thread-safety-analysis under Clang, the
// APSQ_THREAD_SAFETY CMake option) instead of the sweep racing. GCC
// compiles the same code with the macros expanding to nothing.
//
// Discipline: outside this header, code must not declare a naked
// std::mutex / std::lock_guard / std::condition_variable — use Mutex,
// MutexLock, and CondVar below so the analysis sees every acquisition
// (tools/apsq_lint.py rule `naked-mutex` enforces this, with the pinned
// allowlist naming the survivors). tests/static/ holds negative-compile
// fixtures proving the annotations actually reject an unguarded access, a
// self-deadlocking re-acquisition, and a missing-REQUIRES call.
#pragma once

#include <condition_variable>
#include <mutex>

// Clang exposes the analysis via __attribute__((capability)) and friends;
// every other compiler sees empty macros and identical codegen.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define APSQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef APSQ_THREAD_ANNOTATION
#define APSQ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type whose instances are capabilities (lockable things).
#define APSQ_CAPABILITY(x) APSQ_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define APSQ_SCOPED_CAPABILITY APSQ_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define APSQ_GUARDED_BY(x) APSQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define APSQ_PT_GUARDED_BY(x) APSQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call this function.
#define APSQ_REQUIRES(...) \
  APSQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define APSQ_ACQUIRE(...) \
  APSQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability the caller held.
#define APSQ_RELEASE(...) \
  APSQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define APSQ_TRY_ACQUIRE(ret, ...) \
  APSQ_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions that
/// acquire it themselves).
#define APSQ_EXCLUDES(...) \
  APSQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define APSQ_RETURN_CAPABILITY(x) APSQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot see (e.g. per-thread ownership). Use sparingly; every
/// use is a place the static story leans on a comment.
#define APSQ_NO_THREAD_SAFETY_ANALYSIS \
  APSQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace apsq {

/// std::mutex as a Clang capability. Same codegen, but fields tagged
/// APSQ_GUARDED_BY(mu_) on one of these are statically checked.
class APSQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() APSQ_ACQUIRE() { mu_.lock(); }
  void unlock() APSQ_RELEASE() { mu_.unlock(); }
  bool try_lock() APSQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  ///< CondVar::wait needs the raw handle
  std::mutex mu_;
};

/// Scoped lock over Mutex (the std::lock_guard of this layer). The
/// analysis treats construction as acquisition and destruction as
/// release, so a guarded access inside the scope type-checks.
class APSQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) APSQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() APSQ_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() requires the caller to
/// already hold the mutex (normally via a MutexLock in the same scope):
/// it adopts the held lock for the duration of the wait and releases
/// ownership back to the caller afterwards, so the caller's scoped lock
/// stays the single release point the analysis sees.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Single un-predicated wait (subject to spurious wakeups): the caller
  /// re-checks its condition in a `while` loop *in its own body*, where
  /// guarded reads are visible to the analysis — the reason this layer
  /// favours manual wait loops over predicate lambdas (which cannot carry
  /// a REQUIRES annotation before C++23).
  void wait(Mutex& mu) APSQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // hand ownership back to the caller's scope
  }

  /// Blocks until `pred()` holds; `mu` is released while blocked and held
  /// again whenever `pred` runs and when wait returns (std::condition_
  /// variable semantics).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) APSQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, pred);
    lock.release();  // hand ownership back to the caller's scope
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace apsq
