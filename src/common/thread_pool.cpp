#include "common/thread_pool.hpp"

#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>

#include "common/check.hpp"

namespace apsq {

namespace {
// Which pool (if any) the current thread is a worker of, and its worker
// index there. Lets a nested parallel_for on the same pool seed its child
// scope into the worker's own deque (LIFO, so the worker drains its inner
// work first) instead of degrading to an inline loop.
thread_local const WorkStealingPool* tls_worker_of = nullptr;
thread_local index_t tls_worker_index = -1;
}  // namespace

// One parallel_for invocation (a task scope). `remaining` counts seeded
// indices not yet popped-and-accounted; the submitter helps drain and then
// sleeps until it hits zero. Threads may only touch a Run while they hold
// an unaccounted index, so the object can live on the submitter's stack.
struct WorkStealingPool::Run {
  const std::function<void(index_t)>* fn = nullptr;
  i64 id = 0;  ///< 1-based dispatch order; tags this run's trace events
  std::atomic<index_t> remaining{0};
  std::atomic<bool> stop{false};
  Mutex err_mu;
  std::exception_ptr first_error APSQ_GUARDED_BY(err_mu);

  /// The error slot, read by the submitter once the run has quiesced
  /// (remaining == 0 and help_until_done returned, so no task can still
  /// be writing it).
  std::exception_ptr take_error() APSQ_EXCLUDES(err_mu) {
    MutexLock lock(err_mu);
    return first_error;
  }
};

// A queued work item: which run it belongs to and which index to execute.
// Tagging tasks with their Run is what lets multiple runs — including
// nested child scopes — share one set of deques safely: a straggler
// scanning empty deques holds no Task and therefore touches no Run.
struct WorkStealingPool::Task {
  Run* run = nullptr;
  index_t idx = 0;
};

// A mutex-guarded deque is plenty here: pool tasks are microseconds to
// milliseconds each, so lock traffic is noise next to the work. (A
// lock-free Chase–Lev deque would buy nothing at this granularity.)
struct WorkStealingPool::Queue {
  Mutex mu;
  std::deque<Task> items APSQ_GUARDED_BY(mu);
};

WorkStealingPool::WorkStealingPool(int num_threads)
    : num_threads_(num_threads) {
  APSQ_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
  worker_trace_.resize(static_cast<size_t>(num_threads_));
  if (num_threads_ > 1) {
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (index_t w = 0; w < num_threads_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  flush_trace();  // after the joins: every buffer is quiescent now
}

void WorkStealingPool::enable_tracing(const std::string& path) {
  {
    MutexLock lock(trace_mu_);
    trace_path_ = path;
  }
  tracing_.store(true, std::memory_order_relaxed);
}

void WorkStealingPool::record_trace(const TraceEvent& e) {
  if (tls_worker_of == this) {
    // Single-writer by construction: worker w is the only thread that
    // ever appends to worker_trace_[w], and readers wait for the joins.
    worker_trace_[static_cast<size_t>(tls_worker_index)].push_back(e);
  } else {
    MutexLock lock(trace_mu_);
    external_trace_.push_back(e);
  }
}

void WorkStealingPool::flush_trace() {
  if (!tracing_.load(std::memory_order_relaxed)) return;
  // Called from the destructor after the joins, so holding trace_mu_
  // across the file write contends with nothing.
  MutexLock lock(trace_mu_);
  if (trace_path_.empty()) return;
  std::ofstream out(trace_path_);
  if (!out) return;  // an unwritable path must not crash shutdown
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const TraceEvent& e) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
        << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"args\":{\"run\":" << e.run << ",\"index\":" << e.idx << "}}";
  };
  for (const auto& buf : worker_trace_)
    for (const TraceEvent& e : buf) emit(e);
  for (const TraceEvent& e : external_trace_) emit(e);
  out << "\n]}\n";
}

int WorkStealingPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

WorkStealingPool& WorkStealingPool::shared() {
  static WorkStealingPool pool([] {
    if (const char* env = std::getenv("APSQ_POOL_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1 && v <= 4096)
        return static_cast<int>(v);
    }
    return hardware_threads();
  }());
  static const bool trace_env_checked = [] {
    const char* env = std::getenv("APSQ_TRACE");
    if (env != nullptr && *env != '\0') pool.enable_tracing(env);
    return true;
  }();
  (void)trace_env_checked;
  return pool;
}

bool WorkStealingPool::try_pop_own(index_t w, Task& t) {
  Queue& q = *queues_[static_cast<size_t>(w)];
  MutexLock lock(q.mu);
  if (q.items.empty()) return false;
  t = q.items.front();
  q.items.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool WorkStealingPool::try_steal(index_t skip, Task& t) {
  for (index_t k = 0; k < num_threads_; ++k) {
    const index_t victim =
        skip >= 0 ? (skip + 1 + k) % num_threads_ : k;
    if (victim == skip) continue;
    Queue& q = *queues_[static_cast<size_t>(victim)];
    MutexLock lock(q.mu);
    if (q.items.empty()) continue;
    t = q.items.back();
    q.items.pop_back();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::execute(const Task& t) {
  Run& run = *t.run;
  const bool tracing = tracing_.load(std::memory_order_relaxed);
  std::chrono::steady_clock::time_point t0;
  if (tracing) t0 = std::chrono::steady_clock::now();
  if (!run.stop.load(std::memory_order_relaxed)) {
    try {
      (*run.fn)(t.idx);
    } catch (...) {
      run.stop.store(true, std::memory_order_relaxed);
      MutexLock lock(run.err_mu);
      if (!run.first_error) run.first_error = std::current_exception();
    }
  }
  if (tracing) {
    // Record before the final decrement below: the Run may be destroyed
    // the moment remaining hits zero, and we read run.id here.
    const auto t1 = std::chrono::steady_clock::now();
    const auto us = [](std::chrono::steady_clock::duration d) {
      return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    };
    TraceEvent e;
    e.ts_us = us(t0 - trace_epoch_);
    e.dur_us = us(t1 - t0);
    e.tid = tls_worker_of == this ? tls_worker_index : -1;
    e.run = run.id;
    e.idx = t.idx;
    record_trace(e);
  }
  // Account last: once remaining hits 0 the submitter may wake and destroy
  // the Run, so nothing may touch it after this thread's final decrement.
  if (run.remaining.fetch_sub(1) == 1) {
    MutexLock lock(mu_);
    done_cv_.notify_all();
  }
}

void WorkStealingPool::worker_loop(index_t w) {
  tls_worker_of = this;
  tls_worker_index = w;
  for (;;) {
    {
      // Manual wait loop (not a predicate lambda) so the shutdown_ read
      // happens where the analysis can see mu_ is held.
      MutexLock lock(mu_);
      while (!shutdown_ && pending_.load(std::memory_order_relaxed) <= 0)
        work_cv_.wait(mu_);
      if (shutdown_) return;
    }
    Task t;
    while (try_pop_own(w, t) || try_steal(w, t)) execute(t);
  }
}

void WorkStealingPool::help_until_done(Run& run, index_t self) {
  // Drain tasks — own deque first when we have one, then steals — until
  // the run completes. Tasks seeded all at once and never re-enqueued, so
  // a full scan that finds nothing means every task of this run is either
  // done or in flight on another thread; then it is safe to sleep on the
  // completion signal. Executing another run's task while waiting is fine:
  // it cannot depend on this run, and it keeps the pool making progress.
  Task t;
  while (run.remaining.load() != 0) {
    if ((self >= 0 && try_pop_own(self, t)) || try_steal(self, t)) {
      execute(t);
      continue;
    }
    MutexLock lock(mu_);
    while (run.remaining.load() != 0) done_cv_.wait(mu_);
  }
}

void WorkStealingPool::parallel_for(index_t n,
                                    const std::function<void(index_t)>& fn) {
  APSQ_CHECK(n >= 0);
  if (n == 0) return;
  if (num_threads_ == 1) {
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Run run;
  run.fn = &fn;
  run.id = runs_.fetch_add(1, std::memory_order_relaxed) + 1;
  run.remaining.store(n);

  const bool nested = tls_worker_of == this;
  const index_t self = nested ? tls_worker_index : -1;
  if (nested) {
    // Child scope: push LIFO onto our own deque so this worker drains its
    // inner work before anything else; idle threads steal from the back.
    Queue& q = *queues_[static_cast<size_t>(self)];
    MutexLock lock(q.mu);
    for (index_t i = n; i-- > 0;) q.items.push_front(Task{&run, i});
  } else {
    // Top-level scope: seed each deque with a contiguous chunk (owner pops
    // the front, thieves take the back, so steals grab the work the owner
    // would reach last).
    for (index_t w = 0; w < num_threads_; ++w) {
      const index_t lo = w * n / num_threads_;
      const index_t hi = (w + 1) * n / num_threads_;
      Queue& q = *queues_[static_cast<size_t>(w)];
      MutexLock lock(q.mu);
      for (index_t i = lo; i < hi; ++i) q.items.push_back(Task{&run, i});
    }
  }
  {
    // pending_ moves under mu_ so a worker cannot check the work_cv_
    // predicate and fall asleep between our increment and notify.
    MutexLock lock(mu_);
    pending_.fetch_add(n, std::memory_order_relaxed);
  }
  work_cv_.notify_all();

  help_until_done(run, self);
  if (std::exception_ptr err = run.take_error()) std::rethrow_exception(err);
}

}  // namespace apsq
