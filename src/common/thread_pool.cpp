#include "common/thread_pool.hpp"

#include <deque>
#include <exception>

#include "common/check.hpp"

namespace apsq {

namespace {
// Which pool (if any) the current thread is a worker of. Lets a nested
// parallel_for on the same pool degrade to an inline loop instead of
// deadlocking on the pool's own completion signal.
thread_local const WorkStealingPool* tls_worker_of = nullptr;
}  // namespace

// A mutex-guarded deque is plenty here: pool tasks are microseconds to
// milliseconds each, so lock traffic is noise next to the work. (A
// lock-free Chase–Lev deque would buy nothing at this granularity.)
struct WorkStealingPool::Queue {
  std::mutex mu;
  std::deque<index_t> items;
};

// One parallel_for invocation. `remaining` counts seeded indices not yet
// popped-and-accounted; the caller sleeps until it hits zero. Workers may
// only touch a Run while they hold an unaccounted index, so the object can
// live on the caller's stack.
struct WorkStealingPool::Run {
  const std::function<void(index_t)>* fn = nullptr;
  std::atomic<index_t> remaining{0};
  std::atomic<bool> stop{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
};

WorkStealingPool::WorkStealingPool(int num_threads)
    : num_threads_(num_threads) {
  APSQ_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
  if (num_threads_ > 1) {
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (index_t w = 0; w < num_threads_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

int WorkStealingPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool WorkStealingPool::try_pop_own(index_t w, index_t& idx) {
  Queue& q = *queues_[static_cast<size_t>(w)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.items.empty()) return false;
  idx = q.items.front();
  q.items.pop_front();
  return true;
}

bool WorkStealingPool::try_steal(index_t thief, index_t& idx) {
  for (index_t k = 1; k < num_threads_; ++k) {
    const index_t victim = (thief + k) % num_threads_;
    Queue& q = *queues_[static_cast<size_t>(victim)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.items.empty()) continue;
    idx = q.items.back();
    q.items.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::drain(index_t w, Run& run) {
  index_t idx;
  while (try_pop_own(w, idx) || try_steal(w, idx)) {
    if (!run.stop.load(std::memory_order_relaxed)) {
      try {
        (*run.fn)(idx);
      } catch (...) {
        run.stop.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(run.err_mu);
        if (!run.first_error) run.first_error = std::current_exception();
      }
    }
    // Account last: once remaining hits 0 the caller may wake and destroy
    // the Run, so nothing may touch it after this worker's final decrement.
    if (run.remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkStealingPool::worker_loop(index_t w) {
  tls_worker_of = this;
  u64 seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // run_ != nullptr distinguishes "a new run is live" from "the
    // generation moved on while we slept and already completed" — in the
    // latter case there is nothing to drain and run_ is null again.
    work_cv_.wait(lock, [&] {
      return shutdown_ || (run_ != nullptr && generation_ != seen);
    });
    if (shutdown_) return;
    seen = generation_;
    Run* run = run_;
    ++active_;
    lock.unlock();
    drain(w, *run);
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void WorkStealingPool::parallel_for(index_t n,
                                    const std::function<void(index_t)>& fn) {
  APSQ_CHECK(n >= 0);
  if (n == 0) return;
  if (num_threads_ == 1 || tls_worker_of == this) {
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mu_);

  // A straggler from the previous run may still be scanning the (empty)
  // deques; wait it out so it cannot pop this run's indices against the
  // previous (destroyed) Run.
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
  }

  // Seed each deque with a contiguous chunk (owner pops front, thieves
  // take the back, so steals grab the work the owner would reach last).
  for (index_t w = 0; w < num_threads_; ++w) {
    const index_t lo = w * n / num_threads_;
    const index_t hi = (w + 1) * n / num_threads_;
    Queue& q = *queues_[static_cast<size_t>(w)];
    std::lock_guard<std::mutex> lock(q.mu);
    for (index_t i = lo; i < hi; ++i) q.items.push_back(i);
  }

  Run run;
  run.fn = &fn;
  run.remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    run_ = &run;
    ++generation_;
  }
  runs_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return run.remaining.load() == 0; });
    run_ = nullptr;
  }
  if (run.first_error) std::rethrow_exception(run.first_error);
}

}  // namespace apsq
