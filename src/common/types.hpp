// Fundamental integer / index aliases shared across the APSQ codebase.
#pragma once

#include <cstdint>
#include <cstddef>

namespace apsq {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Index type used for tensor shapes and loop bounds. Signed on purpose
/// (ES.107: avoid unsigned arithmetic surprises in loop math).
using index_t = std::int64_t;

}  // namespace apsq
