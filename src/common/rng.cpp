#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace apsq {

namespace {

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

u64 Rng::next_u64() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  APSQ_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

index_t Rng::uniform_index(index_t n) {
  APSQ_CHECK(n > 0);
  return static_cast<index_t>(next_u64() % static_cast<u64>(n));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::shuffle(std::vector<index_t>& v) {
  for (index_t i = static_cast<index_t>(v.size()) - 1; i > 0; --i) {
    index_t j = uniform_index(i + 1);
    std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::stream(u64 seed, u64 stream_index) {
  // Whiten the index before mixing so consecutive indices (0, 1, 2, …)
  // land far apart in seed space, then let the Rng constructor's
  // splitmix64 expansion decorrelate the lanes.
  u64 s = stream_index;
  const u64 mixed = splitmix64(s);
  return Rng(seed ^ mixed);
}

}  // namespace apsq
