// Work-stealing parallel-for pool shared by the DSE evaluator and the
// simulator's workload runner.
//
// Worker threads are spawned once in the constructor and persist across
// parallel_for calls. Each queued task is tagged with the run (the
// parallel_for invocation) it belongs to, so any number of runs may be in
// flight at once: a worker pops work from the front of its own deque and,
// when empty, steals from the back of a victim's, executing whatever task
// it finds regardless of which run seeded it. Stealing keeps the pool busy
// when per-task cost is skewed (cache misses evaluate full workloads, hits
// return instantly).
//
// Nested parallelism composes instead of degrading to inline: a task that
// calls parallel_for on its own pool seeds a child scope and then *helps*
// — it drains its own deque (where the child's tasks were pushed LIFO)
// and steals until the child scope completes, so the DSE evaluator's
// point-level loop and run_workload's layer-level loop share one set of
// workers without oversubscription or deadlock. External callers help the
// same way while their run is live, then sleep until stragglers finish.
//
// Locking discipline (statically checked via common/annotations.hpp under
// Clang -Wthread-safety): each Queue's deque is guarded by its own
// Queue::mu; shutdown_ is guarded by mu_, which also serializes pending_
// increments against the work_cv_ predicate; the trace path / external
// trace buffer are guarded by trace_mu_. The per-worker trace buffers are
// single-writer by construction (worker w appends from its own thread
// only) and are read only after the joins — the one place the story leans
// on APSQ_NO_THREAD_SAFETY_ANALYSIS instead of a capability.
//
// Determinism comes from the caller: tasks write to disjoint,
// index-addressed slots, so scheduling order never affects results.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"

namespace apsq {

class WorkStealingPool {
 public:
  /// `num_threads` >= 1; values above the task count are harmless.
  /// num_threads > 1 spawns that many persistent workers immediately.
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();  // signals shutdown and joins the workers

  /// Run fn(i) at most once for every i in [0, n) — exactly once when no
  /// task throws — blocking until done. fn must be safe to call from
  /// multiple threads. Exceptions: the first captured exception of the run
  /// is rethrown here and stops the run early; tasks not yet started when
  /// it was captured are skipped (in-flight ones finish), mirroring the
  /// abort-at-first-throw behaviour of the single-thread path. A nested
  /// run's exception therefore propagates out of the enclosing task and is
  /// captured by the enclosing run.
  /// num_threads == 1 runs inline on the calling thread (no worker
  /// threads at all). Calls from within one of this pool's own workers
  /// (nested parallelism) submit a child scope into the shared deques and
  /// help drain it. Concurrent calls from distinct external threads also
  /// compose: each run completes independently.
  void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  int num_threads() const { return num_threads_; }

  /// Tasks executed by a thread other than the one whose deque initially
  /// held them (diagnostic; cumulative across parallel_for calls).
  i64 steal_count() const { return steals_.load(); }

  /// parallel_for invocations dispatched to the shared deques, nested
  /// scopes included (diagnostic; inline runs — n == 0 or a single-thread
  /// pool — excluded).
  i64 run_count() const { return runs_.load(); }

  /// Record every task executed through the pool's deques and, on
  /// destruction, write them to `path` in the chrome://tracing JSON
  /// format ({"traceEvents": [...]}): one complete ("ph": "X") event per
  /// task, timestamped in µs since pool construction, with the executing
  /// worker's index as the tid (-1 for an external helper thread) and the
  /// run id + task index as args. Load the file in chrome://tracing or
  /// https://ui.perfetto.dev to see where a sweep's wall-clock went.
  /// Covers pooled execution only: a single-thread pool (and n == 0)
  /// runs inline and emits no events. Safe to call at any time; tasks
  /// already executed before the call are not retroactively recorded.
  void enable_tracing(const std::string& path) APSQ_EXCLUDES(trace_mu_);

  /// Threads the hardware supports (>= 1 even when unknown).
  static int hardware_threads();

  /// The process-wide pool, shared by the DSE evaluator's point-level
  /// parallelism and run_workload's layer-level parallelism so the two
  /// compose instead of oversubscribing. Sized to hardware_threads(),
  /// overridable via the APSQ_POOL_THREADS environment variable (useful
  /// for pinning sanitizer jobs or forcing concurrency on small
  /// machines). Constructed on first use; lives until exit. When the
  /// APSQ_TRACE environment variable names a file, tracing is enabled on
  /// the shared pool and the trace is flushed there at process exit.
  static WorkStealingPool& shared();

 private:
  struct Queue;
  struct Run;
  struct Task;
  /// One recorded task execution, ready to serialize as a trace event.
  struct TraceEvent {
    i64 ts_us = 0;   ///< start, µs since pool construction (steady clock)
    i64 dur_us = 0;  ///< task body duration, µs
    i64 tid = 0;     ///< worker index, or -1 for an external helper thread
    i64 run = 0;     ///< parallel_for scope id (1-based, dispatch order)
    i64 idx = 0;     ///< task index within the run
  };
  void worker_loop(index_t w);
  void execute(const Task& t);
  void help_until_done(Run& run, index_t self);
  bool try_pop_own(index_t w, Task& t) APSQ_EXCLUDES(mu_);
  bool try_steal(index_t skip, Task& t) APSQ_EXCLUDES(mu_);
  void record_trace(const TraceEvent& e) APSQ_EXCLUDES(trace_mu_);
  void flush_trace() APSQ_EXCLUDES(trace_mu_);

  int num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::atomic<i64> steals_{0};
  std::atomic<i64> runs_{0};

  std::atomic<bool> tracing_{false};
  const std::chrono::steady_clock::time_point trace_epoch_ =
      std::chrono::steady_clock::now();
  /// Worker w appends to worker_trace_[w] from its own thread only, so
  /// the per-worker buffers need no locks (and carry no capability — see
  /// record_trace / flush_trace); external helper threads share
  /// external_trace_ under trace_mu_, which also guards trace_path_.
  std::vector<std::vector<TraceEvent>> worker_trace_;
  std::vector<TraceEvent> external_trace_ APSQ_GUARDED_BY(trace_mu_);
  std::string trace_path_ APSQ_GUARDED_BY(trace_mu_);
  Mutex trace_mu_;

  Mutex mu_;  ///< guards shutdown_ / pending_ increments for the CVs
  CondVar work_cv_;  ///< wakes idle workers on new tasks
  CondVar done_cv_;  ///< wakes waiters when a run finishes
  std::atomic<i64> pending_{0};  ///< tasks seeded but not yet popped
  bool shutdown_ APSQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace apsq
