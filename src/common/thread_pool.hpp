// Work-stealing parallel-for pool shared by the DSE evaluator and the
// simulator's workload runner.
//
// Worker threads are spawned once in the constructor and persist across
// parallel_for calls (the original DSE-local pool respawned its workers on
// every call, which dominated the cost of small repeated sweeps). Each
// worker owns a deque seeded with a contiguous chunk of the index range;
// it pops work from the front of its own deque and, when empty, steals
// from the back of a victim's. Stealing keeps the pool busy when per-task
// cost is skewed (cache misses evaluate full workloads, hits return
// instantly). Determinism comes from the caller: tasks write to disjoint,
// index-addressed slots, so scheduling order never affects results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace apsq {

class WorkStealingPool {
 public:
  /// `num_threads` >= 1; values above the task count are harmless.
  /// num_threads > 1 spawns that many persistent workers immediately.
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();  // signals shutdown and joins the workers

  /// Run fn(i) at most once for every i in [0, n) — exactly once when no
  /// task throws — blocking until done. fn must be safe to call from
  /// multiple threads. Exceptions: the first captured exception is
  /// rethrown here and stops the run early; tasks not yet started when it
  /// was captured are skipped (in-flight ones finish), mirroring the
  /// abort-at-first-throw behaviour of the single-thread path.
  /// num_threads == 1 runs inline on the calling thread (no worker
  /// threads at all). Calls from within one of this pool's own workers
  /// (nested parallelism) also run inline instead of deadlocking.
  /// Concurrent calls from distinct external threads are serialized.
  void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  int num_threads() const { return num_threads_; }

  /// Tasks executed by a worker other than the one whose deque initially
  /// held them (diagnostic; cumulative across parallel_for calls).
  i64 steal_count() const { return steals_.load(); }

  /// parallel_for invocations dispatched to the persistent workers
  /// (diagnostic; inline runs — n == 0, single thread, nested — excluded).
  i64 run_count() const { return runs_.load(); }

  /// Threads the hardware supports (>= 1 even when unknown).
  static int hardware_threads();

 private:
  struct Queue;
  struct Run;
  void worker_loop(index_t w);
  void drain(index_t w, Run& run);
  bool try_pop_own(index_t w, index_t& idx);
  bool try_steal(index_t thief, index_t& idx);

  int num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::atomic<i64> steals_{0};
  std::atomic<i64> runs_{0};

  std::mutex submit_mu_;  ///< serializes external parallel_for callers

  std::mutex mu_;  ///< guards generation_ / run_ / active_ / shutdown_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  u64 generation_ = 0;
  Run* run_ = nullptr;
  int active_ = 0;  ///< workers currently draining a run
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace apsq
