// Minimal CSV writer — benches use it to dump series for external
// plotting (every figure bench prints a table AND can persist raw data).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace apsq {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : columns_(header.size()) {
    rows_.push_back(std::move(header));
  }

  void add_row(std::vector<std::string> cells) {
    APSQ_CHECK_MSG(cells.size() == columns_, "CSV row arity mismatch");
    rows_.push_back(std::move(cells));
  }

  /// Serialize with RFC-4180-style quoting where needed.
  std::string to_string() const {
    std::string out;
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c) out += ',';
        out += quote(row[c]);
      }
      out += '\n';
    }
    return out;
  }

  /// Write to a file; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << to_string();
    return static_cast<bool>(os);
  }

  size_t row_count() const { return rows_.size() - 1; }

 private:
  static std::string quote(const std::string& s) {
    // RFC 4180 §2.6: fields containing commas, quotes, or CR/LF must be
    // quoted — \r included, or a field ending in \r silently corrupts the
    // row for readers that split on \r\n.
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  }

  size_t columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apsq
