// Checked command-line value parsing for the example CLIs.
//
// std::atoi-style parsing turns "--threads foo" into 0 and accepts
// "12abc" silently; these helpers require the whole token to parse, apply
// a range check, and report the offending flag by name so a typo exits
// with a diagnostic instead of running a misconfigured sweep.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/types.hpp"

namespace apsq {

/// Parse `text` as a decimal integer in [lo, hi] into `out`. On failure
/// prints "<flag>: ..." to `err` and returns false, leaving `out`
/// untouched.
inline bool parse_i64_flag(const char* flag, const char* text, i64 lo, i64 hi,
                           i64& out, std::ostream& err = std::cerr) {
  if (text == nullptr || *text == '\0') {
    err << flag << ": empty value\n";
    return false;
  }
  // strtoll skips leading whitespace; the whole token must be the number.
  if (std::isspace(static_cast<unsigned char>(*text))) {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  if (errno == ERANGE || v < lo || v > hi) {
    err << flag << ": value " << text << " out of range [" << lo << ", " << hi
        << "]\n";
    return false;
  }
  out = static_cast<i64>(v);
  return true;
}

/// Same contract for an `int`-typed option.
inline bool parse_int_flag(const char* flag, const char* text, int lo, int hi,
                           int& out, std::ostream& err = std::cerr) {
  i64 wide = 0;
  if (!parse_i64_flag(flag, text, lo, hi, wide, err)) return false;
  out = static_cast<int>(wide);
  return true;
}

/// Parse an unsigned 64-bit value; base 0, so "0xD5E" and "1234" both
/// work (seeds are conventionally written in hex). A leading '-' is
/// rejected — strtoull would silently wrap it.
inline bool parse_u64_flag(const char* flag, const char* text, u64& out,
                           std::ostream& err = std::cerr) {
  if (text == nullptr || *text == '\0') {
    err << flag << ": empty value\n";
    return false;
  }
  if (*text == '-' || std::isspace(static_cast<unsigned char>(*text))) {
    err << flag << ": expected a non-negative integer, got '" << text << "'\n";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  if (errno == ERANGE) {
    err << flag << ": value " << text << " out of range\n";
    return false;
  }
  out = static_cast<u64>(v);
  return true;
}

}  // namespace apsq
