// Checked command-line value parsing for the example CLIs.
//
// std::atoi-style parsing turns "--threads foo" into 0 and accepts
// "12abc" silently; these helpers require the whole token to parse, apply
// a range check, and report the offending flag by name so a typo exits
// with a diagnostic instead of running a misconfigured sweep.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace apsq {

/// Parse `text` as a decimal integer in [lo, hi] into `out`. On failure
/// prints "<flag>: ..." to `err` and returns false, leaving `out`
/// untouched.
inline bool parse_i64_flag(const char* flag, const char* text, i64 lo, i64 hi,
                           i64& out, std::ostream& err = std::cerr) {
  if (text == nullptr || *text == '\0') {
    err << flag << ": empty value\n";
    return false;
  }
  // strtoll skips leading whitespace; the whole token must be the number.
  if (std::isspace(static_cast<unsigned char>(*text))) {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  if (errno == ERANGE || v < lo || v > hi) {
    err << flag << ": value " << text << " out of range [" << lo << ", " << hi
        << "]\n";
    return false;
  }
  out = static_cast<i64>(v);
  return true;
}

/// Same contract for an `int`-typed option.
inline bool parse_int_flag(const char* flag, const char* text, int lo, int hi,
                           int& out, std::ostream& err = std::cerr) {
  i64 wide = 0;
  if (!parse_i64_flag(flag, text, lo, hi, wide, err)) return false;
  out = static_cast<int>(wide);
  return true;
}

/// Parse an unsigned 64-bit value; base 0, so "0xD5E" and "1234" both
/// work (seeds are conventionally written in hex). A leading '-' is
/// rejected — strtoull would silently wrap it.
inline bool parse_u64_flag(const char* flag, const char* text, u64& out,
                           std::ostream& err = std::cerr) {
  if (text == nullptr || *text == '\0') {
    err << flag << ": empty value\n";
    return false;
  }
  if (*text == '-' || std::isspace(static_cast<unsigned char>(*text))) {
    err << flag << ": expected a non-negative integer, got '" << text << "'\n";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    err << flag << ": expected an integer, got '" << text << "'\n";
    return false;
  }
  if (errno == ERANGE) {
    err << flag << ": value " << text << " out of range\n";
    return false;
  }
  out = static_cast<u64>(v);
  return true;
}

/// Parse a floating-point value in [lo, hi]. NaN is always rejected;
/// "inf" is accepted when `hi` is infinite (e.g. --promote-band inf =
/// promote everything). Same whole-token / flag-naming contract as the
/// integer parsers.
inline bool parse_double_flag(const char* flag, const char* text, double lo,
                              double hi, double& out,
                              std::ostream& err = std::cerr) {
  if (text == nullptr || *text == '\0') {
    err << flag << ": empty value\n";
    return false;
  }
  if (std::isspace(static_cast<unsigned char>(*text))) {
    err << flag << ": expected a number, got '" << text << "'\n";
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || std::isnan(v)) {
    err << flag << ": expected a number, got '" << text << "'\n";
    return false;
  }
  if (v < lo || v > hi) {
    err << flag << ": value " << text << " out of range [" << lo << ", " << hi
        << "]\n";
    return false;
  }
  out = v;
  return true;
}

/// Cross-flag validation: a flag that only makes sense in some mode (e.g.
/// --promote-budget without --backend mixed) must exit 1 naming the flag
/// and the requirement, never run a sweep that silently ignores it.
/// Returns true when the combination is fine (flag absent, or requirement
/// met).
inline bool flag_requires(bool flag_given, const char* flag,
                          bool requirement_met, const char* requirement,
                          std::ostream& err = std::cerr) {
  if (!flag_given || requirement_met) return true;
  err << flag << ": requires " << requirement << "\n";
  return false;
}

/// Cross-flag validation: two flags that select conflicting behaviours
/// (e.g. --promote-band vs --promote-adaptive) must exit 1 naming both,
/// never let one silently win. Returns true when at most one is given.
inline bool flags_exclusive(bool a_given, const char* a, bool b_given,
                            const char* b, std::ostream& err = std::cerr) {
  if (!a_given || !b_given) return true;
  err << a << " and " << b << " are mutually exclusive\n";
  return false;
}

/// Run a throwing enum parser (parse_backend, ObjectiveSet::parse, …)
/// over a flag value. On an unrecognized value the parser's exception is
/// reported as "<flag>: <message>" and false is returned, so the CLI
/// exits 1 naming the offending flag instead of silently falling back to
/// a default. `out` is untouched on failure.
template <typename T, typename Parser>
inline bool parse_enum_flag(const char* flag, const char* text,
                            Parser&& parse, T& out,
                            std::ostream& err = std::cerr) {
  try {
    out = std::forward<Parser>(parse)(text);
    return true;
  } catch (const std::exception& e) {
    err << flag << ": " << e.what() << "\n";
    return false;
  }
}

}  // namespace apsq
