#include "common/math_util.hpp"

namespace apsq {

double round_to_pow2(double alpha) {
  APSQ_CHECK_MSG(alpha > 0.0, "power-of-two rounding needs a positive scale");
  return std::exp2(static_cast<double>(pow2_exponent(alpha)));
}

int pow2_exponent(double alpha) {
  APSQ_CHECK_MSG(alpha > 0.0, "power-of-two rounding needs a positive scale");
  // 2^⌊log2 α⌉ — round the exponent to the nearest integer (ties up, which
  // matches round_half_away on the exponent).
  return static_cast<int>(round_half_away(std::log2(alpha)));
}

int psum_bits_required(index_t accumulation_depth) {
  APSQ_CHECK(accumulation_depth >= 1);
  int log2_depth = 0;
  index_t d = 1;
  while (d < accumulation_depth) {
    d *= 2;
    ++log2_depth;
  }
  return 16 + log2_depth;
}

}  // namespace apsq
