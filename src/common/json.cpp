#include "common/json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apsq {

const char* JsonValue::type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(const char* expected, JsonValue::Type got) {
  throw std::invalid_argument(std::string("expected ") + expected + ", got " +
                              JsonValue::type_name(got));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("a number", type_);
  return number_;
}

i64 JsonValue::as_i64() const {
  const double v = as_number();
  // An integral double round-trips exactly through i64 up to 2^53; the
  // comparison below also rejects values past i64 range (they are not
  // representable, so trunc(v) != v or the cast saturates UB-free via the
  // bounds check first).
  if (!(v >= -9.2233720368547758e18 && v <= 9.2233720368547758e18) ||
      std::trunc(v) != v)
    throw std::invalid_argument("expected an integer, got " +
                                std::to_string(v));
  return static_cast<i64>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("a string", type_);
  return string_;
}

size_t JsonValue::size() const {
  if (type_ != Type::kArray) type_error("an array", type_);
  return array_.size();
}

const JsonValue& JsonValue::at(size_t i) const {
  if (type_ != Type::kArray) type_error("an array", type_);
  if (i >= array_.size())
    throw std::invalid_argument("array index " + std::to_string(i) +
                                " out of range (size " +
                                std::to_string(array_.size()) + ")");
  return array_[i];
}

bool JsonValue::has(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("an object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::invalid_argument("missing key \"" + key + "\"");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("an object", type_);
  return object_;
}

// ---------------------------------------------------------------- parser

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // 1-based line:column of pos_, computed on demand — errors are rare.
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::invalid_argument(what + " at line " + std::to_string(line) +
                                ", column " + std::to_string(col));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        if (consume_literal("true"))
          v.bool_ = true;
        else if (consume_literal("false"))
          v.bool_ = false;
        else
          fail("invalid literal");
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected a string key");
      std::string key = parse_string();
      // Silently keeping one of two duplicate keys would run a different
      // job than the spec's author wrote — reject at parse time.
      for (const auto& [k, unused] : v.object_) {
        (void)unused;
        if (k == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      skip_ws();
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array_.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are rejected —
          // nothing this repo emits uses them, and decoding them wrongly
          // would be worse than refusing.
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !(peek() >= '0' && peek() <= '9')) fail("invalid number");
    // Grammar check up front (JSON forbids leading zeros, bare '.', etc.);
    // strtod then converts the validated token exactly.
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !(peek() >= '0' && peek() <= '9'))
        fail("invalid number: expected digits after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !(peek() >= '0' && peek() <= '9'))
        fail("invalid number: expected exponent digits");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v.number_)) fail("number out of double range");
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw std::runtime_error(path + ": read error");
  try {
    return json_parse(buf.str());
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

i64 json_schema_version(const JsonValue& doc, const std::string& source,
                        i64 lo, i64 hi, const char* key) {
  const JsonValue* v = doc.is_object() ? doc.find(key) : nullptr;
  if (v == nullptr) return lo;  // unversioned document: the original (v1)
  i64 found = 0;
  try {
    found = v->as_i64();
  } catch (const std::exception& e) {
    throw std::runtime_error(source + ": " + key + ": " + e.what());
  }
  if (found < lo || found > hi)
    throw std::runtime_error(source + ": unsupported schema_version " +
                             std::to_string(found) + " (supported: " +
                             std::to_string(lo) + ".." + std::to_string(hi) +
                             ")");
  return found;
}

}  // namespace apsq
