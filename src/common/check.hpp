// Lightweight precondition / invariant checking.
//
// APSQ_CHECK is always on (models research-code invariants that must never
// be violated silently); APSQ_DCHECK compiles out in NDEBUG builds and is
// used inside hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace apsq::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "APSQ_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace apsq::detail

#define APSQ_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::apsq::detail::check_failed(#expr, __FILE__, __LINE__, "");         \
  } while (0)

#define APSQ_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::apsq::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define APSQ_DCHECK(expr) ((void)0)
#else
#define APSQ_DCHECK(expr) APSQ_CHECK(expr)
#endif
