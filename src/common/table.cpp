#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace apsq {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  APSQ_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  APSQ_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_rule = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ' << s << std::string(widths[c] - s.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
  return os.str();
}

std::string Table::ratio(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << 'x';
  return os.str();
}

}  // namespace apsq
