// ASCII table printer used by the benchmark harnesses to emit paper-style
// tables ("paper reference" vs "measured" rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace apsq {

/// A simple fixed-column table. Cells are strings; helpers format numbers
/// with a chosen precision. Rendered with aligned columns and a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  /// Render to a stream.
  void print(std::ostream& os) const;

  /// Render to a string.
  std::string to_string() const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);   ///< 0.28 -> "28.0%"
  static std::string ratio(double v, int precision = 2); ///< 31.7 -> "31.70x"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace apsq
