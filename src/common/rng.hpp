// Deterministic random number generation for synthetic workloads and tests.
//
// All stochastic components in the repo (task generators, weight init,
// training shuffles) draw from Rng seeded explicitly, so every experiment
// is reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace apsq {

/// splitmix64 + xoshiro256** — small, fast, high-quality, and fully
/// self-contained (we avoid std::mt19937 so results are identical across
/// standard-library implementations).
///
/// Thread-safety: an Rng instance is mutable state and is NOT safe to
/// share across threads. Parallel code (e.g. the DSE evaluator) must give
/// each worker / work item its own instance, derived deterministically
/// with stream() so results are independent of thread count and
/// scheduling order.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  u64 next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  index_t uniform_index(index_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<index_t>& v);

  /// Derive an independent child stream (for per-task seeding).
  /// Mutates this generator — prefer stream() when the parent must stay
  /// untouched or when many streams are derived concurrently.
  Rng fork();

  /// Statelessly derive stream `stream_index` of `seed`: the same
  /// (seed, index) pair always yields the same generator, and distinct
  /// indices yield decorrelated streams (both values pass through
  /// splitmix64 before keying xoshiro). This is how parallel sweeps stay
  /// reproducible: seed + worker/work-item index, never a shared Rng.
  static Rng stream(u64 seed, u64 stream_index);

 private:
  u64 state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace apsq
