#include "common/stats_writer.hpp"

#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace apsq {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

StatsWriter::StatsWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  APSQ_CHECK_MSG(!header_.empty(), "StatsWriter needs a non-empty header");
}

void StatsWriter::check_complete() const {
  APSQ_CHECK_MSG(rows_.empty() || rows_.back().size() == header_.size(),
                 "StatsWriter row has " << rows_.back().size()
                                        << " cells, header has "
                                        << header_.size());
}

void StatsWriter::begin_row() {
  check_complete();
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
}

void StatsWriter::push(Cell cell) {
  APSQ_CHECK_MSG(!rows_.empty(), "StatsWriter::add before begin_row");
  APSQ_CHECK_MSG(rows_.back().size() < header_.size(),
                 "StatsWriter row overflows the " << header_.size()
                                                  << "-column header");
  rows_.back().push_back(std::move(cell));
}

void StatsWriter::add(const std::string& v) { push({v, true}); }
void StatsWriter::add(double v) { push({format_double(v), false}); }
void StatsWriter::add(i64 v) { push({std::to_string(v), false}); }

CsvWriter StatsWriter::csv() const {
  check_complete();
  CsvWriter out(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& c : row) cells.push_back(c.text);
    out.add_row(std::move(cells));
  }
  return out;
}

std::string StatsWriter::to_json() const {
  check_complete();
  std::string out = "[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",\n {" : "\n {";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) out += ", ";
      out += '"';
      out += json_escape(header_[c]);
      out += "\": ";
      const Cell& cell = rows_[r][c];
      if (cell.quoted) {
        out += '"';
        out += json_escape(cell.text);
        out += '"';
      } else {
        out += cell.text;
      }
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

bool StatsWriter::write_csv(const std::string& path) const {
  return csv().write(path);
}

bool StatsWriter::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json();
  return static_cast<bool>(os);
}

}  // namespace apsq
