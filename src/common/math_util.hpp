// Small numeric helpers shared by quantizers, energy model and simulator.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

/// ceil(a / b) for positive integers (the ⌈·⌉ of Eqs. (3)–(6)).
constexpr index_t ceil_div(index_t a, index_t b) {
  APSQ_DCHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

/// Round half away from zero, matching floor(x + 0.5) for x >= 0 and
/// ceil(x - 0.5) for x < 0. This is the float-side twin of the hardware
/// rounding shift below; the pair must stay consistent for bit-exactness.
inline double round_half_away(double x) {
  return x >= 0.0 ? std::floor(x + 0.5) : std::ceil(x - 0.5);
}

/// Arithmetic right shift with round-half-away-from-zero, i.e. the
/// behaviour of the RAE's rounding shifter (>> block in Fig. 2).
/// Result equals round_half_away(double(x) / 2^s) for every int64 whose
/// magnitude fits a double exactly.
inline i64 rounding_shift_right(i64 x, int s) {
  APSQ_DCHECK(s >= 0 && s < 63);
  if (s == 0) return x;
  const i64 bias = i64{1} << (s - 1);
  if (x >= 0) return (x + bias) >> s;
  return -((-x + bias) >> s);
}

/// Saturating clip to [lo, hi].
constexpr i64 clip(i64 x, i64 lo, i64 hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

constexpr double clipf(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True iff x is a (positive) power of two.
constexpr bool is_pow2(i64 x) { return x > 0 && (x & (x - 1)) == 0; }

/// Round a positive real scale to the nearest power of two: 2^⌊log2 α⌉.
/// Used for PSUM scaling factors so dequantization becomes a shift (§II-B).
double round_to_pow2(double alpha);

/// Exponent e such that round_to_pow2(alpha) == 2^e.
int pow2_exponent(double alpha);

/// Number of bits needed to hold a signed accumulation of `depth` INT8xINT8
/// products without overflow: 16 + ceil(log2(depth)) (§II-A).
int psum_bits_required(index_t accumulation_depth);

}  // namespace apsq
