#include "nn/lr_schedule.hpp"

#include "nn/module.hpp"

namespace apsq::nn {

float clip_grad_norm(const std::vector<Param*>& params, float max_norm) {
  APSQ_CHECK(max_norm > 0.0f);
  double sq = 0.0;
  for (const Param* p : params)
    for (index_t i = 0; i < p->grad.numel(); ++i)
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Param* p : params)
      for (index_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
  }
  return norm;
}

}  // namespace apsq::nn
