// Sequence classifier: token embedding projection -> N pre-norm
// transformer blocks -> mean pooling -> classification head. The
// BERT-like student used by the sequence-level experiments; all GEMMs
// share one QAT configuration (so APSQ runs inside the attention
// projections and FFNs, as in the paper's BERT rows).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nn/transformer_block.hpp"

namespace apsq::nn {

class SequenceClassifier : public Module {
 public:
  struct Config {
    index_t input_dim = 16;   ///< raw token feature width
    index_t model_dim = 32;   ///< transformer width
    index_t ffn_dim = 64;
    index_t num_blocks = 1;
    index_t num_classes = 2;
  };

  SequenceClassifier(Config config, const std::optional<QatConfig>& qat,
                     Rng& rng, const std::string& name = "seqcls");

  /// x: one token sequence [T, input_dim]; returns logits [1, classes].
  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dlogits) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::unique_ptr<Module> embed_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
  std::unique_ptr<Module> head_;
  index_t tokens_ = 0;  ///< cached sequence length for backward
};

}  // namespace apsq::nn
