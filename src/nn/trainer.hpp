// QAT training loop: mini-batch Adam with optional FP32-teacher knowledge
// distillation, mirroring the paper's recipe (§IV-A).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/module.hpp"

namespace apsq::nn {

/// Which figure of merit a task reports (paper Table I / Table III).
enum class Metric { kAccuracy, kMatthews, kPearson, kMiou };

const char* to_string(Metric m);

/// An in-memory supervised dataset. Classification tasks use the integer
/// labels; regression tasks (STS-B proxy) use scalar targets [N, 1].
struct Dataset {
  TensorF train_x, test_x;
  std::vector<index_t> train_y, test_y;
  TensorF train_target, test_target;  ///< regression targets
  bool regression = false;
  index_t num_classes = 2;
  Metric metric = Metric::kAccuracy;
};

struct TrainConfig {
  index_t epochs = 20;
  index_t batch_size = 64;
  float lr = 1e-3f;
  float kd_lambda = 0.5f;  ///< distillation weight (0 disables)
  u64 shuffle_seed = 1;
  LrSchedule lr_schedule = LrSchedule::kConstant;
  float min_lr = 0.0f;          ///< floor for decaying schedules
  float grad_clip_norm = 0.0f;  ///< global-norm clipping (0 disables)
};

struct TrainOutcome {
  double test_metric_pct = 0.0;
  float final_train_loss = 0.0f;
  index_t steps = 0;
};

/// Train `model` on `ds`; if `teacher` is non-null its logits guide the
/// student via MSE distillation (teacher runs in eval mode).
TrainOutcome train_model(Module& model, const Dataset& ds,
                         const TrainConfig& cfg, Module* teacher = nullptr);

/// Evaluate `model` on the test split with the dataset's metric.
double evaluate_model(Module& model, const Dataset& ds);

// --- Sequence-level training (per-sample forward over [T, d] tensors) ---

struct SeqTrainConfig {
  index_t epochs = 10;
  index_t batch_size = 16;  ///< gradient-accumulation group
  float lr = 2e-3f;
  u64 shuffle_seed = 1;
};

/// Train a sequence classifier (e.g. nn::SequenceClassifier) on per-sample
/// sequences with integer labels; returns final test accuracy in percent.
double train_sequence_classifier(Module& model,
                                 const std::vector<TensorF>& train_x,
                                 const std::vector<index_t>& train_y,
                                 const std::vector<TensorF>& test_x,
                                 const std::vector<index_t>& test_y,
                                 const SeqTrainConfig& cfg);

/// Accuracy (%) of a sequence classifier on a labelled set.
double evaluate_sequence_classifier(Module& model,
                                    const std::vector<TensorF>& xs,
                                    const std::vector<index_t>& ys);

}  // namespace apsq::nn
