#include "nn/loss.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {

LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<index_t>& targets) {
  APSQ_CHECK(logits.rank() == 2);
  const index_t n = logits.dim(0), c = logits.dim(1);
  APSQ_CHECK(static_cast<index_t>(targets.size()) == n);

  const TensorF probs = softmax_rows(logits);
  LossResult r;
  r.grad = TensorF(logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (index_t i = 0; i < n; ++i) {
    const index_t t = targets[static_cast<size_t>(i)];
    APSQ_CHECK_MSG(t >= 0 && t < c, "target class out of range");
    loss -= std::log(std::max(1e-12, static_cast<double>(probs(i, t))));
    for (index_t j = 0; j < c; ++j)
      r.grad(i, j) = (probs(i, j) - (j == t ? 1.0f : 0.0f)) * inv_n;
  }
  r.value = static_cast<float>(loss / static_cast<double>(n));
  return r;
}

LossResult mse_loss(const TensorF& pred, const TensorF& target) {
  APSQ_CHECK(pred.same_shape(target));
  APSQ_CHECK(pred.numel() > 0);
  LossResult r;
  r.grad = TensorF(pred.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  for (index_t i = 0; i < pred.numel(); ++i) {
    const float d = pred[i] - target[i];
    loss += static_cast<double>(d) * d;
    r.grad[i] = 2.0f * d * inv_n;
  }
  r.value = static_cast<float>(loss / static_cast<double>(pred.numel()));
  return r;
}

LossResult distillation_loss(const TensorF& student_logits,
                             const std::vector<index_t>& targets,
                             const TensorF& teacher_logits, float lambda) {
  LossResult task = softmax_cross_entropy(student_logits, targets);
  LossResult kd = mse_loss(student_logits, teacher_logits);
  LossResult r;
  r.value = task.value + lambda * kd.value;
  r.grad = task.grad;
  axpy_inplace(r.grad, lambda, kd.grad);
  return r;
}

}  // namespace apsq::nn
