#include "nn/activations.hpp"

#include <cmath>

namespace apsq::nn {

TensorF ReLU::forward(const TensorF& x) {
  x_ = x;
  TensorF y(x.shape());
  for (index_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return y;
}

TensorF ReLU::backward(const TensorF& dy) {
  APSQ_CHECK(dy.same_shape(x_));
  TensorF dx(dy.shape());
  for (index_t i = 0; i < dy.numel(); ++i)
    dx[i] = x_[i] > 0.0f ? dy[i] : 0.0f;
  return dx;
}

namespace {
constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)
constexpr double kGeluA = 0.044715;
}  // namespace

TensorF Gelu::forward(const TensorF& x) {
  x_ = x;
  TensorF y(x.shape());
  for (index_t i = 0; i < x.numel(); ++i) {
    const double v = x[i];
    y[i] = static_cast<float>(
        0.5 * v * (1.0 + std::tanh(kGeluC * (v + kGeluA * v * v * v))));
  }
  return y;
}

TensorF Gelu::backward(const TensorF& dy) {
  APSQ_CHECK(dy.same_shape(x_));
  TensorF dx(dy.shape());
  for (index_t i = 0; i < dy.numel(); ++i) {
    const double v = x_[i];
    const double u = kGeluC * (v + kGeluA * v * v * v);
    const double t = std::tanh(u);
    const double du = kGeluC * (1.0 + 3.0 * kGeluA * v * v);
    const double grad = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
    dx[i] = static_cast<float>(grad * dy[i]);
  }
  return dx;
}

}  // namespace apsq::nn
