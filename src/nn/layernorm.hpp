// Layer normalization over the feature dimension with learnable affine.
#pragma once

#include "nn/module.hpp"

namespace apsq::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(index_t features, float eps = 1e-5f,
                     const std::string& name = "ln");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;

 private:
  index_t features_;
  float eps_;
  Param gamma_;  ///< [features]
  Param beta_;   ///< [features]
  TensorF xhat_;  ///< normalized input
  TensorF inv_std_;  ///< per-row 1/σ
};

}  // namespace apsq::nn
