#include "nn/conv2d.hpp"

#include "nn/attention.hpp"  // make_linear

namespace apsq::nn {

Conv2d::Conv2d(ConvGeometry geometry, index_t out_channels,
               const std::optional<QatConfig>& qat, Rng& rng,
               const std::string& name)
    : geom_(geometry),
      out_c_(out_channels),
      gemm_(make_linear(geometry.patch_len(), out_channels, qat, rng, name)) {
  geom_.validate();
  APSQ_CHECK(out_channels > 0);
}

TensorF Conv2d::forward(const TensorF& x) {
  return gemm_->forward(im2col(x, geom_));
}

TensorF Conv2d::backward(const TensorF& dy) {
  // dL/d(patches) from the GEMM core, scattered back to the input layout.
  return col2im(gemm_->backward(dy), geom_);
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  gemm_->collect_params(out);
}

void Conv2d::set_training(bool training) {
  Module::set_training(training);
  gemm_->set_training(training);
}

}  // namespace apsq::nn
