// Layer-based NN substrate with manual backpropagation.
//
// Design: concrete layers implement forward(x) -> y and backward(dy) -> dx,
// caching whatever the gradient needs between the two calls. Parameters
// are (value, grad) pairs owned by the layers and exposed to optimizers
// through collect_params(). All activations are rank-2 row-major
// [rows, features] tensors.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace apsq::nn {

/// A learnable tensor with its gradient accumulator.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;

  Param() = default;
  Param(std::string n, TensorF v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape(), 0.0f) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass; layers cache activations needed by backward.
  virtual TensorF forward(const TensorF& x) = 0;

  /// Backward pass: dy is dL/d(output); returns dL/d(input) and
  /// accumulates parameter gradients. Must follow the matching forward.
  virtual TensorF backward(const TensorF& dy) = 0;

  /// Append pointers to this module's parameters (optimizer view).
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Training vs evaluation mode (affects quantizer calibration).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

  /// Total parameter count (for reporting).
  index_t num_params();

 protected:
  bool training_ = true;
};

}  // namespace apsq::nn
