// W8A8 quantized dense layer with configurable PSUM handling — the layer
// the accuracy experiments (Table I / Table III / Fig. 5) train with.
//
// Forward:
//   xq = LSQ(x; α_a),  wq = LSQ(W; α_w)            (learnable step sizes)
//   PSUM tiles Tp_i = xq[:, i·Pci:(i+1)·Pci] · wq[i·Pci:(i+1)·Pci, :]
//   y  = Σ Tp_i                    (kExact — the INT32-PSUM baseline)
//      | PSQ / APSQ accumulation   (quant/apsq.hpp, quant/grouping.hpp)
//   with the PSUM step size a power-of-two multiple of α_a·α_w,
//   calibrated online by an EMA-max tracker (DESIGN.md §3.3).
//
// Backward: straight-through — PSUM quantization noise is forward-only;
// the gradient treats y as Σ Tp_i, with the LSQ gradients for x, W, α_a,
// α_w (the paper trains PSUM scales by STE too; our calibrated
// substitution is documented in DESIGN.md §3.2).
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "quant/apsq.hpp"
#include "quant/psum_calib.hpp"
#include "quant/quant_params.hpp"

namespace apsq::nn {

struct QatConfig {
  QuantSpec weight_spec = QuantSpec::int8();
  QuantSpec act_spec = QuantSpec::int8();
  PsumMode psum_mode = PsumMode::kExact;
  QuantSpec psum_spec = QuantSpec::int8();
  index_t tile_ci = 8;      ///< Pci — accumulation tile depth
  index_t group_size = 1;   ///< gs for APSQ grouping
  /// Per-output-channel weight step sizes (one learnable α per column)
  /// instead of one per tensor. Standard for weight quantization; note
  /// that per-channel weight scales keep the PSUM product grid uniform
  /// within a column, so the APSQ shift path is unaffected.
  bool per_channel_weights = false;

  static QatConfig baseline_w8a8() { return QatConfig{}; }
  static QatConfig apsq_w8a8(index_t gs, index_t tile_ci = 8) {
    QatConfig c;
    c.psum_mode = PsumMode::kApsq;
    c.group_size = gs;
    c.tile_ci = tile_ci;
    return c;
  }
  static QatConfig apsq_bits(int psum_bits, index_t gs, index_t tile_ci = 8) {
    QatConfig c = apsq_w8a8(gs, tile_ci);
    c.psum_spec = QuantSpec{psum_bits, true};
    return c;
  }
};

class QuantDense : public Module {
 public:
  QuantDense(index_t in_features, index_t out_features, QatConfig config,
             Rng& rng, const std::string& name = "qdense");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;

  const QatConfig& qat_config() const { return cfg_; }
  float alpha_act() const { return alpha_a_.value(0); }
  /// Per-tensor weight step (per-channel layers: step of column `c`).
  float alpha_weight(index_t c = 0) const { return alpha_w_.value(c); }
  /// Calibrated power-of-two PSUM exponent (relative to α_a·α_w).
  int psum_exponent() const { return calib_.exponent(); }

  index_t in_features() const { return in_; }
  index_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  /// Compute y from quantized operands under the configured PSUM mode.
  TensorF psum_accumulate(const TensorF& xq, const TensorF& wq);
  /// Copy of weight column c (per-channel quantizer granule).
  TensorF weight_column(index_t c) const;
  /// LSQ fake-quantized weights (per-tensor or per-channel).
  TensorF fake_quantize_weights() const;

  index_t in_, out_;
  QatConfig cfg_;
  Param weight_;   ///< [in, out]
  Param bias_;     ///< [out]
  Param alpha_w_;  ///< scalar LSQ step for weights
  Param alpha_a_;  ///< scalar LSQ step for activations (0 ⇒ uninitialized)
  PsumScaleCalibrator calib_;

  // Cached forward state for backward.
  TensorF x_, xq_, wq_;
};

}  // namespace apsq::nn
