#include "nn/attention.hpp"

#include <cmath>

#include "nn/dense.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {

std::unique_ptr<Module> make_linear(index_t in, index_t out,
                                    const std::optional<QatConfig>& qat,
                                    Rng& rng, const std::string& name) {
  if (qat.has_value())
    return std::make_unique<QuantDense>(in, out, *qat, rng, name);
  return std::make_unique<Dense>(in, out, rng, name);
}

SelfAttention::SelfAttention(index_t dim, const std::optional<QatConfig>& qat,
                             Rng& rng, const std::string& name)
    : dim_(dim),
      wq_(make_linear(dim, dim, qat, rng, name + ".wq")),
      wk_(make_linear(dim, dim, qat, rng, name + ".wk")),
      wv_(make_linear(dim, dim, qat, rng, name + ".wv")),
      wo_(make_linear(dim, dim, qat, rng, name + ".wo")),
      scale_(1.0f / std::sqrt(static_cast<float>(dim))) {}

TensorF SelfAttention::forward(const TensorF& x) {
  APSQ_CHECK(x.rank() == 2 && x.dim(1) == dim_);
  q_ = wq_->forward(x);
  k_ = wk_->forward(x);
  v_ = wv_->forward(x);
  const TensorF scores = scale(matmul_nt(q_, k_), scale_);
  probs_ = softmax_rows(scores);
  const TensorF ctx = matmul(probs_, v_);
  return wo_->forward(ctx);
}

TensorF SelfAttention::backward(const TensorF& dy) {
  const TensorF dctx = wo_->backward(dy);

  // ctx = P·V.
  const TensorF dprobs = matmul_nt(dctx, v_);
  const TensorF dv = matmul_tn(probs_, dctx);

  // Softmax backward per row: dS_j = P_j (dP_j - Σ_k dP_k P_k).
  TensorF dscores(dprobs.shape());
  const index_t n = dprobs.dim(0), t = dprobs.dim(1);
  for (index_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (index_t j = 0; j < t; ++j)
      dot += static_cast<double>(dprobs(i, j)) * probs_(i, j);
    for (index_t j = 0; j < t; ++j)
      dscores(i, j) = static_cast<float>(
          probs_(i, j) * (static_cast<double>(dprobs(i, j)) - dot));
  }

  // scores = (Q·Kᵀ)·scale.
  const TensorF dq = scale(matmul(dscores, k_), scale_);
  const TensorF dk = scale(matmul_tn(dscores, q_), scale_);

  TensorF dx = wq_->backward(dq);
  add_inplace(dx, wk_->backward(dk));
  add_inplace(dx, wv_->backward(dv));
  return dx;
}

void SelfAttention::collect_params(std::vector<Param*>& out) {
  wq_->collect_params(out);
  wk_->collect_params(out);
  wv_->collect_params(out);
  wo_->collect_params(out);
}

void SelfAttention::set_training(bool training) {
  Module::set_training(training);
  wq_->set_training(training);
  wk_->set_training(training);
  wv_->set_training(training);
  wo_->set_training(training);
}

}  // namespace apsq::nn
