// Optimizers over Param views: SGD with momentum, and Adam (the QAT
// trainer's default, matching common LSQ fine-tuning recipes).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace apsq::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

  float lr = 0.0f;

 private:
  float momentum_, weight_decay_;
  std::vector<TensorF> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  float lr = 0.0f;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  i64 t_ = 0;
  std::vector<TensorF> m_, v_;
};

}  // namespace apsq::nn
