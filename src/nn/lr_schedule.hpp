// Learning-rate schedules for the QAT trainer.
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "nn/module.hpp"

namespace apsq::nn {

enum class LrSchedule {
  kConstant,
  kCosine,       ///< cosine decay from base_lr to min_lr over total steps
  kStepDecay,    ///< ×0.1 at 50% and 75% of training
};

/// Learning rate at `step` of `total_steps` under a schedule.
inline float scheduled_lr(LrSchedule schedule, float base_lr, float min_lr,
                          index_t step, index_t total_steps) {
  APSQ_CHECK(total_steps > 0 && step >= 0);
  APSQ_CHECK(base_lr > 0.0f && min_lr >= 0.0f && min_lr <= base_lr);
  const double progress =
      std::min(1.0, static_cast<double>(step) / static_cast<double>(total_steps));
  switch (schedule) {
    case LrSchedule::kConstant:
      return base_lr;
    case LrSchedule::kCosine:
      return static_cast<float>(
          min_lr + 0.5 * (base_lr - min_lr) * (1.0 + std::cos(M_PI * progress)));
    case LrSchedule::kStepDecay:
      if (progress >= 0.75) return std::max(min_lr, base_lr * 0.01f);
      if (progress >= 0.5) return std::max(min_lr, base_lr * 0.1f);
      return base_lr;
  }
  return base_lr;
}

/// Global L2-norm gradient clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Param*>& params, float max_norm);

}  // namespace apsq::nn
