#include "nn/transformer_block.hpp"

#include "tensor/ops.hpp"

namespace apsq::nn {

TransformerBlock::TransformerBlock(index_t dim, index_t ffn_dim,
                                   const std::optional<QatConfig>& qat,
                                   Rng& rng, const std::string& name)
    : ln1_(dim, 1e-5f, name + ".ln1"),
      ln2_(dim, 1e-5f, name + ".ln2"),
      attn_(dim, qat, rng, name + ".attn"),
      fc1_(make_linear(dim, ffn_dim, qat, rng, name + ".fc1")),
      fc2_(make_linear(ffn_dim, dim, qat, rng, name + ".fc2")) {}

TensorF TransformerBlock::forward(const TensorF& x) {
  // h = x + Attn(LN1(x));  y = h + FFN(LN2(h)).
  TensorF h = add(x, attn_.forward(ln1_.forward(x)));
  TensorF ffn = fc2_->forward(gelu_.forward(fc1_->forward(ln2_.forward(h))));
  return add(h, ffn);
}

TensorF TransformerBlock::backward(const TensorF& dy) {
  // y = h + FFN(LN2(h)).
  TensorF dh = dy;
  add_inplace(
      dh, ln2_.backward(fc1_->backward(gelu_.backward(fc2_->backward(dy)))));
  // h = x + Attn(LN1(x)).
  TensorF dx = dh;
  add_inplace(dx, ln1_.backward(attn_.backward(dh)));
  return dx;
}

void TransformerBlock::collect_params(std::vector<Param*>& out) {
  ln1_.collect_params(out);
  attn_.collect_params(out);
  ln2_.collect_params(out);
  fc1_->collect_params(out);
  fc2_->collect_params(out);
}

void TransformerBlock::set_training(bool training) {
  Module::set_training(training);
  attn_.set_training(training);
  fc1_->set_training(training);
  fc2_->set_training(training);
}

}  // namespace apsq::nn
