// Quantizable 2-D convolution layer via im2col + (Quant)Dense-style GEMM.
//
// The CV workloads the paper evaluates (Segformer's patch embeddings and
// Mix-FFN depthwise, EfficientViT's MBConv stacks) are convolutions; this
// layer runs them through exactly the same W8A8 LSQ + APSQ PSUM path as
// the linear layers, with the im2col patch dimension (k²·Cin) playing the
// role of Ci in Eq. (8).
#pragma once

#include <memory>
#include <optional>

#include "nn/quant_dense.hpp"
#include "tensor/im2col.hpp"

namespace apsq::nn {

class Conv2d : public Module {
 public:
  Conv2d(ConvGeometry geometry, index_t out_channels,
         const std::optional<QatConfig>& qat, Rng& rng,
         const std::string& name = "conv");

  /// x is an [H·W, Cin] feature map; returns [outH·outW, Cout].
  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

  const ConvGeometry& geometry() const { return geom_; }
  index_t out_channels() const { return out_c_; }

 private:
  ConvGeometry geom_;
  index_t out_c_;
  /// The GEMM core ((Quant)Dense over patch rows) owns weights & bias.
  std::unique_ptr<Module> gemm_;
};

}  // namespace apsq::nn
