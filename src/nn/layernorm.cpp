#include "nn/layernorm.hpp"

#include <cmath>

namespace apsq::nn {

LayerNorm::LayerNorm(index_t features, float eps, const std::string& name)
    : features_(features),
      eps_(eps),
      gamma_(name + ".gamma", TensorF({features}, 1.0f)),
      beta_(name + ".beta", TensorF({features}, 0.0f)) {}

TensorF LayerNorm::forward(const TensorF& x) {
  APSQ_CHECK(x.rank() == 2 && x.dim(1) == features_);
  const index_t n = x.dim(0), d = features_;
  xhat_ = TensorF(x.shape());
  inv_std_ = TensorF({n});
  TensorF y(x.shape());
  for (index_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (index_t j = 0; j < d; ++j) mean += x(i, j);
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (index_t j = 0; j < d; ++j) {
      const double c = x(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const double inv = 1.0 / std::sqrt(var + eps_);
    inv_std_(i) = static_cast<float>(inv);
    for (index_t j = 0; j < d; ++j) {
      xhat_(i, j) = static_cast<float>((x(i, j) - mean) * inv);
      y(i, j) = gamma_.value(j) * xhat_(i, j) + beta_.value(j);
    }
  }
  return y;
}

TensorF LayerNorm::backward(const TensorF& dy) {
  APSQ_CHECK(dy.same_shape(xhat_));
  const index_t n = dy.dim(0), d = features_;
  TensorF dx(dy.shape());
  for (index_t i = 0; i < n; ++i) {
    // dL/dxhat_j = dy_j * gamma_j; standard layernorm backward.
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (index_t j = 0; j < d; ++j) {
      const double dxh = static_cast<double>(dy(i, j)) * gamma_.value(j);
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * xhat_(i, j);
      gamma_.grad(j) += dy(i, j) * xhat_(i, j);
      beta_.grad(j) += dy(i, j);
    }
    const double inv = inv_std_(i);
    const double invd = 1.0 / static_cast<double>(d);
    for (index_t j = 0; j < d; ++j) {
      const double dxh = static_cast<double>(dy(i, j)) * gamma_.value(j);
      dx(i, j) = static_cast<float>(
          inv * (dxh - invd * sum_dxhat - invd * xhat_(i, j) * sum_dxhat_xhat));
    }
  }
  return dx;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace apsq::nn
