#include "nn/module.hpp"

namespace apsq::nn {

index_t Module::num_params() {
  index_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace apsq::nn
