// Loss functions: softmax cross-entropy, MSE, and the knowledge-
// distillation objective used by the paper's QAT recipe (§IV-A: QAT
// "guided by a full-precision teacher model for knowledge distillation").
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace apsq::nn {

struct LossResult {
  float value = 0.0f;
  TensorF grad;  ///< dL/d(logits or predictions), averaged over rows
};

/// Softmax cross-entropy over logits [N, C] with integer class targets.
LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<index_t>& targets);

/// Mean squared error against targets of identical shape.
LossResult mse_loss(const TensorF& pred, const TensorF& target);

/// Distillation: task loss + λ · MSE(student_logits, teacher_logits).
/// Returns combined value/grad w.r.t. student logits.
LossResult distillation_loss(const TensorF& student_logits,
                             const std::vector<index_t>& targets,
                             const TensorF& teacher_logits, float lambda);

}  // namespace apsq::nn
