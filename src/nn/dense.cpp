#include "nn/dense.hpp"

#include "nn/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {

Dense::Dense(index_t in_features, index_t out_features, Rng& rng,
             const std::string& name)
    : in_(in_features),
      out_(out_features),
      weight_(name + ".weight", kaiming_init(in_features, out_features, rng)),
      bias_(name + ".bias", TensorF({out_features}, 0.0f)) {}

TensorF Dense::forward(const TensorF& x) {
  APSQ_CHECK(x.rank() == 2 && x.dim(1) == in_);
  x_ = x;
  return add_row_bias(matmul(x, weight_.value), bias_.value);
}

TensorF Dense::backward(const TensorF& dy) {
  APSQ_CHECK(dy.rank() == 2 && dy.dim(1) == out_ && dy.dim(0) == x_.dim(0));
  // dW += xᵀ·dy ; db += colsum(dy) ; dx = dy·Wᵀ.
  add_inplace(weight_.grad, matmul_tn(x_, dy));
  for (index_t i = 0; i < dy.dim(0); ++i)
    for (index_t j = 0; j < out_; ++j) bias_.grad(j) += dy(i, j);
  return matmul_nt(dy, weight_.value);
}

void Dense::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace apsq::nn
