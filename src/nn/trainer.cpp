#include "nn/trainer.hpp"

#include "common/math_util.hpp"

#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tile.hpp"

namespace apsq::nn {

const char* to_string(Metric m) {
  switch (m) {
    case Metric::kAccuracy: return "accuracy";
    case Metric::kMatthews: return "matthews";
    case Metric::kPearson: return "pearson";
    case Metric::kMiou: return "mIoU";
  }
  return "?";
}

namespace {

TensorF rows_subset(const TensorF& x, const std::vector<index_t>& idx,
                    index_t begin, index_t end) {
  const index_t n = end - begin, d = x.dim(1);
  TensorF out({n, d});
  for (index_t r = 0; r < n; ++r) {
    const index_t src = idx[static_cast<size_t>(begin + r)];
    for (index_t c = 0; c < d; ++c) out(r, c) = x(src, c);
  }
  return out;
}

}  // namespace

TrainOutcome train_model(Module& model, const Dataset& ds,
                         const TrainConfig& cfg, Module* teacher) {
  APSQ_CHECK(ds.train_x.rank() == 2 && ds.train_x.dim(0) > 0);
  const index_t n = ds.train_x.dim(0);
  if (!ds.regression)
    APSQ_CHECK(static_cast<index_t>(ds.train_y.size()) == n);

  model.set_training(true);
  if (teacher) teacher->set_training(false);

  Adam opt(model.params(), cfg.lr);
  Rng rng(cfg.shuffle_seed);
  std::vector<index_t> order(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  const index_t steps_per_epoch = ceil_div(n, cfg.batch_size);
  const index_t total_steps = cfg.epochs * steps_per_epoch;

  TrainOutcome outcome;
  for (index_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    for (index_t b = 0; b < n; b += cfg.batch_size) {
      const index_t e = std::min(b + cfg.batch_size, n);
      const TensorF x = rows_subset(ds.train_x, order, b, e);

      opt.zero_grad();
      const TensorF logits = model.forward(x);

      LossResult loss;
      if (ds.regression) {
        TensorF target({e - b, ds.train_target.dim(1)});
        for (index_t r = 0; r < e - b; ++r)
          for (index_t c = 0; c < target.dim(1); ++c)
            target(r, c) = ds.train_target(order[static_cast<size_t>(b + r)], c);
        loss = mse_loss(logits, target);
        if (teacher) {
          const TensorF tlogits = teacher->forward(x);
          LossResult kd = mse_loss(logits, tlogits);
          loss.value += cfg.kd_lambda * kd.value;
          for (index_t i = 0; i < loss.grad.numel(); ++i)
            loss.grad[i] += cfg.kd_lambda * kd.grad[i];
        }
      } else {
        std::vector<index_t> y(static_cast<size_t>(e - b));
        for (index_t r = 0; r < e - b; ++r)
          y[static_cast<size_t>(r)] =
              ds.train_y[static_cast<size_t>(order[static_cast<size_t>(b + r)])];
        if (teacher && cfg.kd_lambda > 0.0f) {
          const TensorF tlogits = teacher->forward(x);
          loss = distillation_loss(logits, y, tlogits, cfg.kd_lambda);
        } else {
          loss = softmax_cross_entropy(logits, y);
        }
      }

      model.backward(loss.grad);
      if (cfg.grad_clip_norm > 0.0f) {
        auto params = model.params();
        clip_grad_norm(params, cfg.grad_clip_norm);
      }
      opt.lr = scheduled_lr(cfg.lr_schedule, cfg.lr, cfg.min_lr,
                            outcome.steps, total_steps);
      opt.step();
      outcome.final_train_loss = loss.value;
      ++outcome.steps;
    }
  }

  outcome.test_metric_pct = evaluate_model(model, ds);
  return outcome;
}

double train_sequence_classifier(Module& model,
                                 const std::vector<TensorF>& train_x,
                                 const std::vector<index_t>& train_y,
                                 const std::vector<TensorF>& test_x,
                                 const std::vector<index_t>& test_y,
                                 const SeqTrainConfig& cfg) {
  APSQ_CHECK(!train_x.empty() && train_x.size() == train_y.size());
  model.set_training(true);
  Adam opt(model.params(), cfg.lr);
  Rng rng(cfg.shuffle_seed);
  const index_t n = static_cast<index_t>(train_x.size());
  std::vector<index_t> order(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (index_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    for (index_t b = 0; b < n; b += cfg.batch_size) {
      const index_t e = std::min(b + cfg.batch_size, n);
      opt.zero_grad();
      // Gradient accumulation over the group (sequences have their own
      // token dimension, so samples go through one at a time).
      for (index_t s = b; s < e; ++s) {
        const index_t idx = order[static_cast<size_t>(s)];
        const TensorF logits =
            model.forward(train_x[static_cast<size_t>(idx)]);
        LossResult loss = softmax_cross_entropy(
            logits, {train_y[static_cast<size_t>(idx)]});
        const float scale = 1.0f / static_cast<float>(e - b);
        for (index_t i = 0; i < loss.grad.numel(); ++i)
          loss.grad[i] *= scale;
        model.backward(loss.grad);
      }
      opt.step();
    }
  }
  return evaluate_sequence_classifier(model, test_x, test_y);
}

double evaluate_sequence_classifier(Module& model,
                                    const std::vector<TensorF>& xs,
                                    const std::vector<index_t>& ys) {
  APSQ_CHECK(!xs.empty() && xs.size() == ys.size());
  model.set_training(false);
  size_t correct = 0;
  for (size_t s = 0; s < xs.size(); ++s) {
    const TensorF logits = model.forward(xs[s]);
    const auto pred = argmax_rows(logits);
    if (pred[0] == ys[s]) ++correct;
  }
  model.set_training(true);
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(xs.size());
}

double evaluate_model(Module& model, const Dataset& ds) {
  model.set_training(false);
  const TensorF logits = model.forward(ds.test_x);
  double metric = 0.0;
  switch (ds.metric) {
    case Metric::kAccuracy:
      metric = accuracy_pct(argmax_rows(logits), ds.test_y);
      break;
    case Metric::kMatthews:
      metric = matthews_corr_pct(argmax_rows(logits), ds.test_y);
      break;
    case Metric::kPearson: {
      APSQ_CHECK(logits.dim(1) == 1);
      std::vector<float> pred, target;
      for (index_t i = 0; i < logits.dim(0); ++i) {
        pred.push_back(logits(i, 0));
        target.push_back(ds.test_target(i, 0));
      }
      metric = pearson_pct(pred, target);
      break;
    }
    case Metric::kMiou:
      metric = mean_iou_pct(argmax_rows(logits), ds.test_y, ds.num_classes);
      break;
  }
  model.set_training(true);
  return metric;
}

}  // namespace apsq::nn
