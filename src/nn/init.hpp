// Weight initialization helpers.
#pragma once

#include <cmath>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace apsq::nn {

/// Kaiming/He normal init for a [fan_in, fan_out] weight matrix.
inline TensorF kaiming_init(index_t fan_in, index_t fan_out, Rng& rng) {
  TensorF w({fan_in, fan_out});
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (index_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

/// Xavier/Glorot uniform init.
inline TensorF xavier_init(index_t fan_in, index_t fan_out, Rng& rng) {
  TensorF w({fan_in, fan_out});
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (index_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-bound, bound));
  return w;
}

}  // namespace apsq::nn
