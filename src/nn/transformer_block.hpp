// Pre-norm transformer encoder block:
//   x -> LN1 -> SelfAttention -> (+x) -> LN2 -> FFN (fc1, GELU, fc2) -> (+)
// FFN projections and attention projections share the QAT configuration.
#pragma once

#include <memory>
#include <optional>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/layernorm.hpp"

namespace apsq::nn {

class TransformerBlock : public Module {
 public:
  TransformerBlock(index_t dim, index_t ffn_dim,
                   const std::optional<QatConfig>& qat, Rng& rng,
                   const std::string& name = "block");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

 private:
  LayerNorm ln1_, ln2_;
  SelfAttention attn_;
  std::unique_ptr<Module> fc1_, fc2_;
  Gelu gelu_;
};

}  // namespace apsq::nn
