// Single-head scaled dot-product self-attention over one token sequence
// [tokens, dim], with manual backward.
//
// The four projections (Q/K/V/O) are the weight GEMMs the paper quantizes
// with APSQ; pass a QatConfig to run them as QuantDense layers, or none
// for an FP32 teacher. The score/context matmuls themselves stay in float
// (activation-activation products; APSQ targets weight-layer PSUM
// accumulation — see DESIGN.md §3.4).
#pragma once

#include <memory>
#include <optional>

#include "nn/module.hpp"
#include "nn/quant_dense.hpp"

namespace apsq::nn {

/// Factory for a linear layer: quantized when `qat` is set, FP32 otherwise.
std::unique_ptr<Module> make_linear(index_t in, index_t out,
                                    const std::optional<QatConfig>& qat,
                                    Rng& rng, const std::string& name);

class SelfAttention : public Module {
 public:
  SelfAttention(index_t dim, const std::optional<QatConfig>& qat, Rng& rng,
                const std::string& name = "attn");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

 private:
  index_t dim_;
  std::unique_ptr<Module> wq_, wk_, wv_, wo_;
  float scale_;

  // Cached forward state.
  TensorF q_, k_, v_, probs_;
};

}  // namespace apsq::nn
