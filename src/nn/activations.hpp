// Elementwise activation layers with manual backward.
#pragma once

#include "nn/module.hpp"

namespace apsq::nn {

class ReLU : public Module {
 public:
  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;

 private:
  TensorF x_;
};

/// GELU (tanh approximation, as used by BERT / transformers).
class Gelu : public Module {
 public:
  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;

 private:
  TensorF x_;
};

}  // namespace apsq::nn
