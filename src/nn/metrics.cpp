#include "nn/metrics.hpp"

#include <cmath>

#include "common/check.hpp"

namespace apsq::nn {

std::vector<index_t> argmax_rows(const TensorF& logits) {
  APSQ_CHECK(logits.rank() == 2);
  std::vector<index_t> out(static_cast<size_t>(logits.dim(0)));
  for (index_t i = 0; i < logits.dim(0); ++i) {
    index_t best = 0;
    for (index_t j = 1; j < logits.dim(1); ++j)
      if (logits(i, j) > logits(i, best)) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double accuracy_pct(const std::vector<index_t>& pred,
                    const std::vector<index_t>& target) {
  APSQ_CHECK(pred.size() == target.size() && !pred.empty());
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == target[i]) ++correct;
  return 100.0 * static_cast<double>(correct) / static_cast<double>(pred.size());
}

double matthews_corr_pct(const std::vector<index_t>& pred,
                         const std::vector<index_t>& target) {
  APSQ_CHECK(pred.size() == target.size() && !pred.empty());
  double tp = 0, tn = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    APSQ_CHECK_MSG(pred[i] <= 1 && target[i] <= 1, "MCC is binary");
    if (pred[i] == 1 && target[i] == 1) ++tp;
    else if (pred[i] == 0 && target[i] == 0) ++tn;
    else if (pred[i] == 1) ++fp;
    else ++fn;
  }
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom == 0.0) return 0.0;
  return 100.0 * (tp * tn - fp * fn) / denom;
}

double pearson_pct(const std::vector<float>& pred,
                   const std::vector<float>& target) {
  APSQ_CHECK(pred.size() == target.size() && pred.size() >= 2);
  const double n = static_cast<double>(pred.size());
  double mp = 0, mt = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    mp += pred[i];
    mt += target[i];
  }
  mp /= n;
  mt /= n;
  double cov = 0, vp = 0, vt = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double a = pred[i] - mp, b = target[i] - mt;
    cov += a * b;
    vp += a * a;
    vt += b * b;
  }
  if (vp == 0.0 || vt == 0.0) return 0.0;
  return 100.0 * cov / std::sqrt(vp * vt);
}

double mean_iou_pct(const std::vector<index_t>& pred,
                    const std::vector<index_t>& target, index_t num_classes) {
  APSQ_CHECK(pred.size() == target.size() && !pred.empty());
  APSQ_CHECK(num_classes >= 2);
  std::vector<double> inter(static_cast<size_t>(num_classes), 0.0);
  std::vector<double> uni(static_cast<size_t>(num_classes), 0.0);
  for (size_t i = 0; i < pred.size(); ++i) {
    const index_t p = pred[i], t = target[i];
    APSQ_CHECK(p >= 0 && p < num_classes && t >= 0 && t < num_classes);
    if (p == t) {
      inter[static_cast<size_t>(p)] += 1.0;
      uni[static_cast<size_t>(p)] += 1.0;
    } else {
      uni[static_cast<size_t>(p)] += 1.0;
      uni[static_cast<size_t>(t)] += 1.0;
    }
  }
  double sum = 0.0;
  index_t present = 0;
  for (index_t c = 0; c < num_classes; ++c) {
    if (uni[static_cast<size_t>(c)] > 0.0) {
      sum += inter[static_cast<size_t>(c)] / uni[static_cast<size_t>(c)];
      ++present;
    }
  }
  return present > 0 ? 100.0 * sum / static_cast<double>(present) : 0.0;
}

}  // namespace apsq::nn
