#include "nn/sequential.hpp"

namespace apsq::nn {

TensorF Sequential::forward(const TensorF& x) {
  TensorF h = x;
  for (auto& l : layers_) h = l->forward(h);
  return h;
}

TensorF Sequential::backward(const TensorF& dy) {
  TensorF g = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& l : layers_) l->set_training(training);
}

}  // namespace apsq::nn
