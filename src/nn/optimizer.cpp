#include "nn/optimizer.hpp"

#include <cmath>

namespace apsq::nn {

Sgd::Sgd(std::vector<Param*> params, float lr_in, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape(), 0.0f);
}

void Sgd::step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    TensorF& vel = velocity_[k];
    for (index_t i = 0; i < p.value.numel(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      vel[i] = momentum_ * vel[i] + g;
      p.value[i] -= lr * vel[i];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr_in, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape(), 0.0f);
    v_.emplace_back(p->value.shape(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    for (index_t i = 0; i < p.value.numel(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const double mhat = m_[k][i] / bc1;
      const double vhat = v_[k][i] / bc2;
      p.value[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace apsq::nn
