// Task metrics matching the paper's evaluation protocols:
//  * classification accuracy (QNLI/MNLI/RTE/MRPC, ZCSR tasks),
//  * Matthews correlation (CoLA),
//  * Pearson correlation (STS-B),
//  * mean intersection-over-union (ADE20K segmentation).
// All are returned in percent, as the paper reports them.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace apsq::nn {

/// argmax over each row of logits.
std::vector<index_t> argmax_rows(const TensorF& logits);

/// % of predictions equal to targets.
double accuracy_pct(const std::vector<index_t>& pred,
                    const std::vector<index_t>& target);

/// Matthews correlation coefficient × 100 for binary predictions.
double matthews_corr_pct(const std::vector<index_t>& pred,
                         const std::vector<index_t>& target);

/// Pearson correlation × 100 between scalar predictions and targets.
double pearson_pct(const std::vector<float>& pred,
                   const std::vector<float>& target);

/// Mean IoU × 100 over `num_classes` classes (ignores classes absent from
/// both prediction and target, as mmseg does).
double mean_iou_pct(const std::vector<index_t>& pred,
                    const std::vector<index_t>& target, index_t num_classes);

}  // namespace apsq::nn
