#include "nn/sequence_classifier.hpp"

#include "nn/attention.hpp"  // make_linear

namespace apsq::nn {

SequenceClassifier::SequenceClassifier(Config config,
                                       const std::optional<QatConfig>& qat,
                                       Rng& rng, const std::string& name)
    : cfg_(config),
      embed_(make_linear(config.input_dim, config.model_dim, qat, rng,
                         name + ".embed")),
      final_ln_(config.model_dim, 1e-5f, name + ".final_ln"),
      head_(make_linear(config.model_dim, config.num_classes, qat, rng,
                        name + ".head")) {
  APSQ_CHECK(config.num_blocks >= 1 && config.num_classes >= 2);
  for (index_t b = 0; b < config.num_blocks; ++b)
    blocks_.push_back(std::make_unique<TransformerBlock>(
        config.model_dim, config.ffn_dim, qat, rng,
        name + ".block" + std::to_string(b)));
}

TensorF SequenceClassifier::forward(const TensorF& x) {
  APSQ_CHECK(x.rank() == 2 && x.dim(1) == cfg_.input_dim);
  tokens_ = x.dim(0);
  TensorF h = embed_->forward(x);
  for (auto& block : blocks_) h = block->forward(h);
  h = final_ln_.forward(h);
  // Mean pool over tokens.
  TensorF pooled({1, cfg_.model_dim}, 0.0f);
  for (index_t t = 0; t < tokens_; ++t)
    for (index_t d = 0; d < cfg_.model_dim; ++d) pooled(0, d) += h(t, d);
  const float inv = 1.0f / static_cast<float>(tokens_);
  for (index_t d = 0; d < cfg_.model_dim; ++d) pooled(0, d) *= inv;
  return head_->forward(pooled);
}

TensorF SequenceClassifier::backward(const TensorF& dlogits) {
  const TensorF dpooled = head_->backward(dlogits);
  // Mean-pool adjoint: broadcast / T.
  TensorF dh({tokens_, cfg_.model_dim});
  const float inv = 1.0f / static_cast<float>(tokens_);
  for (index_t t = 0; t < tokens_; ++t)
    for (index_t d = 0; d < cfg_.model_dim; ++d)
      dh(t, d) = dpooled(0, d) * inv;
  dh = final_ln_.backward(dh);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
    dh = (*it)->backward(dh);
  return embed_->backward(dh);
}

void SequenceClassifier::collect_params(std::vector<Param*>& out) {
  embed_->collect_params(out);
  for (auto& block : blocks_) block->collect_params(out);
  final_ln_.collect_params(out);
  head_->collect_params(out);
}

void SequenceClassifier::set_training(bool training) {
  Module::set_training(training);
  embed_->set_training(training);
  for (auto& block : blocks_) block->set_training(training);
  head_->set_training(training);
}

}  // namespace apsq::nn
