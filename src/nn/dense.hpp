// Full-precision dense (linear) layer: y = x·W + b.
// Used for FP32 teachers and as the base of the quantized variant.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace apsq::nn {

class Dense : public Module {
 public:
  Dense(index_t in_features, index_t out_features, Rng& rng,
        const std::string& name = "dense");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;

  index_t in_features() const { return in_; }
  index_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 protected:
  index_t in_, out_;
  Param weight_;  ///< [in, out]
  Param bias_;    ///< [out]
  TensorF x_;     ///< cached input
};

}  // namespace apsq::nn
