#include "nn/quant_dense.hpp"

#include <cmath>

#include "common/math_util.hpp"
#include "nn/init.hpp"
#include "quant/lsq.hpp"
#include "quant/uniform.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/tile.hpp"

namespace apsq::nn {

QuantDense::QuantDense(index_t in_features, index_t out_features,
                       QatConfig config, Rng& rng, const std::string& name)
    : in_(in_features),
      out_(out_features),
      cfg_(config),
      weight_(name + ".weight", kaiming_init(in_features, out_features, rng)),
      bias_(name + ".bias", TensorF({out_features}, 0.0f)),
      alpha_w_(name + ".alpha_w",
               TensorF({config.per_channel_weights ? out_features : 1}, 0.0f)),
      alpha_a_(name + ".alpha_a", TensorF({1}, 0.0f)),
      calib_(config.psum_spec, /*momentum=*/0.9, /*margin=*/1.0) {
  APSQ_CHECK(cfg_.tile_ci > 0 && cfg_.group_size >= 1);
  if (cfg_.per_channel_weights) {
    for (index_t c = 0; c < out_; ++c)
      alpha_w_.value(c) = lsq_init_alpha(weight_column(c), cfg_.weight_spec);
  } else {
    alpha_w_.value(0) = lsq_init_alpha(weight_.value, cfg_.weight_spec);
  }
}

TensorF QuantDense::weight_column(index_t c) const {
  APSQ_CHECK(c >= 0 && c < out_);
  TensorF col({in_});
  for (index_t r = 0; r < in_; ++r) col(r) = weight_.value(r, c);
  return col;
}

TensorF QuantDense::fake_quantize_weights() const {
  if (!cfg_.per_channel_weights)
    return lsq_forward(weight_.value, alpha_w_.value(0), cfg_.weight_spec).y;
  TensorF wq(weight_.value.shape());
  for (index_t c = 0; c < out_; ++c) {
    const TensorF col =
        lsq_forward(weight_column(c), alpha_w_.value(c), cfg_.weight_spec).y;
    for (index_t r = 0; r < in_; ++r) wq(r, c) = col(r);
  }
  return wq;
}

TensorF QuantDense::psum_accumulate(const TensorF& xq, const TensorF& wq) {
  if (cfg_.psum_mode == PsumMode::kExact) return matmul(xq, wq);

  const index_t np = ceil_div(in_, cfg_.tile_ci);
  const index_t rows = xq.dim(0);

  // The hardware accumulates INT8×INT8 products — exact integers in units
  // of the product scale α_a·α_w (per output column when weights are
  // per-channel). Carrying the PSUM path in code space (integer-valued
  // floats; exact in float64 far beyond our accumulation depths) keeps the
  // .5 rounding ties and the saturation behaviour of the RAE shift path
  // bit-faithful; real-unit tensors would blur ties with float
  // representation noise (see DESIGN.md §3.3).
  const TensorI32 xc = quantize_codes(xq, alpha_a_.value(0), cfg_.act_spec);
  const TensorF xcf = xc.cast<float>();
  TensorF wcf(wq.shape());
  for (index_t c = 0; c < out_; ++c) {
    const double aw = cfg_.per_channel_weights ? alpha_w_.value(c)
                                               : alpha_w_.value(0);
    APSQ_CHECK_MSG(aw > 0.0, "quantizer scales must be positive");
    for (index_t r = 0; r < in_; ++r)
      wcf(r, c) = static_cast<float>(quantize_code(
          static_cast<double>(wq(r, c)), aw, cfg_.weight_spec));
  }

  // PSUM tiles Tp_i over the accumulation (ci) dimension — Eq. (8).
  std::vector<TensorF> tiles;
  tiles.reserve(static_cast<size_t>(np));
  for (index_t t = 0; t < np; ++t) {
    const index_t k0 = t * cfg_.tile_ci;
    const index_t k1 = std::min(k0 + cfg_.tile_ci, in_);
    const TileRect xr{0, rows, k0, k1};
    const TileRect wr{k0, k1, 0, out_};
    tiles.push_back(matmul(extract_tile(xcf, xr), extract_tile(wcf, wr)));
  }

  // The PSUM step size is a power of two in product-scale units, so
  // dequantization is a hardware shift (§II-B). Calibration tracks the
  // FINAL accumulated output range (what an LSQ-trained output scale
  // converges to): intermediate APs that overshoot it saturate — the
  // clipping mechanism behind APSQ's gs = 1 accuracy drop (§III-B). With
  // gs > 1 the intra-group prefixes are held in full precision by the
  // adder pipeline and only np/gs history folds are exposed.
  if (training_) {
    TensorD final_sum({rows, out_}, 0.0);
    for (const auto& t : tiles)
      for (index_t e = 0; e < t.numel(); ++e)
        final_sum[e] += static_cast<double>(t[e]);
    double max_out = 0.0;
    for (index_t e = 0; e < final_sum.numel(); ++e)
      max_out = std::max(max_out, std::fabs(final_sum[e]));
    calib_.observe_abs_max(max_out);
  }
  const double alpha_p = std::exp2(calib_.exponent());

  TensorF y = accumulate_psums(tiles, cfg_.psum_mode, cfg_.psum_spec,
                               {alpha_p}, cfg_.group_size);
  // Back to real units — the per-column requantization step of an
  // integer-only deployment.
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < out_; ++c) {
      const double aw = cfg_.per_channel_weights ? alpha_w_.value(c)
                                                 : alpha_w_.value(0);
      y(r, c) = static_cast<float>(static_cast<double>(y(r, c)) *
                                   static_cast<double>(alpha_a_.value(0)) * aw);
    }
  return y;
}

TensorF QuantDense::forward(const TensorF& x) {
  APSQ_CHECK(x.rank() == 2 && x.dim(1) == in_);
  x_ = x;

  if (alpha_a_.value(0) <= 0.0f) {
    // LSQ initializes the activation step from the first batch. The check
    // is value-based (not a flag) so transplanted parameters — e.g.
    // post-training evaluation of a trained net under a different PSUM
    // mode — keep their learned step sizes.
    alpha_a_.value(0) = lsq_init_alpha(x, cfg_.act_spec);
  }
  // Optimizer updates can push a learnable step size through zero; clamp
  // to a positive floor (standard LSQ practice) to keep the grid valid.
  constexpr float kMinAlpha = 1e-6f;
  alpha_a_.value(0) = std::max(alpha_a_.value(0), kMinAlpha);
  for (index_t c = 0; c < alpha_w_.value.numel(); ++c)
    alpha_w_.value(c) = std::max(alpha_w_.value(c), kMinAlpha);

  xq_ = lsq_forward(x, alpha_a_.value(0), cfg_.act_spec).y;
  wq_ = fake_quantize_weights();

  return add_row_bias(psum_accumulate(xq_, wq_), bias_.value);
}

TensorF QuantDense::backward(const TensorF& dy) {
  APSQ_CHECK(dy.rank() == 2 && dy.dim(1) == out_ && dy.dim(0) == x_.dim(0));

  for (index_t i = 0; i < dy.dim(0); ++i)
    for (index_t j = 0; j < out_; ++j) bias_.grad(j) += dy(i, j);

  // STE through the PSUM path: y ≈ xq·wq.
  const TensorF dxq = matmul_nt(dy, wq_);
  const TensorF dwq = matmul_tn(xq_, dy);

  // LSQ backward for activations and weights.
  const LsqGrads ga = lsq_backward(x_, alpha_a_.value(0), cfg_.act_spec, dxq);
  if (cfg_.per_channel_weights) {
    for (index_t c = 0; c < out_; ++c) {
      TensorF dcol({in_});
      for (index_t r = 0; r < in_; ++r) dcol(r) = dwq(r, c);
      const LsqGrads gw = lsq_backward(weight_column(c), alpha_w_.value(c),
                                       cfg_.weight_spec, dcol);
      for (index_t r = 0; r < in_; ++r) weight_.grad(r, c) += gw.dx(r);
      alpha_w_.grad(c) += gw.dalpha;
    }
  } else {
    const LsqGrads gw =
        lsq_backward(weight_.value, alpha_w_.value(0), cfg_.weight_spec, dwq);
    add_inplace(weight_.grad, gw.dx);
    alpha_w_.grad(0) += gw.dalpha;
  }
  alpha_a_.grad(0) += ga.dalpha;
  return ga.dx;
}

void QuantDense::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
  out.push_back(&alpha_w_);
  out.push_back(&alpha_a_);
}

}  // namespace apsq::nn
