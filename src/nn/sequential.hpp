// Sequential module container.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace apsq::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> m) {
    layers_.push_back(std::move(m));
    return *this;
  }

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    return *this;
  }

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& dy) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;

  index_t size() const { return static_cast<index_t>(layers_.size()); }
  Module& layer(index_t i) { return *layers_[static_cast<size_t>(i)]; }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace apsq::nn
