// Request dispatcher — the daemon's core: one shared EvalStore, one
// shared worker pool, many concurrent front queries.
//
// A query is a RequestSpec (the same validated object a CLI invocation
// or a --jobs experiment deserializes into). The dispatcher answers it
// the way a SweepSession would — store lookup under (space hash, scoring
// key), per-row canonical-key guards, batched evaluation of the misses,
// front extraction through dse::extract_front — so a warm query never
// evaluates and every front is byte-identical to batch mode.
//
// What SweepSession doesn't have is the miss-coalescing layer: when
// several in-flight requests miss the store under the same scoring
// identity, their missing points are pooled and ONE evaluate_points call
// (through the process-wide shared pool) answers all of them. Per
// (space hash, scoring key) the dispatcher keeps a coalescing group — a
// pending set, an in-flight set, and a done map under one mutex. A
// request registers the misses nobody else has claimed, then either
// becomes the group's leader (evaluating everything pending in one
// batch) or waits for the results to be fanned back out. Two concurrent
// cold queries over overlapping slices therefore trigger exactly one
// evaluation of the shared points, and the summed fresh_evaluations
// across responses equals the number of unique cold points.
//
// Budgeted searches (mode=search) coalesce whole rather than
// point-wise: a search's scoring key pins (strategy, budget, seed,
// objective plane), so its sparse result set is the complete
// deterministic answer. The first cold query under the key becomes the
// search leader, runs the SearchDriver once, and merges the rows into
// the store; every concurrent and later query answers from that
// snapshot with zero fresh evaluations.
//
// Thread safety: query() is fully re-entrant — the store is internally
// synchronized, group state is guarded by the group's mutex, and the
// per-group Evaluator is only ever driven by the group's current leader.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "dse/request.hpp"

namespace apsq::dse {
class EvalStore;
}

namespace apsq::serve {

/// Telemetry of one answered query — the observability counters every
/// daemon response carries.
struct QueryStats {
  index_t store_hits = 0;  ///< points answered straight from the store
  /// Points this request evaluated as a coalescing-group leader. Summed
  /// across concurrent responses this equals the number of unique cold
  /// points — the miss-coalescing invariant.
  index_t fresh_evaluations = 0;
  /// Miss points answered by a batch another request led.
  index_t coalesced = 0;
  i64 eval_batches = 0;  ///< batches this request led (0 or 1 normally)
  double wall_ms = 0.0;
  int pool_threads = 0;
  i64 pool_runs = 0;
  i64 pool_steals = 0;
};

/// One answered query.
struct QueryResult {
  /// The scored points in enumeration order — what a "csv" output
  /// serializes. For a sweep that is every point of the space (store rows
  /// merged with fresh evaluations); for a budgeted search it is the
  /// sparse set of points the search evaluated, ascending by index.
  std::vector<dse::EvalResult> results;
  /// The per-workload front, truncated to the request's `top` (0 = all).
  std::vector<dse::EvalResult> front;
  size_t front_size = 0;         ///< untruncated per-workload front size
  size_t global_front_size = 0;  ///< cross-workload front size
  /// The FULL front as results_csv text — byte-identical to what a
  /// SweepSession running the same config would report (the daemon's
  /// correctness target, and what a front_csv output writes).
  std::string front_csv;
  QueryStats stats;
};

class Dispatcher {
 public:
  /// The store is the caller's (the daemon loads/saves it); the
  /// dispatcher only reads entries and records fresh sweeps back.
  explicit Dispatcher(dse::EvalStore& store);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Answer one request. Throws std::invalid_argument with the exact
  /// SweepConfig::validate() / parse_constraints message on an
  /// inconsistent config, and std::runtime_error on store-consistency
  /// failures (hash collisions, stale snapshots) — the same messages the
  /// batch path raises. Safe to call from any number of threads.
  QueryResult query(const dse::RequestSpec& req);

  /// The shared store (for the stats command and daemon save-on-exit).
  dse::EvalStore& store() { return store_; }

  /// Process-lifetime totals (across every request served).
  i64 total_requests() const { return total_requests_.load(); }
  i64 total_fresh_evaluations() const { return total_fresh_.load(); }
  i64 total_eval_batches() const { return total_batches_.load(); }

  /// Requests currently inside query() that have registered their misses
  /// with a coalescing group and not yet returned. Test hook: lets a
  /// concurrency test hold the leader until every racing request has
  /// joined the group.
  int inflight_requests() const { return inflight_.load(); }

  /// Test hook, called by a group leader after taking leadership and
  /// BEFORE freezing the batch (so a test can park the leader until
  /// other requests have registered their misses). Set once, before
  /// serving traffic; never called under a lock.
  void set_batch_hook(std::function<void()> hook) {
    batch_hook_ = std::move(hook);
  }

 private:
  struct Group;

  /// The coalescing group for (space hash, scoring key), created on
  /// first use with an Evaluator built from `req`'s options.
  Group& group_for(const std::string& hash, const std::string& scoring,
                   const dse::RequestSpec& req) APSQ_EXCLUDES(mu_);

  dse::EvalStore& store_;
  mutable Mutex mu_;
  /// key = space_hash + '\n' + scoring. Groups are never destroyed while
  /// the dispatcher lives (pointers handed out stay valid).
  std::map<std::string, std::unique_ptr<Group>> groups_ APSQ_GUARDED_BY(mu_);
  std::function<void()> batch_hook_;
  std::atomic<i64> total_requests_{0};
  std::atomic<i64> total_fresh_{0};
  std::atomic<i64> total_batches_{0};
  std::atomic<int> inflight_{0};
};

}  // namespace apsq::serve
