// The daemon's transport layer: line-delimited JSON over a localhost TCP
// socket, plus a stream mode (stdin → stdout) so tests and scripts can
// drive the exact protocol without touching the network.
//
// Both transports are thin shells over handle_request_line — the
// dispatcher, the request validation, and the response bytes are shared,
// so a `printf | apsq_dsed --once` transcript is authoritative for what
// the TCP server speaks.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace apsq::serve {

class Dispatcher;

/// Serve requests from `in` (one JSON line each), writing one response
/// line per request to `out`. Returns the number of ok:false responses.
/// Stops at end-of-stream or after acknowledging a shutdown command.
i64 serve_stream(Dispatcher& dispatcher, std::istream& in, std::ostream& out);

struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  int port = 0;
  /// When non-empty, the bound port is written here (as one decimal line)
  /// once the server is listening — how scripts find an ephemeral port.
  std::string port_file;
  /// Startup/shutdown log lines go here (nullptr = silent).
  std::ostream* log = nullptr;
};

/// Bind 127.0.0.1, accept connections (one service thread each), and
/// serve until a client sends a shutdown command. Requests from separate
/// connections run concurrently through the shared dispatcher — that
/// concurrency is what miss coalescing exists for. Returns 0 on a clean
/// shutdown, 1 on a setup failure (bind/listen), with the reason on
/// `opts.log` if set.
int serve_tcp(Dispatcher& dispatcher, const ServeOptions& opts);

}  // namespace apsq::serve
