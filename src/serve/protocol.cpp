#include "serve/protocol.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "common/stats_writer.hpp"
#include "dse/report.hpp"
#include "dse/request.hpp"
#include "dse/store.hpp"
#include "serve/dispatcher.hpp"

namespace apsq::serve {

namespace {

void append_head(std::ostringstream& os, bool ok, const std::string& id) {
  os << "{\"schema_version\": " << kProtocolSchemaVersion
     << ", \"ok\": " << (ok ? "true" : "false");
  if (!id.empty()) os << ", \"id\": \"" << json_escape(id) << "\"";
}

std::string error_response(const std::string& id, const std::string& msg) {
  std::ostringstream os;
  append_head(os, false, id);
  os << ", \"error\": \"" << json_escape(msg) << "\"}";
  return os.str();
}

std::string query_response(const std::string& id, const dse::RequestSpec& req,
                           const QueryResult& qr,
                           const std::vector<std::string>& wrote) {
  std::ostringstream os;
  append_head(os, true, id);
  if (!req.name.empty()) os << ", \"name\": \"" << json_escape(req.name) << "\"";
  os << ", \"points\": " << qr.results.size()
     << ", \"front_size\": " << qr.front_size
     << ", \"global_front_size\": " << qr.global_front_size << ", \"front\": [";
  bool first = true;
  for (const dse::EvalResult& r : qr.front) {
    os << (first ? "{" : ", {");
    first = false;
    dse::append_result_json(os, r);
    os << "}";
  }
  os << "]";
  if (!wrote.empty()) {
    os << ", \"wrote\": [";
    for (size_t i = 0; i < wrote.size(); ++i)
      os << (i == 0 ? "\"" : ", \"") << json_escape(wrote[i]) << "\"";
    os << "]";
  }
  os << ", \"stats\": {\"store_hits\": " << qr.stats.store_hits
     << ", \"fresh_evaluations\": " << qr.stats.fresh_evaluations
     << ", \"coalesced\": " << qr.stats.coalesced
     << ", \"eval_batches\": " << qr.stats.eval_batches
     << ", \"wall_ms\": " << dse::format_double(qr.stats.wall_ms)
     << ", \"pool_threads\": " << qr.stats.pool_threads
     << ", \"pool_runs\": " << qr.stats.pool_runs
     << ", \"pool_steals\": " << qr.stats.pool_steals << "}}";
  return os.str();
}

}  // namespace

LineResult handle_request_line(Dispatcher& dispatcher,
                               const std::string& line) {
  LineResult out;
  std::string id;
  try {
    JsonValue doc;
    try {
      doc = json_parse(line);
    } catch (const std::invalid_argument& e) {
      // json_parse speaks in line:column; prefix the source like every
      // other request-path error.
      throw std::runtime_error(std::string("request: ") + e.what());
    }
    if (!doc.is_object())
      throw std::runtime_error("request: top-level value is not an object");
    // Version gate first: a future client is rejected naming the version
    // and the supported range, not whichever of its keys is new.
    json_schema_version(doc, "request", 1, kProtocolSchemaVersion);
    if (const JsonValue* idv = doc.find("id")) id = idv->as_string();
    std::string cmd = "query";
    if (const JsonValue* cmdv = doc.find("cmd")) cmd = cmdv->as_string();

    if (cmd == "ping" || cmd == "shutdown") {
      std::ostringstream os;
      append_head(os, true, id);
      os << ", \"cmd\": \"" << cmd << "\"}";
      out.response = os.str();
      out.ok = true;
      out.shutdown = cmd == "shutdown";
      return out;
    }
    if (cmd == "stats") {
      dse::EvalStore& store = dispatcher.store();
      std::ostringstream os;
      append_head(os, true, id);
      os << ", \"cmd\": \"stats\", \"requests\": "
         << dispatcher.total_requests() << ", \"fresh_evaluations\": "
         << dispatcher.total_fresh_evaluations() << ", \"eval_batches\": "
         << dispatcher.total_eval_batches() << ", \"store_entries\": "
         << store.entry_count() << ", \"store_results\": "
         << store.result_count() << "}";
      out.response = os.str();
      out.ok = true;
      return out;
    }
    if (cmd != "query")
      throw std::runtime_error("request: unknown cmd \"" + cmd +
                               "\" (expected query|ping|stats|shutdown)");

    // A query: every remaining key is a RequestSpec field — the same
    // keys, ranges, and messages as a --jobs experiment.
    dse::RequestSpec req;
    for (const auto& [key, value] : doc.members()) {
      if (key == "schema_version" || key == "id" || key == "cmd") continue;
      if (!dse::apply_request_field(key, value, req, "request", "query"))
        dse::request_error("request", "query", "unknown key \"" + key + "\"");
    }
    const QueryResult qr = dispatcher.query(req);
    // Server-side outputs, like a jobs experiment would write them. The
    // front CSV is the FULL front (qr.front is truncated to req.top).
    std::vector<std::string> wrote;
    if (!req.csv.empty()) {
      if (!dse::results_csv(qr.results, req.config.scored_by_label())
               .write(req.csv))
        throw std::runtime_error("failed to write " + req.csv);
      wrote.push_back(req.csv);
    }
    if (!req.front_csv.empty()) {
      std::ofstream f(req.front_csv, std::ios::binary | std::ios::trunc);
      f << qr.front_csv;
      f.flush();
      if (!f) throw std::runtime_error("failed to write " + req.front_csv);
      wrote.push_back(req.front_csv);
    }
    out.response = query_response(id, req, qr, wrote);
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.response = error_response(id, e.what());
    out.ok = false;
    return out;
  }
}

}  // namespace apsq::serve
