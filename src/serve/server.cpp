#include "serve/server.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "serve/dispatcher.hpp"
#include "serve/protocol.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace apsq::serve {

namespace {

/// True for a line a shell heredoc or netcat commonly appends — blank
/// lines are ignored rather than answered with a parse error.
bool blank_line(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

}  // namespace

i64 serve_stream(Dispatcher& dispatcher, std::istream& in, std::ostream& out) {
  i64 errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (blank_line(line)) continue;
    const LineResult r = handle_request_line(dispatcher, line);
    out << r.response << "\n";
    out.flush();
    if (!r.ok) ++errors;
    if (r.shutdown) break;
  }
  return errors;
}

#ifndef _WIN32

namespace {

/// Shared between the accept loop and the per-connection threads: the
/// open sockets, so a shutdown command can unblock every blocked read.
struct ServerState {
  Mutex mu;
  bool stopping APSQ_GUARDED_BY(mu) = false;
  int listen_fd APSQ_GUARDED_BY(mu) = -1;
  std::vector<int> conn_fds APSQ_GUARDED_BY(mu);
};

void begin_shutdown(ServerState& state) {
  MutexLock lock(state.mu);
  if (state.stopping) return;
  state.stopping = true;
  // shutdown() (not close()) — it reliably wakes a thread blocked in
  // accept()/recv() on the fd, and the owning loop still closes it.
  if (state.listen_fd >= 0) ::shutdown(state.listen_fd, SHUT_RDWR);
  for (const int fd : state.conn_fds) ::shutdown(fd, SHUT_RD);
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// One connection: buffered line reads, one response line per request.
void serve_connection(Dispatcher& dispatcher, ServerState& state, int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // disconnect, error, or shutdown() from stop
      buf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (blank_line(line)) continue;
    const LineResult r = handle_request_line(dispatcher, line);
    if (!send_all(fd, r.response + "\n")) break;
    if (r.shutdown) {
      begin_shutdown(state);
      break;
    }
  }
  ::close(fd);
  MutexLock lock(state.mu);
  for (size_t i = 0; i < state.conn_fds.size(); ++i)
    if (state.conn_fds[i] == fd) {
      state.conn_fds.erase(state.conn_fds.begin() +
                           static_cast<std::ptrdiff_t>(i));
      break;
    }
}

}  // namespace

int serve_tcp(Dispatcher& dispatcher, const ServeOptions& opts) {
  const auto fail = [&](const std::string& what) {
    if (opts.log != nullptr) *opts.log << "apsq_dsed: " << what << "\n";
    return 1;
  };
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return fail("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd);
    return fail("bind(127.0.0.1:" + std::to_string(opts.port) + ") failed");
  }
  if (::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return fail("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  const int port = static_cast<int>(ntohs(bound.sin_port));
  if (!opts.port_file.empty()) {
    std::ofstream pf(opts.port_file, std::ios::trunc);
    pf << port << "\n";
    pf.flush();
    if (!pf) {
      ::close(listen_fd);
      return fail("failed to write " + opts.port_file);
    }
  }
  if (opts.log != nullptr) {
    *opts.log << "apsq_dsed listening on 127.0.0.1:" << port << "\n";
    opts.log->flush();
  }

  ServerState state;
  {
    MutexLock lock(state.mu);
    state.listen_fd = listen_fd;
  }
  std::vector<std::thread> threads;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    {
      MutexLock lock(state.mu);
      if (state.stopping) {
        if (fd >= 0) ::close(fd);
        break;
      }
      if (fd < 0) continue;  // transient accept failure; keep serving
      state.conn_fds.push_back(fd);
    }
    threads.emplace_back(
        [&dispatcher, &state, fd] { serve_connection(dispatcher, state, fd); });
  }
  ::close(listen_fd);
  for (std::thread& t : threads) t.join();
  if (opts.log != nullptr) {
    *opts.log << "apsq_dsed: shutdown complete\n";
    opts.log->flush();
  }
  return 0;
}

#else  // _WIN32

int serve_tcp(Dispatcher&, const ServeOptions& opts) {
  if (opts.log != nullptr)
    *opts.log << "apsq_dsed: TCP mode is not supported on this platform "
                 "(use --once)\n";
  return 1;
}

#endif

}  // namespace apsq::serve
