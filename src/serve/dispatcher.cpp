#include "serve/dispatcher.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "dse/report.hpp"
#include "dse/search.hpp"
#include "dse/store.hpp"

namespace apsq::serve {

using dse::DesignPoint;
using dse::EvalResult;

namespace {

/// Decrement-on-scope-exit for the inflight counter (queries can throw
/// out of the coalescing loop).
struct CounterScope {
  explicit CounterScope(std::atomic<int>& c) : c_(c) { c_.fetch_add(1); }
  ~CounterScope() { c_.fetch_sub(1); }
  std::atomic<int>& c_;
};

}  // namespace

/// Per-(space hash, scoring key) coalescing state. Requests with equal
/// keys produce byte-identical values for every point, so any of them may
/// evaluate a point on behalf of all of them.
struct Dispatcher::Group {
  Mutex mu;
  CondVar cv;
  /// Built once from the first request's evaluator_options() (members of
  /// a group share a scoring key, so everything value-relevant agrees).
  /// Only the group's current leader — serialized by leader_active —
  /// drives it, which the static analysis cannot see; the leadership
  /// hand-off below is the actual exclusion.
  std::unique_ptr<dse::Evaluator> eval;
  bool leader_active APSQ_GUARDED_BY(mu) = false;
  std::set<index_t> pending APSQ_GUARDED_BY(mu);   ///< missed, unclaimed
  std::set<index_t> inflight APSQ_GUARDED_BY(mu);  ///< in the leader's batch
  std::map<index_t, EvalResult> done APSQ_GUARDED_BY(mu);
  /// Search queries coalesce whole, not point-wise: once one leader has
  /// run the driver and merged its rows into the store, every later query
  /// under this scoring identity answers warm.
  bool search_done APSQ_GUARDED_BY(mu) = false;
};

Dispatcher::Dispatcher(dse::EvalStore& store) : store_(store) {}
Dispatcher::~Dispatcher() = default;

Dispatcher::Group& Dispatcher::group_for(const std::string& hash,
                                         const std::string& scoring,
                                         const dse::RequestSpec& req) {
  const std::string key = hash + '\n' + scoring;
  {
    MutexLock lock(mu_);
    const auto it = groups_.find(key);
    if (it != groups_.end()) return *it->second;
  }
  // Build the group outside the dispatcher lock (evaluator construction
  // may fit calibration anchors); publish under it — first writer wins,
  // a racing loser's evaluator is simply discarded.
  auto g = std::make_unique<Group>();
  // Pin the shared pool's width like SweepSession does (first config
  // wins; an explicit APSQ_POOL_THREADS env var beats both).
  setenv("APSQ_POOL_THREADS",
         std::to_string(req.config.resolved_threads()).c_str(),
         /*overwrite=*/0);
  g->eval = std::make_unique<dse::Evaluator>(req.config.evaluator_options());
  // Preload fitted calibration factors exactly the way a session would,
  // so calibrated fronts stay byte-identical to batch mode. The daemon
  // never writes the CSV back — it only answers queries.
  if (g->eval->calibrator() && !req.config.calibration_csv.empty() &&
      std::ifstream(req.config.calibration_csv).good())
    g->eval->calibrator()->load_unit_factors_csv(req.config.calibration_csv);
  MutexLock lock(mu_);
  const auto it = groups_.emplace(key, std::move(g)).first;
  return *it->second;
}

QueryResult Dispatcher::query(const dse::RequestSpec& req) {
  const auto t0 = std::chrono::steady_clock::now();
  // The library consistency rules, verbatim — a daemon request rejects
  // with the exact message the CLI and the job-spec path print.
  std::ostringstream verr;
  if (!req.config.validate(verr)) throw std::invalid_argument(verr.str());
  const std::vector<dse::Constraint> constraints =
      dse::parse_constraints(req.config.where);
  const dse::ConfigSpace space = req.config.make_space();
  const std::string hash = dse::config_space_hash(space);
  const std::string scoring = req.config.scoring_key();
  total_requests_.fetch_add(1);

  QueryResult out;

  const std::shared_ptr<const dse::EvalStore::Entry> entry =
      store_.find(hash, scoring);
  if (entry != nullptr && entry->space_points != space.size()) {
    // Same hash, different size can only mean a corrupted snapshot or a
    // hash collision — either way the entry must not answer queries.
    throw std::runtime_error(
        (store_.source().empty() ? std::string("evaluated-space store")
                                 : store_.source()) +
        ": snapshot for space hash " + hash + " records " +
        std::to_string(entry->space_points) + " points but the space has " +
        std::to_string(space.size()));
  }

  // A per-row guard shared by both answer paths: a stored row must denote
  // exactly the point the space enumerates at its index — anything else
  // is a hash collision or a stale snapshot.
  const auto check_row = [&](index_t i, const EvalResult& r) {
    const DesignPoint p = space.at(i);
    if (canonical_key(r.point) != canonical_key(p))
      throw std::runtime_error(
          (store_.source().empty() ? std::string("evaluated-space store")
                                   : store_.source()) +
          ": snapshot point " + std::to_string(i) +
          " does not match the space (stored " + canonical_key(r.point) +
          ", expected " + canonical_key(p) + ")");
  };

  // The shared answer tail: front extraction, truncation, and the
  // telemetry counters — identical for sweep and search responses.
  const auto finish = [&]() -> QueryResult {
    size_t global_front_size = 0;
    std::vector<EvalResult> front = dse::extract_front(
        req.config, constraints, out.results, &global_front_size);
    out.front_size = front.size();
    out.global_front_size = global_front_size;
    out.front_csv =
        dse::results_csv(front, req.config.scored_by_label()).to_string();
    if (req.top > 0 && static_cast<size_t>(req.top) < front.size())
      front.resize(static_cast<size_t>(req.top));
    out.front = std::move(front);
    out.stats.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const WorkStealingPool& pool = WorkStealingPool::shared();
    out.stats.pool_threads = pool.num_threads();
    out.stats.pool_runs = pool.run_count();
    out.stats.pool_steals = pool.steal_count();
    return std::move(out);
  };

  if (req.config.search()) {
    // Budgeted search: the scoring key pins (strategy, budget, seed,
    // objective plane), so a snapshot's sparse rows ARE the complete
    // deterministic answer — a warm search query never runs the driver,
    // and concurrent cold queries coalesce onto ONE driver run.
    if (entry != nullptr) {
      for (const auto& [i, r] : entry->results) {
        check_row(i, r);
        out.results.push_back(r);
      }
      out.stats.store_hits = static_cast<index_t>(out.results.size());
    } else {
      Group& g = group_for(hash, scoring, req);
      const CounterScope in_group(inflight_);
      bool leader = false;
      {
        MutexLock lock(g.mu);
        while (!g.search_done && g.leader_active) g.cv.wait(g.mu);
        if (!g.search_done) {
          g.leader_active = true;
          leader = true;
        }
      }
      if (leader) {
        if (batch_hook_) batch_hook_();
        std::map<index_t, EvalResult> rows;
        try {
          dse::SearchDriver driver(space, *g.eval,
                                   req.config.search_options());
          rows = driver.run();
        } catch (...) {
          // Hand leadership back so a waiter can retry instead of
          // blocking forever on a search that will never complete.
          MutexLock lock(g.mu);
          g.leader_active = false;
          g.cv.notify_all();
          throw;
        }
        store_.merge_rows(hash, scoring, req.config.scored_by_label(),
                          space.size(), rows);
        {
          MutexLock lock(g.mu);
          g.search_done = true;
          g.leader_active = false;
        }
        g.cv.notify_all();
        for (auto& [i, r] : rows) {
          static_cast<void>(i);
          out.results.push_back(std::move(r));
        }
        out.stats.fresh_evaluations = static_cast<index_t>(out.results.size());
        out.stats.eval_batches = 1;
        total_fresh_.fetch_add(static_cast<i64>(out.results.size()));
        total_batches_.fetch_add(1);
      } else {
        // Follower: the leader merged its rows before raising search_done,
        // so the store must hold the entry now.
        const std::shared_ptr<const dse::EvalStore::Entry> ready =
            store_.find(hash, scoring);
        if (ready == nullptr)
          throw std::runtime_error(
              "dispatcher: search snapshot missing after a completed search "
              "for space hash " +
              hash);
        for (const auto& [i, r] : ready->results) {
          check_row(i, r);
          out.results.push_back(r);
        }
        out.stats.coalesced = static_cast<index_t>(out.results.size());
      }
    }
    return finish();
  }

  out.results.resize(static_cast<size_t>(space.size()));
  std::vector<index_t> misses;
  // The mixed pipeline's promotion set depends on the whole space, so a
  // partial mixed snapshot cannot be completed point-by-point — only a
  // complete one answers; otherwise the full space is (re)evaluated in
  // one batch, which for the mixed backend IS the two-phase sweep.
  const bool usable =
      entry != nullptr && (entry->complete() || !req.config.mixed());
  for (index_t i = 0; i < space.size(); ++i) {
    if (usable) {
      const auto it = entry->results.find(i);
      if (it != entry->results.end()) {
        check_row(i, it->second);
        out.results[static_cast<size_t>(i)] = it->second;
        continue;
      }
    }
    misses.push_back(i);
  }
  out.stats.store_hits = space.size() - static_cast<index_t>(misses.size());

  if (!misses.empty()) {
    Group& g = group_for(hash, scoring, req);
    const std::set<index_t> need(misses.begin(), misses.end());
    {
      // Register the misses nobody has answered or claimed yet.
      MutexLock lock(g.mu);
      for (const index_t i : need)
        if (g.done.count(i) == 0 && g.inflight.count(i) == 0)
          g.pending.insert(i);
    }
    const CounterScope in_group(inflight_);
    index_t self_answered = 0;
    for (;;) {
      bool assembled = false;
      {
        MutexLock lock(g.mu);
        for (;;) {
          bool all_done = true;
          for (const index_t i : need)
            if (g.done.count(i) == 0) {
              all_done = false;
              break;
            }
          if (all_done) {
            assembled = true;
            break;
          }
          if (!g.leader_active && !g.pending.empty()) {
            // Take leadership; the batch itself is frozen below, after
            // the hook, so late joiners can still merge their misses.
            g.leader_active = true;
            break;
          }
          g.cv.wait(g.mu);
        }
      }
      if (assembled) break;
      if (batch_hook_) batch_hook_();
      std::vector<index_t> batch;
      {
        MutexLock lock(g.mu);
        batch.assign(g.pending.begin(), g.pending.end());
        g.inflight.insert(batch.begin(), batch.end());
        g.pending.clear();
      }
      std::vector<DesignPoint> pts;
      pts.reserve(batch.size());
      for (const index_t i : batch) pts.push_back(space.at(i));
      std::vector<EvalResult> fresh;
      try {
        // ONE evaluate_points call for every pooled miss, on the shared
        // worker pool — the coalescing the daemon exists for.
        fresh = g.eval->evaluate_points(pts);
      } catch (...) {
        // Hand the batch back so waiters can elect a new leader instead
        // of blocking forever on results that will never arrive.
        MutexLock lock(g.mu);
        for (const index_t i : batch) {
          g.inflight.erase(i);
          g.pending.insert(i);
        }
        g.leader_active = false;
        g.cv.notify_all();
        throw;
      }
      {
        MutexLock lock(g.mu);
        for (size_t j = 0; j < batch.size(); ++j) {
          g.done.emplace(batch[j], fresh[j]);
          g.inflight.erase(batch[j]);
        }
        g.leader_active = false;
      }
      g.cv.notify_all();
      for (const index_t i : batch)
        if (need.count(i) != 0) ++self_answered;
      out.stats.fresh_evaluations += static_cast<index_t>(batch.size());
      out.stats.eval_batches += 1;
      total_fresh_.fetch_add(static_cast<i64>(batch.size()));
      total_batches_.fetch_add(1);
    }
    {
      // Fan the answers back out into this request's result vector.
      MutexLock lock(g.mu);
      for (const index_t i : need)
        out.results[static_cast<size_t>(i)] = g.done.at(i);
    }
    out.stats.coalesced = static_cast<index_t>(need.size()) - self_answered;
    // Record the merged sweep like a session would (COW put: concurrent
    // writers publish identical bytes). Warm queries never reach here.
    if (out.stats.fresh_evaluations > 0)
      store_.put(hash, scoring, req.config.scored_by_label(), space.size(),
                 out.results);
  }

  return finish();
}

}  // namespace apsq::serve
