#include "serve/dispatcher.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "dse/report.hpp"
#include "dse/store.hpp"

namespace apsq::serve {

using dse::DesignPoint;
using dse::EvalResult;

namespace {

/// Decrement-on-scope-exit for the inflight counter (queries can throw
/// out of the coalescing loop).
struct CounterScope {
  explicit CounterScope(std::atomic<int>& c) : c_(c) { c_.fetch_add(1); }
  ~CounterScope() { c_.fetch_sub(1); }
  std::atomic<int>& c_;
};

}  // namespace

/// Per-(space hash, scoring key) coalescing state. Requests with equal
/// keys produce byte-identical values for every point, so any of them may
/// evaluate a point on behalf of all of them.
struct Dispatcher::Group {
  Mutex mu;
  CondVar cv;
  /// Built once from the first request's evaluator_options() (members of
  /// a group share a scoring key, so everything value-relevant agrees).
  /// Only the group's current leader — serialized by leader_active —
  /// drives it, which the static analysis cannot see; the leadership
  /// hand-off below is the actual exclusion.
  std::unique_ptr<dse::Evaluator> eval;
  bool leader_active APSQ_GUARDED_BY(mu) = false;
  std::set<index_t> pending APSQ_GUARDED_BY(mu);   ///< missed, unclaimed
  std::set<index_t> inflight APSQ_GUARDED_BY(mu);  ///< in the leader's batch
  std::map<index_t, EvalResult> done APSQ_GUARDED_BY(mu);
};

Dispatcher::Dispatcher(dse::EvalStore& store) : store_(store) {}
Dispatcher::~Dispatcher() = default;

Dispatcher::Group& Dispatcher::group_for(const std::string& hash,
                                         const std::string& scoring,
                                         const dse::RequestSpec& req) {
  const std::string key = hash + '\n' + scoring;
  {
    MutexLock lock(mu_);
    const auto it = groups_.find(key);
    if (it != groups_.end()) return *it->second;
  }
  // Build the group outside the dispatcher lock (evaluator construction
  // may fit calibration anchors); publish under it — first writer wins,
  // a racing loser's evaluator is simply discarded.
  auto g = std::make_unique<Group>();
  // Pin the shared pool's width like SweepSession does (first config
  // wins; an explicit APSQ_POOL_THREADS env var beats both).
  setenv("APSQ_POOL_THREADS",
         std::to_string(req.config.resolved_threads()).c_str(),
         /*overwrite=*/0);
  g->eval = std::make_unique<dse::Evaluator>(req.config.evaluator_options());
  // Preload fitted calibration factors exactly the way a session would,
  // so calibrated fronts stay byte-identical to batch mode. The daemon
  // never writes the CSV back — it only answers queries.
  if (g->eval->calibrator() && !req.config.calibration_csv.empty() &&
      std::ifstream(req.config.calibration_csv).good())
    g->eval->calibrator()->load_unit_factors_csv(req.config.calibration_csv);
  MutexLock lock(mu_);
  const auto it = groups_.emplace(key, std::move(g)).first;
  return *it->second;
}

QueryResult Dispatcher::query(const dse::RequestSpec& req) {
  const auto t0 = std::chrono::steady_clock::now();
  // The library consistency rules, verbatim — a daemon request rejects
  // with the exact message the CLI and the job-spec path print.
  std::ostringstream verr;
  if (!req.config.validate(verr)) throw std::invalid_argument(verr.str());
  const std::vector<dse::Constraint> constraints =
      dse::parse_constraints(req.config.where);
  const dse::ConfigSpace space = req.config.make_space();
  const std::string hash = dse::config_space_hash(space);
  const std::string scoring = req.config.scoring_key();
  total_requests_.fetch_add(1);

  QueryResult out;
  out.results.resize(static_cast<size_t>(space.size()));
  std::vector<index_t> misses;

  const std::shared_ptr<const dse::EvalStore::Entry> entry =
      store_.find(hash, scoring);
  if (entry != nullptr && entry->space_points != space.size()) {
    // Same hash, different size can only mean a corrupted snapshot or a
    // hash collision — either way the entry must not answer queries.
    throw std::runtime_error(
        (store_.source().empty() ? std::string("evaluated-space store")
                                 : store_.source()) +
        ": snapshot for space hash " + hash + " records " +
        std::to_string(entry->space_points) + " points but the space has " +
        std::to_string(space.size()));
  }
  // The mixed pipeline's promotion set depends on the whole space, so a
  // partial mixed snapshot cannot be completed point-by-point — only a
  // complete one answers; otherwise the full space is (re)evaluated in
  // one batch, which for the mixed backend IS the two-phase sweep.
  const bool usable =
      entry != nullptr && (entry->complete() || !req.config.mixed());
  for (index_t i = 0; i < space.size(); ++i) {
    if (usable) {
      const auto it = entry->results.find(i);
      if (it != entry->results.end()) {
        const DesignPoint p = space.at(i);
        // Guard against collisions and stale snapshots: the stored row
        // must denote exactly the point the space enumerates here.
        if (canonical_key(it->second.point) != canonical_key(p))
          throw std::runtime_error(
              (store_.source().empty() ? std::string("evaluated-space store")
                                       : store_.source()) +
              ": snapshot point " + std::to_string(i) +
              " does not match the space (stored " +
              canonical_key(it->second.point) + ", expected " +
              canonical_key(p) + ")");
        out.results[static_cast<size_t>(i)] = it->second;
        continue;
      }
    }
    misses.push_back(i);
  }
  out.stats.store_hits = space.size() - static_cast<index_t>(misses.size());

  if (!misses.empty()) {
    Group& g = group_for(hash, scoring, req);
    const std::set<index_t> need(misses.begin(), misses.end());
    {
      // Register the misses nobody has answered or claimed yet.
      MutexLock lock(g.mu);
      for (const index_t i : need)
        if (g.done.count(i) == 0 && g.inflight.count(i) == 0)
          g.pending.insert(i);
    }
    const CounterScope in_group(inflight_);
    index_t self_answered = 0;
    for (;;) {
      bool assembled = false;
      {
        MutexLock lock(g.mu);
        for (;;) {
          bool all_done = true;
          for (const index_t i : need)
            if (g.done.count(i) == 0) {
              all_done = false;
              break;
            }
          if (all_done) {
            assembled = true;
            break;
          }
          if (!g.leader_active && !g.pending.empty()) {
            // Take leadership; the batch itself is frozen below, after
            // the hook, so late joiners can still merge their misses.
            g.leader_active = true;
            break;
          }
          g.cv.wait(g.mu);
        }
      }
      if (assembled) break;
      if (batch_hook_) batch_hook_();
      std::vector<index_t> batch;
      {
        MutexLock lock(g.mu);
        batch.assign(g.pending.begin(), g.pending.end());
        g.inflight.insert(batch.begin(), batch.end());
        g.pending.clear();
      }
      std::vector<DesignPoint> pts;
      pts.reserve(batch.size());
      for (const index_t i : batch) pts.push_back(space.at(i));
      std::vector<EvalResult> fresh;
      try {
        // ONE evaluate_points call for every pooled miss, on the shared
        // worker pool — the coalescing the daemon exists for.
        fresh = g.eval->evaluate_points(pts);
      } catch (...) {
        // Hand the batch back so waiters can elect a new leader instead
        // of blocking forever on results that will never arrive.
        MutexLock lock(g.mu);
        for (const index_t i : batch) {
          g.inflight.erase(i);
          g.pending.insert(i);
        }
        g.leader_active = false;
        g.cv.notify_all();
        throw;
      }
      {
        MutexLock lock(g.mu);
        for (size_t j = 0; j < batch.size(); ++j) {
          g.done.emplace(batch[j], fresh[j]);
          g.inflight.erase(batch[j]);
        }
        g.leader_active = false;
      }
      g.cv.notify_all();
      for (const index_t i : batch)
        if (need.count(i) != 0) ++self_answered;
      out.stats.fresh_evaluations += static_cast<index_t>(batch.size());
      out.stats.eval_batches += 1;
      total_fresh_.fetch_add(static_cast<i64>(batch.size()));
      total_batches_.fetch_add(1);
    }
    {
      // Fan the answers back out into this request's result vector.
      MutexLock lock(g.mu);
      for (const index_t i : need)
        out.results[static_cast<size_t>(i)] = g.done.at(i);
    }
    out.stats.coalesced = static_cast<index_t>(need.size()) - self_answered;
    // Record the merged sweep like a session would (COW put: concurrent
    // writers publish identical bytes). Warm queries never reach here.
    if (out.stats.fresh_evaluations > 0)
      store_.put(hash, scoring, req.config.scored_by_label(), space.size(),
                 out.results);
  }

  size_t global_front_size = 0;
  std::vector<EvalResult> front =
      dse::extract_front(req.config, constraints, out.results,
                         &global_front_size);
  out.front_size = front.size();
  out.global_front_size = global_front_size;
  out.front_csv =
      dse::results_csv(front, req.config.scored_by_label()).to_string();
  if (req.top > 0 && static_cast<size_t>(req.top) < front.size())
    front.resize(static_cast<size_t>(req.top));
  out.front = std::move(front);

  out.stats.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const WorkStealingPool& pool = WorkStealingPool::shared();
  out.stats.pool_threads = pool.num_threads();
  out.stats.pool_runs = pool.run_count();
  out.stats.pool_steals = pool.steal_count();
  return out;
}

}  // namespace apsq::serve
