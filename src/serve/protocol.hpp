// The daemon's wire protocol: line-delimited JSON, one request line in,
// one response line out, schema-versioned on both sides.
//
// Request:
//   {"schema_version": 1,          // optional; absent = 1; future → error
//    "id": "q1",                   // optional; echoed in the response
//    "cmd": "query",               // optional; query | ping | stats | shutdown
//    ...RequestSpec fields...}     // query only — the same keys, ranges,
//                                  // and messages as a --jobs experiment
//
// Response (always exactly one line):
//   {"schema_version": 1, "ok": true, "id": "q1", ...}        on success
//   {"schema_version": 1, "ok": false, "error": "..."}        on failure
//
// A "query" response carries the front rows (snapshot row fields, via
// append_result_json), the front/space accounting, and a "stats" object
// with the request's telemetry counters (store_hits, fresh_evaluations,
// coalesced, eval_batches, wall_ms, pool_*). "ping" answers trivially,
// "stats" reports dispatcher/store totals, "shutdown" acknowledges and
// asks the server to stop.
//
// Errors never tear the connection down: a malformed line yields an
// ok:false response and the next line is processed normally.
#pragma once

#include <string>

namespace apsq::serve {

class Dispatcher;

/// The protocol schema this build speaks (requests and responses).
inline constexpr int kProtocolSchemaVersion = 1;

/// Outcome of one request line.
struct LineResult {
  std::string response;  ///< one JSON line, no trailing newline
  bool ok = false;       ///< response carries "ok": true
  bool shutdown = false; ///< the line was an acknowledged shutdown command
};

/// Parse one request line, dispatch it, and render the response line.
/// Never throws — every failure (bad JSON, unknown key, unsupported
/// schema_version, invalid config, store inconsistency) becomes an
/// ok:false response.
LineResult handle_request_line(Dispatcher& dispatcher,
                               const std::string& line);

}  // namespace apsq::serve
