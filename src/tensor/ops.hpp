// Elementwise and reduction operations on float tensors (NN substrate
// building blocks; all shapes must match exactly — no broadcasting except
// the documented row-bias case).
#pragma once

#include "tensor/tensor.hpp"

namespace apsq {

TensorF add(const TensorF& a, const TensorF& b);
TensorF sub(const TensorF& a, const TensorF& b);
TensorF mul(const TensorF& a, const TensorF& b);
TensorF scale(const TensorF& a, float s);

/// In-place y += x.
void add_inplace(TensorF& y, const TensorF& x);
/// In-place y += s*x (axpy).
void axpy_inplace(TensorF& y, float s, const TensorF& x);

/// Add a bias row b:[N] to every row of a:[M,N].
TensorF add_row_bias(const TensorF& a, const TensorF& b);

float max_abs(const TensorF& a);
float sum(const TensorF& a);
float mean(const TensorF& a);

/// Row-wise softmax over the last dimension of a rank-2 tensor.
TensorF softmax_rows(const TensorF& logits);

/// Transpose of a rank-2 tensor.
TensorF transpose(const TensorF& a);

/// Max |a - b| over all elements (shapes must match).
float max_abs_diff(const TensorF& a, const TensorF& b);

}  // namespace apsq
