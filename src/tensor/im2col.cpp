#include "tensor/im2col.hpp"

#include "tensor/matmul.hpp"

namespace apsq {

void ConvGeometry::validate() const {
  APSQ_CHECK(in_h > 0 && in_w > 0 && in_c > 0);
  APSQ_CHECK(kernel > 0 && stride > 0 && pad >= 0);
  APSQ_CHECK_MSG(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
                 "kernel larger than padded input");
}

template <typename T>
Tensor<T> im2col(const Tensor<T>& fmap, const ConvGeometry& g) {
  g.validate();
  APSQ_CHECK(fmap.rank() == 2);
  APSQ_CHECK_MSG(fmap.dim(0) == g.in_h * g.in_w && fmap.dim(1) == g.in_c,
                 "feature map shape does not match geometry");
  Tensor<T> patches({g.out_h() * g.out_w(), g.patch_len()}, T{});
  for (index_t oy = 0; oy < g.out_h(); ++oy)
    for (index_t ox = 0; ox < g.out_w(); ++ox) {
      const index_t row = oy * g.out_w() + ox;
      index_t col = 0;
      for (index_t ky = 0; ky < g.kernel; ++ky)
        for (index_t kx = 0; kx < g.kernel; ++kx) {
          const index_t iy = oy * g.stride + ky - g.pad;
          const index_t ix = ox * g.stride + kx - g.pad;
          const bool inside =
              iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
          for (index_t c = 0; c < g.in_c; ++c, ++col)
            if (inside) patches(row, col) = fmap(iy * g.in_w + ix, c);
        }
    }
  return patches;
}

template Tensor<float> im2col<float>(const Tensor<float>&, const ConvGeometry&);
template Tensor<i8> im2col<i8>(const Tensor<i8>&, const ConvGeometry&);
template Tensor<i32> im2col<i32>(const Tensor<i32>&, const ConvGeometry&);

TensorF col2im(const TensorF& patches, const ConvGeometry& g) {
  g.validate();
  APSQ_CHECK(patches.rank() == 2);
  APSQ_CHECK(patches.dim(0) == g.out_h() * g.out_w() &&
             patches.dim(1) == g.patch_len());
  TensorF fmap({g.in_h * g.in_w, g.in_c}, 0.0f);
  for (index_t oy = 0; oy < g.out_h(); ++oy)
    for (index_t ox = 0; ox < g.out_w(); ++ox) {
      const index_t row = oy * g.out_w() + ox;
      index_t col = 0;
      for (index_t ky = 0; ky < g.kernel; ++ky)
        for (index_t kx = 0; kx < g.kernel; ++kx) {
          const index_t iy = oy * g.stride + ky - g.pad;
          const index_t ix = ox * g.stride + kx - g.pad;
          const bool inside =
              iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
          for (index_t c = 0; c < g.in_c; ++c, ++col)
            if (inside) fmap(iy * g.in_w + ix, c) += patches(row, col);
        }
    }
  return fmap;
}

TensorF conv2d_gemm(const TensorF& fmap, const TensorF& weights,
                    const ConvGeometry& g) {
  APSQ_CHECK(weights.rank() == 2 && weights.dim(0) == g.patch_len());
  return matmul(im2col(fmap, g), weights);
}

TensorI32 conv2d_gemm_i8(const TensorI8& fmap, const TensorI8& weights,
                         const ConvGeometry& g) {
  APSQ_CHECK(weights.rank() == 2 && weights.dim(0) == g.patch_len());
  return matmul_i8(im2col(fmap, g), weights);
}

}  // namespace apsq
