#include "tensor/tile.hpp"

#include <algorithm>

namespace apsq {

TileRect clamp_tile(index_t r0, index_t c0, index_t tile_rows,
                    index_t tile_cols, index_t rows, index_t cols) {
  APSQ_CHECK(r0 >= 0 && c0 >= 0 && tile_rows > 0 && tile_cols > 0);
  APSQ_CHECK(r0 < rows && c0 < cols);
  TileRect t;
  t.row0 = r0;
  t.col0 = c0;
  t.row1 = std::min(r0 + tile_rows, rows);
  t.col1 = std::min(c0 + tile_cols, cols);
  return t;
}

}  // namespace apsq
