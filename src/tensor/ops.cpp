#include "tensor/ops.hpp"

#include <cmath>

namespace apsq {

namespace {
void check_same(const TensorF& a, const TensorF& b) {
  APSQ_CHECK_MSG(a.same_shape(b), "shape mismatch: " << shape_to_string(a.shape())
                                                     << " vs "
                                                     << shape_to_string(b.shape()));
}
}  // namespace

TensorF add(const TensorF& a, const TensorF& b) {
  check_same(a, b);
  TensorF c(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = a[i] + b[i];
  return c;
}

TensorF sub(const TensorF& a, const TensorF& b) {
  check_same(a, b);
  TensorF c(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = a[i] - b[i];
  return c;
}

TensorF mul(const TensorF& a, const TensorF& b) {
  check_same(a, b);
  TensorF c(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = a[i] * b[i];
  return c;
}

TensorF scale(const TensorF& a, float s) {
  TensorF c(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = a[i] * s;
  return c;
}

void add_inplace(TensorF& y, const TensorF& x) {
  check_same(y, x);
  for (index_t i = 0; i < y.numel(); ++i) y[i] += x[i];
}

void axpy_inplace(TensorF& y, float s, const TensorF& x) {
  check_same(y, x);
  for (index_t i = 0; i < y.numel(); ++i) y[i] += s * x[i];
}

TensorF add_row_bias(const TensorF& a, const TensorF& b) {
  APSQ_CHECK(a.rank() == 2 && b.rank() == 1 && b.dim(0) == a.dim(1));
  TensorF c(a.shape());
  const index_t m = a.dim(0), n = a.dim(1);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) c(i, j) = a(i, j) + b(j);
  return c;
}

float max_abs(const TensorF& a) {
  float m = 0.0f;
  for (index_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float sum(const TensorF& a) {
  double s = 0.0;
  for (index_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

float mean(const TensorF& a) {
  APSQ_CHECK(a.numel() > 0);
  return sum(a) / static_cast<float>(a.numel());
}

TensorF softmax_rows(const TensorF& logits) {
  APSQ_CHECK(logits.rank() == 2);
  const index_t m = logits.dim(0), n = logits.dim(1);
  TensorF out(logits.shape());
  for (index_t i = 0; i < m; ++i) {
    float mx = logits(i, 0);
    for (index_t j = 1; j < n; ++j) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const float e = std::exp(logits(i, j) - mx);
      out(i, j) = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (index_t j = 0; j < n; ++j) out(i, j) *= inv;
  }
  return out;
}

TensorF transpose(const TensorF& a) {
  APSQ_CHECK(a.rank() == 2);
  TensorF t({a.dim(1), a.dim(0)});
  for (index_t i = 0; i < a.dim(0); ++i)
    for (index_t j = 0; j < a.dim(1); ++j) t(j, i) = a(i, j);
  return t;
}

float max_abs_diff(const TensorF& a, const TensorF& b) {
  check_same(a, b);
  float m = 0.0f;
  for (index_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace apsq
