#include "tensor/matmul.hpp"

namespace apsq {

namespace {

void check_mm(const Shape& a, const Shape& b) {
  APSQ_CHECK_MSG(a.size() == 2 && b.size() == 2, "matmul needs rank-2 tensors");
  APSQ_CHECK_MSG(a[1] == b[0], "inner dims mismatch: " << a[1] << " vs " << b[0]);
}

}  // namespace

TensorF matmul(const TensorF& a, const TensorF& b) {
  check_mm(a.shape(), b.shape());
  TensorF c({a.dim(0), b.dim(1)}, 0.0f);
  matmul_accumulate(a, b, c);
  return c;
}

void matmul_accumulate(const TensorF& a, const TensorF& b, TensorF& c) {
  check_mm(a.shape(), b.shape());
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  APSQ_CHECK(c.dim(0) == m && c.dim(1) == n);
  // ikj loop order: streams B and C rows, decent cache behaviour without
  // bringing in a BLAS dependency.
  for (index_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

TensorF matmul_tn(const TensorF& a, const TensorF& b) {
  APSQ_CHECK(a.rank() == 2 && b.rank() == 2);
  APSQ_CHECK_MSG(a.dim(0) == b.dim(0), "matmul_tn inner dim mismatch");
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  TensorF c({m, n}, 0.0f);
  for (index_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data() + kk * m;
    const float* brow = b.data() + kk * n;
    for (index_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + i * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

TensorF matmul_nt(const TensorF& a, const TensorF& b) {
  APSQ_CHECK(a.rank() == 2 && b.rank() == 2);
  APSQ_CHECK_MSG(a.dim(1) == b.dim(1), "matmul_nt inner dim mismatch");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  TensorF c({m, n}, 0.0f);
  for (index_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (index_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

TensorI32 matmul_i8(const TensorI8& a, const TensorI8& b) {
  check_mm(a.shape(), b.shape());
  return matmul_i8_krange(a, b, 0, a.dim(1));
}

TensorI32 matmul_i8_krange(const TensorI8& a, const TensorI8& b, index_t k0,
                           index_t k1) {
  check_mm(a.shape(), b.shape());
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  APSQ_CHECK(0 <= k0 && k0 <= k1 && k1 <= k);
  // Overflow guard: (k1-k0) * 128 * 128 must fit int32.
  APSQ_CHECK_MSG((k1 - k0) <= (i64{1} << 17),
                 "accumulation depth too large for int32 PSUM");
  TensorI32 c({m, n}, 0);
  for (index_t i = 0; i < m; ++i) {
    const i8* arow = a.data() + i * k;
    i32* crow = c.data() + i * n;
    for (index_t kk = k0; kk < k1; ++kk) {
      const i32 av = arow[kk];
      if (av == 0) continue;
      const i8* brow = b.data() + kk * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * static_cast<i32>(brow[j]);
    }
  }
  return c;
}

}  // namespace apsq
