// Matrix multiplication kernels.
//
// Two flavours are provided:
//  * float GEMM used by the NN substrate (C = A·B, A:[M,K], B:[K,N]);
//  * integer GEMM (INT8 × INT8 → INT32) matching the accelerator's MAC
//    array arithmetic exactly — this is the golden reference the
//    bit-accurate simulator is tested against.
#pragma once

#include "tensor/tensor.hpp"

namespace apsq {

/// C = A·B with A:[M,K], B:[K,N] -> C:[M,N] (float accumulate).
TensorF matmul(const TensorF& a, const TensorF& b);

/// C += A·B (accumulating variant; C must be preallocated [M,N]).
void matmul_accumulate(const TensorF& a, const TensorF& b, TensorF& c);

/// C = Aᵀ·B with A:[K,M], B:[K,N] -> C:[M,N].
TensorF matmul_tn(const TensorF& a, const TensorF& b);

/// C = A·Bᵀ with A:[M,K], B:[N,K] -> C:[M,N].
TensorF matmul_nt(const TensorF& a, const TensorF& b);

/// Integer GEMM: A:[M,K] int8, B:[K,N] int8 -> C:[M,N] int32.
/// Accumulation is exact (max |C| = K·128·128 must fit int32; checked).
TensorI32 matmul_i8(const TensorI8& a, const TensorI8& b);

/// Integer GEMM over a K sub-range [k0, k1): the "one PSUM tile" product
/// Tp_i of Eq. (8). C is written (not accumulated).
TensorI32 matmul_i8_krange(const TensorI8& a, const TensorI8& b, index_t k0,
                           index_t k1);

}  // namespace apsq
