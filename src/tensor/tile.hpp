// Tile extraction / insertion helpers for the tile-based computation (TBC)
// scheme of §III-A (Fig. 3a): operands are processed in Po × Pci × Pco
// tiles and PSUM tiles are accumulated along the input-channel dimension.
#pragma once

#include "tensor/tensor.hpp"

namespace apsq {

/// Half-open 2-D tile coordinates into a rank-2 tensor.
struct TileRect {
  index_t row0 = 0, row1 = 0;  ///< [row0, row1)
  index_t col0 = 0, col1 = 0;  ///< [col0, col1)

  index_t rows() const { return row1 - row0; }
  index_t cols() const { return col1 - col0; }
  index_t numel() const { return rows() * cols(); }
};

/// Clamp a tile of nominal size (tile_rows × tile_cols) anchored at
/// (r0, c0) to the bounds of a (rows × cols) matrix (ragged edge tiles).
TileRect clamp_tile(index_t r0, index_t c0, index_t tile_rows,
                    index_t tile_cols, index_t rows, index_t cols);

/// Copy a tile out of a rank-2 tensor.
template <typename T>
Tensor<T> extract_tile(const Tensor<T>& src, const TileRect& t) {
  APSQ_CHECK(src.rank() == 2);
  APSQ_CHECK(t.row0 >= 0 && t.row1 <= src.dim(0) && t.col0 >= 0 &&
             t.col1 <= src.dim(1) && t.rows() >= 0 && t.cols() >= 0);
  Tensor<T> out({t.rows(), t.cols()});
  for (index_t r = 0; r < t.rows(); ++r)
    for (index_t c = 0; c < t.cols(); ++c)
      out(r, c) = src(t.row0 + r, t.col0 + c);
  return out;
}

/// Write a tile back into a rank-2 tensor.
template <typename T>
void insert_tile(Tensor<T>& dst, const TileRect& t, const Tensor<T>& tile) {
  APSQ_CHECK(dst.rank() == 2 && tile.rank() == 2);
  APSQ_CHECK(tile.dim(0) == t.rows() && tile.dim(1) == t.cols());
  APSQ_CHECK(t.row0 >= 0 && t.row1 <= dst.dim(0) && t.col0 >= 0 &&
             t.col1 <= dst.dim(1));
  for (index_t r = 0; r < t.rows(); ++r)
    for (index_t c = 0; c < t.cols(); ++c)
      dst(t.row0 + r, t.col0 + c) = tile(r, c);
}

/// Elementwise accumulate a tile into a rank-2 tensor region.
template <typename T>
void accumulate_tile(Tensor<T>& dst, const TileRect& t, const Tensor<T>& tile) {
  APSQ_CHECK(dst.rank() == 2 && tile.rank() == 2);
  APSQ_CHECK(tile.dim(0) == t.rows() && tile.dim(1) == t.cols());
  for (index_t r = 0; r < t.rows(); ++r)
    for (index_t c = 0; c < t.cols(); ++c)
      dst(t.row0 + r, t.col0 + c) += tile(r, c);
}

}  // namespace apsq
