#include "tensor/tensor.hpp"

#include <sstream>

namespace apsq {

index_t shape_numel(const Shape& shape) {
  index_t n = 1;
  for (index_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

}  // namespace apsq
