// Minimal dense row-major tensor used throughout the repo.
//
// Design notes:
//  * dynamic rank (shape is a small vector), row-major contiguous storage;
//  * value-semantic (copyable, movable), no views with shared ownership —
//    tile extraction copies, which keeps lifetimes trivial (R.20-ish) and
//    is fine at the problem sizes of this reproduction;
//  * bounds checked via APSQ_DCHECK in operator(), hard-checked in at().
#pragma once

#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace apsq {

using Shape = std::vector<index_t>;

/// Number of elements of a shape (product of dims; empty shape -> 1 scalar).
index_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]".
std::string shape_to_string(const Shape& shape);

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape, T fill = T{}) : shape_(std::move(shape)) {
    for (index_t d : shape_) APSQ_CHECK_MSG(d >= 0, "negative dim");
    data_.assign(static_cast<size_t>(shape_numel(shape_)), fill);
    compute_strides();
  }

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    APSQ_CHECK_MSG(
        static_cast<index_t>(data_.size()) == shape_numel(shape_),
        "data size " << data_.size() << " != numel of " << shape_to_string(shape_));
    compute_strides();
  }

  const Shape& shape() const { return shape_; }
  index_t rank() const { return static_cast<index_t>(shape_.size()); }
  index_t dim(index_t i) const {
    APSQ_CHECK(i >= 0 && i < rank());
    return shape_[static_cast<size_t>(i)];
  }
  index_t numel() const { return static_cast<index_t>(data_.size()); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  T& operator[](index_t flat) {
    APSQ_DCHECK(flat >= 0 && flat < numel());
    return data_[static_cast<size_t>(flat)];
  }
  const T& operator[](index_t flat) const {
    APSQ_DCHECK(flat >= 0 && flat < numel());
    return data_[static_cast<size_t>(flat)];
  }

  // Rank-specific accessors (the common cases in this codebase).
  T& operator()(index_t i) { return (*this)[offset1(i)]; }
  const T& operator()(index_t i) const { return (*this)[offset1(i)]; }
  T& operator()(index_t i, index_t j) { return (*this)[offset2(i, j)]; }
  const T& operator()(index_t i, index_t j) const {
    return (*this)[offset2(i, j)];
  }
  T& operator()(index_t i, index_t j, index_t k) {
    return (*this)[offset3(i, j, k)];
  }
  const T& operator()(index_t i, index_t j, index_t k) const {
    return (*this)[offset3(i, j, k)];
  }

  /// Hard-checked element access by multi-index.
  T& at(const std::vector<index_t>& idx) { return data_[checked_offset(idx)]; }
  const T& at(const std::vector<index_t>& idx) const {
    return data_[checked_offset(idx)];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape in place (numel must be preserved).
  void reshape(Shape new_shape) {
    APSQ_CHECK_MSG(shape_numel(new_shape) == numel(),
                   "reshape to incompatible shape " << shape_to_string(new_shape));
    shape_ = std::move(new_shape);
    compute_strides();
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Elementwise conversion to another scalar type.
  template <typename U>
  Tensor<U> cast() const {
    Tensor<U> out(shape_);
    for (index_t i = 0; i < numel(); ++i)
      out[i] = static_cast<U>(data_[static_cast<size_t>(i)]);
    return out;
  }

 private:
  void compute_strides() {
    strides_.assign(shape_.size(), 1);
    for (index_t i = static_cast<index_t>(shape_.size()) - 2; i >= 0; --i)
      strides_[static_cast<size_t>(i)] =
          strides_[static_cast<size_t>(i + 1)] * shape_[static_cast<size_t>(i + 1)];
  }

  index_t offset1(index_t i) const {
    APSQ_DCHECK(rank() == 1);
    APSQ_DCHECK(i >= 0 && i < shape_[0]);
    return i;
  }
  index_t offset2(index_t i, index_t j) const {
    APSQ_DCHECK(rank() == 2);
    APSQ_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return i * strides_[0] + j;
  }
  index_t offset3(index_t i, index_t j, index_t k) const {
    APSQ_DCHECK(rank() == 3);
    APSQ_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2]);
    return i * strides_[0] + j * strides_[1] + k;
  }

  size_t checked_offset(const std::vector<index_t>& idx) const {
    APSQ_CHECK_MSG(static_cast<index_t>(idx.size()) == rank(),
                   "index rank mismatch");
    index_t off = 0;
    for (size_t d = 0; d < idx.size(); ++d) {
      APSQ_CHECK_MSG(idx[d] >= 0 && idx[d] < shape_[d],
                     "index " << idx[d] << " out of bounds for dim " << d);
      off += idx[d] * strides_[d];
    }
    return static_cast<size_t>(off);
  }

  Shape shape_;
  std::vector<index_t> strides_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorD = Tensor<double>;
using TensorI8 = Tensor<i8>;
using TensorI32 = Tensor<i32>;
using TensorI64 = Tensor<i64>;

}  // namespace apsq
