// Convolution-to-GEMM lowering (im2col), the transformation behind the
// GEMM view of conv layers in src/models (ci = Cin·k² per output pixel)
// and Fig. 3a's tile-based computation scheme.
//
// Layout conventions: feature maps are HWC ([H, W, C] flattened to rank-2
// [H·W, C] row-major); kernels are [k·k·Cin, Cout].
#pragma once

#include "tensor/tensor.hpp"

namespace apsq {

struct ConvGeometry {
  index_t in_h = 0, in_w = 0, in_c = 0;
  index_t kernel = 1;   ///< square k×k
  index_t stride = 1;
  index_t pad = 0;      ///< symmetric zero padding

  index_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  index_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  index_t patch_len() const { return kernel * kernel * in_c; }

  void validate() const;
};

/// Lower an input feature map [H·W, C] to the im2col patch matrix
/// [outH·outW, k·k·C]; out-of-bounds taps read zero.
template <typename T>
Tensor<T> im2col(const Tensor<T>& fmap, const ConvGeometry& g);

/// Adjoint of im2col: scatter-add a patch-matrix gradient back to the
/// input feature map layout (needed by Conv2d::backward).
TensorF col2im(const TensorF& patches, const ConvGeometry& g);

/// Convenience: full convolution via im2col + GEMM.
/// fmap [H·W, Cin], weights [k·k·Cin, Cout] -> [outH·outW, Cout].
TensorF conv2d_gemm(const TensorF& fmap, const TensorF& weights,
                    const ConvGeometry& g);

/// Integer variant (INT8 feature map / weights -> INT32), matching the
/// accelerator's arithmetic.
TensorI32 conv2d_gemm_i8(const TensorI8& fmap, const TensorI8& weights,
                         const ConvGeometry& g);

}  // namespace apsq
