#include "models/bert.hpp"

#include "common/check.hpp"

namespace apsq {

namespace {

Workload bert_workload(const std::string& name, index_t tokens, index_t hidden,
                       index_t heads, index_t ffn, index_t layers) {
  APSQ_CHECK(tokens > 0 && hidden % heads == 0);
  const index_t head_dim = hidden / heads;
  Workload w;
  w.name = name;
  // Q/K/V projections.
  w.layers.push_back({"qkv_proj", tokens, hidden, 3 * hidden, layers});
  // Attention scores Q·Kᵀ (per head; K in the weight role).
  w.layers.push_back({"attn_scores", tokens, head_dim, tokens, layers * heads});
  // Attention context P·V (per head; V in the weight role).
  w.layers.push_back({"attn_context", tokens, tokens, head_dim, layers * heads});
  // Output projection.
  w.layers.push_back({"out_proj", tokens, hidden, hidden, layers});
  // Feed-forward network.
  w.layers.push_back({"ffn_in", tokens, hidden, ffn, layers});
  w.layers.push_back({"ffn_out", tokens, ffn, hidden, layers});
  return w;
}

}  // namespace

Workload bert_base_workload(index_t tokens) {
  return bert_workload("BERT-Base", tokens, 768, 12, 3072, 12);
}

Workload bert_large_workload(index_t tokens) {
  return bert_workload("BERT-Large", tokens, 1024, 16, 4096, 24);
}

}  // namespace apsq
