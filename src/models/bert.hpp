// BERT-Base workload (§IV-A: input token length 128).
//
// 12 encoder layers, hidden 768, 12 heads (head dim 64), FFN 3072.
// Attention score / context matmuls are modeled per head with the K/V
// operand in the weight role (see layer_shape.hpp).
#pragma once

#include "energy/layer_shape.hpp"

namespace apsq {

/// BERT-Base encoder stack at the given token length (paper: 128).
Workload bert_base_workload(index_t tokens = 128);

/// BERT-Large FFN shapes (hidden 1024, FFN 4096) — used by the §II-A
/// discussion of 28-bit PSUM growth; handy for tests.
Workload bert_large_workload(index_t tokens = 128);

}  // namespace apsq
