#include "models/efficientvit.hpp"

#include <array>
#include <string>

#include "common/check.hpp"

namespace apsq {

namespace {

/// MBConv block: 1×1 expand (C→eC), 3×3 depthwise on eC, 1×1 project
/// (eC→C'). Depthwise contributes ci = 9 per output channel.
void add_mbconv(Workload& w, const std::string& tag, index_t n_out,
                index_t c_in, index_t c_out, index_t expand, index_t rep) {
  const index_t mid = c_in * expand;
  w.layers.push_back({tag + "_expand", n_out, c_in, mid, rep});
  w.layers.push_back({tag + "_dw3x3", n_out, 3 * 3, mid, rep});
  w.layers.push_back({tag + "_project", n_out, mid, c_out, rep});
}

/// EfficientViT module: QKV projection, multi-scale aggregation conv,
/// ReLU linear attention (two chained matmuls with the reduced token
/// dimension in the weight role), output projection, then an MBConv FFN.
void add_evit_module(Workload& w, const std::string& tag, index_t n,
                     index_t c, index_t rep) {
  const index_t head_dim = 16;  // lightweight attention head width
  w.layers.push_back({tag + "_qkv", n, c, 3 * c, rep});
  w.layers.push_back({tag + "_aggreg5x5", n, 5 * 5, 3 * c, rep});
  // Linear attention: (KᵀV) then Q·(KᵀV) — cost ∝ n·d² per head group.
  w.layers.push_back({tag + "_kTv", head_dim, n, c, rep});
  w.layers.push_back({tag + "_q_kTv", n, head_dim, c, rep});
  w.layers.push_back({tag + "_out_proj", n, c, c, rep});
  add_mbconv(w, tag + "_ffn", n, c, c, 4, rep);
}

}  // namespace

Workload efficientvit_b1_workload(index_t input_resolution) {
  APSQ_CHECK_MSG(input_resolution % 32 == 0,
                 "EfficientViT needs a stride-32-aligned resolution");
  Workload w;
  w.name = "EfficientViT-B1";

  const index_t r = input_resolution;
  const auto tokens = [r](index_t stride) { return (r / stride) * (r / stride); };

  // Input stem: conv3x3 s2 (3→16) + one depthwise-separable block.
  w.layers.push_back({"stem_conv", tokens(2), 3 * 3 * 3, 16, 1});
  w.layers.push_back({"stem_dw3x3", tokens(2), 3 * 3, 16, 1});
  w.layers.push_back({"stem_pw", tokens(2), 16, 16, 1});

  // Stage 1: width 32, 2 MBConv blocks at stride 4.
  add_mbconv(w, "s1_mb_down", tokens(4), 16, 32, 4, 1);
  add_mbconv(w, "s1_mb", tokens(4), 32, 32, 4, 1);

  // Stage 2: width 64, 3 blocks at stride 8.
  add_mbconv(w, "s2_mb_down", tokens(8), 32, 64, 4, 1);
  add_mbconv(w, "s2_mb", tokens(8), 64, 64, 4, 2);

  // Stage 3: width 128 at stride 16, MBConv downsample + 3 EfficientViT
  // modules.
  add_mbconv(w, "s3_mb_down", tokens(16), 64, 128, 4, 1);
  add_evit_module(w, "s3_evit", tokens(16), 128, 3);

  // Stage 4: width 256 at stride 32, MBConv downsample + 4 modules.
  add_mbconv(w, "s4_mb_down", tokens(32), 128, 256, 4, 1);
  add_evit_module(w, "s4_evit", tokens(32), 256, 4);

  // Segmentation head (SegHead): stage-3/4 features to 64, fusion MBConvs,
  // classifier over 150 ADE20K classes at stride 8.
  w.layers.push_back({"head_in3", tokens(16), 128, 64, 1});
  w.layers.push_back({"head_in4", tokens(32), 256, 64, 1});
  add_mbconv(w, "head_fuse", tokens(8), 64, 64, 4, 3);
  w.layers.push_back({"head_cls", tokens(8), 64, 150, 1});

  return w;
}

}  // namespace apsq
