#include "models/llama2.hpp"

namespace apsq {

namespace {

Workload llama_gemms(const std::string& name, index_t rows) {
  const index_t hidden = 4096;
  const index_t inter = 11008;
  const index_t layers = 32;
  Workload w;
  w.name = name;
  w.layers.push_back({"q_proj", rows, hidden, hidden, layers});
  w.layers.push_back({"k_proj", rows, hidden, hidden, layers});
  w.layers.push_back({"v_proj", rows, hidden, hidden, layers});
  w.layers.push_back({"o_proj", rows, hidden, hidden, layers});
  w.layers.push_back({"gate_proj", rows, hidden, inter, layers});
  w.layers.push_back({"up_proj", rows, hidden, inter, layers});
  w.layers.push_back({"down_proj", rows, inter, hidden, layers});
  return w;
}

}  // namespace

Workload llama2_7b_workload(index_t seq_len) {
  return llama_gemms("LLaMA2-7B", seq_len);
}

Workload llama2_7b_decode_step_workload() {
  return llama_gemms("LLaMA2-7B-decode-step", 1);
}

}  // namespace apsq
