#include "models/segformer.hpp"

#include <array>

#include "common/check.hpp"

namespace apsq {

Workload segformer_b0_workload(index_t input_resolution) {
  APSQ_CHECK_MSG(input_resolution % 32 == 0,
                 "Segformer needs a stride-32-aligned resolution");
  Workload w;
  w.name = "Segformer-B0";

  const std::array<index_t, 4> dims = {32, 64, 160, 256};
  const std::array<index_t, 4> depths = {2, 2, 2, 2};
  const std::array<index_t, 4> sr = {8, 4, 2, 1};  // attention spatial reduction
  const index_t mlp_ratio = 4;
  const std::array<index_t, 4> strides = {4, 8, 16, 32};

  // Overlapped patch embeddings: k7s4 from RGB, then k3s2 between stages.
  {
    const index_t n0 = (input_resolution / 4) * (input_resolution / 4);
    w.layers.push_back({"patch_embed1", n0, 3 * 7 * 7, dims[0], 1});
  }
  for (int s = 1; s < 4; ++s) {
    const index_t n = (input_resolution / strides[static_cast<size_t>(s)]) *
                      (input_resolution / strides[static_cast<size_t>(s)]);
    w.layers.push_back({"patch_embed" + std::to_string(s + 1), n,
                        dims[static_cast<size_t>(s - 1)] * 3 * 3,
                        dims[static_cast<size_t>(s)], 1});
  }

  for (int s = 0; s < 4; ++s) {
    const index_t c = dims[static_cast<size_t>(s)];
    const index_t n = (input_resolution / strides[static_cast<size_t>(s)]) *
                      (input_resolution / strides[static_cast<size_t>(s)]);
    const index_t r = sr[static_cast<size_t>(s)];
    const index_t n_red = n / (r * r);  // token count after spatial reduction
    const index_t rep = depths[static_cast<size_t>(s)];
    const std::string tag = "s" + std::to_string(s + 1) + "_";

    // Efficient self-attention: Q on full tokens, spatial-reduction conv
    // (k=r, s=r) + K/V on reduced tokens.
    w.layers.push_back({tag + "q_proj", n, c, c, rep});
    if (r > 1)
      w.layers.push_back({tag + "sr_conv", n_red, c * r * r, c, rep});
    w.layers.push_back({tag + "kv_proj", n_red, c, 2 * c, rep});
    // Scores / context, aggregated across heads (K/V in the weight role).
    w.layers.push_back({tag + "attn_scores", n, c, n_red, rep});
    w.layers.push_back({tag + "attn_context", n, n_red, c, rep});
    w.layers.push_back({tag + "out_proj", n, c, c, rep});
    // Mix-FFN: fc1, 3x3 depthwise (modeled as k²-channel GEMM on the
    // expanded width), fc2.
    w.layers.push_back({tag + "mlp_fc1", n, c, mlp_ratio * c, rep});
    w.layers.push_back({tag + "mlp_dw3x3", n, 3 * 3, mlp_ratio * c, rep});
    w.layers.push_back({tag + "mlp_fc2", n, mlp_ratio * c, c, rep});
  }

  // All-MLP decode head: per-stage linear to 256, fusion conv, classifier
  // (150 ADE20K classes) at 1/4 resolution.
  const index_t n4 = (input_resolution / 4) * (input_resolution / 4);
  for (int s = 0; s < 4; ++s) {
    const index_t n = (input_resolution / strides[static_cast<size_t>(s)]) *
                      (input_resolution / strides[static_cast<size_t>(s)]);
    w.layers.push_back({"head_linear" + std::to_string(s + 1), n,
                        dims[static_cast<size_t>(s)], 256, 1});
  }
  w.layers.push_back({"head_fuse", n4, 4 * 256, 256, 1});
  w.layers.push_back({"head_cls", n4, 256, 150, 1});

  return w;
}

}  // namespace apsq
