// EfficientViT-B1 workload at 512×512 (§IV-A).
//
// Lightweight multi-scale linear-attention model (Cai et al., ICCV 2023):
// convolutional stem + MBConv stages at widths [16, 32, 64, 128, 256]
// (strides 2/4/8/16/32), EfficientViT modules (ReLU linear attention +
// MBConv FFN) in the last two stages, and a segmentation head. MBConv
// expand/project 1×1 convs and depthwise 3×3 are modeled as GEMMs
// (im2col view for the depthwise).
#pragma once

#include "energy/layer_shape.hpp"

namespace apsq {

Workload efficientvit_b1_workload(index_t input_resolution = 512);

}  // namespace apsq
