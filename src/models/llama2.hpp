// LLaMA2-7B workload (§IV-D, Table IV).
//
// 32 decoder layers, hidden 4096, 32 heads, SwiGLU FFN with intermediate
// 11008. Following the paper's methodology, the decoding phase is
// simulated as a GEMM of the full 4096-token sequence evaluated under the
// LLM parallelism Po=1, Pci=32, Pco=32 ("keeping the total number of MAC
// operations unchanged"); prefilling uses the same GEMM shapes. Only
// weight GEMMs carry PSUM traffic in our model (attention score/context
// matmuls are token-length-dependent activation products; APSQ targets the
// weight-layer accumulation, and the paper's Table IV energy is dominated
// by projection/FFN PSUMs).
#pragma once

#include "energy/layer_shape.hpp"

namespace apsq {

/// Weight-GEMM stack for one full forward over `seq_len` tokens.
Workload llama2_7b_workload(index_t seq_len = 4096);

/// Single-token decode step (rows = 1) — used by the per-step decode
/// analysis in examples/llm_decode_energy.cpp.
Workload llama2_7b_decode_step_workload();

}  // namespace apsq
