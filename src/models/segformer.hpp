// Segformer-B0 workload at 512×512 (§IV-A).
//
// MiT-B0 backbone: 4 stages at strides 4/8/16/32 (token counts 16384 /
// 4096 / 1024 / 256), embedding dims [32, 64, 160, 256], depths
// [2, 2, 2, 2], MLP ratio 4, spatial-reduction ratios [8, 4, 2, 1] for the
// efficient self-attention, plus the overlapped patch-embedding convs and
// the all-MLP decode head. Convolutions are modeled as GEMMs with
// ci = Cin·k² (im2col view).
#pragma once

#include "energy/layer_shape.hpp"

namespace apsq {

Workload segformer_b0_workload(index_t input_resolution = 512);

}  // namespace apsq
