// Transformer-student APSQ demo: trains a small attention-based sequence
// classifier (the BERT-proxy in miniature) on the key co-occurrence task,
// comparing the FP32 model, the W8A8 baseline, and APSQ students — so the
// quantized PSUM path runs inside real attention projections and FFNs.
#include <iostream>

#include "common/table.hpp"
#include "nn/sequence_classifier.hpp"
#include "nn/trainer.hpp"
#include "tasks/seq_proxy.hpp"

using namespace apsq;
using namespace apsq::nn;

int main() {
  std::cout << "== Transformer student + APSQ (sequence task) ==\n"
            << "Task: does the sequence contain BOTH planted key patterns?\n"
            << "(pooling alone cannot pair them; attention can)\n\n";

  tasks::SeqTaskSpec spec;
  spec.tokens = 10;
  spec.token_dim = 12;
  spec.train_samples = 512;
  spec.test_samples = 256;
  spec.seed = 91;
  const tasks::SeqDataset ds = tasks::make_seq_proxy_dataset(spec);

  SequenceClassifier::Config arch;
  arch.input_dim = 12;
  arch.model_dim = 24;
  arch.ffn_dim = 48;
  arch.num_blocks = 2;
  arch.num_classes = 2;

  SeqTrainConfig tc;
  tc.epochs = 10;
  tc.lr = 3e-3f;

  auto run = [&](const char* label,
                 const std::optional<QatConfig>& qat) {
    Rng rng(7);  // identical init across configurations
    SequenceClassifier model(arch, qat, rng);
    const double acc = train_sequence_classifier(
        model, ds.train_x, ds.train_y, ds.test_x, ds.test_y, tc);
    std::cout << "  trained " << label << "\n";
    return acc;
  };

  Table t({"Model", "Test accuracy"});
  t.add_row({"FP32", Table::num(run("FP32", std::nullopt), 2) + "%"});
  t.add_row({"W8A8 baseline (exact PSUM)",
             Table::num(run("W8A8", QatConfig::baseline_w8a8()), 2) + "%"});
  for (index_t gs : {1, 2, 4}) {
    QatConfig qat = QatConfig::apsq_w8a8(gs, 4);
    t.add_row({"APSQ INT8 gs=" + std::to_string(gs),
               Table::num(run("APSQ", qat), 2) + "%"});
  }
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nAll APSQ variants stay near the W8A8 baseline — the INT8 "
               "PSUM path survives inside attention (chance = 50%).\n";
  return 0;
}
