// apsq_dse — multi-threaded design-space exploration with a Pareto
// frontier over energy × area × accuracy × latency.
//
// Sweeps dataflow × PSUM handling × PE geometry × buffer sizing across the
// paper's four workloads, scores every point with either the analytical
// models (fast) or the cycle-level simulator (high fidelity, scaled
// workloads), and extracts the Pareto front over a selectable objective
// subset:
//
//   apsq_dse                                  # paper_default space, all cores
//   apsq_dse --threads 4 --csv points.csv --front-csv front.csv
//   apsq_dse --space smoke --threads 1
//   apsq_dse --backend sim --shrink 32        # simulator-in-the-loop scoring
//   apsq_dse --backend sim --calibrate        # ... in analytic absolute units
//   apsq_dse --backend mixed --promote-band 0.05  # analytic prefilter, then
//                                             # calibrated sim on the ε-band
//   apsq_dse --objectives energy,latency      # 2-objective front
//   apsq_dse --verify-serial                  # assert parallel == serial
//
// Run with --help for the full flag list.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "dse/calibrate.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

struct Options {
  std::string space = "paper";
  EvalBackend backend = EvalBackend::kAnalytic;
  ObjectiveSet objectives = ObjectiveSet::all();
  int threads = 0;      // 0 = hardware concurrency
  int sim_threads = 0;  // 0 = follow --threads (sim/mixed backends only)
  u64 seed = 0xD5EULL;
  i64 shrink = 32;   // sim backend: dimension divisor
  i64 max_dim = 48;  // sim backend: dimension clamp
  bool calibrate = false;
  double promote_band = 0.05;      // mixed backend: ε-dominance slack
  bool promote_band_set = false;   // flag given explicitly
  bool promote_adaptive = false;   // mixed backend: front-stability rule
  i64 promote_budget = 0;          // mixed backend: margin budget (0 = off)
  bool promote_budget_set = false;
  std::string calibration_csv_path;
  std::string csv_path;
  std::string front_csv_path;
  int top = 20;
  bool verify_serial = false;
  bool help = false;
};

void print_help() {
  std::cout <<
      "apsq_dse — design-space exploration with Pareto frontier\n\n"
      "  --space NAME      paper | smoke (default paper; 1248 / 8 points)\n"
      "  --backend NAME    analytic | sim | mixed (default analytic). sim\n"
      "                    drives the cycle-level simulator per point on\n"
      "                    shrunken workloads and scores measured\n"
      "                    traffic/cycles; mixed scores everything\n"
      "                    analytically first, then re-scores the analytic\n"
      "                    front plus its ε-band with the calibrated sim\n"
      "  --promote-band X  mixed backend: relative ε-dominance slack per\n"
      "                    objective selecting the promoted near-front set\n"
      "                    (default 0.05; 0 = front only; inf = everything)\n"
      "  --promote-adaptive\n"
      "                    mixed backend: replace the fixed band with the\n"
      "                    front-stability rule — promote the analytic\n"
      "                    front, then widen the band geometrically,\n"
      "                    re-simulating only newly promoted points, until\n"
      "                    the promoted front is unchanged for 2\n"
      "                    consecutive widenings\n"
      "  --promote-budget N\n"
      "                    mixed backend: promote exactly the N best\n"
      "                    points by ε-dominance margin instead of a band\n"
      "                    (N >= 1; N >= the space size promotes\n"
      "                    everything)\n"
      "  --calibrate       sim backend: rescale measured energies/latencies\n"
      "                    into the analytic backend's absolute units via\n"
      "                    per-family anchor runs (see dse/calibrate.hpp);\n"
      "                    implied by --backend mixed\n"
      "  --calibration-csv PATH\n"
      "                    load fitted calibration unit factors from PATH if\n"
      "                    it exists (skipping the anchor runs), and save the\n"
      "                    factors there after the sweep\n"
      "  --objectives LIST comma list of energy,area,error,latency used for\n"
      "                    Pareto dominance (default: all four)\n"
      "  --threads N       width of the process-wide worker pool (default:\n"
      "                    hardware concurrency; 1 = fully serial; an\n"
      "                    explicit APSQ_POOL_THREADS env var wins)\n"
      "  --sim-threads N   sim backend: >1 lets each point's layer loop run\n"
      "                    as a nested scope on the same shared pool (so the\n"
      "                    pool width, not N, bounds concurrency; default:\n"
      "                    follow --threads)\n"
      "  --seed S          accuracy-proxy / sim operand seed (default 0xD5E)\n"
      "  --shrink N        sim backend: divide layer dims by N (default 32)\n"
      "  --max-dim N       sim backend: clamp scaled dims to N (default 48)\n"
      "  --csv PATH        write every evaluated point as CSV\n"
      "  --front-csv PATH  write the Pareto front as CSV\n"
      "  --top N           front rows to print (default 20; 0 = all)\n"
      "  --verify-serial   re-run single-threaded and require the Pareto\n"
      "                    front CSV to be byte-identical (exit 1 if not)\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, Options& o) {
  constexpr i64 kDimMax = i64{1} << 30;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      print_help();
      o.help = true;
      return false;
    } else if (a == "--space") {
      const char* v = next("--space");
      if (!v) return false;
      o.space = v;
    } else if (a == "--backend") {
      const char* v = next("--backend");
      // Validate at parse time: an unrecognized backend must exit 1 with
      // the flag named, never fall back to a default sweep.
      if (!v || !parse_enum_flag("--backend", v, parse_backend, o.backend))
        return false;
    } else if (a == "--calibrate") {
      o.calibrate = true;
    } else if (a == "--promote-band") {
      const char* v = next("--promote-band");
      if (!v || !parse_double_flag("--promote-band", v, 0.0,
                                   std::numeric_limits<double>::infinity(),
                                   o.promote_band))
        return false;
      o.promote_band_set = true;
    } else if (a == "--promote-adaptive") {
      o.promote_adaptive = true;
    } else if (a == "--promote-budget") {
      const char* v = next("--promote-budget");
      // 1 is the smallest meaningful budget: a budget of 0 would simulate
      // nothing and report an empty front — reject it like any other
      // out-of-range value.
      if (!v ||
          !parse_i64_flag("--promote-budget", v, 1, i64{1} << 40,
                          o.promote_budget))
        return false;
      o.promote_budget_set = true;
    } else if (a == "--calibration-csv") {
      const char* v = next("--calibration-csv");
      if (!v) return false;
      o.calibration_csv_path = v;
    } else if (a == "--objectives") {
      const char* v = next("--objectives");
      if (!v ||
          !parse_enum_flag("--objectives", v, ObjectiveSet::parse, o.objectives))
        return false;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v || !parse_int_flag("--threads", v, 1, 4096, o.threads))
        return false;
    } else if (a == "--sim-threads") {
      const char* v = next("--sim-threads");
      if (!v || !parse_int_flag("--sim-threads", v, 1, 4096, o.sim_threads))
        return false;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !parse_u64_flag("--seed", v, o.seed)) return false;
    } else if (a == "--shrink") {
      const char* v = next("--shrink");
      if (!v || !parse_i64_flag("--shrink", v, 1, kDimMax, o.shrink))
        return false;
    } else if (a == "--max-dim") {
      const char* v = next("--max-dim");
      if (!v || !parse_i64_flag("--max-dim", v, 1, kDimMax, o.max_dim))
        return false;
    } else if (a == "--csv") {
      const char* v = next("--csv");
      if (!v) return false;
      o.csv_path = v;
    } else if (a == "--front-csv") {
      const char* v = next("--front-csv");
      if (!v) return false;
      o.front_csv_path = v;
    } else if (a == "--top") {
      const char* v = next("--top");
      if (!v || !parse_int_flag("--top", v, 0, 1 << 20, o.top)) return false;
    } else if (a == "--verify-serial") {
      o.verify_serial = true;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

void print_cache_line(const char* name, const CacheStats& s, bool last) {
  std::cout << name << " " << s.hits << "/" << s.misses;
  if (s.races > 0) std::cout << "/" << s.races << "r";
  std::cout << (last ? "\n" : ", ");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return o.help ? 0 : 1;

  ConfigSpace space;
  if (o.space == "paper") {
    space = ConfigSpace::paper_default();
  } else if (o.space == "smoke") {
    space = ConfigSpace::smoke();
  } else {
    std::cerr << "unknown space: " << o.space << " (try --help)\n";
    return 1;
  }
  const int threads =
      o.threads > 0 ? o.threads : WorkStealingPool::hardware_threads();
  // The shared pool is built lazily on first use; pinning its width here
  // makes --threads an honest concurrency bound rather than a serial/pool
  // mode switch. An explicit APSQ_POOL_THREADS in the environment wins.
  setenv("APSQ_POOL_THREADS", std::to_string(threads).c_str(),
         /*overwrite=*/0);

  EvaluatorOptions eopt;
  eopt.threads = threads;
  eopt.seed = o.seed;
  eopt.backend = o.backend;
  const ObjectiveSet objectives = o.objectives;
  const bool mixed = eopt.backend == EvalBackend::kMixed;
  // A promotion flag outside the mixed backend, a calibration flag on the
  // analytic backend, or two conflicting promotion rules would silently
  // not do what was asked — exit 1 naming the flags instead.
  if (!flag_requires(o.calibrate, "--calibrate",
                     eopt.backend != EvalBackend::kAnalytic,
                     "--backend sim or mixed") ||
      !flag_requires(o.promote_band_set, "--promote-band", mixed,
                     "--backend mixed") ||
      !flag_requires(o.promote_adaptive, "--promote-adaptive", mixed,
                     "--backend mixed") ||
      !flag_requires(o.promote_budget_set, "--promote-budget", mixed,
                     "--backend mixed") ||
      !flags_exclusive(o.promote_band_set, "--promote-band",
                       o.promote_adaptive, "--promote-adaptive") ||
      !flags_exclusive(o.promote_band_set, "--promote-band",
                       o.promote_budget_set, "--promote-budget") ||
      !flags_exclusive(o.promote_adaptive, "--promote-adaptive",
                       o.promote_budget_set, "--promote-budget") ||
      // Without a calibrator the CSV would be silently neither loaded nor
      // written — reject the ineffective flag like any other misuse.
      !flag_requires(!o.calibration_csv_path.empty(), "--calibration-csv",
                     o.calibrate || mixed,
                     "--calibrate or --backend mixed"))
    return 1;
  eopt.sim.shrink = o.shrink;
  eopt.sim.max_dim = o.max_dim;
  eopt.sim.seed = o.seed;
  // Nested scopes share one pool, so layer-level parallelism defaults on:
  // it fills the workers whenever there are fewer ready points than cores.
  if (eopt.backend != EvalBackend::kAnalytic)
    eopt.sim.threads = o.sim_threads > 0 ? o.sim_threads : threads;
  eopt.calibrate = o.calibrate;
  eopt.promote_band = o.promote_band;
  eopt.promote_adaptive = o.promote_adaptive;
  eopt.promote_budget = o.promote_budget_set ? o.promote_budget : 0;
  // Promote in the same objective plane the front is extracted in, so the
  // promoted set provably covers the reported front.
  eopt.promote_objectives = objectives;
  Evaluator eval(eopt);

  // Sweep-level fallback label; evaluator-produced rows carry their own
  // per-point provenance (which is what distinguishes a mixed CSV).
  const std::string scored_by =
      mixed ? "mixed"
            : std::string(to_string(eopt.backend)) + (o.calibrate ? "+cal" : "");

  if (eval.calibrator() && !o.calibration_csv_path.empty() &&
      std::ifstream(o.calibration_csv_path).good()) {
    try {
      const index_t n =
          eval.calibrator()->load_unit_factors_csv(o.calibration_csv_path);
      std::cout << "loaded " << n << " calibration families from "
                << o.calibration_csv_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  // Workload is a scenario, not a knob: the headline front is per
  // workload; the cross-workload (global) front is reported as a count.
  // A mixed sweep's front is extracted over the sim-re-scored (promoted)
  // subset only, so dominance always compares equal-fidelity scores.
  const std::vector<EvalResult> front_basis =
      mixed ? promoted_subset(results) : results;
  const std::vector<EvalResult> front =
      pareto_front_by_workload(front_basis, objectives);
  const size_t global_front_size =
      pareto_front(front_basis, objectives).size();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "evaluated " << results.size() << " design points ("
            << space.workloads.size() << " workloads) with " << threads
            << " threads / " << scored_by << " backend in "
            << Table::num(secs, 2) << " s\n"
            << "objectives: " << objectives.to_string() << "\n"
            << "cache hits/misses[/races] — ";
  print_cache_line("energy", eval.energy_cache_stats(), false);
  print_cache_line("area", eval.area_cache_stats(), false);
  print_cache_line("accuracy", eval.accuracy_cache_stats(), false);
  if (eopt.backend == EvalBackend::kAnalytic) {
    print_cache_line("latency", eval.latency_cache_stats(), true);
  } else if (eopt.backend == EvalBackend::kSim) {
    print_cache_line("sim", eval.sim_cache_stats(), true);
  } else {
    print_cache_line("latency", eval.latency_cache_stats(), false);
    print_cache_line("sim", eval.sim_cache_stats(), true);
  }
  if (mixed) {
    const MixedSweepStats& ms = eval.mixed_stats();
    const double pct = ms.total > 0 ? 100.0 * static_cast<double>(ms.promoted) /
                                          static_cast<double>(ms.total)
                                    : 0.0;
    std::cout << "mixed phases — analytic: " << ms.total << " pts in "
              << Table::num(ms.phase1_secs, 2) << " s; "
              << to_string(ms.mode) << " promotion ";
    if (ms.mode == PromoteMode::kBudget)
      std::cout << "(budget " << ms.budget << ", effective band "
                << Table::num(ms.band, 3) << ")";
    else
      std::cout << "(band " << Table::num(ms.band, 3) << ")";
    std::cout << " sent " << ms.promoted << " pts (" << Table::num(pct, 1)
              << "%) to sim+cal in " << Table::num(ms.phase2_secs, 2)
              << " s\n";
    // Adaptive sweeps: show the ladder so the stopping decision is
    // auditable — which widenings still moved the front, and what each
    // one cost in newly simulated points.
    if (ms.mode == PromoteMode::kAdaptive)
      for (size_t r = 0; r < ms.rounds.size(); ++r) {
        const MixedRoundStats& rs = ms.rounds[r];
        std::cout << "  round " << r << ": band " << Table::num(rs.band, 4)
                  << " +" << rs.promoted_new << " pts (total "
                  << rs.promoted_total << "), front " << rs.front_size
                  << (rs.front_changed ? " (changed)" : " (stable)") << ", "
                  << Table::num(rs.secs, 2) << " s\n";
      }
  }
  if (eval.calibrator())
    std::cout << "calibration: " << eval.calibrator()->family_count()
              << " (workload, dataflow, psum) families fitted\n";
  std::cout << "Pareto front: " << front.size()
            << " non-dominated points across workloads (" << global_front_size
            << " in the cross-workload front)\n\n";

  std::vector<EvalResult> shown = front;
  if (o.top > 0 && static_cast<size_t>(o.top) < shown.size())
    shown.resize(static_cast<size_t>(o.top));
  front_table(shown).print(std::cout);
  if (shown.size() < front.size())
    std::cout << "… " << front.size() - shown.size()
              << " more rows (use --top 0 or --front-csv)\n";

  if (eval.calibrator() && !o.calibration_csv_path.empty()) {
    if (!eval.calibrator()->unit_factors_csv().write(o.calibration_csv_path)) {
      std::cerr << "failed to write " << o.calibration_csv_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.calibration_csv_path << "\n";
  }
  if (!o.csv_path.empty()) {
    if (!results_csv(results, scored_by).write(o.csv_path)) {
      std::cerr << "failed to write " << o.csv_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.csv_path << "\n";
  }
  if (!o.front_csv_path.empty()) {
    if (!results_csv(front, scored_by).write(o.front_csv_path)) {
      std::cerr << "failed to write " << o.front_csv_path << "\n";
      return 1;
    }
    std::cout << "wrote " << o.front_csv_path << "\n";
  }

  if (o.verify_serial) {
    EvaluatorOptions sopt = eopt;
    sopt.threads = 1;
    sopt.sim.threads = 1;  // fully serial: no layer-level parallelism either
    Evaluator serial(sopt);
    // Identical calibration inputs: preload the saved factors when a CSV
    // path is in play; otherwise the serial run refits the same (pure)
    // anchor values.
    if (serial.calibrator() && !o.calibration_csv_path.empty())
      serial.calibrator()->load_unit_factors_csv(o.calibration_csv_path);
    const std::vector<EvalResult> sres = serial.evaluate_space(space);
    const std::vector<EvalResult> sbasis =
        mixed ? promoted_subset(sres) : sres;
    const std::string a =
        results_csv(pareto_front_by_workload(sbasis, objectives), scored_by)
            .to_string();
    const std::string b = results_csv(front, scored_by).to_string();
    if (a != b) {
      std::cerr << "FAIL: serial and parallel Pareto fronts differ\n";
      return 1;
    }
    std::cout << "verify-serial: fronts byte-identical ("
              << results_csv(front).row_count() << " rows)\n";
  }
  return 0;
}
