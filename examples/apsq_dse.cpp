// apsq_dse — multi-threaded design-space exploration with a Pareto
// frontier over energy × area × accuracy × latency.
//
// Sweeps dataflow × PSUM handling × PE geometry × buffer sizing across the
// paper's four workloads, scores every point with either the analytical
// models (fast) or the cycle-level simulator (high fidelity, scaled
// workloads), and extracts the Pareto front over a selectable objective
// subset:
//
//   apsq_dse                                  # paper_default space, all cores
//   apsq_dse --threads 4 --csv points.csv --front-csv front.csv
//   apsq_dse --space smoke --threads 1
//   apsq_dse --backend sim --shrink 32        # simulator-in-the-loop scoring
//   apsq_dse --objectives energy,latency      # 2-objective front
//   apsq_dse --verify-serial                  # assert parallel == serial
//
// Run with --help for the full flag list.
#include <chrono>
#include <iostream>
#include <string>

#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

struct Options {
  std::string space = "paper";
  std::string backend = "analytic";
  std::string objectives = "energy,area,error,latency";
  int threads = 0;  // 0 = hardware concurrency
  u64 seed = 0xD5EULL;
  index_t shrink = 32;   // sim backend: dimension divisor
  index_t max_dim = 48;  // sim backend: dimension clamp
  std::string csv_path;
  std::string front_csv_path;
  int top = 20;
  bool verify_serial = false;
  bool help = false;
};

void print_help() {
  std::cout <<
      "apsq_dse — design-space exploration with Pareto frontier\n\n"
      "  --space NAME      paper | smoke (default paper; 1248 / 8 points)\n"
      "  --backend NAME    analytic | sim (default analytic). sim drives the\n"
      "                    cycle-level simulator per point on shrunken\n"
      "                    workloads and scores measured traffic/cycles\n"
      "  --objectives LIST comma list of energy,area,error,latency used for\n"
      "                    Pareto dominance (default: all four)\n"
      "  --threads N       worker threads (default: hardware concurrency)\n"
      "  --seed S          accuracy-proxy / sim operand seed (default 0xD5E)\n"
      "  --shrink N        sim backend: divide layer dims by N (default 32)\n"
      "  --max-dim N       sim backend: clamp scaled dims to N (default 48)\n"
      "  --csv PATH        write every evaluated point as CSV\n"
      "  --front-csv PATH  write the Pareto front as CSV\n"
      "  --top N           front rows to print (default 20; 0 = all)\n"
      "  --verify-serial   re-run single-threaded and require the Pareto\n"
      "                    front CSV to be byte-identical (exit 1 if not)\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      print_help();
      o.help = true;
      return false;
    } else if (a == "--space") {
      const char* v = next("--space");
      if (!v) return false;
      o.space = v;
    } else if (a == "--backend") {
      const char* v = next("--backend");
      if (!v) return false;
      o.backend = v;
    } else if (a == "--objectives") {
      const char* v = next("--objectives");
      if (!v) return false;
      o.objectives = v;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      o.threads = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      o.seed = static_cast<u64>(std::strtoull(v, nullptr, 0));
    } else if (a == "--shrink") {
      const char* v = next("--shrink");
      if (!v) return false;
      o.shrink = std::atoll(v);
    } else if (a == "--max-dim") {
      const char* v = next("--max-dim");
      if (!v) return false;
      o.max_dim = std::atoll(v);
    } else if (a == "--csv") {
      const char* v = next("--csv");
      if (!v) return false;
      o.csv_path = v;
    } else if (a == "--front-csv") {
      const char* v = next("--front-csv");
      if (!v) return false;
      o.front_csv_path = v;
    } else if (a == "--top") {
      const char* v = next("--top");
      if (!v) return false;
      o.top = std::atoi(v);
    } else if (a == "--verify-serial") {
      o.verify_serial = true;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

void print_cache_line(const char* name, const CacheStats& s, bool last) {
  std::cout << name << " " << s.hits << "/" << s.misses;
  if (s.races > 0) std::cout << "/" << s.races << "r";
  std::cout << (last ? "\n" : ", ");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return o.help ? 0 : 1;

  ConfigSpace space;
  if (o.space == "paper") {
    space = ConfigSpace::paper_default();
  } else if (o.space == "smoke") {
    space = ConfigSpace::smoke();
  } else {
    std::cerr << "unknown space: " << o.space << " (try --help)\n";
    return 1;
  }
  if (o.shrink < 1 || o.max_dim < 1) {
    std::cerr << "--shrink and --max-dim must be >= 1\n";
    return 1;
  }
  const int threads =
      o.threads > 0 ? o.threads : WorkStealingPool::hardware_threads();

  EvaluatorOptions eopt;
  eopt.threads = threads;
  eopt.seed = o.seed;
  ObjectiveSet objectives;
  try {
    eopt.backend = parse_backend(o.backend);
    objectives = ObjectiveSet::parse(o.objectives);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  eopt.sim.shrink = o.shrink;
  eopt.sim.max_dim = o.max_dim;
  eopt.sim.seed = o.seed;
  Evaluator eval(eopt);

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  // Workload is a scenario, not a knob: the headline front is per
  // workload; the cross-workload (global) front is reported as a count.
  const std::vector<EvalResult> front =
      pareto_front_by_workload(results, objectives);
  const size_t global_front_size = pareto_front(results, objectives).size();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "evaluated " << results.size() << " design points ("
            << space.workloads.size() << " workloads) with " << threads
            << " threads / " << to_string(eopt.backend) << " backend in "
            << Table::num(secs, 2) << " s\n"
            << "objectives: " << objectives.to_string() << "\n"
            << "cache hits/misses[/races] — ";
  print_cache_line("energy", eval.energy_cache_stats(), false);
  print_cache_line("area", eval.area_cache_stats(), false);
  print_cache_line("accuracy", eval.accuracy_cache_stats(), false);
  if (eopt.backend == EvalBackend::kSim)
    print_cache_line("sim", eval.sim_cache_stats(), true);
  else
    print_cache_line("latency", eval.latency_cache_stats(), true);
  std::cout << "Pareto front: " << front.size()
            << " non-dominated points across workloads (" << global_front_size
            << " in the cross-workload front)\n\n";

  std::vector<EvalResult> shown = front;
  if (o.top > 0 && static_cast<size_t>(o.top) < shown.size())
    shown.resize(static_cast<size_t>(o.top));
  front_table(shown).print(std::cout);
  if (shown.size() < front.size())
    std::cout << "… " << front.size() - shown.size()
              << " more rows (use --top 0 or --front-csv)\n";

  if (!o.csv_path.empty()) {
    if (!results_csv(results).write(o.csv_path)) {
      std::cerr << "failed to write " << o.csv_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.csv_path << "\n";
  }
  if (!o.front_csv_path.empty()) {
    if (!results_csv(front).write(o.front_csv_path)) {
      std::cerr << "failed to write " << o.front_csv_path << "\n";
      return 1;
    }
    std::cout << "wrote " << o.front_csv_path << "\n";
  }

  if (o.verify_serial) {
    EvaluatorOptions sopt = eopt;
    sopt.threads = 1;
    Evaluator serial(sopt);
    const std::vector<EvalResult> sres = serial.evaluate_space(space);
    const std::string a =
        results_csv(pareto_front_by_workload(sres, objectives)).to_string();
    const std::string b = results_csv(front).to_string();
    if (a != b) {
      std::cerr << "FAIL: serial and parallel Pareto fronts differ\n";
      return 1;
    }
    std::cout << "verify-serial: fronts byte-identical ("
              << results_csv(front).row_count() << " rows)\n";
  }
  return 0;
}
