// apsq_dse — multi-threaded design-space exploration with a Pareto
// frontier over energy × area × accuracy × latency.
//
// Sweeps dataflow × PSUM handling × PE geometry × buffer sizing across the
// paper's four workloads, scores every point with either the analytical
// models (fast) or the cycle-level simulator (high fidelity, scaled
// workloads), and extracts the Pareto front over a selectable objective
// subset:
//
//   apsq_dse                                  # paper_default space, all cores
//   apsq_dse --threads 4 --csv points.csv --front-csv front.csv
//   apsq_dse --space smoke --threads 1
//   apsq_dse --backend sim --shrink 32        # simulator-in-the-loop scoring
//   apsq_dse --backend sim --calibrate        # ... in analytic absolute units
//   apsq_dse --backend mixed --promote-band 0.05  # analytic prefilter, then
//                                             # calibrated sim on the ε-band
//   apsq_dse --objectives energy,latency      # 2-objective front
//   apsq_dse --objectives energy,latency,pe_utilization,dram_bw_headroom
//                                             # mixing minimized + maximized
//   apsq_dse --layer-stats-csv layers.csv     # per-layer telemetry of the
//                                             # top front rows
//   apsq_dse --stats --stats-json stats.json  # cache/pool/phase counters
//   apsq_dse --verify-serial                  # assert parallel == serial
//
// Run with --help for the full flag list.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "common/cli.hpp"
#include "common/stats_writer.hpp"
#include "common/thread_pool.hpp"
#include "dse/calibrate.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"
#include "sim/stats.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

struct Options {
  std::string space = "paper";
  EvalBackend backend = EvalBackend::kAnalytic;
  ObjectiveSet objectives;  // default-constructed: the core quartet
  int threads = 0;      // 0 = hardware concurrency
  int sim_threads = 0;  // 0 = follow --threads (sim/mixed backends only)
  u64 seed = 0xD5EULL;
  i64 shrink = 32;   // sim backend: dimension divisor
  i64 max_dim = 48;  // sim backend: dimension clamp
  bool calibrate = false;
  double promote_band = 0.05;      // mixed backend: ε-dominance slack
  bool promote_band_set = false;   // flag given explicitly
  bool promote_adaptive = false;   // mixed backend: front-stability rule
  i64 promote_budget = 0;          // mixed backend: margin budget (0 = off)
  bool promote_budget_set = false;
  bool calibrate_per_class = false;
  std::string calibration_csv_path;
  std::string csv_path;
  std::string front_csv_path;
  std::string layer_stats_csv_path;
  int dump_stats_top = 5;
  bool dump_stats_top_set = false;
  bool stats = false;
  std::string stats_json_path;
  int top = 20;
  bool verify_serial = false;
  bool help = false;
};

void print_help() {
  std::cout <<
      "apsq_dse — design-space exploration with Pareto frontier\n\n"
      "  --space NAME      paper | smoke (default paper; 1248 / 8 points)\n"
      "  --backend NAME    analytic | sim | mixed (default analytic). sim\n"
      "                    drives the cycle-level simulator per point on\n"
      "                    shrunken workloads and scores measured\n"
      "                    traffic/cycles; mixed scores everything\n"
      "                    analytically first, then re-scores the analytic\n"
      "                    front plus its ε-band with the calibrated sim\n"
      "  --promote-band X  mixed backend: relative ε-dominance slack per\n"
      "                    objective selecting the promoted near-front set\n"
      "                    (default 0.05; 0 = front only; inf = everything)\n"
      "  --promote-adaptive\n"
      "                    mixed backend: replace the fixed band with the\n"
      "                    front-stability rule — promote the analytic\n"
      "                    front, then widen the band geometrically,\n"
      "                    re-simulating only newly promoted points, until\n"
      "                    the promoted front is unchanged for 2\n"
      "                    consecutive widenings\n"
      "  --promote-budget N\n"
      "                    mixed backend: promote exactly the N best\n"
      "                    points by ε-dominance margin instead of a band\n"
      "                    (N >= 1; N >= the space size promotes\n"
      "                    everything)\n"
      "  --calibrate       sim backend: rescale measured energies/latencies\n"
      "                    into the analytic backend's absolute units via\n"
      "                    per-family anchor runs (see dse/calibrate.hpp);\n"
      "                    implied by --backend mixed\n"
      "  --calibration-csv PATH\n"
      "                    load fitted calibration unit factors from PATH if\n"
      "                    it exists (skipping the anchor runs), and save the\n"
      "                    factors there after the sweep\n"
      "  --calibrate-per-class\n"
      "                    fit calibration factors per layer class instead of\n"
      "                    one blended vector per workload (finer for\n"
      "                    workloads mixing DRAM-bound and resident layers;\n"
      "                    needs --calibrate or --backend mixed)\n"
      "  --objectives LIST comma list drawn from energy,area,error,latency,\n"
      "                    pe_utilization,dram_bw_headroom,\n"
      "                    throughput_per_area used for Pareto dominance\n"
      "                    (default: the core four energy,area,error,latency;\n"
      "                    the last three are maximized, the rest minimized)\n"
      "  --threads N       width of the process-wide worker pool (default:\n"
      "                    hardware concurrency; 1 = fully serial; an\n"
      "                    explicit APSQ_POOL_THREADS env var wins)\n"
      "  --sim-threads N   sim backend: >1 lets each point's layer loop run\n"
      "                    as a nested scope on the same shared pool (so the\n"
      "                    pool width, not N, bounds concurrency; default:\n"
      "                    follow --threads)\n"
      "  --seed S          accuracy-proxy / sim operand seed (default 0xD5E)\n"
      "  --shrink N        sim backend: divide layer dims by N (default 32)\n"
      "  --max-dim N       sim backend: clamp scaled dims to N (default 48)\n"
      "  --csv PATH        write every evaluated point as CSV\n"
      "  --front-csv PATH  write the Pareto front as CSV\n"
      "  --layer-stats-csv PATH\n"
      "                    re-score the top front rows at their own fidelity\n"
      "                    and write one per-layer telemetry row each\n"
      "                    (cycles, utilization, stall/idle split, SRAM/DRAM\n"
      "                    traffic by operand, bandwidth occupancy) to PATH\n"
      "  --dump-stats-top K\n"
      "                    front rows dumped by --layer-stats-csv\n"
      "                    (default 5; 0 = every front row)\n"
      "  --stats           print cache hit/miss/race counters, pool\n"
      "                    run/steal counts and mixed-sweep phase timings\n"
      "                    after the sweep\n"
      "  --stats-json PATH write the same counters as a JSON array of\n"
      "                    {stat, value} objects\n"
      "  --top N           front rows to print (default 20; 0 = all)\n"
      "  --verify-serial   re-run single-threaded and require the Pareto\n"
      "                    front CSV to be byte-identical (exit 1 if not)\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, Options& o) {
  constexpr i64 kDimMax = i64{1} << 30;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      print_help();
      o.help = true;
      return false;
    } else if (a == "--space") {
      const char* v = next("--space");
      if (!v) return false;
      o.space = v;
    } else if (a == "--backend") {
      const char* v = next("--backend");
      // Validate at parse time: an unrecognized backend must exit 1 with
      // the flag named, never fall back to a default sweep.
      if (!v || !parse_enum_flag("--backend", v, parse_backend, o.backend))
        return false;
    } else if (a == "--calibrate") {
      o.calibrate = true;
    } else if (a == "--calibrate-per-class") {
      o.calibrate_per_class = true;
    } else if (a == "--promote-band") {
      const char* v = next("--promote-band");
      if (!v || !parse_double_flag("--promote-band", v, 0.0,
                                   std::numeric_limits<double>::infinity(),
                                   o.promote_band))
        return false;
      o.promote_band_set = true;
    } else if (a == "--promote-adaptive") {
      o.promote_adaptive = true;
    } else if (a == "--promote-budget") {
      const char* v = next("--promote-budget");
      // 1 is the smallest meaningful budget: a budget of 0 would simulate
      // nothing and report an empty front — reject it like any other
      // out-of-range value.
      if (!v ||
          !parse_i64_flag("--promote-budget", v, 1, i64{1} << 40,
                          o.promote_budget))
        return false;
      o.promote_budget_set = true;
    } else if (a == "--calibration-csv") {
      const char* v = next("--calibration-csv");
      if (!v) return false;
      o.calibration_csv_path = v;
    } else if (a == "--objectives") {
      const char* v = next("--objectives");
      if (!v ||
          !parse_enum_flag("--objectives", v, ObjectiveSet::parse, o.objectives))
        return false;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v || !parse_int_flag("--threads", v, 1, 4096, o.threads))
        return false;
    } else if (a == "--sim-threads") {
      const char* v = next("--sim-threads");
      if (!v || !parse_int_flag("--sim-threads", v, 1, 4096, o.sim_threads))
        return false;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !parse_u64_flag("--seed", v, o.seed)) return false;
    } else if (a == "--shrink") {
      const char* v = next("--shrink");
      if (!v || !parse_i64_flag("--shrink", v, 1, kDimMax, o.shrink))
        return false;
    } else if (a == "--max-dim") {
      const char* v = next("--max-dim");
      if (!v || !parse_i64_flag("--max-dim", v, 1, kDimMax, o.max_dim))
        return false;
    } else if (a == "--csv") {
      const char* v = next("--csv");
      if (!v) return false;
      o.csv_path = v;
    } else if (a == "--front-csv") {
      const char* v = next("--front-csv");
      if (!v) return false;
      o.front_csv_path = v;
    } else if (a == "--layer-stats-csv") {
      const char* v = next("--layer-stats-csv");
      if (!v) return false;
      o.layer_stats_csv_path = v;
    } else if (a == "--dump-stats-top") {
      const char* v = next("--dump-stats-top");
      if (!v ||
          !parse_int_flag("--dump-stats-top", v, 0, 1 << 20, o.dump_stats_top))
        return false;
      o.dump_stats_top_set = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--stats-json") {
      const char* v = next("--stats-json");
      if (!v) return false;
      o.stats_json_path = v;
    } else if (a == "--top") {
      const char* v = next("--top");
      if (!v || !parse_int_flag("--top", v, 0, 1 << 20, o.top)) return false;
    } else if (a == "--verify-serial") {
      o.verify_serial = true;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

void print_cache_line(const char* name, const CacheStats& s, bool last) {
  std::cout << name << " " << s.hits << "/" << s.misses;
  if (s.races > 0) std::cout << "/" << s.races << "r";
  std::cout << (last ? "\n" : ", ");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return o.help ? 0 : 1;

  ConfigSpace space;
  if (o.space == "paper") {
    space = ConfigSpace::paper_default();
  } else if (o.space == "smoke") {
    space = ConfigSpace::smoke();
  } else {
    std::cerr << "unknown space: " << o.space << " (try --help)\n";
    return 1;
  }
  const int threads =
      o.threads > 0 ? o.threads : WorkStealingPool::hardware_threads();
  // The shared pool is built lazily on first use; pinning its width here
  // makes --threads an honest concurrency bound rather than a serial/pool
  // mode switch. An explicit APSQ_POOL_THREADS in the environment wins.
  setenv("APSQ_POOL_THREADS", std::to_string(threads).c_str(),
         /*overwrite=*/0);

  EvaluatorOptions eopt;
  eopt.threads = threads;
  eopt.seed = o.seed;
  eopt.backend = o.backend;
  const ObjectiveSet objectives = o.objectives;
  const bool mixed = eopt.backend == EvalBackend::kMixed;
  // A promotion flag outside the mixed backend, a calibration flag on the
  // analytic backend, or two conflicting promotion rules would silently
  // not do what was asked — exit 1 naming the flags instead.
  if (!flag_requires(o.calibrate, "--calibrate",
                     eopt.backend != EvalBackend::kAnalytic,
                     "--backend sim or mixed") ||
      !flag_requires(o.promote_band_set, "--promote-band", mixed,
                     "--backend mixed") ||
      !flag_requires(o.promote_adaptive, "--promote-adaptive", mixed,
                     "--backend mixed") ||
      !flag_requires(o.promote_budget_set, "--promote-budget", mixed,
                     "--backend mixed") ||
      !flags_exclusive(o.promote_band_set, "--promote-band",
                       o.promote_adaptive, "--promote-adaptive") ||
      !flags_exclusive(o.promote_band_set, "--promote-band",
                       o.promote_budget_set, "--promote-budget") ||
      !flags_exclusive(o.promote_adaptive, "--promote-adaptive",
                       o.promote_budget_set, "--promote-budget") ||
      // Without a calibrator the CSV would be silently neither loaded nor
      // written — reject the ineffective flag like any other misuse.
      !flag_requires(!o.calibration_csv_path.empty(), "--calibration-csv",
                     o.calibrate || mixed,
                     "--calibrate or --backend mixed") ||
      !flag_requires(o.calibrate_per_class, "--calibrate-per-class",
                     o.calibrate || mixed,
                     "--calibrate or --backend mixed") ||
      !flag_requires(o.dump_stats_top_set, "--dump-stats-top",
                     !o.layer_stats_csv_path.empty(), "--layer-stats-csv"))
    return 1;
  eopt.sim.shrink = o.shrink;
  eopt.sim.max_dim = o.max_dim;
  eopt.sim.seed = o.seed;
  // Nested scopes share one pool, so layer-level parallelism defaults on:
  // it fills the workers whenever there are fewer ready points than cores.
  if (eopt.backend != EvalBackend::kAnalytic)
    eopt.sim.threads = o.sim_threads > 0 ? o.sim_threads : threads;
  eopt.calibrate = o.calibrate;
  eopt.calibrate_per_class = o.calibrate_per_class;
  eopt.promote_band = o.promote_band;
  eopt.promote_adaptive = o.promote_adaptive;
  eopt.promote_budget = o.promote_budget_set ? o.promote_budget : 0;
  // Promote in the same objective plane the front is extracted in, so the
  // promoted set provably covers the reported front.
  eopt.promote_objectives = objectives;
  Evaluator eval(eopt);

  // Sweep-level fallback label; evaluator-produced rows carry their own
  // per-point provenance (which is what distinguishes a mixed CSV).
  const std::string scored_by =
      mixed ? "mixed"
            : std::string(to_string(eopt.backend)) + (o.calibrate ? "+cal" : "");

  if (eval.calibrator() && !o.calibration_csv_path.empty() &&
      std::ifstream(o.calibration_csv_path).good()) {
    try {
      const index_t n =
          eval.calibrator()->load_unit_factors_csv(o.calibration_csv_path);
      std::cout << "loaded " << n << " calibration families from "
                << o.calibration_csv_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  // Workload is a scenario, not a knob: the headline front is per
  // workload; the cross-workload (global) front is reported as a count.
  // A mixed sweep's front is extracted over the sim-re-scored (promoted)
  // subset only, so dominance always compares equal-fidelity scores.
  const std::vector<EvalResult> front_basis =
      mixed ? promoted_subset(results) : results;
  const std::vector<EvalResult> front =
      pareto_front_by_workload(front_basis, objectives);
  const size_t global_front_size =
      pareto_front(front_basis, objectives).size();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "evaluated " << results.size() << " design points ("
            << space.workloads.size() << " workloads) with " << threads
            << " threads / " << scored_by << " backend in "
            << Table::num(secs, 2) << " s\n"
            << "objectives: " << objectives.to_string() << "\n";
  if (o.stats) {
    std::cout << "cache hits/misses[/races] — ";
    print_cache_line("energy", eval.energy_cache_stats(), false);
    print_cache_line("area", eval.area_cache_stats(), false);
    print_cache_line("accuracy", eval.accuracy_cache_stats(), false);
    if (eopt.backend == EvalBackend::kAnalytic) {
      print_cache_line("latency", eval.latency_cache_stats(), true);
    } else if (eopt.backend == EvalBackend::kSim) {
      print_cache_line("sim", eval.sim_cache_stats(), true);
    } else {
      print_cache_line("latency", eval.latency_cache_stats(), false);
      print_cache_line("sim", eval.sim_cache_stats(), true);
    }
    const WorkStealingPool& pool = WorkStealingPool::shared();
    std::cout << "pool: " << pool.num_threads() << " threads, "
              << pool.run_count() << " runs, " << pool.steal_count()
              << " steals\n";
  }
  if (mixed && o.stats) {
    const MixedSweepStats& ms = eval.mixed_stats();
    const double pct = ms.total > 0 ? 100.0 * static_cast<double>(ms.promoted) /
                                          static_cast<double>(ms.total)
                                    : 0.0;
    std::cout << "mixed phases — analytic: " << ms.total << " pts in "
              << Table::num(ms.phase1_secs, 2) << " s; "
              << to_string(ms.mode) << " promotion ";
    if (ms.mode == PromoteMode::kBudget)
      std::cout << "(budget " << ms.budget << ", effective band "
                << Table::num(ms.band, 3) << ")";
    else
      std::cout << "(band " << Table::num(ms.band, 3) << ")";
    std::cout << " sent " << ms.promoted << " pts (" << Table::num(pct, 1)
              << "%) to sim+cal in " << Table::num(ms.phase2_secs, 2)
              << " s\n";
    // Adaptive sweeps: show the ladder so the stopping decision is
    // auditable — which widenings still moved the front, and what each
    // one cost in newly simulated points.
    if (ms.mode == PromoteMode::kAdaptive)
      for (size_t r = 0; r < ms.rounds.size(); ++r) {
        const MixedRoundStats& rs = ms.rounds[r];
        std::cout << "  round " << r << ": band " << Table::num(rs.band, 4)
                  << " +" << rs.promoted_new << " pts (total "
                  << rs.promoted_total << "), front " << rs.front_size
                  << (rs.front_changed ? " (changed)" : " (stable)") << ", "
                  << Table::num(rs.secs, 2) << " s\n";
      }
  }
  if (eval.calibrator())
    std::cout << "calibration: " << eval.calibrator()->family_count()
              << " (workload, dataflow, psum) families fitted\n";
  std::cout << "Pareto front: " << front.size()
            << " non-dominated points across workloads (" << global_front_size
            << " in the cross-workload front)\n\n";

  std::vector<EvalResult> shown = front;
  if (o.top > 0 && static_cast<size_t>(o.top) < shown.size())
    shown.resize(static_cast<size_t>(o.top));
  front_table(shown).print(std::cout);
  if (shown.size() < front.size())
    std::cout << "… " << front.size() - shown.size()
              << " more rows (use --top 0 or --front-csv)\n";

  if (eval.calibrator() && !o.calibration_csv_path.empty()) {
    if (!eval.calibrator()->unit_factors_csv().write(o.calibration_csv_path)) {
      std::cerr << "failed to write " << o.calibration_csv_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.calibration_csv_path << "\n";
  }
  if (!o.csv_path.empty()) {
    if (!results_csv(results, scored_by).write(o.csv_path)) {
      std::cerr << "failed to write " << o.csv_path << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.csv_path << "\n";
  }
  if (!o.front_csv_path.empty()) {
    if (!results_csv(front, scored_by).write(o.front_csv_path)) {
      std::cerr << "failed to write " << o.front_csv_path << "\n";
      return 1;
    }
    std::cout << "wrote " << o.front_csv_path << "\n";
  }
  if (!o.layer_stats_csv_path.empty()) {
    // Re-score the leading front rows at their own fidelity and dump one
    // telemetry row per layer instance, prefixed with the same point
    // identity columns results_csv uses so the two files join on them.
    StatsWriter sw({"workload", "dataflow", "psum_bits", "apsq", "group_size",
                    "po", "pci", "pco", "ifmap_buf_bytes", "ofmap_buf_bytes",
                    "weight_buf_bytes", "scored_by", "layer", "layer_class",
                    "rows", "ci", "co", "repeat", "tile_cycles", "mac_ops",
                    "pe_utilization", "compute_s", "dram_s", "latency_s",
                    "compute_stall_s", "dram_idle_s", "sram_bytes",
                    "dram_bytes", "dram_ifmap_bytes", "dram_weight_bytes",
                    "dram_psum_bytes", "dram_ofmap_bytes",
                    "dram_bw_occupancy", "dram_bound"});
    const size_t k = o.dump_stats_top == 0
                         ? front.size()
                         : std::min(front.size(),
                                    static_cast<size_t>(o.dump_stats_top));
    for (size_t i = 0; i < k; ++i) {
      const EvalResult& r = front[i];
      const std::string provenance =
          r.scored_by.empty() ? scored_by : r.scored_by;
      const EvalBackend fidelity = provenance == "analytic"
                                       ? EvalBackend::kAnalytic
                                       : EvalBackend::kSim;
      const WorkloadTelemetry t = eval.telemetry_for(r.point, fidelity);
      const DesignPoint& p = r.point;
      for (const LayerStats& ls : t.rows) {
        sw.begin_row();
        sw.add(p.workload);
        sw.add(to_string(p.dataflow));
        sw.add(p.psum.psum_bits);
        sw.add(p.psum.apsq ? 1 : 0);
        sw.add(p.psum.group_size);
        sw.add(p.acc.po);
        sw.add(p.acc.pci);
        sw.add(p.acc.pco);
        sw.add(p.acc.ifmap_buf_bytes);
        sw.add(p.acc.ofmap_buf_bytes);
        sw.add(p.acc.weight_buf_bytes);
        sw.add(t.source);
        sw.add(ls.layer_name);
        sw.add(ls.layer_class);
        sw.add(ls.shape.rows);
        sw.add(ls.shape.ci);
        sw.add(ls.shape.co);
        sw.add(ls.repeat);
        sw.add(ls.perf.tile_cycles);
        sw.add(ls.perf.mac_ops);
        sw.add(ls.perf.utilization);
        sw.add(ls.perf.compute_time_s);
        sw.add(ls.perf.dram_time_s);
        sw.add(ls.perf.latency_s);
        sw.add(ls.compute_stall_s);
        sw.add(ls.dram_idle_s);
        sw.add(ls.sram_bytes);
        sw.add(ls.perf.dram_bytes);
        sw.add(ls.dram_operand_bytes[0]);
        sw.add(ls.dram_operand_bytes[1]);
        sw.add(ls.dram_operand_bytes[2]);
        sw.add(ls.dram_operand_bytes[3]);
        sw.add(ls.dram_bw_occupancy);
        sw.add(ls.perf.dram_bound);
      }
    }
    if (!sw.write_csv(o.layer_stats_csv_path)) {
      std::cerr << "failed to write " << o.layer_stats_csv_path << "\n";
      return 1;
    }
    std::cout << "wrote " << o.layer_stats_csv_path << " ("
              << sw.row_count() << " layer rows from " << k
              << " front points)\n";
  }
  if (!o.stats_json_path.empty()) {
    StatsWriter sw({"stat", "value"});
    const auto put = [&](const std::string& name, auto v) {
      sw.begin_row();
      sw.add(name);
      sw.add(v);
    };
    const auto put_cache = [&](const std::string& name, const CacheStats& s) {
      put(name + "_cache_hits", s.hits);
      put(name + "_cache_misses", s.misses);
      put(name + "_cache_races", s.races);
    };
    put("eval_points", static_cast<i64>(results.size()));
    put("eval_secs", secs);
    put("threads", threads);
    put_cache("energy", eval.energy_cache_stats());
    put_cache("area", eval.area_cache_stats());
    put_cache("accuracy", eval.accuracy_cache_stats());
    if (eopt.backend != EvalBackend::kSim)
      put_cache("latency", eval.latency_cache_stats());
    if (eopt.backend != EvalBackend::kAnalytic)
      put_cache("sim", eval.sim_cache_stats());
    const WorkStealingPool& pool = WorkStealingPool::shared();
    put("pool_threads", pool.num_threads());
    put("pool_runs", pool.run_count());
    put("pool_steals", pool.steal_count());
    if (eval.calibrator())
      put("calibration_families", eval.calibrator()->family_count());
    if (mixed) {
      const MixedSweepStats& ms = eval.mixed_stats();
      put("mixed_total", ms.total);
      put("mixed_promoted", ms.promoted);
      put("mixed_band", ms.band);
      put("mixed_phase1_secs", ms.phase1_secs);
      put("mixed_phase2_secs", ms.phase2_secs);
      put("mixed_rounds", static_cast<i64>(ms.rounds.size()));
    }
    if (!sw.write_json(o.stats_json_path)) {
      std::cerr << "failed to write " << o.stats_json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << o.stats_json_path << "\n";
  }

  if (o.verify_serial) {
    EvaluatorOptions sopt = eopt;
    sopt.threads = 1;
    sopt.sim.threads = 1;  // fully serial: no layer-level parallelism either
    Evaluator serial(sopt);
    // Identical calibration inputs: preload the saved factors when a CSV
    // path is in play; otherwise the serial run refits the same (pure)
    // anchor values.
    if (serial.calibrator() && !o.calibration_csv_path.empty())
      serial.calibrator()->load_unit_factors_csv(o.calibration_csv_path);
    const std::vector<EvalResult> sres = serial.evaluate_space(space);
    const std::vector<EvalResult> sbasis =
        mixed ? promoted_subset(sres) : sres;
    const std::string a =
        results_csv(pareto_front_by_workload(sbasis, objectives), scored_by)
            .to_string();
    const std::string b = results_csv(front, scored_by).to_string();
    if (a != b) {
      std::cerr << "FAIL: serial and parallel Pareto fronts differ\n";
      return 1;
    }
    std::cout << "verify-serial: fronts byte-identical ("
              << results_csv(front).row_count() << " rows)\n";
  }
  return 0;
}
