// apsq_dse — multi-threaded design-space exploration with a Pareto
// frontier over energy × area × accuracy × latency.
//
// Sweeps dataflow × PSUM handling × PE geometry × buffer sizing across the
// paper's four workloads, scores every point with either the analytical
// models (fast) or the cycle-level simulator (high fidelity, scaled
// workloads), and extracts the Pareto front over a selectable objective
// subset. The orchestration itself lives in the library (dse/sweep.hpp);
// this binary is flag parsing, SweepConfig construction, and report
// printing:
//
//   apsq_dse                                  # paper_default space, all cores
//   apsq_dse --threads 4 --csv points.csv --front-csv front.csv
//   apsq_dse --space smoke --threads 1
//   apsq_dse --backend sim --shrink 32        # simulator-in-the-loop scoring
//   apsq_dse --backend sim --calibrate        # ... in analytic absolute units
//   apsq_dse --backend mixed --promote-band 0.05  # analytic prefilter, then
//                                             # calibrated sim on the ε-band
//   apsq_dse --objectives energy,latency      # 2-objective front
//   apsq_dse --space fine --mode search --budget 4096 --search-seed 7
//                                             # budgeted search over the
//                                             # 61M-point fine space
//   apsq_dse --store-out space.json           # snapshot the evaluated space
//   apsq_dse --store-in space.json --objectives energy,latency
//                                             # re-slice it: 0 fresh evals
//   apsq_dse --jobs spec.json                 # many experiments, one process,
//                                             # one shared store
//   apsq_dse --layer-stats-csv layers.csv     # per-layer telemetry of the
//                                             # top front rows
//   apsq_dse --stats --stats-json stats.json  # cache/pool/phase counters
//   apsq_dse --verify-serial                  # assert parallel == serial
//
// Run with --help for the full flag list.
#include <algorithm>
#include <iostream>
#include <limits>
#include <string>

#include "common/cli.hpp"
#include "common/stats_writer.hpp"
#include "common/thread_pool.hpp"
#include "dse/evaluator.hpp"
#include "dse/jobspec.hpp"
#include "dse/report.hpp"
#include "dse/store.hpp"
#include "dse/sweep.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

struct Options {
  /// The sweep + report shape — the same validated object a --jobs
  /// experiment or a daemon request deserializes into.
  RequestSpec req;
  std::string jobs_path;
  std::string layer_stats_csv_path;
  int dump_stats_top = 5;
  bool dump_stats_top_set = false;
  bool stats = false;
  std::string stats_json_path;
  bool verify_serial = false;
  bool help = false;
  /// Any flag other than --jobs / --help seen — --jobs runs the spec's
  /// experiments, so combining it with single-sweep flags is an error,
  /// not a silent ignore.
  bool non_jobs_flag = false;
};

void print_help() {
  std::cout <<
      "apsq_dse — design-space exploration with Pareto frontier\n\n"
      "  --space NAME      paper | smoke | fine (default paper;\n"
      "                    1248 / 8 / 61641216 points)\n"
      "  --mode NAME       sweep | search (default sweep). sweep scores\n"
      "                    every point of the space; search runs a budgeted\n"
      "                    search (needs --budget; see --strategy) and is\n"
      "                    mandatory for spaces beyond the exhaustive limit\n"
      "  --strategy NAME   search mode: halving | evolve (default: halving\n"
      "                    for --backend mixed, evolve otherwise). halving\n"
      "                    runs the analytic prefilter + calibrated-sim\n"
      "                    promotion ladder under the budget; evolve runs a\n"
      "                    seeded evolutionary neighborhood search at the\n"
      "                    backend's own fidelity\n"
      "  --budget N        search mode: cap on high-fidelity (halving) /\n"
      "                    total (evolve) point evaluations (N >= 1)\n"
      "  --search-seed S   search mode: sampling/injection RNG seed — the\n"
      "                    front is a pure function of (seed, budget,\n"
      "                    space, scoring), independent of --threads\n"
      "                    (default 1)\n"
      "  --backend NAME    analytic | sim | mixed (default analytic). sim\n"
      "                    drives the cycle-level simulator per point on\n"
      "                    shrunken workloads and scores measured\n"
      "                    traffic/cycles; mixed scores everything\n"
      "                    analytically first, then re-scores the analytic\n"
      "                    front plus its ε-band with the calibrated sim\n"
      "  --promote-band X  mixed backend: relative ε-dominance slack per\n"
      "                    objective selecting the promoted near-front set\n"
      "                    (default 0.05; 0 = front only; inf = everything)\n"
      "  --promote-adaptive\n"
      "                    mixed backend: replace the fixed band with the\n"
      "                    front-stability rule — promote the analytic\n"
      "                    front, then widen the band geometrically,\n"
      "                    re-simulating only newly promoted points, until\n"
      "                    the promoted front is unchanged for 2\n"
      "                    consecutive widenings\n"
      "  --promote-budget N\n"
      "                    mixed backend: promote exactly the N best\n"
      "                    points by ε-dominance margin instead of a band\n"
      "                    (N >= 1; N >= the space size promotes\n"
      "                    everything)\n"
      "  --promote-objectives LIST\n"
      "                    mixed backend: measure promotion margins in this\n"
      "                    objective subset instead of following\n"
      "                    --objectives (pin it to keep a stored mixed\n"
      "                    sweep re-sliceable under different --objectives)\n"
      "  --calibrate       sim backend: rescale measured energies/latencies\n"
      "                    into the analytic backend's absolute units via\n"
      "                    per-family anchor runs (see dse/calibrate.hpp);\n"
      "                    implied by --backend mixed\n"
      "  --calibration-csv PATH\n"
      "                    load fitted calibration unit factors from PATH if\n"
      "                    it exists (skipping the anchor runs), and save the\n"
      "                    factors there after the sweep\n"
      "  --calibrate-per-class\n"
      "                    fit calibration factors per layer class instead of\n"
      "                    one blended vector per workload (finer for\n"
      "                    workloads mixing DRAM-bound and resident layers;\n"
      "                    needs --calibrate or --backend mixed)\n"
      "  --objectives LIST comma list drawn from energy,area,error,latency,\n"
      "                    pe_utilization,dram_bw_headroom,\n"
      "                    throughput_per_area used for Pareto dominance\n"
      "                    (default: the core four energy,area,error,latency;\n"
      "                    the last three are maximized, the rest minimized)\n"
      "  --where LIST      constraint-filter the front basis before\n"
      "                    extraction: comma list of objective<=value /\n"
      "                    objective>=value terms in natural units\n"
      "                    (e.g. \"area<=2.5e6,latency<=0.01\")\n"
      "  --store-in PATH   answer the sweep from this evaluated-space\n"
      "                    snapshot (exit 1 if it holds no snapshot of this\n"
      "                    space under the current scoring identity);\n"
      "                    missing points are evaluated in one batch\n"
      "  --store-out PATH  snapshot the evaluated space to PATH afterwards\n"
      "  --jobs PATH       run the JSON job spec's experiments in one\n"
      "                    process, sharing one evaluated-space store (see\n"
      "                    dse/jobspec.hpp; not combinable with other flags)\n"
      "  --threads N       width of the process-wide worker pool (default:\n"
      "                    hardware concurrency; 1 = fully serial; an\n"
      "                    explicit APSQ_POOL_THREADS env var wins)\n"
      "  --sim-threads N   sim backend: >1 lets each point's layer loop run\n"
      "                    as a nested scope on the same shared pool (so the\n"
      "                    pool width, not N, bounds concurrency; default:\n"
      "                    follow --threads)\n"
      "  --seed S          accuracy-proxy / sim operand seed (default 0xD5E)\n"
      "  --shrink N        sim backend: divide layer dims by N (default 32)\n"
      "  --max-dim N       sim backend: clamp scaled dims to N (default 48)\n"
      "  --csv PATH        write every evaluated point as CSV\n"
      "  --front-csv PATH  write the Pareto front as CSV\n"
      "  --layer-stats-csv PATH\n"
      "                    re-score the top front rows at their own fidelity\n"
      "                    and write one per-layer telemetry row each\n"
      "                    (cycles, utilization, stall/idle split, SRAM/DRAM\n"
      "                    traffic by operand, bandwidth occupancy) to PATH\n"
      "  --dump-stats-top K\n"
      "                    front rows dumped by --layer-stats-csv\n"
      "                    (default 5; 0 = every front row)\n"
      "  --stats           print cache hit/miss/race counters, pool\n"
      "                    run/steal counts and mixed-sweep phase timings\n"
      "                    after the sweep\n"
      "  --stats-json PATH write the same counters as a JSON array of\n"
      "                    {stat, value} objects\n"
      "  --top N           front rows to print (default 20; 0 = all)\n"
      "  --verify-serial   re-run single-threaded and require the Pareto\n"
      "                    front CSV to be byte-identical (exit 1 if not)\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, Options& o) {
  constexpr i64 kDimMax = i64{1} << 30;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a != "--help" && a != "-h" && a != "--jobs") o.non_jobs_flag = true;
    if (a == "--help" || a == "-h") {
      print_help();
      o.help = true;
      return false;
    } else if (a == "--jobs") {
      const char* v = next("--jobs");
      if (!v) return false;
      o.jobs_path = v;
    } else if (a == "--space") {
      const char* v = next("--space");
      if (!v) return false;
      o.req.config.space = v;
    } else if (a == "--mode") {
      const char* v = next("--mode");
      if (!v || !parse_enum_flag("--mode", v, parse_run_mode, o.req.config.mode))
        return false;
    } else if (a == "--strategy") {
      const char* v = next("--strategy");
      if (!v || !parse_enum_flag("--strategy", v, parse_strategy,
                                 o.req.config.strategy))
        return false;
      o.req.config.strategy_set = true;
    } else if (a == "--budget") {
      const char* v = next("--budget");
      // Like --promote-budget: a budget of 0 would evaluate nothing and
      // report an empty front — reject it as out of range.
      if (!v ||
          !parse_i64_flag("--budget", v, 1, i64{1} << 40, o.req.config.budget))
        return false;
      o.req.config.budget_set = true;
    } else if (a == "--search-seed") {
      const char* v = next("--search-seed");
      if (!v || !parse_u64_flag("--search-seed", v, o.req.config.search_seed))
        return false;
      o.req.config.search_seed_set = true;
    } else if (a == "--backend") {
      const char* v = next("--backend");
      // Validate at parse time: an unrecognized backend must exit 1 with
      // the flag named, never fall back to a default sweep.
      if (!v || !parse_enum_flag("--backend", v, parse_backend, o.req.config.backend))
        return false;
    } else if (a == "--calibrate") {
      o.req.config.calibrate = true;
    } else if (a == "--calibrate-per-class") {
      o.req.config.calibrate_per_class = true;
    } else if (a == "--promote-band") {
      const char* v = next("--promote-band");
      if (!v || !parse_double_flag("--promote-band", v, 0.0,
                                   std::numeric_limits<double>::infinity(),
                                   o.req.config.promote_band))
        return false;
      o.req.config.promote_band_set = true;
    } else if (a == "--promote-adaptive") {
      o.req.config.promote_adaptive = true;
    } else if (a == "--promote-budget") {
      const char* v = next("--promote-budget");
      // 1 is the smallest meaningful budget: a budget of 0 would simulate
      // nothing and report an empty front — reject it like any other
      // out-of-range value.
      if (!v ||
          !parse_i64_flag("--promote-budget", v, 1, i64{1} << 40,
                          o.req.config.promote_budget))
        return false;
      o.req.config.promote_budget_set = true;
    } else if (a == "--promote-objectives") {
      const char* v = next("--promote-objectives");
      if (!v || !parse_enum_flag("--promote-objectives", v,
                                 ObjectiveSet::parse, o.req.config.promote_objectives))
        return false;
      o.req.config.promote_objectives_set = true;
    } else if (a == "--calibration-csv") {
      const char* v = next("--calibration-csv");
      if (!v) return false;
      o.req.config.calibration_csv = v;
    } else if (a == "--objectives") {
      const char* v = next("--objectives");
      if (!v || !parse_enum_flag("--objectives", v, ObjectiveSet::parse,
                                 o.req.config.objectives))
        return false;
    } else if (a == "--where") {
      const char* v = next("--where");
      if (!v) return false;
      // Reject a malformed filter at parse time with the flag named, like
      // every other flag value.
      try {
        parse_constraints(v);
      } catch (const std::exception& e) {
        std::cerr << "--where: " << e.what() << "\n";
        return false;
      }
      o.req.config.where = v;
    } else if (a == "--store-in") {
      const char* v = next("--store-in");
      if (!v) return false;
      o.req.config.store_in = v;
    } else if (a == "--store-out") {
      const char* v = next("--store-out");
      if (!v) return false;
      o.req.config.store_out = v;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v || !parse_int_flag("--threads", v, 1, 4096, o.req.config.threads))
        return false;
    } else if (a == "--sim-threads") {
      const char* v = next("--sim-threads");
      if (!v || !parse_int_flag("--sim-threads", v, 1, 4096, o.req.config.sim_threads))
        return false;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !parse_u64_flag("--seed", v, o.req.config.seed)) return false;
    } else if (a == "--shrink") {
      const char* v = next("--shrink");
      if (!v || !parse_i64_flag("--shrink", v, 1, kDimMax, o.req.config.shrink))
        return false;
    } else if (a == "--max-dim") {
      const char* v = next("--max-dim");
      if (!v || !parse_i64_flag("--max-dim", v, 1, kDimMax, o.req.config.max_dim))
        return false;
    } else if (a == "--csv") {
      const char* v = next("--csv");
      if (!v) return false;
      o.req.csv = v;
    } else if (a == "--front-csv") {
      const char* v = next("--front-csv");
      if (!v) return false;
      o.req.front_csv = v;
    } else if (a == "--layer-stats-csv") {
      const char* v = next("--layer-stats-csv");
      if (!v) return false;
      o.layer_stats_csv_path = v;
    } else if (a == "--dump-stats-top") {
      const char* v = next("--dump-stats-top");
      if (!v ||
          !parse_int_flag("--dump-stats-top", v, 0, 1 << 20, o.dump_stats_top))
        return false;
      o.dump_stats_top_set = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--stats-json") {
      const char* v = next("--stats-json");
      if (!v) return false;
      o.stats_json_path = v;
    } else if (a == "--top") {
      const char* v = next("--top");
      if (!v || !parse_int_flag("--top", v, 0, 1 << 20, o.req.top)) return false;
    } else if (a == "--verify-serial") {
      o.verify_serial = true;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

void print_cache_line(const char* name, const CacheStats& s, bool last) {
  std::cout << name << " " << s.hits << "/" << s.misses;
  if (s.races > 0) std::cout << "/" << s.races << "r";
  std::cout << (last ? "\n" : ", ");
}

/// CLI-only report extras — everything a sweep's report needs beyond the
/// RequestSpec's own shape (top/csv/front_csv). Shared by the
/// single-sweep path and the per-experiment loop of --jobs.
struct ReportOptions {
  RequestSpec req;
  bool stats = false;
  std::string layer_stats_csv_path;
  int dump_stats_top = 5;
  std::string stats_json_path;
};

/// Print the sweep report (summary, optional stats, front table) and
/// write the configured output files. Returns false — after a diagnostic
/// on stderr — on any write failure.
bool print_report(SweepSession& session, const SweepOutcome& out,
                  const ReportOptions& ro) {
  const SweepConfig& cfg = session.config();
  Evaluator& eval = session.evaluator();
  const std::string scored_by = cfg.scored_by_label();

  if (out.calibration_families_loaded >= 0)
    std::cout << "loaded " << out.calibration_families_loaded
              << " calibration families from " << cfg.calibration_csv << "\n";

  std::cout << "evaluated " << out.results.size() << " design points ("
            << session.space().workloads.size() << " workloads) with "
            << cfg.resolved_threads() << " threads / " << scored_by
            << " backend in " << Table::num(out.secs, 2) << " s\n"
            << "objectives: " << cfg.objectives.to_string() << "\n";
  if (!cfg.where.empty()) std::cout << "where: " << cfg.where << "\n";
  if (session.store() != nullptr)
    std::cout << "store: " << out.store_hits
              << " points answered from the evaluated-space store, "
              << out.fresh_evaluations << " fresh evaluations\n";
  if (cfg.search()) {
    // The "budgeted evaluations" phrasing is load-bearing: CI smoke steps
    // grep for it to assert the budget held.
    const SearchStats& ss = out.search;
    std::cout << "search: " << to_string(cfg.effective_strategy())
              << " strategy, budget " << cfg.budget << ", " << ss.evaluated
              << " budgeted evaluations over " << ss.explored
              << " explored points in " << Table::num(ss.secs, 2) << " s\n";
    for (size_t r = 0; r < ss.rounds.size(); ++r) {
      const SearchRoundStats& rs = ss.rounds[r];
      std::cout << "  round " << r << ": band " << Table::num(rs.band, 4)
                << ", " << rs.candidates << " candidates, +"
                << rs.evaluated_new << " evaluated, front " << rs.front_size
                << (rs.front_changed ? " (changed)" : " (stable)") << ", "
                << Table::num(rs.secs, 2) << " s\n";
    }
  }
  if (ro.stats) {
    std::cout << "cache hits/misses[/races] — ";
    print_cache_line("energy", eval.energy_cache_stats(), false);
    print_cache_line("area", eval.area_cache_stats(), false);
    print_cache_line("accuracy", eval.accuracy_cache_stats(), false);
    if (cfg.backend == EvalBackend::kAnalytic) {
      print_cache_line("latency", eval.latency_cache_stats(), true);
    } else if (cfg.backend == EvalBackend::kSim) {
      print_cache_line("sim", eval.sim_cache_stats(), true);
    } else {
      print_cache_line("latency", eval.latency_cache_stats(), false);
      print_cache_line("sim", eval.sim_cache_stats(), true);
    }
    const WorkStealingPool& pool = WorkStealingPool::shared();
    std::cout << "pool: " << pool.num_threads() << " threads, "
              << pool.run_count() << " runs, " << pool.steal_count()
              << " steals\n";
  }
  if (cfg.mixed() && !cfg.search() && ro.stats) {
    const MixedSweepStats& ms = eval.mixed_stats();
    const double pct = ms.total > 0 ? 100.0 * static_cast<double>(ms.promoted) /
                                          static_cast<double>(ms.total)
                                    : 0.0;
    std::cout << "mixed phases — analytic: " << ms.total << " pts in "
              << Table::num(ms.phase1_secs, 2) << " s; "
              << to_string(ms.mode) << " promotion ";
    if (ms.mode == PromoteMode::kBudget)
      std::cout << "(budget " << ms.budget << ", effective band "
                << Table::num(ms.band, 3) << ")";
    else
      std::cout << "(band " << Table::num(ms.band, 3) << ")";
    std::cout << " sent " << ms.promoted << " pts (" << Table::num(pct, 1)
              << "%) to sim+cal in " << Table::num(ms.phase2_secs, 2)
              << " s\n";
    // Adaptive sweeps: show the ladder so the stopping decision is
    // auditable — which widenings still moved the front, and what each
    // one cost in newly simulated points.
    if (ms.mode == PromoteMode::kAdaptive)
      for (size_t r = 0; r < ms.rounds.size(); ++r) {
        const MixedRoundStats& rs = ms.rounds[r];
        std::cout << "  round " << r << ": band " << Table::num(rs.band, 4)
                  << " +" << rs.promoted_new << " pts (total "
                  << rs.promoted_total << "), front " << rs.front_size
                  << (rs.front_changed ? " (changed)" : " (stable)") << ", "
                  << Table::num(rs.secs, 2) << " s\n";
      }
  }
  if (eval.calibrator())
    std::cout << "calibration: " << eval.calibrator()->family_count()
              << " (workload, dataflow, psum) families fitted\n";
  std::cout << "Pareto front: " << out.front.size()
            << " non-dominated points across workloads ("
            << out.global_front_size << " in the cross-workload front)\n\n";

  std::vector<EvalResult> shown = out.front;
  if (ro.req.top > 0 && static_cast<size_t>(ro.req.top) < shown.size())
    shown.resize(static_cast<size_t>(ro.req.top));
  front_table(shown).print(std::cout);
  if (shown.size() < out.front.size())
    std::cout << "… " << out.front.size() - shown.size()
              << " more rows (use --top 0 or --front-csv)\n";

  if (eval.calibrator() && !cfg.calibration_csv.empty())
    std::cout << "\nwrote " << cfg.calibration_csv << "\n";
  if (!cfg.store_out.empty())
    std::cout << "wrote " << cfg.store_out << "\n";
  if (!ro.req.csv.empty()) {
    if (!results_csv(out.results, scored_by).write(ro.req.csv)) {
      std::cerr << "failed to write " << ro.req.csv << "\n";
      return false;
    }
    std::cout << "\nwrote " << ro.req.csv << "\n";
  }
  if (!ro.req.front_csv.empty()) {
    if (!results_csv(out.front, scored_by).write(ro.req.front_csv)) {
      std::cerr << "failed to write " << ro.req.front_csv << "\n";
      return false;
    }
    std::cout << "wrote " << ro.req.front_csv << "\n";
  }
  if (!ro.layer_stats_csv_path.empty()) {
    const size_t k = ro.dump_stats_top == 0
                         ? out.front.size()
                         : static_cast<size_t>(ro.dump_stats_top);
    const StatsWriter sw =
        layer_stats_writer(eval, out.front, k, scored_by);
    if (!sw.write_csv(ro.layer_stats_csv_path)) {
      std::cerr << "failed to write " << ro.layer_stats_csv_path << "\n";
      return false;
    }
    std::cout << "wrote " << ro.layer_stats_csv_path << " (" << sw.row_count()
              << " layer rows from " << std::min(out.front.size(), k)
              << " front points)\n";
  }
  if (!ro.stats_json_path.empty()) {
    if (!session.stats_writer(out).write_json(ro.stats_json_path)) {
      std::cerr << "failed to write " << ro.stats_json_path << "\n";
      return false;
    }
    std::cout << "wrote " << ro.stats_json_path << "\n";
  }
  return true;
}

int run_single(const Options& o) {
  // Cross-field consistency: the library rules (shared with the job-spec
  // path), plus the one CLI-only pairing — --dump-stats-top shapes
  // --layer-stats-csv output that would otherwise not be written.
  if (!o.req.config.validate() ||
      !flag_requires(o.dump_stats_top_set, "--dump-stats-top",
                     !o.layer_stats_csv_path.empty(), "--layer-stats-csv"))
    return 1;
  try {
    SweepSession session(o.req.config);
    const SweepOutcome out = session.run();
    ReportOptions ro;
    ro.req = o.req;
    ro.stats = o.stats;
    ro.layer_stats_csv_path = o.layer_stats_csv_path;
    ro.dump_stats_top = o.dump_stats_top;
    ro.stats_json_path = o.stats_json_path;
    if (!print_report(session, out, ro)) return 1;
    if (o.verify_serial) {
      if (!session.verify_serial(out)) return 1;
      std::cout << "verify-serial: fronts byte-identical ("
                << out.front.size() << " rows)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}

int run_jobs(const Options& o) {
  try {
    const JobSpec spec = JobSpec::parse_file(o.jobs_path);
    EvalStore store;
    if (!spec.store_in.empty()) {
      store.load_file(spec.store_in);
      std::cout << "loaded store: " << store.entry_count() << " entries ("
                << store.result_count() << " results) from " << spec.store_in
                << "\n";
    }
    std::cout << "running " << spec.experiments.size() << " experiments from "
              << o.jobs_path << "\n";
    for (const JobExperiment& e : spec.experiments) {
      std::cout << "\n--- experiment " << e.name << " ---\n";
      if (!e.config.validate()) {
        std::cerr << "(in experiment " << e.name << " of " << o.jobs_path
                  << ")\n";
        return 1;
      }
      // Every experiment answers from — and records into — the one shared
      // store, so a batch of re-slices over the same space pays for the
      // evaluation exactly once.
      SweepSession session(e.config, &store);
      const SweepOutcome out = session.run();
      ReportOptions ro;
      ro.req = e;
      ro.stats = o.stats;
      if (!print_report(session, out, ro)) return 1;
    }
    if (!spec.store_out.empty()) {
      if (!store.save_file(spec.store_out)) {
        std::cerr << "failed to write " << spec.store_out << "\n";
        return 1;
      }
      std::cout << "\nwrote " << spec.store_out << " (" << store.entry_count()
                << " entries, " << store.result_count() << " results)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return o.help ? 0 : 1;
  if (!o.jobs_path.empty()) {
    if (o.non_jobs_flag) {
      std::cerr << "--jobs: cannot be combined with other flags (the spec "
                   "describes each experiment)\n";
      return 1;
    }
    return run_jobs(o);
  }
  return run_single(o);
}
