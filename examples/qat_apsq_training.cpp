// End-to-end QAT walk-through: train an FP32 teacher, distill a W8A8
// baseline student and an APSQ student, inspect the learned quantizer
// state, and verify the trained APSQ student's forward pass matches the
// bit-accurate accelerator simulator layer by layer.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "nn/quant_dense.hpp"
#include "nn/trainer.hpp"
#include "quant/uniform.hpp"
#include "sim/accelerator.hpp"
#include "tasks/students.hpp"
#include "tasks/synthetic.hpp"
#include "tensor/ops.hpp"

using namespace apsq;
using namespace apsq::nn;

int main() {
  std::cout << "== QAT + APSQ training walk-through ==\n\n";

  tasks::SyntheticSpec spec;
  spec.name = "demo";
  spec.feature_dim = 64;
  spec.num_classes = 4;
  spec.train_samples = 2048;
  spec.test_samples = 512;
  spec.label_noise = 0.05;
  spec.seed = 17;
  const Dataset ds = tasks::make_synthetic_dataset(spec);

  const tasks::StudentArch arch{64, 128, 2, 4};
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 2e-3f;

  // FP32 teacher.
  Rng trng(1);
  auto teacher = tasks::make_mlp(arch, std::nullopt, trng);
  const double teacher_acc = train_model(*teacher, ds, cfg).test_metric_pct;
  std::cout << "FP32 teacher accuracy:        " << Table::num(teacher_acc, 2)
            << "%\n";

  // W8A8 baseline student (full-precision PSUMs), distilled.
  Rng srng(2);
  auto baseline = tasks::make_mlp(arch, QatConfig::baseline_w8a8(), srng);
  const double base_acc =
      train_model(*baseline, ds, cfg, teacher.get()).test_metric_pct;
  std::cout << "W8A8 baseline student:        " << Table::num(base_acc, 2)
            << "%\n";

  // APSQ student: INT8 PSUMs, gs = 2.
  Rng arng(2);
  auto apsq_net = tasks::make_mlp(arch, QatConfig::apsq_w8a8(2, 8), arng);
  const double apsq_acc =
      train_model(*apsq_net, ds, cfg, teacher.get()).test_metric_pct;
  std::cout << "APSQ student (INT8, gs=2):    " << Table::num(apsq_acc, 2)
            << "%\n\n";

  // Inspect learned quantizer state of the first APSQ layer.
  auto& first = dynamic_cast<QuantDense&>(apsq_net->layer(0));
  std::cout << "First layer quantizers: alpha_act = "
            << Table::num(first.alpha_act(), 5)
            << ", alpha_weight = " << Table::num(first.alpha_weight(), 5)
            << ", PSUM shift exponent = " << first.psum_exponent() << "\n\n";

  // Hardware cross-check: run the first layer's GEMM through the
  // bit-accurate accelerator with the SAME codes, scales and gs.
  first.set_training(false);
  apsq_net->set_training(false);

  TensorF x8({8, 64});
  for (index_t i = 0; i < x8.numel(); ++i) x8[i] = ds.test_x[i];

  const TensorI8 xcodes =
      quantize_codes(x8, first.alpha_act(), QuantSpec::int8()).cast<i8>();
  const TensorI8 wcodes =
      quantize_codes(first.weight().value, first.alpha_weight(),
                     QuantSpec::int8())
          .cast<i8>();

  SimConfig sim;
  sim.arch.pci = 8;  // match the layer's tile_ci
  sim.dataflow = Dataflow::kWS;
  sim.psum = PsumConfig::apsq_int8(2);
  sim.psum_exponents = {first.psum_exponent()};
  Accelerator accel(sim);
  const SimResult r = accel.run_gemm(xcodes, wcodes);

  // Layer forward (without bias) in real units vs simulator in product
  // scale.
  TensorF bias_backup = first.bias().value;
  first.bias().value.fill(0.0f);
  const TensorF y = first.forward(x8);
  first.bias().value = bias_backup;

  const double prod = static_cast<double>(first.alpha_act()) *
                      static_cast<double>(first.alpha_weight());
  double max_rel = 0.0;
  for (index_t i = 0; i < y.numel(); ++i) {
    const double y_int = static_cast<double>(y[i]) / prod;
    max_rel = std::max(
        max_rel, std::fabs(y_int - static_cast<double>(r.ofmap[i])));
  }
  std::cout << "Max |QAT forward - accelerator| in code units: "
            << Table::num(max_rel, 6)
            << (max_rel < 0.5 ? "  (codes agree -> deployable as-is)" : "")
            << "\n";
  return 0;
}
