// apsq_explore — command-line energy/performance explorer.
//
// Evaluate any bundled workload under any dataflow / PSUM configuration /
// buffer sizing, with optional CSV output for plotting:
//
//   apsq_explore --model bert --dataflow ws --gs 2
//   apsq_explore --model segformer --dataflow ws --psum-bits 32 --no-apsq
//   apsq_explore --model llama2 --seq 4096 --sweep-gs --csv out.csv
//
// Run with --help for the full flag list.
#include <cstring>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"
#include "sim/performance.hpp"

using namespace apsq;

namespace {

struct Options {
  std::string model = "bert";
  std::string dataflow = "ws";
  int psum_bits = 8;
  bool apsq = true;
  index_t gs = 1;
  index_t seq = 4096;
  i64 ofmap_kb = 0;  // 0 = default
  bool sweep_gs = false;
  std::string csv_path;
};

void print_help() {
  std::cout <<
      "apsq_explore — energy/performance explorer\n\n"
      "  --model NAME      bert | segformer | efficientvit | llama2 (default bert)\n"
      "  --dataflow D      is | ws | os (default ws)\n"
      "  --psum-bits N     stored PSUM precision (default 8)\n"
      "  --no-apsq         INT-N storage without APSQ (baseline-style)\n"
      "  --gs N            APSQ group size 1..4 (default 1)\n"
      "  --seq N           token length for bert/llama2 (default 4096 for llama2,\n"
      "                    128 for bert)\n"
      "  --ofmap-kb N      override the ofmap buffer capacity\n"
      "  --sweep-gs        evaluate gs = 1..4 plus the INT32 baseline\n"
      "  --csv PATH        also write the rows as CSV\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      print_help();
      return false;
    } else if (a == "--model") {
      const char* v = next("--model");
      if (!v) return false;
      o.model = v;
    } else if (a == "--dataflow") {
      const char* v = next("--dataflow");
      if (!v) return false;
      o.dataflow = v;
    } else if (a == "--psum-bits") {
      const char* v = next("--psum-bits");
      if (!v || !parse_int_flag("--psum-bits", v, 1, 64, o.psum_bits))
        return false;
    } else if (a == "--no-apsq") {
      o.apsq = false;
    } else if (a == "--gs") {
      const char* v = next("--gs");
      if (!v || !parse_i64_flag("--gs", v, 1, 1024, o.gs)) return false;
    } else if (a == "--seq") {
      const char* v = next("--seq");
      if (!v || !parse_i64_flag("--seq", v, 1, 1 << 24, o.seq)) return false;
    } else if (a == "--ofmap-kb") {
      const char* v = next("--ofmap-kb");
      if (!v || !parse_i64_flag("--ofmap-kb", v, 0, 1 << 24, o.ofmap_kb))
        return false;
    } else if (a == "--sweep-gs") {
      o.sweep_gs = true;
    } else if (a == "--csv") {
      const char* v = next("--csv");
      if (!v) return false;
      o.csv_path = v;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return 1;

  Workload w;
  AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  if (o.model == "bert") {
    w = bert_base_workload(o.seq == 4096 ? 128 : o.seq);
  } else if (o.model == "segformer") {
    w = segformer_b0_workload();
  } else if (o.model == "efficientvit") {
    w = efficientvit_b1_workload();
  } else if (o.model == "llama2") {
    w = llama2_7b_workload(o.seq);
    arch = AcceleratorConfig::llm_default();
  } else {
    std::cerr << "unknown model: " << o.model << " (try --help)\n";
    return 1;
  }
  if (o.ofmap_kb > 0) arch.ofmap_buf_bytes = o.ofmap_kb * 1024;

  Dataflow df;
  if (o.dataflow == "is") df = Dataflow::kIS;
  else if (o.dataflow == "ws") df = Dataflow::kWS;
  else if (o.dataflow == "os") df = Dataflow::kOS;
  else {
    std::cerr << "unknown dataflow: " << o.dataflow << "\n";
    return 1;
  }

  std::vector<PsumConfig> configs;
  std::vector<std::string> labels;
  if (o.sweep_gs) {
    configs.push_back(PsumConfig::baseline_int32());
    labels.push_back("INT32 baseline");
    for (index_t g = 1; g <= 4; ++g) {
      configs.push_back(PsumConfig::apsq_bits(o.psum_bits, g));
      labels.push_back("APSQ INT" + std::to_string(o.psum_bits) + " gs=" +
                       std::to_string(g));
    }
  } else {
    configs.push_back(PsumConfig{o.psum_bits, o.apsq, o.gs});
    labels.push_back((o.apsq ? "APSQ INT" : "INT") +
                     std::to_string(o.psum_bits) +
                     (o.apsq ? " gs=" + std::to_string(o.gs) : ""));
    configs.push_back(PsumConfig::baseline_int32());
    labels.push_back("INT32 baseline");
  }

  std::cout << w.name << " | " << to_string(df) << " dataflow | ofmap buffer "
            << arch.ofmap_buf_bytes / 1024 << " KB | "
            << w.total_macs() / 1e9 << " GMACs\n\n";

  Table t({"Config", "Energy (uJ)", "Normalized", "PSUM share", "Latency (ms)",
           "Effective GMAC/s"});
  CsvWriter csv({"config", "energy_uj", "normalized", "psum_share",
                 "latency_ms", "gmacs"});
  const double base =
      workload_energy(df, w, arch, PsumConfig::baseline_int32()).total_pj();
  for (size_t i = 0; i < configs.size(); ++i) {
    const EnergyBreakdown e = workload_energy(df, w, arch, configs[i]);
    const WorkloadPerformance p = workload_performance(df, w, arch, configs[i]);
    const std::vector<std::string> cells{
        labels[i],
        Table::num(e.total_pj() / 1e6, 1),
        Table::num(e.total_pj() / base, 3),
        Table::pct(e.psum_fraction()),
        Table::num(p.total_latency_s * 1e3, 2),
        Table::num(p.effective_gmacs(), 1)};
    t.add_row(cells);
    csv.add_row(cells);
  }
  t.print(std::cout);

  if (!o.csv_path.empty()) {
    if (csv.write(o.csv_path))
      std::cout << "\nwrote " << o.csv_path << "\n";
    else
      std::cerr << "\nfailed to write " << o.csv_path << "\n";
  }
  return 0;
}
