// RAE walk-through: follows §III-C's gs = 4 narrative cycle by cycle and
// shows the engine's bank usage, s2 toggling and datapath op counts, then
// cross-checks the result against Algorithm 1's integer reference.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "quant/apsq_int.hpp"
#include "rae/config_table.hpp"
#include "rae/rae_engine.hpp"

using namespace apsq;

int main() {
  std::cout << "== Reconfigurable APSQ Engine (RAE) demo ==\n\n";

  // Static configuration table (Fig. 2).
  std::cout << "Config table (gs -> s0, s1):\n";
  Table ct({"gs", "s0", "s1", "fold banks"});
  for (index_t gs = 1; gs <= kRaeMaxGroupSize; ++gs) {
    const RaeStaticConfig c = rae_config_for_group_size(gs);
    ct.add_row({std::to_string(gs),
                std::string(c.s0 & 2 ? "1" : "0") + (c.s0 & 1 ? "1" : "0"),
                c.s1_dont_care ? "x" : std::to_string(int(c.s1)),
                std::to_string(c.fold_banks())});
  }
  ct.print(std::cout);

  // Stream 10 PSUM tiles through a gs = 4 engine, narrating each step.
  const index_t np = 10;
  RaeEngine::Options opt;
  opt.group_size = 4;
  opt.num_tiles = np;
  opt.exponents = {4};
  RaeEngine engine({2}, opt);

  GroupedApsqInt::Options ropt;
  ropt.group_size = 4;
  ropt.num_tiles = np;
  ropt.exponents = {4};
  GroupedApsqInt reference({2}, ropt);

  Rng rng(11);
  std::cout << "\nStreaming " << np << " PSUM tiles (gs = 4):\n";
  Table tt({"i", "s2", "operation", "banks valid after"});
  for (index_t i = 0; i < np; ++i) {
    TensorI32 tile({2});
    for (index_t e = 0; e < 2; ++e)
      tile[e] = static_cast<i32>(static_cast<i64>(rng.next_u64() % 1601) - 800);
    const bool fold = engine.s2_for(i);
    engine.push(tile);
    reference.push(tile);

    std::string banks;
    for (index_t b = 0; b < PsumBanks::kNumBanks; ++b)
      banks += engine.banks().valid(b) ? ('0' + static_cast<char>(b)) : '-';
    tt.add_row({std::to_string(i), fold ? "1" : "0",
                fold ? "APSQ fold (dequant banks + adder tree + quant)"
                     : "plain PSUM quantization -> next free bank",
                banks});
  }
  tt.print(std::cout);

  const TensorI64 out = engine.output();
  const TensorI64 ref = reference.output();
  std::cout << "\nRAE output (product scale): [" << out(0) << ", " << out(1)
            << "]; Algorithm-1 reference: [" << ref(0) << ", " << ref(1)
            << "] => " << (out(0) == ref(0) && out(1) == ref(1) ? "MATCH"
                                                                : "MISMATCH")
            << "\n";

  std::cout << "\nDatapath op counts: " << engine.quant_ops()
            << " quant shifts, " << engine.dequant_ops() << " dequant shifts, "
            << engine.adder_ops() << " pipeline adds; bank traffic "
            << engine.banks().tile_reads() << " reads / "
            << engine.banks().tile_writes() << " writes.\n";
  return 0;
}
