// Per-layer energy exploration of BERT-Base under IS / WS / OS dataflows.
//
// Shows where the PSUM energy lives inside a transformer encoder — QKV
// projection vs attention matmuls vs FFN — and how APSQ reshapes the
// distribution. This is the workload the paper's Fig. 1 aggregates.
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"

using namespace apsq;

int main() {
  const Workload bert = bert_base_workload(128);
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();

  std::cout << "== BERT-Base (128 tokens) per-layer energy ==\n"
            << "MACs total: " << bert.total_macs() / 1e9 << " G\n\n";

  for (Dataflow df : {Dataflow::kIS, Dataflow::kWS}) {
    std::cout << "--- " << to_string(df) << " dataflow ---\n";
    Table t({"Layer (x repeat)", "MACs (M)", "INT32 psum uJ", "psum share",
             "APSQ gs=2 uJ", "layer saving"});
    for (const auto& layer : bert.layers) {
      const EnergyBreakdown base =
          layer_energy(df, layer, arch, PsumConfig::baseline_int32());
      const EnergyBreakdown apsq =
          layer_energy(df, layer, arch, PsumConfig::apsq_int8(2));
      const double rep = static_cast<double>(layer.repeat);
      t.add_row({layer.name + " (x" + std::to_string(layer.repeat) + ")",
                 Table::num(static_cast<double>(layer.macs()) * rep / 1e6, 0),
                 Table::num(base.total_pj() * rep / 1e6, 1),
                 Table::pct(base.psum_fraction()),
                 Table::num(apsq.total_pj() * rep / 1e6, 1),
                 Table::pct(1.0 - apsq.total_pj() / base.total_pj())});
    }
    const double b =
        workload_energy(df, bert, arch, PsumConfig::baseline_int32()).total_pj();
    const double a =
        workload_energy(df, bert, arch, PsumConfig::apsq_int8(2)).total_pj();
    t.add_separator();
    t.add_row({"TOTAL", Table::num(bert.total_macs() / 1e6, 0),
               Table::num(b / 1e6, 1), "-", Table::num(a / 1e6, 1),
               Table::pct(1.0 - a / b)});
    t.print(std::cout);
    std::cout << '\n';
  }

  // Token-length sweep: how sequence length moves the WS PSUM footprint.
  std::cout << "--- WS normalized energy vs token length (APSQ INT8) ---\n";
  Table ts({"Tokens", "gs=1", "gs=2", "gs=3", "gs=4"});
  for (index_t tokens : {128, 2048, 8192, 16384, 32768}) {
    const Workload w = bert_base_workload(tokens);
    std::vector<std::string> row{std::to_string(tokens)};
    for (index_t gs = 1; gs <= 4; ++gs)
      row.push_back(Table::num(
          normalized_energy(Dataflow::kWS, w, arch, PsumConfig::apsq_int8(gs)),
          3));
    ts.add_row(row);
  }
  ts.print(std::cout);
  std::cout << "\nLonger sequences push the gs-scaled PSUM working set past "
               "the 256 KB ofmap buffer, reproducing the Fig. 6b crossover "
               "on BERT too.\n";
  return 0;
}
