// LLM energy analysis beyond Table IV: per-token decode vs whole-sequence
// accounting on LLaMA2-7B.
//
// Table IV follows the paper's methodology (decode simulated as a
// full-sequence GEMM with Po = 1, "keeping the total number of MAC
// operations unchanged"). This example also models a literal single-token
// decode step, where per-step weight refetch from DRAM dominates and PSUM
// savings all but vanish — the regime behind the paper's remark that IS
// gains little because "the feature map is a vector, considerably smaller
// than weight" (§IV-D).
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/llama2.hpp"

using namespace apsq;

int main() {
  const AcceleratorConfig arch = AcceleratorConfig::llm_default();

  std::cout << "== LLaMA2-7B energy, " << "Po=1 Pci=32 Pco=32 ==\n\n";

  // Whole-sequence accounting (the paper's Table IV view).
  {
    const Workload seq = llama2_7b_workload(4096);
    std::cout << "--- Full 4096-token GEMM stack (Table IV methodology) ---\n";
    Table t({"PSUM config", "Energy (mJ)", "vs APSQ gs=1"});
    const double gs1 =
        workload_energy(Dataflow::kWS, seq, arch, PsumConfig::apsq_int8(1))
            .total_pj();
    for (auto [label, pc] :
         {std::pair<const char*, PsumConfig>{"INT32 baseline",
                                             PsumConfig::baseline_int32()},
          {"APSQ INT8 gs=1", PsumConfig::apsq_int8(1)},
          {"APSQ INT8 gs=4", PsumConfig::apsq_int8(4)}}) {
      const double e =
          workload_energy(Dataflow::kWS, seq, arch, pc).total_pj();
      t.add_row({label, Table::num(e / 1e9, 1), Table::ratio(e / gs1, 2)});
    }
    t.print(std::cout);
  }

  // Literal per-token decode step.
  {
    const Workload step = llama2_7b_decode_step_workload();
    std::cout << "\n--- One literal decode step (rows = 1) ---\n";
    Table t({"Dataflow", "PSUM config", "Energy (uJ)", "psum share"});
    for (Dataflow df : {Dataflow::kIS, Dataflow::kWS}) {
      for (auto [label, pc] :
           {std::pair<const char*, PsumConfig>{"INT32",
                                               PsumConfig::baseline_int32()},
            {"APSQ gs=1", PsumConfig::apsq_int8(1)}}) {
        const EnergyBreakdown e = workload_energy(df, step, arch, pc);
        t.add_row({to_string(df), label, Table::num(e.total_pj() / 1e6, 1),
                   Table::pct(e.psum_fraction())});
      }
    }
    t.print(std::cout);
    std::cout << "\nPer-step decode is dominated by streaming 6.6 GB of "
                 "weights from DRAM; PSUM precision barely moves the total "
                 "(why Table IV's IS column is ~1x).\n";
  }

  // Sequence-length sweep: where the WS spill threshold lives.
  {
    std::cout << "\n--- WS baseline/APSQ ratio vs sequence length ---\n";
    Table t({"Seq len", "Baseline vs gs=1", "gs=3 vs gs=1"});
    for (index_t s : {512, 1024, 2048, 4096, 8192}) {
      const Workload w = llama2_7b_workload(s);
      const double b =
          workload_energy(Dataflow::kWS, w, arch, PsumConfig::baseline_int32())
              .total_pj();
      const double g1 =
          workload_energy(Dataflow::kWS, w, arch, PsumConfig::apsq_int8(1))
              .total_pj();
      const double g3 =
          workload_energy(Dataflow::kWS, w, arch, PsumConfig::apsq_int8(3))
              .total_pj();
      t.add_row({std::to_string(s), Table::ratio(b / g1, 2),
                 Table::ratio(g3 / g1, 2)});
    }
    t.print(std::cout);
    std::cout << "\nThe 31.7x headline needs sequences long enough that the "
                 "INT32 PSUM working set spills (4·seq·32 B > 256 KB, i.e. "
                 "seq > 2048) while the INT8 one still fits.\n";
  }
  return 0;
}
