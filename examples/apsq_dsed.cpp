// apsq_dsed — resident DSE daemon: serve the warm evaluated-space store
// behind the versioned request API.
//
// Loads an EvalStore snapshot once, then answers front queries forever —
// each query is a RequestSpec (the same validated object a CLI
// invocation or a --jobs experiment builds), answered from the store
// when warm and by ONE coalesced evaluate_points batch when cold, with
// the front bytes identical to what a batch SweepSession would report.
//
//   apsq_dsed --store space.json                 # serve on an ephemeral port
//   apsq_dsed --port 7421 --store space.json
//   apsq_dsed --port-file port.txt &             # scripts read the port
//   printf '%s\n' '{"cmd": "ping"}' | apsq_dsed --once
//   printf '%s\n' '{"top": 3}' | apsq_dsed --once --store space.json
//
// The wire protocol (line-delimited JSON, schema_version 1) is documented
// in src/serve/protocol.hpp and examples/jobs/PROTOCOL.md.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "dse/store.hpp"
#include "serve/dispatcher.hpp"
#include "serve/server.hpp"

using namespace apsq;

namespace {

struct Options {
  std::string store_path;      ///< snapshot to preload (optional)
  std::string store_out_path;  ///< snapshot to write on clean shutdown
  int port = 0;
  std::string port_file;
  int threads = 0;  ///< 0 = leave the pool width to the first request
  bool once = false;
  bool help = false;
};

void print_help() {
  std::cout <<
      "apsq_dsed — resident DSE daemon over the evaluated-space store\n\n"
      "  --store PATH      preload this evaluated-space snapshot (queries\n"
      "                    it covers are answered with 0 fresh evaluations)\n"
      "  --store-out PATH  snapshot the (possibly grown) store to PATH on\n"
      "                    clean shutdown (write-to-temp + rename)\n"
      "  --port N          TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --port-file PATH  write the bound port here once listening\n"
      "  --once            serve stdin → stdout instead of TCP and exit\n"
      "                    when the stream ends (exit 1 if any request\n"
      "                    failed) — the protocol is identical\n"
      "  --threads N       width of the shared worker pool (default: let\n"
      "                    the first cold request decide; an explicit\n"
      "                    APSQ_POOL_THREADS env var wins)\n"
      "  --help            this text\n\n"
      "Protocol: one JSON object per line in, one per line out.\n"
      "  {\"schema_version\": 1, \"cmd\": \"query\", ...RequestSpec...}\n"
      "  cmd = query (default) | ping | stats | shutdown\n"
      "See examples/jobs/PROTOCOL.md for the full request/response schema.\n";
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      print_help();
      o.help = true;
      return false;
    } else if (a == "--store") {
      const char* v = next("--store");
      if (!v) return false;
      o.store_path = v;
    } else if (a == "--store-out") {
      const char* v = next("--store-out");
      if (!v) return false;
      o.store_out_path = v;
    } else if (a == "--port") {
      const char* v = next("--port");
      if (!v || !parse_int_flag("--port", v, 0, 65535, o.port)) return false;
    } else if (a == "--port-file") {
      const char* v = next("--port-file");
      if (!v) return false;
      o.port_file = v;
    } else if (a == "--once") {
      o.once = true;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v || !parse_int_flag("--threads", v, 1, 4096, o.threads))
        return false;
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return o.help ? 0 : 1;

  // Pin the shared pool's width before any request can (overwrite=0: an
  // explicit env var from the operator still wins).
  if (o.threads > 0)
    setenv("APSQ_POOL_THREADS", std::to_string(o.threads).c_str(),
           /*overwrite=*/0);

  dse::EvalStore store;
  if (!o.store_path.empty()) {
    try {
      const size_t n = store.load_file(o.store_path);
      std::cerr << "apsq_dsed: loaded " << n << " snapshot entr"
                << (n == 1 ? "y" : "ies") << " (" << store.result_count()
                << " scored points) from " << o.store_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "apsq_dsed: " << e.what() << "\n";
      return 1;
    }
  }

  serve::Dispatcher dispatcher(store);
  int rc;
  if (o.once) {
    rc = serve::serve_stream(dispatcher, std::cin, std::cout) > 0 ? 1 : 0;
  } else {
    serve::ServeOptions sopts;
    sopts.port = o.port;
    sopts.port_file = o.port_file;
    sopts.log = &std::cerr;
    rc = serve::serve_tcp(dispatcher, sopts);
  }
  if (rc == 0 && !o.store_out_path.empty()) {
    if (!store.save_file(o.store_out_path)) {
      std::cerr << "apsq_dsed: failed to write " << o.store_out_path << "\n";
      return 1;
    }
    std::cerr << "apsq_dsed: saved " << store.entry_count()
              << " snapshot entr" << (store.entry_count() == 1 ? "y" : "ies")
              << " to " << o.store_out_path << "\n";
  }
  return rc;
}
