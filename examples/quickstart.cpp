// Quickstart: the APSQ library in five minutes.
//
//  1. quantize a stream of PSUM tiles with Algorithm 1 (grouping strategy),
//  2. compare the accumulation error of Exact / PSQ / APSQ at several gs,
//  3. evaluate the energy impact with the analytical model,
//  4. run the same GEMM bit-accurately through the accelerator simulator.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "quant/apsq.hpp"
#include "quant/grouping.hpp"
#include "sim/accelerator.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

using namespace apsq;

int main() {
  std::cout << "== APSQ quickstart ==\n\n";

  // --- 1. Stream PSUM tiles through the grouping strategy ----------------
  // A GEMM accumulates np = Ci/Pci PSUM tiles per output tile (Eq. 8).
  // APSQ stores every partial sum as INT8, folding the running history
  // into each group leader's quantization (Eq. 10 / Algorithm 1).
  Rng rng(7);
  const index_t np = 24;
  std::vector<TensorF> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorF tile({4, 4});
    for (index_t i = 0; i < tile.numel(); ++i)
      tile[i] = static_cast<float>(std::round(rng.normal(0.0, 60.0)));
    tiles.push_back(std::move(tile));
  }

  const TensorF exact =
      accumulate_psums(tiles, PsumMode::kExact, QuantSpec::int8(), {1.0});

  std::cout << "PSUM accumulation error vs exact (np = " << np
            << " tiles, INT8 PSUM, alpha = 8):\n";
  Table t({"Mode", "mean |error|"});
  auto mean_err = [&](const TensorF& y) {
    double e = 0.0;
    for (index_t i = 0; i < y.numel(); ++i) e += std::fabs(y[i] - exact[i]);
    return e / static_cast<double>(y.numel());
  };
  const TensorF psq =
      accumulate_psums(tiles, PsumMode::kPsq, QuantSpec::int8(), {8.0});
  t.add_row({"PSQ (prior work)", Table::num(mean_err(psq), 3)});
  for (index_t gs : {1, 2, 4}) {
    const TensorF y =
        accumulate_psums(tiles, PsumMode::kApsq, QuantSpec::int8(), {8.0}, gs);
    t.add_row({"APSQ gs=" + std::to_string(gs), Table::num(mean_err(y), 3)});
  }
  t.print(std::cout);

  // --- 2. Energy: what INT8 PSUMs buy on a real layer --------------------
  const LayerShape ffn{"bert_ffn_in", 128, 768, 3072, 1};
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  const double base =
      layer_energy(Dataflow::kWS, ffn, arch, PsumConfig::baseline_int32())
          .total_pj();
  const double apsq8 =
      layer_energy(Dataflow::kWS, ffn, arch, PsumConfig::apsq_int8(2))
          .total_pj();
  std::cout << "\nBERT FFN layer, WS dataflow: INT32-PSUM baseline "
            << Table::num(base / 1e6, 1) << " uJ -> APSQ INT8 "
            << Table::num(apsq8 / 1e6, 1) << " uJ ("
            << Table::pct(1.0 - apsq8 / base) << " saved)\n";

  // --- 3. Bit-accurate accelerator run ------------------------------------
  TensorI8 x({16, 32}), w({32, 8});
  for (index_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  for (index_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);

  // PSUM scale: outputs can reach 32·127·127 ≈ 5.2e5, so the INT8 grid
  // needs 2^e ≥ 5.2e5/127 → e = 12.
  const int exp = 12;
  SimConfig sim;
  sim.dataflow = Dataflow::kWS;
  sim.psum = PsumConfig::apsq_int8(2);
  sim.psum_exponents = {exp};
  Accelerator acc(sim);
  const SimResult r = acc.run_gemm(x, w);

  std::cout << "\nSimulated 16x32x8 GEMM with the RAE (gs=2): "
            << r.stats.cycles << " PE cycles, " << r.stats.mac_ops
            << " MACs, " << r.stats.sram.total_bytes() << " SRAM bytes, "
            << r.stats.dram.total_bytes() << " DRAM bytes, "
            << Table::num(r.stats.energy_pj() / 1e3, 1) << " nJ\n";

  const TensorI32 ref = matmul_i8(x, w);
  double dev = 0.0;
  for (index_t i = 0; i < ref.numel(); ++i)
    dev = std::max(dev, std::fabs(static_cast<double>(r.ofmap[i] - ref[i])));
  const double bound = 4.0 * std::exp2(exp) / 2.0;  // np folds x half a step
  std::cout << "Max |APSQ - exact| on outputs: " << dev << " (<= " << bound
            << ", np = 4 folds x half a PSUM step)\n";

  std::cout << "\nNext: run the per-figure benches in build/bench/ and the "
               "other examples in build/examples/.\n";
  return 0;
}
