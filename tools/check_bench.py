#!/usr/bin/env python3
"""Benchmark-regression gate for the bench-regression CI job.

Compares a freshly produced google-benchmark-style JSON (what the plain
benches emit via --benchmark_out, and what bench_micro_kernels emits
natively) against a committed baseline and fails on wall-time regressions
beyond a relative tolerance:

    tools/check_bench.py bench/baselines/BENCH_dse.json BENCH_dse.json
    tools/check_bench.py --tolerance 0.25 baseline.json candidate.json
    tools/check_bench.py --update baseline.json candidate.json   # refresh

Rules:
  * a benchmark present in the baseline but missing from the candidate
    fails (a timed section silently disappeared);
  * a candidate slower than baseline * (1 + tolerance) fails, unless the
    baseline time is under --min-ms (single-run times that short are
    noise on shared CI runners — reported, never gated);
  * benchmarks only in the candidate are reported as new and pass —
    refresh the baseline (--update) to start gating them;
  * speedups never fail, but large ones are flagged so the baseline gets
    refreshed and keeps the gate tight.

Exit code 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import shutil
import sys

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_times(path):
    """(name -> real_time in ms, num_cpus). Aggregate entries (e.g. gbench
    repetition rows like "foo/repeats:3_mean") are skipped: only run_type
    "iteration" rows (or rows without run_type) are gated."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    num_cpus = doc.get("context", {}).get("num_cpus")
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        if name is None or "real_time" not in b:
            sys.exit(f"error: malformed benchmark entry in {path}: {b}")
        unit = b.get("time_unit", "ns")
        if unit not in TIME_UNIT_TO_MS:
            sys.exit(f"error: unknown time_unit '{unit}' in {path}")
        times[name] = float(b["real_time"]) * TIME_UNIT_TO_MS[unit]
    if not times:
        sys.exit(f"error: no benchmarks found in {path}")
    return times, num_cpus


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("candidate", help="freshly produced JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative slowdown that fails (default 0.25)")
    ap.add_argument("--min-ms", type=float, default=20.0,
                    help="baseline times under this are never gated "
                         "(single-run noise floor; default 20)")
    ap.add_argument("--update", action="store_true",
                    help="copy candidate over baseline and exit 0")
    ap.add_argument("--allow-cpu-mismatch", action="store_true",
                    help="downgrade a num_cpus mismatch between baseline "
                         "and candidate from an error to a warning")
    args = ap.parse_args()

    base, base_cpus = load_times(args.baseline)
    cand, cand_cpus = load_times(args.candidate)
    if base_cpus is not None and cand_cpus is not None and base_cpus != cand_cpus:
        # A baseline recorded on different hardware still catches gross
        # regressions on the serial sections but is miscalibrated for the
        # parallel ones — the tolerance only means what it says once the
        # baseline comes from the same runner class. This used to be a
        # warning, which let a miscalibrated gate pass silently for whole
        # PR sequences; now it fails unless the caller either refreshes
        # the baseline (--update, which is the fix) or explicitly accepts
        # the mismatch (--allow-cpu-mismatch).
        msg = (f"baseline recorded with num_cpus={base_cpus}, candidate "
               f"with num_cpus={cand_cpus}; refresh the baseline with "
               f"--update from this runner class to calibrate the gate")
        if args.update or args.allow_cpu_mismatch:
            print(f"warning: {msg}", file=sys.stderr)
        else:
            print(f"error: {msg} (or pass --allow-cpu-mismatch to gate "
                  f"anyway)", file=sys.stderr)
            return 1

    failures = []
    rows = []
    for name in sorted(base):
        if name not in cand:
            failures.append(f"{name}: missing from candidate")
            rows.append((name, base[name], None, "MISSING"))
            continue
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        if base[name] < args.min_ms:
            verdict = "skip (noise floor)"
        elif ratio > 1.0 + args.tolerance:
            verdict = f"FAIL (+{(ratio - 1) * 100:.0f}%)"
            failures.append(
                f"{name}: {base[name]:.1f} ms -> {cand[name]:.1f} ms "
                f"(+{(ratio - 1) * 100:.0f}%, tolerance "
                f"{args.tolerance * 100:.0f}%)")
        elif ratio < 1.0 - args.tolerance:
            verdict = f"ok (-{(1 - ratio) * 100:.0f}%, refresh baseline?)"
        else:
            verdict = f"ok ({(ratio - 1) * 100:+.0f}%)"
        rows.append((name, base[name], cand[name], verdict))
    for name in sorted(set(cand) - set(base)):
        rows.append((name, None, cand[name], "new (ungated)"))

    width = max(len(r[0]) for r in rows)
    fmt_ms = lambda v: f"{v:10.1f}" if v is not None else " " * 9 + "-"
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'cand ms':>10}  verdict")
    for name, b, c, verdict in rows:
        print(f"{name:<{width}}  {fmt_ms(b)}  {fmt_ms(c)}  {verdict}")

    if args.update:
        shutil.copyfile(args.candidate, args.baseline)
        print(f"\nupdated {args.baseline} from {args.candidate}")
        return 0
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(base)} gated benchmarks within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
