#!/usr/bin/env bash
# clang-tidy over the library sources, using the check set in .clang-tidy
# and the compile commands exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is ON by default, so any configured build dir works).
#
#   tools/run_tidy.sh [build-dir]      # default: build
#
# Environment:
#   CLANG_TIDY  override the binary (e.g. clang-tidy-18)
#
# Exits nonzero if clang-tidy reports anything (.clang-tidy sets
# WarningsAsErrors: '*') — this script IS the CI gate, not a report.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: '$tidy' not found — install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first:  cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# Library translation units only: tests are gtest-macro heavy (endless
# false positives) and benches are scratch harnesses. Headers are covered
# through their including TUs via HeaderFilterRegex.
mapfile -t files < <(find "$repo_root/src" -name '*.cpp' | sort)
if [ "${#files[@]}" -eq 0 ]; then
  echo "error: no sources under $repo_root/src" >&2
  exit 2
fi

echo "clang-tidy ($("$tidy" --version | head -n1)) over ${#files[@]} files..."
jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${files[@]}" |
  xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet
echo "clang-tidy: clean"
