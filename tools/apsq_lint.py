#!/usr/bin/env python3
"""Repo-invariant lint for the apsq tree.

Each rule encodes a discipline the codebase relies on but a compiler
cannot check:

  raw-atoi        std::atoi/atol/atoll/atof silently turn garbage into 0;
                  all CLI parsing goes through the checked helpers in
                  src/common/cli.hpp.
  unseeded-rng    std::rand/srand/std::random_device break run-to-run
                  determinism; all randomness flows from src/common/rng
                  (splitmix-style, explicitly seeded).
  naked-mutex     raw std::mutex / lock_guard / unique_lock /
                  condition_variable bypass the Clang thread-safety
                  annotations; use apsq::Mutex / MutexLock / CondVar from
                  src/common/annotations.hpp so every acquisition is
                  statically visible.
  json-find-deref JsonValue::find() returns nullptr for a missing key;
                  dereferencing the result inline (`.find("k")->`) crashes
                  on malformed input instead of reporting it. Null-check,
                  or use .get() which throws with the key name.

Rules match call/usage forms in code only (comments are stripped; string
literals are stripped for all rules except json-find-deref, whose pattern
needs the key literal). Allowlists are pinned: an exception must be named
here, in review, not discovered later.

Usage:
  tools/apsq_lint.py [--root DIR] [--list-rules] [paths...]

With no paths, scans src/, tests/, examples/, bench/ under the root
(skipping the lint/static-analysis fixture directories, which violate
rules on purpose). Prints `path:line: [rule] message` per violation;
exits 0 on a clean tree, 1 otherwise.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "examples", "bench")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")
# Directories holding intentional violations (lint fixtures) or
# compile-failure fixtures; never part of the shipped tree.
SKIP_DIRS = (
    os.path.join("tests", "lint", "fixtures"),
    os.path.join("tests", "static"),
)


class Rule:
    def __init__(self, name, pattern, message, allow=(), keep_strings=False):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.allow = frozenset(allow)
        self.keep_strings = keep_strings


RULES = [
    Rule(
        "raw-atoi",
        r"(?<![\w:])(std::)?ato(i|l|ll|f)\s*\(",
        "raw ato* parses garbage as 0; use the checked parse_*_flag "
        "helpers from common/cli.hpp",
        allow=("src/common/cli.hpp",),
    ),
    Rule(
        "unseeded-rng",
        r"std::rand\b|(?<![\w:.])srand\s*\(|std::random_device\b",
        "unseeded/global randomness breaks determinism; use the seeded "
        "apsq::Rng from common/rng.hpp",
        allow=("src/common/rng.hpp", "src/common/rng.cpp"),
    ),
    Rule(
        "naked-mutex",
        r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
        r"lock_guard|unique_lock|scoped_lock|condition_variable(_any)?)\b",
        "raw std synchronization bypasses the thread-safety annotations; "
        "use apsq::Mutex / MutexLock / CondVar from common/annotations.hpp",
        allow=("src/common/annotations.hpp",),
    ),
    Rule(
        "json-find-deref",
        r'\.find\(\s*"[^"]*"\s*\)\s*->',
        "JsonValue::find() returns nullptr for a missing key; null-check "
        "the pointer or use .get(), which throws naming the key",
        allow=(),
        keep_strings=True,
    ),
]

_LEXER = re.compile(
    r"""
      //[^\n]*                      # line comment
    | /\*.*?\*/                     # block comment
    | "(?:\\.|[^"\\\n])*"           # string literal
    | '(?:\\.|[^'\\\n])*'           # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def _blank_keep_newlines(text):
    return re.sub(r"[^\n]", " ", text)


def strip_code(text, keep_strings):
    """Blank out comments (and, unless keep_strings, string/char
    literals) while preserving line numbers."""

    def repl(m):
        tok = m.group(0)
        if keep_strings and (tok.startswith('"') or tok.startswith("'")):
            return tok
        return _blank_keep_newlines(tok)

    return _LEXER.sub(repl, text)


def scan_file(root, rel, out):
    try:
        with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        out.append(f"{rel}:0: [io-error] {e}")
        return 1
    violations = 0
    stripped_cache = {}
    for rule in RULES:
        if rel.replace(os.sep, "/") in rule.allow:
            continue
        text = stripped_cache.get(rule.keep_strings)
        if text is None:
            text = strip_code(raw, rule.keep_strings)
            stripped_cache[rule.keep_strings] = text
        for m in rule.pattern.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            out.append(
                f"{rel.replace(os.sep, '/')}:{line}: [{rule.name}] {rule.message}"
            )
            violations += 1
    return violations


def collect_files(root, paths):
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            yield os.path.relpath(ap, root)
        return
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if any(
                rel_dir == s or rel_dir.startswith(s + os.sep) for s in SKIP_DIRS
            ):
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(rel_dir, name)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the tree containing this script)",
    )
    ap.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    ap.add_argument("paths", nargs="*", help="specific files (default: whole tree)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        return 0

    out = []
    total = 0
    for rel in collect_files(os.path.abspath(args.root), args.paths):
        total += scan_file(os.path.abspath(args.root), rel, out)
    for line in out:
        print(line)
    if total:
        print(f"apsq_lint: {total} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
