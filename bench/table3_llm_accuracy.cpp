// Table III — Baseline vs APSQ accuracy on the seven zero-shot common-
// sense reasoning proxies (LLaMA2-7B rows), trained with the LLM tile
// depth Pci = 32 (§IV-D parallelism).
//
// Paper readings (accuracy %):
//   BoolQ 77.80/75.26/75.93/76.45/76.82, PIQA 79.22/76.82/77.09/78.84/78.45,
//   HellaS. 76.64/72.99/74.94/75.43/76.01, WinoG. 69.69/65.75/67.48/68.43/67.96,
//   Arc-e 75.25/71.38/73.86/73.40/74.75, Arc-c 47.10/42.58/46.42/47.18/47.35,
//   OBQA 43.40/38.60/42.00/41.80/42.80 — avg best-APSQ drop 0.59 %.
#include <iostream>

#include "bench_accuracy.hpp"
#include "common/table.hpp"
#include "tasks/zcsr_proxy.hpp"

using namespace apsq;
using bench::AccuracyRunConfig;
using bench::run_accuracy_task;

namespace {

struct PaperRow {
  const char* task;
  double base, gs1, gs2, gs3, gs4;
};

constexpr PaperRow kPaper[] = {
    {"BoolQ", 77.80, 75.26, 75.93, 76.45, 76.82},
    {"PIQA", 79.22, 76.82, 77.09, 78.84, 78.45},
    {"HellaS.", 76.64, 72.99, 74.94, 75.43, 76.01},
    {"WinoG.", 69.69, 65.75, 67.48, 68.43, 67.96},
    {"Arc-e", 75.25, 71.38, 73.86, 73.40, 74.75},
    {"Arc-c", 47.10, 42.58, 46.42, 47.18, 47.35},
    {"OBQA", 43.40, 38.60, 42.00, 41.80, 42.80},
};

}  // namespace

int main() {
  std::cout << "=== Table III: LLaMA2-7B ZCSR proxies, Baseline vs APSQ ===\n"
            << "(training " << 7 * 5 << " student networks; ~1-3 min)\n\n";

  Table t({"Task", "Baseline", "gs=1", "gs=2", "gs=3", "gs=4",
           "paper (base/gs1..4)"});

  double drop_sum = 0.0;
  int idx = 0;
  for (const auto& spec : tasks::zcsr_proxy_specs()) {
    const nn::Dataset ds = tasks::make_synthetic_dataset(spec);
    AccuracyRunConfig rc;
    rc.hidden = 256;
    // LLaMA2 runs Pci = 32 over Ci = 4096..11008 (np = 128..344); the
    // proxies scale the tile depth down with their feature dims so
    // np = 16..64 folds remain (see bench_accuracy.hpp).
    rc.tile_ci = 8;
    rc.seed = spec.seed;
    const bench::TaskResult r = run_accuracy_task(spec.name, ds, rc);
    double best = r.gs[0];
    for (int g = 1; g < 4; ++g) best = std::max(best, r.gs[g]);
    drop_sum += r.baseline - best;

    const PaperRow& p = kPaper[idx++];
    t.add_row({r.task, Table::num(r.baseline, 2), Table::num(r.gs[0], 2),
               Table::num(r.gs[1], 2), Table::num(r.gs[2], 2),
               Table::num(r.gs[3], 2),
               Table::num(p.base, 2) + " / " + Table::num(p.gs1, 2) + " / " +
                   Table::num(p.gs2, 2) + " / " + Table::num(p.gs3, 2) +
                   " / " + Table::num(p.gs4, 2)});
  }
  t.print(std::cout);

  std::cout << "\nMean (baseline - best APSQ) over 7 tasks: "
            << Table::num(drop_sum / 7.0, 2) << " pts (paper: 0.59)\n";
  return 0;
}
