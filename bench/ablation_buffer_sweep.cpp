// Ablation — ofmap-buffer capacity vs the gs crossover.
//
// Fig. 6b's Segformer/EfficientViT energy rise at gs >= 3 is a buffer-fit
// phenomenon: the grouping strategy keeps gs INT8 PSUM tiles live, and the
// working set gs·rows·Pco must fit the ofmap buffer (§IV-C). This ablation
// sweeps the buffer from 64 KB to 1 MB and shows the crossover moving —
// the sizing argument behind the paper's 256 KB choice and the reason the
// RAE must be reconfigurable rather than fixed at one gs.
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"

using namespace apsq;

int main() {
  std::cout << "=== Ablation: ofmap buffer capacity vs gs crossover ===\n\n";

  {
    const Workload seg = segformer_b0_workload();
    std::cout << "--- Segformer-B0, WS, normalized energy ---\n";
    Table t({"Ofmap buffer", "baseline", "gs=1", "gs=2", "gs=3", "gs=4"});
    for (i64 kb : {64, 128, 256, 512, 1024}) {
      AcceleratorConfig arch = AcceleratorConfig::dnn_default();
      arch.ofmap_buf_bytes = kb * 1024;
      // Normalize against the 256 KB INT32 baseline so rows are comparable.
      AcceleratorConfig ref_arch = AcceleratorConfig::dnn_default();
      const double ref = workload_energy(Dataflow::kWS, seg, ref_arch,
                                         PsumConfig::baseline_int32())
                             .total_pj();
      std::vector<std::string> row{std::to_string(kb) + " KB"};
      row.push_back(Table::num(workload_energy(Dataflow::kWS, seg, arch,
                                               PsumConfig::baseline_int32())
                                       .total_pj() /
                                   ref,
                               3));
      for (index_t gs = 1; gs <= 4; ++gs)
        row.push_back(Table::num(
            workload_energy(Dataflow::kWS, seg, arch, PsumConfig::apsq_int8(gs))
                    .total_pj() /
                ref,
            3));
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "At 64 KB even gs=1 spills; at 1 MB all group sizes fit and "
                 "the gs penalty disappears — the reconfigurability argument "
                 "(§IV-C).\n\n";
  }

  {
    const Workload llm = llama2_7b_workload(4096);
    const AcceleratorConfig base_arch = AcceleratorConfig::llm_default();
    std::cout << "--- LLaMA2-7B, WS, baseline/gs1 energy ratio ---\n";
    Table t({"Ofmap buffer", "INT32 baseline vs APSQ gs=1"});
    for (i64 kb : {64, 128, 256, 512, 1024, 4096}) {
      AcceleratorConfig arch = base_arch;
      arch.ofmap_buf_bytes = kb * 1024;
      const double b = workload_energy(Dataflow::kWS, llm, arch,
                                       PsumConfig::baseline_int32())
                           .total_pj();
      const double a =
          workload_energy(Dataflow::kWS, llm, arch, PsumConfig::apsq_int8(1))
              .total_pj();
      t.add_row({std::to_string(kb) + " KB", Table::ratio(b / a, 2)});
    }
    t.print(std::cout);
    std::cout << "The 31.7x window exists only while the INT32 working set "
                 "(512 KB) spills and the INT8 one (128 KB) fits; a 4 MB "
                 "buffer would erase APSQ's DRAM advantage (at ~8x the SRAM "
                 "area).\n";
  }
  return 0;
}
