// DSE sweep throughput — seeds the perf trajectory for the exploration
// engine. Times the full paper_default space (1248 configs × 4 workloads)
// cold-cache at 1, 4, and hardware-concurrency threads, plus a warm-cache
// re-run, and reports points/s and memo-cache hit rates.
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double time_sweep(Evaluator& eval, const ConfigSpace& space, size_t& front_size) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  front_size = pareto_front_by_workload(results).size();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const ConfigSpace space = ConfigSpace::paper_default();
  const int hw = WorkStealingPool::hardware_threads();
  std::cout << "=== DSE sweep: " << space.size() << " design points, "
            << space.workloads.size() << " workloads (hardware threads: "
            << hw << ") ===\n\n";

  std::vector<int> thread_counts = {1, 4};
  if (hw != 1 && hw != 4) thread_counts.push_back(hw);

  Table t({"Threads", "Cache", "Time (s)", "Points/s", "Speedup vs 1T",
           "Accuracy-cache hit rate", "Front size"});
  double base = 0.0;
  for (int threads : thread_counts) {
    EvaluatorOptions opt;
    opt.threads = threads;
    Evaluator eval(opt);

    size_t front_size = 0;
    const double cold = time_sweep(eval, space, front_size);
    if (threads == 1) base = cold;
    const CacheStats cs = eval.accuracy_cache_stats();
    const double hit_rate =
        static_cast<double>(cs.hits) / static_cast<double>(cs.hits + cs.misses);
    t.add_row({std::to_string(threads), "cold", Table::num(cold, 3),
               Table::num(static_cast<double>(space.size()) / cold, 0),
               base > 0.0 ? Table::ratio(base / cold) : "-",
               Table::pct(hit_rate), std::to_string(front_size)});

    const double warm = time_sweep(eval, space, front_size);
    t.add_row({std::to_string(threads), "warm", Table::num(warm, 3),
               Table::num(static_cast<double>(space.size()) / warm, 0),
               base > 0.0 ? Table::ratio(base / warm) : "-", "-",
               std::to_string(front_size)});
  }
  t.print(std::cout);
  return 0;
}
