// DSE sweep throughput — seeds the perf trajectory for the exploration
// engine. Times the full paper_default space (1248 configs × 4 workloads)
// cold-cache serially and on the process-wide shared pool (whose width is
// fixed at hardware_threads / APSQ_POOL_THREADS — per-row thread counts
// would all route to the same pool, so serial-vs-pool is the honest
// comparison), plus a warm-cache re-run, and reports points/s and
// memo-cache hit rates, then times the evaluated-space store path: a cold
// sweep that snapshots the space versus a warm re-slice answered entirely
// from the reloaded snapshot (0 fresh evaluations). With
// --benchmark_out=FILE the section timings are also written as
// google-benchmark-style JSON for the bench-regression CI gate
// (tools/check_bench.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/store.hpp"
#include "dse/sweep.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double time_sweep(Evaluator& eval, const ConfigSpace& space, size_t& front_size) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResult> results = eval.evaluate_space(space);
  front_size = pareto_front_by_workload(results).size();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  apsq::bench::BenchJson rep(argc, argv);
  if (!rep.ok()) return 1;
  const ConfigSpace space = ConfigSpace::paper_default();
  const int hw = WorkStealingPool::hardware_threads();
  std::cout << "=== DSE sweep: " << space.size() << " design points, "
            << space.workloads.size() << " workloads (hardware threads: "
            << hw << ") ===\n\n";

  // Serial (threads == 1 scores inline) vs the shared pool (threads > 1
  // routes to WorkStealingPool::shared(), whose width is the hardware's —
  // distinct per-row counts would all measure that same pool). Names are
  // host-independent so one committed baseline serves every runner.
  struct Mode {
    const char* name;
    int threads;
  };
  const std::vector<Mode> modes = {{"serial", 1}, {"pool", hw > 1 ? hw : 2}};

  Table t({"Mode", "Cache", "Time (s)", "Points/s", "Speedup vs serial",
           "Accuracy-cache hit rate", "Front size"});
  double base = 0.0;
  for (const Mode& mode : modes) {
    // Best-of-3 with a fresh (cold-cache) evaluator per attempt: the cold
    // times feed the bench-regression gate, and a single cold run is too
    // noisy on shared CI runners. The last attempt's evaluator carries
    // the warm-cache re-run and the hit-rate stats.
    constexpr int kReps = 3;
    double cold = 0.0;
    double hit_rate = 0.0;
    size_t front_size = 0;
    EvaluatorOptions opt;
    opt.threads = mode.threads;
    std::unique_ptr<Evaluator> eval;
    for (int attempt = 0; attempt < kReps; ++attempt) {
      auto fresh = std::make_unique<Evaluator>(opt);
      const double secs = time_sweep(*fresh, space, front_size);
      cold = attempt == 0 ? secs : std::min(cold, secs);
      if (attempt + 1 == kReps) {
        const CacheStats cs = fresh->accuracy_cache_stats();
        hit_rate = static_cast<double>(cs.hits) /
                   static_cast<double>(cs.hits + cs.misses);
        eval = std::move(fresh);
      }
    }

    rep.add(std::string("dse_sweep/cold/") + mode.name, cold);
    if (mode.threads == 1) base = cold;
    t.add_row({mode.name, "cold", Table::num(cold, 3),
               Table::num(static_cast<double>(space.size()) / cold, 0),
               base > 0.0 ? Table::ratio(base / cold) : "-",
               Table::pct(hit_rate), std::to_string(front_size)});

    const double warm = time_sweep(*eval, space, front_size);
    rep.add(std::string("dse_sweep/warm/") + mode.name, warm);
    t.add_row({mode.name, "warm", Table::num(warm, 3),
               Table::num(static_cast<double>(space.size()) / warm, 0),
               base > 0.0 ? Table::ratio(base / warm) : "-", "-",
               std::to_string(front_size)});
  }
  t.print(std::cout);

  // ---- evaluated-space store: cold sweep + snapshot vs warm re-slice.
  // The warm row re-slices the snapshot over a different objective subset
  // without paying a single evaluation — the batch-query speedup the
  // store exists to buy. Best-of-3 each, like the sweeps above.
  std::cout << "\n=== Evaluated-space store: snapshot vs warm re-slice ===\n\n";
  const std::string store_path = "bench_dse_store_snapshot.json";
  constexpr int kReps = 3;
  double cold_store = 0.0;
  double warm_reslice = 0.0;
  size_t warm_front = 0;
  for (int attempt = 0; attempt < kReps; ++attempt) {
    {
      SweepConfig cfg;
      cfg.threads = 1;
      cfg.store_out = store_path;
      const auto t0 = std::chrono::steady_clock::now();
      SweepSession session(cfg);
      session.run();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      cold_store = attempt == 0 ? secs : std::min(cold_store, secs);
    }
    {
      SweepConfig cfg;
      cfg.threads = 1;
      cfg.store_in = store_path;
      cfg.objectives = ObjectiveSet::parse("energy,latency");
      const auto t0 = std::chrono::steady_clock::now();
      SweepSession session(cfg);
      const SweepOutcome out = session.run();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      warm_reslice = attempt == 0 ? secs : std::min(warm_reslice, secs);
      warm_front = out.front.size();
      if (out.fresh_evaluations != 0) {
        std::cerr << "store re-slice unexpectedly evaluated "
                  << out.fresh_evaluations << " points\n";
        return 1;
      }
    }
  }
  std::remove(store_path.c_str());
  rep.add("dse_sweep/store/cold_snapshot", cold_store);
  rep.add("dse_sweep/store/warm_reslice", warm_reslice);
  Table st({"Phase", "Time (s)", "Points/s", "Front size"});
  st.add_row({"cold sweep + snapshot", Table::num(cold_store, 3),
              Table::num(static_cast<double>(space.size()) / cold_store, 0),
              "-"});
  st.add_row({"warm re-slice (0 evals)", Table::num(warm_reslice, 3),
              Table::num(static_cast<double>(space.size()) / warm_reslice, 0),
              std::to_string(warm_front)});
  st.print(std::cout);
  return rep.flush() ? 0 : 1;
}
