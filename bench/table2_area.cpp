// Table II — Hardware synthesis resource consumption (28 nm, 250 MHz).
//
// Paper: baseline accelerator 1,873,408 µm²; RAE 86,410 µm²; accelerator
// w/ RAE 1,933,674 µm² (+3.21 %). Our numbers come from the component-
// level area model of src/rae/area_model.hpp (DESIGN.md §3.2 documents the
// substitution for the Synopsys DC flow).
#include <iomanip>
#include <iostream>

#include "common/table.hpp"
#include "rae/area_model.hpp"

using namespace apsq;

int main() {
  std::cout << "=== Table II: synthesis area (28 nm) ===\n\n";

  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  const AreaReport base = baseline_accelerator_area(arch);
  const AreaReport rae = rae_area(arch);
  const AreaReport with_rae = accelerator_with_rae_area(arch);

  Table t({"Design", "Area (um^2)", "Paper (um^2)"});
  t.add_row({"Baseline DNN Accelerator", Table::num(base.total_um2(), 0),
             "1873408"});
  t.add_row({"RAE", Table::num(rae.total_um2(), 0), "86410"});
  t.add_row({"DNN Accelerator w/ RAE", Table::num(with_rae.total_um2(), 0),
             "1933674"});
  t.print(std::cout);

  const double overhead =
      100.0 * (with_rae.total_um2() - base.total_um2()) / base.total_um2();
  std::cout << "\nRAE area overhead: " << std::fixed << std::setprecision(2)
            << overhead << "% (paper: 3.21%)\n\n";

  std::cout << "--- Component breakdown: baseline ---\n";
  Table tb({"Component", "Count", "Unit (um^2)", "Total (um^2)"});
  for (const auto& item : base.items)
    tb.add_row({item.component, std::to_string(item.count),
                Table::num(item.unit_um2, 2), Table::num(item.total_um2(), 0)});
  tb.print(std::cout);

  std::cout << "\n--- Component breakdown: RAE ---\n";
  Table tr({"Component", "Count", "Unit (um^2)", "Total (um^2)"});
  for (const auto& item : rae.items)
    tr.add_row({item.component, std::to_string(item.count),
                Table::num(item.unit_um2, 2), Table::num(item.total_um2(), 0)});
  tr.print(std::cout);
  return 0;
}
