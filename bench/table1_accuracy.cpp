// Table I — Accuracy comparison between Baseline (W8A8, full-precision
// PSUM) and APSQ (INT8 PSUM) with gs = 1..4, across the six GLUE proxy
// tasks (BERT-Base) and the two ADE20K segmentation proxies (Segformer-B0
// and EfficientViT-B1).
//
// Tasks are synthetic stand-ins (DESIGN.md §3.2): compare the SHAPE —
// baseline >= gs>=2 > gs=1, with non-monotonic per-task wiggle — not the
// absolute values, which depend on the real datasets.
#include <iostream>

#include "bench_accuracy.hpp"
#include "common/table.hpp"
#include "tasks/glue_proxy.hpp"
#include "tasks/seg_proxy.hpp"

using namespace apsq;
using bench::AccuracyRunConfig;
using bench::run_accuracy_task;

namespace {

struct PaperRow {
  const char* task;
  double baseline, gs1, gs2, gs3, gs4;
};

constexpr PaperRow kPaper[] = {
    {"QNLI", 91.32, 90.26, 90.77, 91.12, 91.03},
    {"MNLI", 84.08, 82.27, 83.12, 83.43, 83.54},
    {"RTE", 74.73, 74.01, 74.01, 73.29, 75.81},
    {"STS-B", 87.89, 86.94, 87.31, 87.60, 87.61},
    {"MRPC", 87.99, 87.25, 87.01, 87.75, 87.01},
    {"CoLA", 53.40, 50.84, 51.27, 52.59, 52.36},
    {"Segformer-B0/ADE20K", 36.72, 35.83, 36.11, 35.97, 35.85},
    {"EfficientViT-B1/ADE20K", 39.48, 37.45, 38.65, 38.41, 38.47},
};

std::string paper_cells(const PaperRow& r) {
  return Table::num(r.baseline, 2) + " / " + Table::num(r.gs1, 2) + " / " +
         Table::num(r.gs2, 2) + " / " + Table::num(r.gs3, 2) + " / " +
         Table::num(r.gs4, 2);
}

}  // namespace

int main() {
  std::cout << "=== Table I: Baseline vs APSQ accuracy (proxy tasks) ===\n"
            << "(training " << 8 * 5 << " student networks; ~1-3 min)\n\n";

  Table t({"Task", "Metric", "Baseline", "gs=1", "gs=2", "gs=3", "gs=4",
           "paper (base/gs1..4)"});

  double drop_sum = 0.0;
  int rows = 0;
  auto add_result = [&](const bench::TaskResult& r, nn::Metric metric,
                        const PaperRow& paper) {
    double best_gs = r.gs[0];
    for (int g = 1; g < 4; ++g) best_gs = std::max(best_gs, r.gs[g]);
    drop_sum += r.baseline - best_gs;
    ++rows;
    t.add_row({r.task, nn::to_string(metric), Table::num(r.baseline, 2),
               Table::num(r.gs[0], 2), Table::num(r.gs[1], 2),
               Table::num(r.gs[2], 2), Table::num(r.gs[3], 2),
               paper_cells(paper)});
  };

  // GLUE proxies (BERT-Base rows).
  int paper_idx = 0;
  for (const auto& spec : tasks::glue_proxy_specs()) {
    const nn::Dataset ds = tasks::make_synthetic_dataset(spec);
    AccuracyRunConfig rc;
    rc.seed = spec.seed;
    add_result(run_accuracy_task(spec.name, ds, rc), spec.metric,
               kPaper[paper_idx++]);
  }
  t.add_separator();

  // Segmentation proxies.
  {
    const nn::Dataset ds =
        tasks::make_seg_proxy_dataset(tasks::segformer_proxy_spec());
    AccuracyRunConfig rc;
    rc.hidden = 160;
    rc.seed = 301;
    add_result(run_accuracy_task("Segformer-B0/ADE20K", ds, rc),
               nn::Metric::kMiou, kPaper[paper_idx++]);
  }
  {
    const nn::Dataset ds =
        tasks::make_seg_proxy_dataset(tasks::efficientvit_proxy_spec());
    AccuracyRunConfig rc;
    rc.hidden = 128;
    rc.seed = 302;
    add_result(run_accuracy_task("EfficientViT-B1/ADE20K", ds, rc),
               nn::Metric::kMiou, kPaper[paper_idx++]);
  }

  t.print(std::cout);
  std::cout << "\nMean (baseline - best APSQ) over " << rows
            << " tasks: " << Table::num(drop_sum / rows, 2)
            << " pts (paper: 0.16 for BERT, 0.61/0.83 mIoU for seg)\n";

  // Controlled mechanism experiment: QAT adapts to PSUM noise, so at proxy
  // scale the per-task gs ordering sits inside training variance (the
  // paper's own Table I is non-monotonic per task, e.g. RTE gs3 < gs1).
  // The underlying ordering is measured here directly: mean |output
  // deviation| of an APSQ forward vs the exact-PSUM forward on identical
  // weights, over 50 random layers.
  std::cout << "\n--- gs mechanism: output deviation vs exact PSUM "
               "(50 random layers, identical weights) ---\n";
  Table tm({"gs", "mean |deviation| (a.u.)"});
  for (index_t gs : {1, 2, 4}) {
    double dev = 0.0;
    for (u64 trial = 0; trial < 50; ++trial) {
      Rng rng(9000 + trial);
      TensorF x({16, 64});
      for (index_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.normal());
      Rng re(500 + trial), rg(500 + trial);
      nn::QuantDense exact(64, 16, nn::QatConfig::baseline_w8a8(), re);
      nn::QuantDense apsq(64, 16, nn::QatConfig::apsq_w8a8(gs, 4), rg);
      const TensorF ye = exact.forward(x);
      const TensorF yg = apsq.forward(x);
      for (index_t i = 0; i < ye.numel(); ++i)
        dev += std::abs(ye[i] - yg[i]);
    }
    tm.add_row({std::to_string(gs), Table::num(dev / 50.0, 3)});
  }
  tm.print(std::cout);
  std::cout << "Monotone decrease with gs — the accuracy-recovery mechanism "
               "of §III-B.\n";
  return 0;
}
