// Table IV — Normalized energy across gs settings under IS and WS on
// LLaMA2-7B (sequence length 4096, prefilling + decoding, Po=1, Pci=32,
// Pco=32), normalized to the APSQ gs=1 configuration as in the paper.
//
// Paper readings:
//   IS:  baseline 1.02x, gs=1..4 all 1x
//   WS:  baseline 31.7x, gs=1/2 1x, gs=3/4 8.42x
// The 31.7x comes from INT32 PSUMs spilling the 256 KB ofmap buffer on
// every ci-tile accumulation step (footprint 4·4096·32 = 512 KB), which
// INT8 APSQ avoids (footprint 128 KB); gs >= 3 re-triggers the spill.
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/llama2.hpp"

using namespace apsq;

int main() {
  std::cout << "=== Table IV: normalized energy, LLaMA2-7B (seq 4096) ===\n\n";

  const Workload llm = llama2_7b_workload(4096);
  const AcceleratorConfig arch = AcceleratorConfig::llm_default();

  const double paper_is[5] = {1.02, 1.0, 1.0, 1.0, 1.0};
  const double paper_ws[5] = {31.7, 1.0, 1.0, 8.42, 8.42};

  Table t({"Dataflow", "Baseline", "gs=1", "gs=2", "gs=3", "gs=4", "paper"});
  for (Dataflow df : {Dataflow::kIS, Dataflow::kWS}) {
    const double gs1 =
        workload_energy(df, llm, arch, PsumConfig::apsq_int8(1)).total_pj();
    std::vector<std::string> row{to_string(df)};
    row.push_back(Table::ratio(
        workload_energy(df, llm, arch, PsumConfig::baseline_int32()).total_pj() /
            gs1,
        2));
    for (index_t gs = 1; gs <= 4; ++gs)
      row.push_back(Table::ratio(
          workload_energy(df, llm, arch, PsumConfig::apsq_int8(gs)).total_pj() /
              gs1,
          2));
    const double* ref = df == Dataflow::kIS ? paper_is : paper_ws;
    std::string refs;
    for (int i = 0; i < 5; ++i)
      refs += (i ? "/" : "") + Table::num(ref[i], 2);
    row.push_back(refs + "x");
    t.add_row(row);
  }
  t.print(std::cout);

  const double save =
      workload_energy(Dataflow::kWS, llm, arch, PsumConfig::baseline_int32())
          .total_pj() /
      workload_energy(Dataflow::kWS, llm, arch, PsumConfig::apsq_int8(1))
          .total_pj();
  std::cout << "\nWS energy saving baseline -> APSQ gs=1: "
            << Table::ratio(save, 1) << " (paper: up to 31.7x)\n";
  std::cout << "IS is insensitive because the decode feature map is a vector "
               "and weight DRAM traffic dominates (§IV-D).\n";
  return 0;
}
