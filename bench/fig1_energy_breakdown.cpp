// Fig. 1 — Energy breakdown of IS, WS and OS dataflows for BERT-Base with
// 128 input tokens, at PSUM bit-widths 32 / 16 / 8.
//
// The paper's headline readings: PSUM share of total energy reaches
// 38/24/14 % (IS) and 69/53/37 % (WS) at 32/16/8-bit PSUMs, and is
// negligible for OS (PSUMs live in PE registers).
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"

using namespace apsq;

int main() {
  std::cout << "=== Fig. 1: energy breakdown, BERT-Base (128 tokens) ===\n\n";

  const Workload bert = bert_base_workload(128);
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();

  Table t({"Dataflow", "PSUM bits", "ifmap", "weight", "psum", "ofmap", "op",
           "Norm. energy", "psum share", "paper psum share"});

  // Normalization: the largest configuration (WS would differ per column;
  // the figure normalizes within each dataflow to its 32-bit bar).
  const char* paper_share[3][3] = {{"38%", "24%", "14%"},
                                   {"69%", "53%", "37%"},
                                   {"~0%", "~0%", "~0%"}};

  int df_idx = 0;
  for (Dataflow df : {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS}) {
    const double base32 =
        workload_energy(df, bert, arch, PsumConfig::baseline_int32()).total_pj();
    int bit_idx = 0;
    for (int bits : {32, 16, 8}) {
      const PsumConfig pc{bits, false, 1};
      const EnergyBreakdown e = workload_energy(df, bert, arch, pc);
      const double total = e.total_pj();
      t.add_row({to_string(df), std::to_string(bits),
                 Table::pct(e.ifmap_pj / total), Table::pct(e.weight_pj / total),
                 Table::pct(e.psum_pj / total), Table::pct(e.ofmap_pj / total),
                 Table::pct(e.mac_pj / total), Table::num(total / base32, 3),
                 Table::pct(e.psum_fraction()),
                 paper_share[df_idx][bit_idx]});
      ++bit_idx;
    }
    t.add_separator();
    ++df_idx;
  }
  t.print(std::cout);

  std::cout << "\nPSUMs dominate IS/WS at high precision (paper: \"up to 69% "
               "of total power consumption\") and vanish for OS.\n";
  return 0;
}
