// Shared driver for the accuracy benches (Table I, Fig. 5, Table III):
// train an FP32 teacher once per task, then QAT students (with knowledge
// distillation) for the baseline and each APSQ configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/quant_dense.hpp"
#include "nn/trainer.hpp"
#include "tasks/students.hpp"

namespace apsq::bench {

struct AccuracyRunConfig {
  index_t epochs = 8;
  float lr = 2e-3f;
  float kd_lambda = 0.5f;
  index_t hidden = 128;
  index_t depth = 2;
  // Accumulation tile depth. The paper's models run Pci = 8 over
  // Ci = 768..3072 (np = 96..384 PSUM tiles); the proxies' feature dims
  // are ~8-12x smaller, so the tile depth is scaled down with them to
  // keep np — the number of quantizer folds APSQ exposes — comparable
  // (np = 16..32 here).
  index_t tile_ci = 4;
  u64 seed = 1;
};

struct TaskResult {
  std::string task;
  double baseline = 0.0;
  double gs[4] = {0, 0, 0, 0};
};

/// Train baseline (W8A8, exact PSUM) + APSQ gs=1..4 students on a dataset.
inline TaskResult run_accuracy_task(const std::string& name,
                                    const nn::Dataset& ds,
                                    const AccuracyRunConfig& rc,
                                    int psum_bits = 8) {
  const index_t out_dim = ds.regression ? 1 : ds.num_classes;
  const tasks::StudentArch arch{ds.train_x.dim(1), rc.hidden, rc.depth,
                                out_dim};

  nn::TrainConfig tc;
  tc.epochs = rc.epochs;
  tc.lr = rc.lr;
  tc.kd_lambda = rc.kd_lambda;
  tc.shuffle_seed = rc.seed;

  // FP32 teacher (shared by all students of this task).
  Rng trng(rc.seed * 7919 + 13);
  auto teacher = tasks::make_mlp(arch, std::nullopt, trng);
  nn::TrainConfig teacher_tc = tc;
  teacher_tc.kd_lambda = 0.0f;
  nn::train_model(*teacher, ds, teacher_tc);

  auto train_student = [&](const nn::QatConfig& qat) {
    Rng rng(rc.seed * 104729 + 7);  // identical init across configs
    auto student = tasks::make_mlp(arch, qat, rng);
    return nn::train_model(*student, ds, tc, teacher.get()).test_metric_pct;
  };

  TaskResult result;
  result.task = name;
  nn::QatConfig base = nn::QatConfig::baseline_w8a8();
  base.tile_ci = rc.tile_ci;
  result.baseline = train_student(base);
  for (index_t g = 1; g <= 4; ++g) {
    nn::QatConfig qat = nn::QatConfig::apsq_bits(psum_bits, g, rc.tile_ci);
    result.gs[g - 1] = train_student(qat);
  }
  return result;
}

}  // namespace apsq::bench
