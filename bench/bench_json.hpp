// Minimal google-benchmark-compatible JSON reporting for the plain
// benches.
//
// Only micro_kernels links google-benchmark; the figure/table/DSE sweeps
// are plain executables with hand-rolled timing. The bench-regression CI
// job still wants one artifact format it can diff against a committed
// baseline, so this helper mirrors the two google-benchmark flags the job
// uses —
//
//   bench_dse_sweep --benchmark_out=BENCH_dse.json --benchmark_out_format=json
//
// — and emits the subset of the google-benchmark JSON schema that
// tools/check_bench.py (and most benchmark-diff tooling) reads: a
// `context` block plus `benchmarks[]` entries with name / iterations /
// real_time / cpu_time / time_unit. Benches register wall-clock sections
// via add() and flush() once at exit; without --benchmark_out the
// reporter is a no-op, so the human-readable tables keep working
// unchanged. Benchmark names should be host-independent (use
// "threads:max", not the machine's core count) so one committed baseline
// serves every runner.
#pragma once

#include <cstdio>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace apsq::bench {

class BenchJson {
 public:
  BenchJson(int argc, char** argv) {
    if (argc > 0) executable_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const std::string out_prefix = "--benchmark_out=";
      const std::string fmt_prefix = "--benchmark_out_format=";
      if (a.rfind(out_prefix, 0) == 0) {
        out_path_ = a.substr(out_prefix.size());
      } else if (a.rfind(fmt_prefix, 0) == 0) {
        const std::string fmt = a.substr(fmt_prefix.size());
        if (fmt != "json") {
          std::cerr << "--benchmark_out_format: only 'json' is supported, got '"
                    << fmt << "'\n";
          bad_flag_ = true;
        }
      } else {
        std::cerr << "unknown flag: " << a
                  << " (supported: --benchmark_out=PATH"
                     " --benchmark_out_format=json)\n";
        bad_flag_ = true;
      }
    }
  }

  /// False iff the command line was malformed. Benches check this right
  /// after construction and exit 1 before running anything, so a typo'd
  /// CI step fails in seconds instead of after a full sweep.
  bool ok() const { return !bad_flag_; }

  /// Record one timed section (seconds of wall clock). `iterations` is
  /// informational — the recorded time is the total, matching how the
  /// benches measure whole sweeps rather than per-iteration loops.
  void add(const std::string& name, double real_seconds, long iterations = 1) {
    entries_.push_back({name, real_seconds * 1e3, iterations});
  }

  /// Write the JSON if --benchmark_out was given. Returns false on a bad
  /// flag (belt and braces — ok() should have stopped the run already)
  /// or an IO failure — benches `return rep.flush() ? 0 : 1;`.
  bool flush() const {
    if (bad_flag_) return false;
    if (out_path_.empty()) return true;
    std::FILE* f = std::fopen(out_path_.c_str(), "w");
    if (!f) {
      std::cerr << "failed to open " << out_path_ << "\n";
      return false;
    }
    char date[64] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
    if (localtime_r(&now, &tm_buf))
      std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);
    std::fprintf(f,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"executable\": \"%s\",\n"
                 "    \"num_cpus\": %u,\n"
                 "    \"library_build_type\": \"%s\"\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 date, escaped(executable_).c_str(),
                 std::thread::hardware_concurrency(),
#ifdef NDEBUG
                 "release"
#else
                 "debug"
#endif
    );
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      // cpu_time duplicates real_time: these benches measure wall clock
      // (the quantity the regression gate cares about), and the schema
      // requires both fields.
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"run_name\": \"%s\","
                   " \"run_type\": \"iteration\", \"repetitions\": 1,"
                   " \"repetition_index\": 0, \"iterations\": %ld,"
                   " \"real_time\": %.6f, \"cpu_time\": %.6f,"
                   " \"time_unit\": \"ms\"}%s\n",
                   escaped(e.name).c_str(), escaped(e.name).c_str(),
                   e.iterations, e.real_ms, e.real_ms,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::cout << "\nwrote " << out_path_ << "\n";
    return ok;
  }

 private:
  struct Entry {
    std::string name;
    double real_ms;
    long iterations;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string executable_;
  std::string out_path_;
  bool bad_flag_ = false;
  std::vector<Entry> entries_;
};

}  // namespace apsq::bench
