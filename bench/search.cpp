// Budgeted-search throughput — the wall-time gate for the search engine.
// Times the two strategies at the scales the acceptance criteria pin:
// the halving strategy recovering the paper space's exhaustive front at
// a 25% budget (312 of 1248 sim promotions), and the evolve strategy
// searching the ~6×10⁷-point fine space under a 2048-evaluation budget —
// plus a warm store replay of the fine search (0 fresh evaluations).
// With --benchmark_out=FILE the section timings are written as
// google-benchmark-style JSON for the bench-regression CI gate
// (tools/check_bench.py).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/store.hpp"
#include "dse/sweep.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double time_session(const SweepConfig& cfg, EvalStore* store,
                    SweepOutcome& out) {
  const auto t0 = std::chrono::steady_clock::now();
  SweepSession session(cfg, store);
  out = session.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  apsq::bench::BenchJson rep(argc, argv);
  if (!rep.ok()) return 1;
  const int hw = WorkStealingPool::hardware_threads();
  constexpr int kReps = 3;
  std::cout << "=== Budgeted search (hardware threads: " << hw << ") ===\n\n";
  Table t({"Section", "Time (s)", "Evaluated", "Front size"});

  // Halving over the paper space at the acceptance budget: 312 sim
  // promotions (25% of 1248) reproduce the exhaustive adaptive front.
  {
    SweepConfig cfg;
    cfg.backend = EvalBackend::kMixed;
    cfg.mode = RunMode::kSearch;
    cfg.budget = 312;
    cfg.budget_set = true;
    cfg.threads = 1;
    double best = 0.0;
    SweepOutcome out;
    for (int attempt = 0; attempt < kReps; ++attempt) {
      const double secs = time_session(cfg, nullptr, out);
      best = attempt == 0 ? secs : std::min(best, secs);
    }
    if (out.search.evaluated > cfg.budget) {
      std::cerr << "halving search overspent its budget: "
                << out.search.evaluated << " > " << cfg.budget << "\n";
      return 1;
    }
    rep.add("search/paper/halving_mixed", best);
    t.add_row({"paper halving (budget 312)", Table::num(best, 3),
               std::to_string(out.search.evaluated),
               std::to_string(out.front.size())});
  }

  // Evolve over the fine space: a budgeted search must stay interactive
  // on a space that exhaustive sweep could never touch.
  SweepConfig fine;
  fine.space = "fine";
  fine.mode = RunMode::kSearch;
  fine.budget = 2048;
  fine.budget_set = true;
  fine.search_seed = 7;
  fine.search_seed_set = true;
  fine.threads = hw > 1 ? hw : 2;
  {
    double best = 0.0;
    SweepOutcome out;
    for (int attempt = 0; attempt < kReps; ++attempt) {
      const double secs = time_session(fine, nullptr, out);
      best = attempt == 0 ? secs : std::min(best, secs);
    }
    if (out.search.evaluated > fine.budget) {
      std::cerr << "evolve search overspent its budget: "
                << out.search.evaluated << " > " << fine.budget << "\n";
      return 1;
    }
    rep.add("search/fine/evolve_analytic", best);
    t.add_row({"fine evolve (budget 2048)", Table::num(best, 3),
               std::to_string(out.search.evaluated),
               std::to_string(out.front.size())});
  }

  // Warm replay: the sparse row set answers the identical search from
  // the store without running the driver.
  {
    EvalStore store;
    SweepOutcome out;
    time_session(fine, &store, out);  // record the snapshot
    double best = 0.0;
    for (int attempt = 0; attempt < kReps; ++attempt) {
      const double secs = time_session(fine, &store, out);
      best = attempt == 0 ? secs : std::min(best, secs);
      if (out.fresh_evaluations != 0) {
        std::cerr << "warm search replay unexpectedly evaluated "
                  << out.fresh_evaluations << " points\n";
        return 1;
      }
    }
    rep.add("search/fine/warm_replay", best);
    t.add_row({"fine warm replay (0 evals)", Table::num(best, 3), "0",
               std::to_string(out.front.size())});
  }

  t.print(std::cout);
  return rep.flush() ? 0 : 1;
}
