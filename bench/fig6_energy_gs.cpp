// Fig. 6 — Normalized energy across gs settings and models under (a) IS
// and (b) WS dataflows, all relative to the INT32-PSUM baseline.
//
// Paper readings:
//   IS:  BERT 0.72, Segformer 0.58, EfficientViT 0.60 (flat across gs)
//   WS:  BERT 0.50 (flat);  Segformer 0.13 (gs=1,2) -> 0.34 (gs=3,4);
//        EfficientViT 0.32 (gs=1,2) -> 0.43 (gs=3,4)
// The WS rise at gs >= 3 is the grouping footprint exceeding the 256 KB
// ofmap buffer on the high-resolution stages (§IV-C).
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/segformer.hpp"

using namespace apsq;

namespace {

struct PaperRow {
  const char* model;
  double is_ref;            // flat across gs
  double ws_ref[4];         // per gs
};

}  // namespace

int main() {
  std::cout << "=== Fig. 6: normalized energy vs group size ===\n\n";

  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  const Workload models[] = {bert_base_workload(), segformer_b0_workload(),
                             efficientvit_b1_workload()};
  const PaperRow paper[] = {
      {"BERT-Base", 0.72, {0.50, 0.50, 0.50, 0.50}},
      {"Segformer-B0", 0.58, {0.13, 0.13, 0.34, 0.34}},
      {"EfficientViT-B1", 0.60, {0.32, 0.32, 0.43, 0.43}},
  };

  for (Dataflow df : {Dataflow::kIS, Dataflow::kWS}) {
    std::cout << "--- Fig. 6" << (df == Dataflow::kIS ? "a (IS)" : "b (WS)")
              << " ---\n";
    Table t({"Model", "gs=1", "gs=2", "gs=3", "gs=4", "paper (gs=1..4)"});
    for (size_t m = 0; m < 3; ++m) {
      std::vector<std::string> row{models[m].name};
      for (index_t gs = 1; gs <= 4; ++gs)
        row.push_back(Table::num(
            normalized_energy(df, models[m], arch, PsumConfig::apsq_int8(gs)),
            3));
      std::string ref;
      if (df == Dataflow::kIS) {
        ref = Table::num(paper[m].is_ref, 2) + " (flat)";
      } else {
        for (int g = 0; g < 4; ++g)
          ref += (g ? "/" : "") + Table::num(paper[m].ws_ref[g], 2);
      }
      row.push_back(ref);
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Energy savings (WS, gs=1): ";
  for (size_t m = 0; m < 3; ++m) {
    const double e = normalized_energy(Dataflow::kWS, models[m], arch,
                                       PsumConfig::apsq_int8(1));
    std::cout << models[m].name << " " << Table::pct(1.0 - e) << "  ";
  }
  std::cout << "\n(paper: 50% / 87% / 68%)\n";
  return 0;
}
