// Simulator-in-the-loop DSE throughput — the fidelity/speed trade the
// evaluator's EvalBackend option exposes.
//
// Three sections:
//   1. analytic vs sim backend over the smoke space at 1 and N threads
//      (points/s, front size over all four objectives);
//   2. layer-parallel run_workload scaling on one workload (threads 1..N);
//   3. persistent-pool reuse: repeated small parallel_for calls on one
//      long-lived pool vs constructing a fresh pool per call — the number
//      that motivated hoisting pool ownership into the Evaluator.
#include <atomic>
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "models/bert.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void backend_section(int hw) {
  const ConfigSpace space = ConfigSpace::smoke();
  Table t({"Backend", "Threads", "Time (s)", "Points/s", "Front size"});
  std::vector<int> thread_counts = {1};
  if (hw > 1) thread_counts.push_back(hw);
  for (EvalBackend backend : {EvalBackend::kAnalytic, EvalBackend::kSim}) {
    for (int threads : thread_counts) {
      EvaluatorOptions opt;
      opt.threads = threads;
      opt.backend = backend;
      opt.sim.shrink = 32;
      opt.sim.max_dim = 48;
      Evaluator eval(opt);
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<EvalResult> results = eval.evaluate_space(space);
      const double secs = seconds_since(t0);
      t.add_row({to_string(backend), std::to_string(threads),
                 Table::num(secs, 3),
                 Table::num(static_cast<double>(space.size()) / secs, 1),
                 std::to_string(pareto_front_by_workload(results).size())});
    }
  }
  std::cout << "--- backend comparison (smoke space, " << space.size()
            << " points, shrink 32 / max-dim 48) ---\n";
  t.print(std::cout);
}

void layer_parallel_section(int hw) {
  const Workload bert = bert_base_workload();
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.psum = PsumConfig::apsq_int8(2);
  Table t({"Threads", "Time (s)", "Speedup", "Calibrations"});
  double base = 0.0;
  std::vector<int> thread_counts = {1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);
  for (int threads : thread_counts) {
    WorkloadRunOptions opt;
    opt.shrink = 8;
    opt.max_dim = 96;
    opt.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const WorkloadRunResult r = run_workload(bert, cfg, opt);
    const double secs = seconds_since(t0);
    if (threads == 1) base = secs;
    t.add_row({std::to_string(threads), Table::num(secs, 3),
               base > 0.0 ? Table::ratio(base / secs) : "-",
               std::to_string(r.calibration_count)});
  }
  std::cout << "\n--- layer-parallel run_workload (bert, shrink 8 / max-dim "
               "96, APSQ INT8 gs2) ---\n";
  t.print(std::cout);
}

void pool_reuse_section(int hw) {
  const int threads = hw > 1 ? hw : 2;
  constexpr int kCalls = 300;
  constexpr index_t kTasksPerCall = 64;
  std::atomic<i64> sink{0};  // keeps the task from being optimized away
  auto tiny_task = [&](index_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  };

  const auto t0 = std::chrono::steady_clock::now();
  {
    WorkStealingPool pool(threads);
    for (int c = 0; c < kCalls; ++c) pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double reused = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  for (int c = 0; c < kCalls; ++c) {
    WorkStealingPool pool(threads);  // spawn + join per call (old behaviour)
    pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double fresh = seconds_since(t1);

  std::cout << "\n--- pool reuse (" << kCalls << " × parallel_for("
            << kTasksPerCall << " tiny tasks), " << threads << " threads) ---\n";
  Table t({"Strategy", "Total (s)", "Per call (us)", "Speedup"});
  t.add_row({"fresh pool per call", Table::num(fresh, 3),
             Table::num(fresh / kCalls * 1e6, 1), "-"});
  t.add_row({"one persistent pool", Table::num(reused, 3),
             Table::num(reused / kCalls * 1e6, 1),
             Table::ratio(fresh / reused)});
  t.print(std::cout);
}

}  // namespace

int main() {
  const int hw = WorkStealingPool::hardware_threads();
  std::cout << "=== sim-backend DSE sweep (hardware threads: " << hw
            << ") ===\n\n";
  backend_section(hw);
  layer_parallel_section(hw);
  pool_reuse_section(hw);
  return 0;
}
