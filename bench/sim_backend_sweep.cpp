// Simulator-in-the-loop DSE throughput — the fidelity/speed trade the
// evaluator's EvalBackend option exposes.
//
// Five sections:
//   1. analytic vs sim backend over the smoke space at 1 and N threads
//      (points/s, front size over all four objectives);
//   2. nested (evaluator × layer) parallelism on a point list smaller
//      than the machine: inner-serial (the old behaviour, where a
//      parallel evaluator forced each point's layers serial) vs nested
//      scopes on the shared pool — the tentpole speedup;
//   3. layer-parallel run_workload scaling on one workload;
//   4. persistent-pool reuse: repeated small parallel_for calls on one
//      long-lived pool vs constructing a fresh pool per call;
//   5. Pareto-front extraction throughput on a large synthetic result set
//      (the sort-based sweep that replaced the O(n²) scan).
#include <atomic>
#include <chrono>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "models/bert.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void backend_section(int hw) {
  const ConfigSpace space = ConfigSpace::smoke();
  Table t({"Backend", "Threads", "Time (s)", "Points/s", "Front size"});
  std::vector<int> thread_counts = {1};
  if (hw > 1) thread_counts.push_back(hw);
  for (EvalBackend backend : {EvalBackend::kAnalytic, EvalBackend::kSim}) {
    for (int threads : thread_counts) {
      EvaluatorOptions opt;
      opt.threads = threads;
      opt.backend = backend;
      opt.sim.shrink = 32;
      opt.sim.max_dim = 48;
      Evaluator eval(opt);
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<EvalResult> results = eval.evaluate_space(space);
      const double secs = seconds_since(t0);
      t.add_row({to_string(backend), std::to_string(threads),
                 Table::num(secs, 3),
                 Table::num(static_cast<double>(space.size()) / secs, 1),
                 std::to_string(pareto_front_by_workload(results).size())});
    }
  }
  std::cout << "--- backend comparison (smoke space, " << space.size()
            << " points, shrink 32 / max-dim 48) ---\n";
  t.print(std::cout);
}

void nested_parallel_section(int hw) {
  // Two sim-heavy points — fewer points than cores, so point-level
  // parallelism alone cannot fill the machine. Before the shared pool,
  // a parallel evaluator forced each point's layer loop serial
  // (sim.threads was ignored); nested scopes let the idle workers take
  // the layer-level work instead.
  std::vector<DesignPoint> pts(2);
  pts[0].workload = "bert";
  pts[0].psum = PsumConfig::apsq_int8(2);
  pts[1].workload = "bert";
  pts[1].psum = PsumConfig::baseline_int32();

  auto timed = [&](int threads, int sim_threads) {
    EvaluatorOptions opt;
    opt.threads = threads;
    opt.backend = EvalBackend::kSim;
    opt.sim.shrink = 8;
    opt.sim.max_dim = 96;
    opt.sim.threads = sim_threads;
    Evaluator eval(opt);  // fresh evaluator: no cache reuse between rows
    const auto t0 = std::chrono::steady_clock::now();
    eval.evaluate_points(pts);
    return seconds_since(t0);
  };

  const double serial = timed(1, 1);
  const double inner_serial = timed(hw, 1);
  const double nested = timed(hw, hw);

  std::cout << "\n--- nested (evaluator x layer) parallelism (2 bert points, "
               "shrink 8 / max-dim 96, "
            << hw << " threads) ---\n";
  Table t({"Configuration", "Time (s)", "Speedup vs inner-serial"});
  t.add_row({"fully serial (1 thread)", Table::num(serial, 3), "-"});
  t.add_row({"points parallel, layers serial (old behaviour)",
             Table::num(inner_serial, 3), "-"});
  t.add_row({"nested point x layer scopes (shared pool)",
             Table::num(nested, 3), Table::ratio(inner_serial / nested)});
  t.print(std::cout);
}

void layer_parallel_section(int hw) {
  const Workload bert = bert_base_workload();
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.psum = PsumConfig::apsq_int8(2);
  // threads == 1 runs the layer loop inline; threads > 1 runs it on the
  // process-wide shared pool (width fixed at hardware_threads).
  Table t({"Mode", "Time (s)", "Speedup", "Calibrations"});
  double base = 0.0;
  for (int threads : {1, hw > 1 ? hw : 2}) {
    WorkloadRunOptions opt;
    opt.shrink = 8;
    opt.max_dim = 96;
    opt.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const WorkloadRunResult r = run_workload(bert, cfg, opt);
    const double secs = seconds_since(t0);
    if (threads == 1) base = secs;
    t.add_row({threads == 1 ? "serial" : "shared pool",
               Table::num(secs, 3),
               threads == 1 ? "-" : Table::ratio(base / secs),
               std::to_string(r.calibration_count)});
  }
  std::cout << "\n--- layer-parallel run_workload (bert, shrink 8 / max-dim "
               "96, APSQ INT8 gs2) ---\n";
  t.print(std::cout);
}

void pool_reuse_section(int hw) {
  const int threads = hw > 1 ? hw : 2;
  constexpr int kCalls = 300;
  constexpr index_t kTasksPerCall = 64;
  std::atomic<i64> sink{0};  // keeps the task from being optimized away
  auto tiny_task = [&](index_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  };

  const auto t0 = std::chrono::steady_clock::now();
  {
    WorkStealingPool pool(threads);
    for (int c = 0; c < kCalls; ++c) pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double reused = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  for (int c = 0; c < kCalls; ++c) {
    WorkStealingPool pool(threads);  // spawn + join per call (old behaviour)
    pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double fresh = seconds_since(t1);

  std::cout << "\n--- pool reuse (" << kCalls << " × parallel_for("
            << kTasksPerCall << " tiny tasks), " << threads << " threads) ---\n";
  Table t({"Strategy", "Total (s)", "Per call (us)", "Speedup"});
  t.add_row({"fresh pool per call", Table::num(fresh, 3),
             Table::num(fresh / kCalls * 1e6, 1), "-"});
  t.add_row({"one persistent pool", Table::num(reused, 3),
             Table::num(reused / kCalls * 1e6, 1),
             Table::ratio(fresh / reused)});
  t.print(std::cout);
}

void pareto_extraction_section() {
  // Synthetic 20k-point result set on a coarse objective grid (plenty of
  // dominated points and ties) — front extraction must not stall sweeps.
  Rng rng(42);
  std::vector<EvalResult> pts;
  pts.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    EvalResult r;
    r.point.workload = "w";
    r.point.psum = PsumConfig::apsq_bits(4 + (i % 13), 1 + (i % 4));
    r.point.acc.po = 1 + (i / 52) % 64;
    r.point.acc.pci = 1 + (i / 3328) % 8;
    r.obj.energy_pj = rng.uniform(0, 8);
    r.obj.area_um2 = rng.uniform(0, 8);
    r.obj.error = rng.uniform(0, 8);
    r.obj.latency_s = rng.uniform(0, 8);
    pts.push_back(r);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const size_t front = pareto_front(pts).size();
  const double secs = seconds_since(t0);
  std::cout << "\n--- Pareto extraction (sort-based sweep, 20000 points) ---\n"
            << "front " << front << " points in " << Table::num(secs, 3)
            << " s (" << Table::num(20000.0 / secs, 0) << " points/s)\n";
}

}  // namespace

int main() {
  const int hw = WorkStealingPool::hardware_threads();
  std::cout << "=== sim-backend DSE sweep (hardware threads: " << hw
            << ") ===\n\n";
  backend_section(hw);
  nested_parallel_section(hw);
  layer_parallel_section(hw);
  pool_reuse_section(hw);
  pareto_extraction_section();
  return 0;
}
