// Simulator-in-the-loop DSE throughput — the fidelity/speed trade the
// evaluator's EvalBackend option exposes.
//
// Seven sections:
//   1. analytic vs sim backend over the smoke space at 1 and N threads
//      (points/s, front size over all four objectives);
//   2. mixed-fidelity vs pure calibrated sim on a 78-point space: the
//      wall-time the analytic prefilter saves, at what fraction of the
//      pure-sim front recovered byte-identically;
//   2b. the three mixed promotion rules head to head — fixed ε-band,
//      adaptive front-stability, margin budget — on the same space:
//      points simulated, rounds, front agreement;
//   3. nested (evaluator × layer) parallelism on a point list smaller
//      than the machine: inner-serial (the old behaviour, where a
//      parallel evaluator forced each point's layers serial) vs nested
//      scopes on the shared pool — the tentpole speedup;
//   4. layer-parallel run_workload scaling on one workload;
//   5. persistent-pool reuse: repeated small parallel_for calls on one
//      long-lived pool vs constructing a fresh pool per call;
//   6. Pareto-front extraction throughput on a large synthetic result set
//      (the sort-based sweep that replaced the O(n²) scan).
//
// With --benchmark_out=FILE the section timings are written as
// google-benchmark-style JSON for the bench-regression CI gate
// (tools/check_bench.py).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dse/config_space.hpp"
#include "dse/evaluator.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"
#include "models/bert.hpp"

using namespace apsq;
using namespace apsq::dse;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void backend_section(int hw, apsq::bench::BenchJson& rep) {
  const ConfigSpace space = ConfigSpace::smoke();
  Table t({"Backend", "Threads", "Time (s)", "Points/s", "Front size"});
  std::vector<int> thread_counts = {1};
  if (hw > 1) thread_counts.push_back(hw);
  for (EvalBackend backend : {EvalBackend::kAnalytic, EvalBackend::kSim}) {
    for (int threads : thread_counts) {
      EvaluatorOptions opt;
      opt.threads = threads;
      opt.backend = backend;
      opt.sim.shrink = 32;
      opt.sim.max_dim = 48;
      Evaluator eval(opt);
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<EvalResult> results = eval.evaluate_space(space);
      const double secs = seconds_since(t0);
      rep.add(std::string("sim_backend/") + to_string(backend) +
                  "/threads:" + (threads == 1 ? "1" : "max"),
              secs);
      t.add_row({to_string(backend), std::to_string(threads),
                 Table::num(secs, 3),
                 Table::num(static_cast<double>(space.size()) / secs, 1),
                 std::to_string(pareto_front_by_workload(results).size())});
    }
  }
  std::cout << "--- backend comparison (smoke space, " << space.size()
            << " points, shrink 32 / max-dim 48) ---\n";
  t.print(std::cout);
}

void mixed_vs_sim_section(int hw, apsq::bench::BenchJson& rep) {
  // One workload × all dataflows × the full PSUM axis: 78 points — big
  // enough that the analytic prefilter pays, small enough for CI. Both
  // sweeps use the same scaling, so phase-2 scores are byte-comparable
  // with the pure sim's.
  ConfigSpace space;
  space.workloads = {"bert"};
  space.dataflows = {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS};
  space.psum_configs = ConfigSpace::default_psum_axis();
  space.geometries = {PeGeometry{16, 8, 8}};
  space.buffers = {BufferSizing{}};
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");

  auto opts = [&](EvalBackend backend) {
    EvaluatorOptions o;
    o.threads = hw;
    o.backend = backend;
    o.sim.shrink = 32;
    o.sim.max_dim = 32;
    o.sim.threads = hw;
    return o;
  };

  // Best-of-3 with a fresh evaluator (cold caches, anchor refits) per
  // repetition: these two times feed the bench-regression gate, and a
  // single cold run is too noisy on shared CI runners.
  constexpr int kReps = 3;
  EvaluatorOptions sim_opt = opts(EvalBackend::kSim);
  sim_opt.calibrate = true;  // the fidelity mixed phase 2 must reproduce
  double sim_secs = 0.0;
  std::vector<EvalResult> sres;
  for (int attempt = 0; attempt < kReps; ++attempt) {
    Evaluator sim_eval(sim_opt);
    const auto t0 = std::chrono::steady_clock::now();
    sres = sim_eval.evaluate_space(space);
    const double secs = seconds_since(t0);
    sim_secs = attempt == 0 ? secs : std::min(sim_secs, secs);
  }
  const std::vector<EvalResult> sim_front = pareto_front_by_workload(sres, el);

  EvaluatorOptions mix_opt = opts(EvalBackend::kMixed);
  mix_opt.promote_band = 0.05;
  mix_opt.promote_objectives = el;
  double mixed_secs = 0.0;
  std::vector<EvalResult> mres;
  MixedSweepStats ms;
  for (int attempt = 0; attempt < kReps; ++attempt) {
    Evaluator mix_eval(mix_opt);
    const auto t1 = std::chrono::steady_clock::now();
    mres = mix_eval.evaluate_space(space);
    const double secs = seconds_since(t1);
    mixed_secs = attempt == 0 ? secs : std::min(mixed_secs, secs);
    ms = mix_eval.mixed_stats();
  }
  const std::vector<EvalResult> mixed_front =
      pareto_front_by_workload(promoted_subset(mres), el);

  // Matched front quality: pure-sim front members the mixed front
  // reproduces with byte-identical objectives.
  size_t recovered = 0;
  for (const EvalResult& f : sim_front) {
    for (const EvalResult& m : mixed_front) {
      if (canonical_key(m.point) != canonical_key(f.point)) continue;
      bool same = true;
      for (int k = 0; k < kObjectiveCount && same; ++k) {
        const Objective o = static_cast<Objective>(k);
        same = format_double(m.obj.get(o)) == format_double(f.obj.get(o));
      }
      recovered += same ? 1 : 0;
      break;
    }
  }

  std::cout << "\n--- mixed-fidelity vs pure calibrated sim (" << space.size()
            << " points, band 0.05 over " << el.to_string() << ", " << hw
            << " threads) ---\n";
  Table t({"Backend", "Time (s)", "Points simulated", "Front size",
           "Sim front recovered", "Speedup"});
  t.add_row({"sim+cal", Table::num(sim_secs, 3),
             std::to_string(space.size()), std::to_string(sim_front.size()),
             "-", "-"});
  t.add_row({"mixed", Table::num(mixed_secs, 3), std::to_string(ms.promoted),
             std::to_string(mixed_front.size()),
             std::to_string(recovered) + "/" + std::to_string(sim_front.size()),
             Table::ratio(sim_secs / mixed_secs)});
  t.print(std::cout);
  rep.add("mixed_vs_sim/pure_sim", sim_secs);
  rep.add("mixed_vs_sim/mixed", mixed_secs);
}

void adaptive_vs_fixed_section(int hw, apsq::bench::BenchJson& rep) {
  // Same 78-point space as the mixed-vs-sim section, comparing the three
  // promotion rules of the mixed backend: the hand-tuned fixed band, the
  // adaptive front-stability rule, and a margin budget pinned to the
  // fixed band's point count. The interesting columns are how many points
  // each rule simulates and whether each recovers the same front.
  ConfigSpace space;
  space.workloads = {"bert"};
  space.dataflows = {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS};
  space.psum_configs = ConfigSpace::default_psum_axis();
  space.geometries = {PeGeometry{16, 8, 8}};
  space.buffers = {BufferSizing{}};
  const ObjectiveSet el = ObjectiveSet::parse("energy,latency");

  auto base_opts = [&] {
    EvaluatorOptions o;
    o.threads = hw;
    o.backend = EvalBackend::kMixed;
    o.sim.shrink = 32;
    o.sim.max_dim = 32;
    o.sim.threads = hw;
    o.promote_objectives = el;
    return o;
  };
  constexpr int kReps = 3;
  struct Row {
    const char* name;
    double secs = 0.0;
    MixedSweepStats ms;
    std::string front_csv;
    size_t rounds = 0;
  };
  // Best-of-3 with a fresh evaluator per repetition (cold caches, anchor
  // refits) — these times feed the bench-regression gate.
  auto timed = [&](const char* name, const EvaluatorOptions& opt) {
    Row row;
    row.name = name;
    for (int attempt = 0; attempt < kReps; ++attempt) {
      Evaluator eval(opt);
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<EvalResult> res = eval.evaluate_space(space);
      const double secs = seconds_since(t0);
      row.secs = attempt == 0 ? secs : std::min(row.secs, secs);
      row.ms = eval.mixed_stats();
      row.rounds = eval.mixed_stats().rounds.size();
      row.front_csv =
          results_csv(pareto_front_by_workload(promoted_subset(res), el))
              .to_string();
    }
    return row;
  };

  EvaluatorOptions fixed_opt = base_opts();
  fixed_opt.promote_band = 0.05;
  const Row fixed = timed("fixed band 0.05", fixed_opt);

  EvaluatorOptions adaptive_opt = base_opts();
  adaptive_opt.promote_adaptive = true;
  const Row adaptive = timed("adaptive (front-stability)", adaptive_opt);

  EvaluatorOptions budget_opt = base_opts();
  budget_opt.promote_budget = fixed.ms.promoted;  // same simulation budget
  const Row budget = timed("budget = fixed's count", budget_opt);

  std::cout << "\n--- mixed promotion rules (" << space.size()
            << " points, " << el.to_string() << ", " << hw
            << " threads) ---\n";
  Table t({"Promotion", "Time (s)", "Points simulated", "Rounds",
           "Front == fixed band"});
  for (const Row* r : {&fixed, &adaptive, &budget})
    t.add_row({r->name, Table::num(r->secs, 3),
               std::to_string(r->ms.promoted), std::to_string(r->rounds),
               r == &fixed ? "-"
                           : (r->front_csv == fixed.front_csv ? "yes" : "NO")});
  t.print(std::cout);
  rep.add("mixed_promotion/fixed_band", fixed.secs);
  rep.add("mixed_promotion/adaptive", adaptive.secs);
  rep.add("mixed_promotion/budget", budget.secs);
}

void nested_parallel_section(int hw, apsq::bench::BenchJson& rep) {
  // Two sim-heavy points — fewer points than cores, so point-level
  // parallelism alone cannot fill the machine. Before the shared pool,
  // a parallel evaluator forced each point's layer loop serial
  // (sim.threads was ignored); nested scopes let the idle workers take
  // the layer-level work instead.
  std::vector<DesignPoint> pts(2);
  pts[0].workload = "bert";
  pts[0].psum = PsumConfig::apsq_int8(2);
  pts[1].workload = "bert";
  pts[1].psum = PsumConfig::baseline_int32();

  auto timed = [&](int threads, int sim_threads) {
    EvaluatorOptions opt;
    opt.threads = threads;
    opt.backend = EvalBackend::kSim;
    opt.sim.shrink = 8;
    opt.sim.max_dim = 96;
    opt.sim.threads = sim_threads;
    Evaluator eval(opt);  // fresh evaluator: no cache reuse between rows
    const auto t0 = std::chrono::steady_clock::now();
    eval.evaluate_points(pts);
    return seconds_since(t0);
  };

  const double serial = timed(1, 1);
  const double inner_serial = timed(hw, 1);
  const double nested = timed(hw, hw);
  rep.add("nested/serial", serial);
  rep.add("nested/inner_serial", inner_serial);
  rep.add("nested/nested_scopes", nested);

  std::cout << "\n--- nested (evaluator x layer) parallelism (2 bert points, "
               "shrink 8 / max-dim 96, "
            << hw << " threads) ---\n";
  Table t({"Configuration", "Time (s)", "Speedup vs inner-serial"});
  t.add_row({"fully serial (1 thread)", Table::num(serial, 3), "-"});
  t.add_row({"points parallel, layers serial (old behaviour)",
             Table::num(inner_serial, 3), "-"});
  t.add_row({"nested point x layer scopes (shared pool)",
             Table::num(nested, 3), Table::ratio(inner_serial / nested)});
  t.print(std::cout);
}

void layer_parallel_section(int hw, apsq::bench::BenchJson& rep) {
  const Workload bert = bert_base_workload();
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.psum = PsumConfig::apsq_int8(2);
  // threads == 1 runs the layer loop inline; threads > 1 runs it on the
  // process-wide shared pool (width fixed at hardware_threads).
  Table t({"Mode", "Time (s)", "Speedup", "Calibrations"});
  double base = 0.0;
  for (int threads : {1, hw > 1 ? hw : 2}) {
    WorkloadRunOptions opt;
    opt.shrink = 8;
    opt.max_dim = 96;
    opt.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const WorkloadRunResult r = run_workload(bert, cfg, opt);
    const double secs = seconds_since(t0);
    rep.add(threads == 1 ? "layer_parallel/serial" : "layer_parallel/pool",
            secs);
    if (threads == 1) base = secs;
    t.add_row({threads == 1 ? "serial" : "shared pool",
               Table::num(secs, 3),
               threads == 1 ? "-" : Table::ratio(base / secs),
               std::to_string(r.calibration_count)});
  }
  std::cout << "\n--- layer-parallel run_workload (bert, shrink 8 / max-dim "
               "96, APSQ INT8 gs2) ---\n";
  t.print(std::cout);
}

void pool_reuse_section(int hw, apsq::bench::BenchJson& rep) {
  const int threads = hw > 1 ? hw : 2;
  constexpr int kCalls = 300;
  constexpr index_t kTasksPerCall = 64;
  std::atomic<i64> sink{0};  // keeps the task from being optimized away
  auto tiny_task = [&](index_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  };

  const auto t0 = std::chrono::steady_clock::now();
  {
    WorkStealingPool pool(threads);
    for (int c = 0; c < kCalls; ++c) pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double reused = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  for (int c = 0; c < kCalls; ++c) {
    WorkStealingPool pool(threads);  // spawn + join per call (old behaviour)
    pool.parallel_for(kTasksPerCall, tiny_task);
  }
  const double fresh = seconds_since(t1);
  rep.add("pool/persistent", reused);
  rep.add("pool/fresh_per_call", fresh);

  std::cout << "\n--- pool reuse (" << kCalls << " × parallel_for("
            << kTasksPerCall << " tiny tasks), " << threads << " threads) ---\n";
  Table t({"Strategy", "Total (s)", "Per call (us)", "Speedup"});
  t.add_row({"fresh pool per call", Table::num(fresh, 3),
             Table::num(fresh / kCalls * 1e6, 1), "-"});
  t.add_row({"one persistent pool", Table::num(reused, 3),
             Table::num(reused / kCalls * 1e6, 1),
             Table::ratio(fresh / reused)});
  t.print(std::cout);
}

void pareto_extraction_section(apsq::bench::BenchJson& rep) {
  // Synthetic 20k-point result set on a coarse objective grid (plenty of
  // dominated points and ties) — front extraction must not stall sweeps.
  Rng rng(42);
  std::vector<EvalResult> pts;
  pts.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    EvalResult r;
    r.point.workload = "w";
    r.point.psum = PsumConfig::apsq_bits(4 + (i % 13), 1 + (i % 4));
    r.point.acc.po = 1 + (i / 52) % 64;
    r.point.acc.pci = 1 + (i / 3328) % 8;
    r.obj.energy_pj = rng.uniform(0, 8);
    r.obj.area_um2 = rng.uniform(0, 8);
    r.obj.error = rng.uniform(0, 8);
    r.obj.latency_s = rng.uniform(0, 8);
    pts.push_back(r);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const size_t front = pareto_front(pts).size();
  const double secs = seconds_since(t0);
  rep.add("pareto_front/extract_20k", secs);
  std::cout << "\n--- Pareto extraction (sort-based sweep, 20000 points) ---\n"
            << "front " << front << " points in " << Table::num(secs, 3)
            << " s (" << Table::num(20000.0 / secs, 0) << " points/s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  apsq::bench::BenchJson rep(argc, argv);
  if (!rep.ok()) return 1;
  const int hw = WorkStealingPool::hardware_threads();
  std::cout << "=== sim-backend DSE sweep (hardware threads: " << hw
            << ") ===\n\n";
  backend_section(hw, rep);
  mixed_vs_sim_section(hw, rep);
  adaptive_vs_fixed_section(hw, rep);
  nested_parallel_section(hw, rep);
  layer_parallel_section(hw, rep);
  pool_reuse_section(hw, rep);
  pareto_extraction_section(rep);
  return rep.flush() ? 0 : 1;
}
