// Fig. 5 — Normalized energy AND accuracy across gs settings for MRPC
// under the WS dataflow on BERT-Base, at PSUM precisions INT4/INT6/INT8.
//
// Paper readings: normalized energy 0.41 (INT4), 0.45 (INT6), 0.50 (INT8),
// flat across gs; accuracy drops sharply below INT8 — the basis for the
// paper's conclusion that "adopting INT8 precision for APSQ is technically
// optimal" (§IV-B).
#include <iostream>

#include "bench_accuracy.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "tasks/glue_proxy.hpp"

using namespace apsq;
using bench::AccuracyRunConfig;
using bench::run_accuracy_task;

int main() {
  std::cout << "=== Fig. 5: MRPC, WS dataflow, BERT-Base — PSUM precision "
               "sweep ===\n\n";

  const Workload bert = bert_base_workload();
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();

  // Energy half (model-based, instantaneous).
  std::cout << "--- Normalized energy (WS, vs INT32 baseline) ---\n";
  Table te({"PSUM bits", "gs=1", "gs=2", "gs=3", "gs=4", "paper"});
  const double paper_energy[3] = {0.41, 0.45, 0.50};
  int row = 0;
  for (int bits : {4, 6, 8}) {
    std::vector<std::string> cells{std::string("INT") + std::to_string(bits)};
    for (index_t gs = 1; gs <= 4; ++gs)
      cells.push_back(Table::num(
          normalized_energy(Dataflow::kWS, bert, arch,
                            PsumConfig::apsq_bits(bits, gs)),
          3));
    cells.push_back(Table::num(paper_energy[row++], 2) + " (flat)");
    te.add_row(cells);
  }
  te.print(std::cout);

  // Accuracy half (QAT on the MRPC proxy).
  std::cout << "\n--- MRPC-proxy accuracy (training 1 baseline + 12 APSQ "
               "students) ---\n";
  const nn::Dataset ds =
      tasks::make_synthetic_dataset(tasks::glue_proxy_spec("MRPC"));
  Table ta({"PSUM bits", "Baseline", "gs=1", "gs=2", "gs=3", "gs=4"});
  for (int bits : {4, 6, 8}) {
    AccuracyRunConfig rc;
    rc.epochs = 6;
    rc.seed = 53 + static_cast<u64>(bits);
    const bench::TaskResult r =
        run_accuracy_task("MRPC", ds, rc, /*psum_bits=*/bits);
    ta.add_row({std::string("INT") + std::to_string(bits),
                Table::num(r.baseline, 2), Table::num(r.gs[0], 2),
                Table::num(r.gs[1], 2), Table::num(r.gs[2], 2),
                Table::num(r.gs[3], 2)});
  }
  ta.print(std::cout);

  std::cout << "\nExpected shape: energy shrinks only mildly below INT8 while "
               "accuracy degrades — INT8 APSQ is the sweet spot (paper "
               "MRPC baseline 87.99).\n";
  return 0;
}
