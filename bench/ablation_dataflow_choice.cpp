// Ablation — dataflow choice with and without APSQ.
//
// The intro's framing: IS/WS beat OS on operand reuse but pay for
// high-precision PSUM traffic. APSQ removes most of that penalty, which
// can flip the energy-optimal dataflow per model. This ablation also
// reports the performance model's latency/utilization so the energy story
// is grounded in throughput.
#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "models/efficientvit.hpp"
#include "models/llama2.hpp"
#include "models/segformer.hpp"
#include "sim/performance.hpp"

using namespace apsq;

namespace {

const char* best_of(double is, double ws, double os) {
  if (is <= ws && is <= os) return "IS";
  if (ws <= is && ws <= os) return "WS";
  return "OS";
}

}  // namespace

int main() {
  std::cout << "=== Ablation: energy-optimal dataflow, INT32 vs APSQ ===\n\n";

  struct Entry {
    Workload w;
    AcceleratorConfig arch;
  };
  const Entry entries[] = {
      {bert_base_workload(), AcceleratorConfig::dnn_default()},
      {segformer_b0_workload(), AcceleratorConfig::dnn_default()},
      {efficientvit_b1_workload(), AcceleratorConfig::dnn_default()},
      {llama2_7b_workload(4096), AcceleratorConfig::llm_default()},
  };

  Table t({"Model", "IS int32", "WS int32", "OS", "best int32", "IS apsq",
           "WS apsq", "best w/ APSQ"});
  for (const auto& e : entries) {
    auto energy = [&](Dataflow df, const PsumConfig& pc) {
      return workload_energy(df, e.w, e.arch, pc).total_pj();
    };
    const double norm = energy(Dataflow::kOS, PsumConfig::baseline_int32());
    const double is32 = energy(Dataflow::kIS, PsumConfig::baseline_int32());
    const double ws32 = energy(Dataflow::kWS, PsumConfig::baseline_int32());
    const double is8 = energy(Dataflow::kIS, PsumConfig::apsq_int8(2));
    const double ws8 = energy(Dataflow::kWS, PsumConfig::apsq_int8(2));
    t.add_row({e.w.name, Table::num(is32 / norm, 2), Table::num(ws32 / norm, 2),
               "1.00", best_of(is32, ws32, norm), Table::num(is8 / norm, 2),
               Table::num(ws8 / norm, 2),
               best_of(is8, ws8, norm)});
  }
  t.print(std::cout);
  std::cout << "(all columns normalized to each model's OS energy)\n\n";

  std::cout << "--- Performance model (WS dataflow, 250 MHz, DDR3) ---\n";
  Table tp({"Model", "Latency int32 (ms)", "Latency APSQ (ms)", "Speedup",
            "Utilization", "DRAM-bound layers"});
  for (const auto& e : entries) {
    const WorkloadPerformance base = workload_performance(
        Dataflow::kWS, e.w, e.arch, PsumConfig::baseline_int32());
    const WorkloadPerformance apsq = workload_performance(
        Dataflow::kWS, e.w, e.arch, PsumConfig::apsq_int8(2));
    tp.add_row({e.w.name, Table::num(base.total_latency_s * 1e3, 2),
                Table::num(apsq.total_latency_s * 1e3, 2),
                Table::ratio(base.total_latency_s / apsq.total_latency_s, 2),
                Table::pct(apsq.mean_utilization),
                std::to_string(apsq.dram_bound_layers) + "/" +
                    std::to_string(apsq.layer_count)});
  }
  tp.print(std::cout);
  std::cout << "\nAPSQ's energy win is also a latency win wherever PSUM "
               "spill traffic was the DRAM bottleneck.\n";
  return 0;
}
