// Kernel micro-benchmarks (google-benchmark): throughput of the building
// blocks — integer GEMM, APSQ accumulation (float reference vs integer
// shift path vs RAE structural model), and the analytical energy model.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "models/bert.hpp"
#include "quant/apsq.hpp"
#include "quant/apsq_int.hpp"
#include "quant/grouping.hpp"
#include "rae/rae_engine.hpp"
#include "tensor/matmul.hpp"

namespace apsq {
namespace {

TensorI8 random_i8(Shape s, Rng& rng) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
  return t;
}

void BM_MatmulI8(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  const TensorI8 a = random_i8({n, n}, rng);
  const TensorI8 b = random_i8({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul_i8(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulI8)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulF32(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(2);
  TensorF a({n, n}), b({n, n});
  for (index_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GroupedApsqFloat(benchmark::State& state) {
  const index_t gs = state.range(0);
  const index_t np = 96, elems = 128;
  Rng rng(3);
  std::vector<TensorF> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorF tile({elems});
    for (index_t i = 0; i < elems; ++i)
      tile[i] = static_cast<float>(std::lround(rng.normal(0.0, 500.0)));
    tiles.push_back(std::move(tile));
  }
  for (auto _ : state) {
    GroupedApsq::Options opt;
    opt.group_size = gs;
    opt.num_tiles = np;
    opt.scales = {32.0};
    GroupedApsq acc({elems}, opt);
    for (const auto& t : tiles) acc.push(t);
    benchmark::DoNotOptimize(acc.output());
  }
  state.SetItemsProcessed(state.iterations() * np * elems);
}
BENCHMARK(BM_GroupedApsqFloat)->Arg(1)->Arg(2)->Arg(4);

void BM_GroupedApsqInt(benchmark::State& state) {
  const index_t gs = state.range(0);
  const index_t np = 96, elems = 128;
  Rng rng(4);
  std::vector<TensorI32> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorI32 tile({elems});
    for (index_t i = 0; i < elems; ++i)
      tile[i] = static_cast<i32>(static_cast<i64>(rng.next_u64() % 2001) - 1000);
    tiles.push_back(std::move(tile));
  }
  for (auto _ : state) {
    GroupedApsqInt::Options opt;
    opt.group_size = gs;
    opt.num_tiles = np;
    opt.exponents = {5};
    GroupedApsqInt acc({elems}, opt);
    for (const auto& t : tiles) acc.push(t);
    benchmark::DoNotOptimize(acc.output());
  }
  state.SetItemsProcessed(state.iterations() * np * elems);
}
BENCHMARK(BM_GroupedApsqInt)->Arg(1)->Arg(2)->Arg(4);

void BM_RaeEngine(benchmark::State& state) {
  const index_t gs = state.range(0);
  const index_t np = 96, elems = 128;
  Rng rng(5);
  std::vector<TensorI32> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorI32 tile({elems});
    for (index_t i = 0; i < elems; ++i)
      tile[i] = static_cast<i32>(static_cast<i64>(rng.next_u64() % 2001) - 1000);
    tiles.push_back(std::move(tile));
  }
  for (auto _ : state) {
    RaeEngine::Options opt;
    opt.group_size = gs;
    opt.num_tiles = np;
    opt.exponents = {5};
    RaeEngine engine({elems}, opt);
    for (const auto& t : tiles) engine.push(t);
    benchmark::DoNotOptimize(engine.output());
  }
  state.SetItemsProcessed(state.iterations() * np * elems);
}
BENCHMARK(BM_RaeEngine)->Arg(1)->Arg(4);

void BM_WorkloadEnergy(benchmark::State& state) {
  const Workload bert = bert_base_workload();
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        workload_energy(Dataflow::kWS, bert, arch, PsumConfig::apsq_int8(2)));
}
BENCHMARK(BM_WorkloadEnergy);

}  // namespace
}  // namespace apsq
