#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apsq::nn {
namespace {

TEST(ArgmaxRows, PicksLargest) {
  TensorF logits({2, 3}, std::vector<float>{0.1f, 0.9f, 0.0f, 5.0f, 1.0f, 2.0f});
  const auto pred = argmax_rows(logits);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 0);
}

TEST(Accuracy, Percentage) {
  EXPECT_DOUBLE_EQ(accuracy_pct({1, 0, 1, 1}, {1, 0, 0, 1}), 75.0);
  EXPECT_DOUBLE_EQ(accuracy_pct({1}, {1}), 100.0);
  EXPECT_DOUBLE_EQ(accuracy_pct({0}, {1}), 0.0);
}

TEST(Matthews, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(matthews_corr_pct({1, 0, 1, 0}, {1, 0, 1, 0}), 100.0);
}

TEST(Matthews, InvertedPrediction) {
  EXPECT_DOUBLE_EQ(matthews_corr_pct({0, 1, 0, 1}, {1, 0, 1, 0}), -100.0);
}

TEST(Matthews, KnownConfusionMatrix) {
  // tp=1 tn=1 fp=1 fn=1 -> MCC = 0.
  EXPECT_DOUBLE_EQ(matthews_corr_pct({1, 0, 1, 0}, {1, 0, 0, 1}), 0.0);
}

TEST(Matthews, DegenerateAllOneClass) {
  EXPECT_DOUBLE_EQ(matthews_corr_pct({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(Pearson, PerfectLinearCorrelation) {
  EXPECT_NEAR(pearson_pct({1, 2, 3, 4}, {2, 4, 6, 8}), 100.0, 1e-9);
  EXPECT_NEAR(pearson_pct({1, 2, 3, 4}, {-2, -4, -6, -8}), -100.0, 1e-9);
}

TEST(Pearson, KnownValue) {
  // Hand-computed: x = {1,2,3}, y = {1,3,2} -> r = 0.5.
  EXPECT_NEAR(pearson_pct({1, 2, 3}, {1, 3, 2}), 50.0, 1e-9);
}

TEST(Pearson, ZeroVarianceIsZero) {
  EXPECT_DOUBLE_EQ(pearson_pct({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(MeanIou, PerfectSegmentation) {
  EXPECT_DOUBLE_EQ(mean_iou_pct({0, 1, 2, 0}, {0, 1, 2, 0}, 3), 100.0);
}

TEST(MeanIou, KnownValue) {
  // classes 0 and 1, predictions {0,0,1,1}, targets {0,1,1,1}:
  // class 0: inter 1, union 2 -> 0.5; class 1: inter 2, union 3 -> 2/3.
  EXPECT_NEAR(mean_iou_pct({0, 0, 1, 1}, {0, 1, 1, 1}, 2),
              100.0 * (0.5 + 2.0 / 3.0) / 2.0, 1e-9);
}

TEST(MeanIou, IgnoresAbsentClasses) {
  // class 2 never appears in pred or target -> averaged over 2 classes.
  EXPECT_DOUBLE_EQ(mean_iou_pct({0, 1}, {0, 1}, 3), 100.0);
}

TEST(MeanIou, RejectsOutOfRangeClass) {
  EXPECT_THROW(mean_iou_pct({3}, {0}, 3), std::logic_error);
}

}  // namespace
}  // namespace apsq::nn
