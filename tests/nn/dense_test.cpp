#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {
namespace {

TEST(Dense, ForwardIsAffine) {
  Rng rng(1);
  Dense d(3, 2, rng);
  d.weight().value = TensorF({3, 2}, std::vector<float>{1, 0, 0, 1, 1, 1});
  d.bias().value = TensorF({2}, std::vector<float>{0.5f, -0.5f});
  TensorF x({1, 3}, std::vector<float>{1, 2, 3});
  const TensorF y = d.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 1 + 3 + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 2 + 3 - 0.5f);
}

TEST(Dense, GradCheck) {
  Rng rng(2);
  Dense d(5, 4, rng);
  gradcheck(d, random_tensor({6, 5}, rng));
}

TEST(Dense, BiasGradIsColumnSum) {
  Rng rng(3);
  Dense d(3, 2, rng);
  const TensorF x = random_tensor({4, 3}, rng);
  d.forward(x);
  TensorF dy({4, 2}, 1.0f);
  d.zero_grad();
  d.backward(dy);
  EXPECT_FLOAT_EQ(d.bias().grad(0), 4.0f);
  EXPECT_FLOAT_EQ(d.bias().grad(1), 4.0f);
}

TEST(Dense, GradientsAccumulateAcrossBackwards) {
  Rng rng(4);
  Dense d(3, 2, rng);
  const TensorF x = random_tensor({2, 3}, rng);
  TensorF dy({2, 2}, 1.0f);
  d.zero_grad();
  d.forward(x);
  d.backward(dy);
  const TensorF once = d.weight().grad;
  d.forward(x);
  d.backward(dy);
  for (index_t i = 0; i < once.numel(); ++i)
    EXPECT_NEAR(d.weight().grad[i], 2 * once[i], 1e-5);
}

TEST(Dense, ParamCollection) {
  Rng rng(5);
  Dense d(3, 2, rng);
  EXPECT_EQ(d.params().size(), 2u);
  EXPECT_EQ(d.num_params(), 3 * 2 + 2);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(6);
  Dense d(3, 2, rng);
  EXPECT_THROW(d.forward(TensorF({1, 4})), std::logic_error);
}

}  // namespace
}  // namespace apsq::nn
