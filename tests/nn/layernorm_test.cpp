#include "nn/layernorm.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace apsq::nn {
namespace {

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(8);
  Rng rng(1);
  const TensorF x = random_tensor({4, 8}, rng, 3.0);
  const TensorF y = ln.forward(x);
  for (index_t i = 0; i < 4; ++i) {
    double mean = 0, var = 0;
    for (index_t j = 0; j < 8; ++j) mean += y(i, j);
    mean /= 8;
    for (index_t j = 0; j < 8; ++j) var += (y(i, j) - mean) * (y(i, j) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, AffineParametersApplied) {
  LayerNorm ln(2);
  std::vector<Param*> ps;
  ln.collect_params(ps);
  ps[0]->value.fill(2.0f);  // gamma
  ps[1]->value.fill(1.0f);  // beta
  TensorF x({1, 2}, std::vector<float>{-1, 1});
  const TensorF y = ln.forward(x);
  EXPECT_NEAR(y(0, 0), 2.0f * -1.0f + 1.0f, 1e-3);
  EXPECT_NEAR(y(0, 1), 2.0f * 1.0f + 1.0f, 1e-3);
}

TEST(LayerNorm, GradCheck) {
  Rng rng(2);
  LayerNorm ln(6);
  gradcheck(ln, random_tensor({3, 6}, rng, 2.0));
}

TEST(LayerNorm, InvariantToRowShift) {
  LayerNorm ln(8);
  Rng rng(3);
  const TensorF x = random_tensor({2, 8}, rng);
  TensorF xs = x;
  for (index_t j = 0; j < 8; ++j) xs(0, j) += 100.0f;
  const TensorF y1 = ln.forward(x);
  const TensorF y2 = ln.forward(xs);
  for (index_t j = 0; j < 8; ++j) EXPECT_NEAR(y1(0, j), y2(0, j), 1e-2);
}

}  // namespace
}  // namespace apsq::nn
