#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace apsq::nn {
namespace {

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r;
  TensorF x({4}, std::vector<float>{-1, 0, 2, -3});
  const TensorF y = r.forward(x);
  EXPECT_FLOAT_EQ(y(0), 0);
  EXPECT_FLOAT_EQ(y(1), 0);
  EXPECT_FLOAT_EQ(y(2), 2);
  EXPECT_FLOAT_EQ(y(3), 0);
}

TEST(ReLU, BackwardMasks) {
  ReLU r;
  TensorF x({3}, std::vector<float>{-1, 1, 2});
  r.forward(x);
  TensorF dy({3}, std::vector<float>{5, 5, 5});
  const TensorF dx = r.backward(dy);
  EXPECT_FLOAT_EQ(dx(0), 0);
  EXPECT_FLOAT_EQ(dx(1), 5);
  EXPECT_FLOAT_EQ(dx(2), 5);
}

TEST(Gelu, KnownValues) {
  Gelu g;
  TensorF x({3}, std::vector<float>{0.0f, 10.0f, -10.0f});
  const TensorF y = g.forward(x);
  EXPECT_NEAR(y(0), 0.0f, 1e-6);
  EXPECT_NEAR(y(1), 10.0f, 1e-3);  // gelu(x) -> x for large x
  EXPECT_NEAR(y(2), 0.0f, 1e-3);   // -> 0 for very negative x
}

TEST(Gelu, GradCheck) {
  Rng rng(1);
  Gelu g;
  gradcheck(g, random_tensor({4, 5}, rng), 1e-2);
}

TEST(Gelu, MonotoneAboveZero) {
  Gelu g;
  TensorF x({2}, std::vector<float>{1.0f, 2.0f});
  const TensorF y = g.forward(x);
  EXPECT_LT(y(0), y(1));
}

}  // namespace
}  // namespace apsq::nn
