#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "tasks/students.hpp"
#include "tasks/synthetic.hpp"

namespace apsq::nn {
namespace {

tasks::SyntheticSpec tiny_spec() {
  tasks::SyntheticSpec spec;
  spec.name = "tiny";
  spec.feature_dim = 16;
  spec.num_classes = 2;
  spec.train_samples = 512;
  spec.test_samples = 256;
  spec.label_noise = 0.02;
  spec.seed = 5;
  return spec;
}

TEST(Trainer, Fp32StudentLearnsAboveChance) {
  const Dataset ds = tasks::make_synthetic_dataset(tiny_spec());
  Rng rng(1);
  auto net = tasks::make_mlp({16, 32, 1, 2}, std::nullopt, rng);
  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.lr = 3e-3f;
  const TrainOutcome out = train_model(*net, ds, cfg);
  EXPECT_GT(out.test_metric_pct, 75.0);
  EXPECT_GT(out.steps, 0);
}

TEST(Trainer, QuantizedStudentLearns) {
  const Dataset ds = tasks::make_synthetic_dataset(tiny_spec());
  Rng rng(2);
  auto net = tasks::make_mlp({16, 32, 1, 2},
                             QatConfig::apsq_w8a8(2, 8), rng);
  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.lr = 3e-3f;
  const TrainOutcome out = train_model(*net, ds, cfg);
  EXPECT_GT(out.test_metric_pct, 70.0);
}

TEST(Trainer, DistillationRuns) {
  const Dataset ds = tasks::make_synthetic_dataset(tiny_spec());
  Rng rng(3);
  auto teacher = tasks::make_mlp({16, 32, 1, 2}, std::nullopt, rng);
  TrainConfig tcfg;
  tcfg.epochs = 15;
  tcfg.lr = 3e-3f;
  train_model(*teacher, ds, tcfg);

  Rng rng2(4);
  auto student = tasks::make_mlp({16, 32, 1, 2},
                                 QatConfig::baseline_w8a8(), rng2);
  TrainConfig scfg;
  scfg.epochs = 10;
  scfg.lr = 3e-3f;
  scfg.kd_lambda = 0.5f;
  const TrainOutcome out = train_model(*student, ds, scfg, teacher.get());
  EXPECT_GT(out.test_metric_pct, 70.0);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const Dataset ds = tasks::make_synthetic_dataset(tiny_spec());
  auto run = [&] {
    Rng rng(7);
    auto net = tasks::make_mlp({16, 16, 1, 2}, std::nullopt, rng);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.lr = 1e-3f;
    return train_model(*net, ds, cfg).test_metric_pct;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Trainer, RegressionTaskWithPearson) {
  tasks::SyntheticSpec spec = tiny_spec();
  spec.regression = true;
  spec.metric = Metric::kPearson;
  const Dataset ds = tasks::make_synthetic_dataset(spec);
  Rng rng(8);
  auto net = tasks::make_mlp({16, 32, 1, 1}, std::nullopt, rng);
  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.lr = 3e-3f;
  const TrainOutcome out = train_model(*net, ds, cfg);
  EXPECT_GT(out.test_metric_pct, 60.0);  // strong positive correlation
}

TEST(Trainer, EvaluateRestoresTrainingMode) {
  const Dataset ds = tasks::make_synthetic_dataset(tiny_spec());
  Rng rng(9);
  auto net = tasks::make_mlp({16, 16, 1, 2}, std::nullopt, rng);
  net->set_training(true);
  evaluate_model(*net, ds);
  EXPECT_TRUE(net->training());
}

TEST(MetricNames, Strings) {
  EXPECT_STREQ(to_string(Metric::kAccuracy), "accuracy");
  EXPECT_STREQ(to_string(Metric::kMiou), "mIoU");
}

}  // namespace
}  // namespace apsq::nn
