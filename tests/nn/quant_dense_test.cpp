#include "nn/quant_dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/dense.hpp"
#include "quant/lsq.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {
namespace {

TEST(QuantDense, ExactModeMatchesQuantizedOperandsMatmul) {
  Rng rng(1);
  QuantDense qd(16, 8, QatConfig::baseline_w8a8(), rng);
  const TensorF x = random_tensor({4, 16}, rng);
  const TensorF y = qd.forward(x);
  // Recompute: LSQ-quantize x and W with the layer's steps, matmul, bias.
  const TensorF xq = lsq_forward(x, qd.alpha_act(), QuantSpec::int8()).y;
  const TensorF wq =
      lsq_forward(qd.weight().value, qd.alpha_weight(), QuantSpec::int8()).y;
  const TensorF ref = add_row_bias(matmul(xq, wq), qd.bias().value);
  EXPECT_LT(max_abs_diff(y, ref), 1e-5f);
}

TEST(QuantDense, ApsqModeAddsBoundedPsumNoise) {
  Rng rng(2);
  QuantDense exact(32, 8, QatConfig::baseline_w8a8(), rng);
  Rng rng2(2);
  QuantDense apsq(32, 8, QatConfig::apsq_w8a8(1, 8), rng2);
  const TensorF x = random_tensor({8, 32}, rng);
  const TensorF ye = exact.forward(x);
  const TensorF ya = apsq.forward(x);
  const float diff = max_abs_diff(ye, ya);
  EXPECT_GT(diff, 0.0f);  // quantization noise present
  // Bounded by np·α_p/2 with α_p = 2^e·α_a·α_w.
  const double alpha_p = std::exp2(apsq.psum_exponent()) *
                         apsq.alpha_act() * apsq.alpha_weight();
  EXPECT_LT(diff, 4.0 * alpha_p / 2.0 * 2.0);  // loose factor-2 margin
}

TEST(QuantDense, Gs4NoiseNotWorseThanGs1OnAverage) {
  double e1 = 0.0, e4 = 0.0;
  for (u64 trial = 0; trial < 10; ++trial) {
    Rng rng(100 + trial);
    QuantDense exact(64, 16, QatConfig::baseline_w8a8(), rng);
    Rng r1(100 + trial), r4(100 + trial);
    QuantDense gs1(64, 16, QatConfig::apsq_w8a8(1, 8), r1);
    QuantDense gs4(64, 16, QatConfig::apsq_w8a8(4, 8), r4);
    const TensorF x = random_tensor({16, 64}, rng);
    const TensorF ye = exact.forward(x);
    const TensorF y1 = gs1.forward(x);
    const TensorF y4 = gs4.forward(x);
    for (index_t i = 0; i < ye.numel(); ++i) {
      e1 += std::abs(y1[i] - ye[i]);
      e4 += std::abs(y4[i] - ye[i]);
    }
  }
  EXPECT_LE(e4, e1 * 1.05);
}

TEST(QuantDense, PsumExponentIsCalibratedDuringTraining) {
  Rng rng(3);
  QuantDense qd(32, 8, QatConfig::apsq_w8a8(2, 8), rng);
  qd.set_training(true);
  const TensorF x = random_tensor({8, 32}, rng, 2.0);
  qd.forward(x);
  // After one training forward the calibrator must have observed PSUMs.
  EXPECT_GE(qd.psum_exponent(), 0);
  // Eval mode must not move the scale.
  const int frozen = qd.psum_exponent();
  qd.set_training(false);
  qd.forward(scale(x, 100.0f));
  EXPECT_EQ(qd.psum_exponent(), frozen);
}

TEST(QuantDense, BackwardSteGradCheckSmooth) {
  // With quantization steps small relative to the probe epsilon, STE
  // gradients approximate the smooth matmul gradients; compare against a
  // plain Dense with identical weights.
  Rng rng(4);
  QuantDense qd(8, 4, QatConfig::baseline_w8a8(), rng);
  Rng rng2(4);
  Dense d(8, 4, rng2);
  const TensorF x = random_tensor({5, 8}, rng);
  qd.forward(x);
  d.forward(x);
  TensorF dy({5, 4});
  for (index_t i = 0; i < dy.numel(); ++i)
    dy[i] = static_cast<float>(rng.normal());
  qd.zero_grad();
  d.zero_grad();
  const TensorF dxq = qd.backward(dy);
  const TensorF dxd = d.backward(dy);
  // Directions must agree strongly (cosine similarity).
  double dot = 0, nq = 0, nd = 0;
  for (index_t i = 0; i < dxq.numel(); ++i) {
    dot += static_cast<double>(dxq[i]) * dxd[i];
    nq += static_cast<double>(dxq[i]) * dxq[i];
    nd += static_cast<double>(dxd[i]) * dxd[i];
  }
  EXPECT_GT(dot / std::sqrt(nq * nd), 0.98);
}

TEST(QuantDense, AlphaParamsExposedToOptimizer) {
  Rng rng(5);
  QuantDense qd(8, 4, QatConfig::baseline_w8a8(), rng);
  EXPECT_EQ(qd.params().size(), 4u);  // W, b, α_w, α_a
  const TensorF x = random_tensor({3, 8}, rng);
  qd.forward(x);
  qd.zero_grad();
  qd.backward(TensorF({3, 4}, 1.0f));
  // α gradients must be populated (generically non-zero).
  auto params = qd.params();
  float alpha_grads = 0.0f;
  for (Param* p : params)
    if (p->name.find("alpha") != std::string::npos)
      alpha_grads += std::abs(p->grad(0));
  EXPECT_GT(alpha_grads, 0.0f);
}

TEST(QuantDense, OutputOnProductGridInApsqMode) {
  // APSQ outputs (before bias) are multiples of α_p — the hardware
  // INT8-code contract.
  Rng rng(6);
  QatConfig cfg = QatConfig::apsq_w8a8(1, 8);
  QuantDense qd(16, 4, cfg, rng);
  qd.bias().value.fill(0.0f);
  const TensorF x = random_tensor({4, 16}, rng);
  const TensorF y = qd.forward(x);
  const double alpha_p = std::exp2(qd.psum_exponent()) *
                         static_cast<double>(qd.alpha_act()) *
                         qd.alpha_weight();
  for (index_t i = 0; i < y.numel(); ++i) {
    const double q = y[i] / alpha_p;
    EXPECT_NEAR(q, std::round(q), 1e-3) << "element " << i;
  }
}

TEST(QuantDense, PsqModeRuns) {
  Rng rng(7);
  QatConfig cfg = QatConfig::baseline_w8a8();
  cfg.psum_mode = PsumMode::kPsq;
  QuantDense qd(16, 4, cfg, rng);
  const TensorF x = random_tensor({4, 16}, rng);
  EXPECT_EQ(qd.forward(x).dim(1), 4);
}

TEST(QuantDense, RejectsBadConfig) {
  Rng rng(8);
  QatConfig cfg = QatConfig::baseline_w8a8();
  cfg.tile_ci = 0;
  EXPECT_THROW(QuantDense(8, 4, cfg, rng), std::logic_error);
}

}  // namespace
}  // namespace apsq::nn
