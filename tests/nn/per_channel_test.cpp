#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/quant_dense.hpp"
#include "quant/lsq.hpp"
#include "nn/trainer.hpp"
#include "tasks/students.hpp"
#include "tasks/synthetic.hpp"
#include "tensor/ops.hpp"

namespace apsq::nn {
namespace {

QatConfig per_channel_cfg(PsumMode mode = PsumMode::kExact, index_t gs = 1) {
  QatConfig c = QatConfig::baseline_w8a8();
  c.per_channel_weights = true;
  c.psum_mode = mode;
  c.group_size = gs;
  c.tile_ci = 4;
  return c;
}

TEST(PerChannel, OneAlphaPerOutputColumn) {
  Rng rng(1);
  QuantDense qd(8, 5, per_channel_cfg(), rng);
  auto params = qd.params();
  for (Param* p : params) {
    if (p->name.find("alpha_w") != std::string::npos) {
      EXPECT_EQ(p->value.numel(), 5);
    }
  }
}

TEST(PerChannel, AlphasTrackColumnMagnitudes) {
  // The constructor derives each column's step from that column's weights:
  // α_c = 2·mean|w_c|/√Qp, so step ratios follow magnitude ratios.
  Rng rng(2);
  QuantDense qd(64, 3, per_channel_cfg(), rng);
  double mean_abs[3] = {0, 0, 0};
  for (index_t c = 0; c < 3; ++c) {
    for (index_t r = 0; r < 64; ++r)
      mean_abs[c] += std::abs(qd.weight().value(r, c));
    mean_abs[c] /= 64.0;
  }
  for (index_t c = 0; c < 3; ++c)
    EXPECT_NEAR(qd.alpha_weight(c),
                2.0 * mean_abs[c] / std::sqrt(127.0), 1e-5);
}

TEST(PerChannel, LowersWeightQuantizationError) {
  // With badly mismatched column magnitudes, per-channel W8 reconstructs
  // the weights far better than per-tensor W8. Steps are re-derived from
  // the modified weights through the layers' own init formula.
  Rng rng(4);
  QuantDense pc(32, 4, per_channel_cfg(), rng);
  Rng rng2(4);
  QuantDense pt(32, 4, QatConfig::baseline_w8a8(), rng2);
  for (index_t r = 0; r < 32; ++r) {
    pc.weight().value(r, 0) *= 40.0f;  // one loud column
    pt.weight().value(r, 0) = pc.weight().value(r, 0);
  }
  auto set_alpha_w = [](QuantDense& layer, const TensorF& alphas) {
    for (Param* p : layer.params())
      if (p->name.find("alpha_w") != std::string::npos) p->value = alphas;
  };
  // Per-channel: step per column; per-tensor: one step from the full matrix.
  TensorF pc_alphas({4});
  for (index_t c = 0; c < 4; ++c) {
    TensorF col({32});
    for (index_t r = 0; r < 32; ++r) col(r) = pc.weight().value(r, c);
    pc_alphas(c) = lsq_init_alpha(col, QuantSpec::int8());
  }
  set_alpha_w(pc, pc_alphas);
  set_alpha_w(pt, TensorF({1}, lsq_init_alpha(pt.weight().value,
                                              QuantSpec::int8())));

  // Probe with unit rows: y(0, c) ≈ Σ_r wq(r, c) + bias.
  pc.bias().value.fill(0.0f);
  pt.bias().value.fill(0.0f);
  TensorF probe({1, 32}, 1.0f);
  const TensorF ypc = pc.forward(probe);
  const TensorF ypt = pt.forward(probe);
  TensorF ref({1, 4}, 0.0f);
  for (index_t c = 0; c < 4; ++c)
    for (index_t r = 0; r < 32; ++r) ref(0, c) += pc.weight().value(r, c);
  double err_pc = 0.0, err_pt = 0.0;
  for (index_t c = 1; c < 4; ++c) {  // quiet columns suffer per-tensor
    err_pc += std::abs(ypc(0, c) - ref(0, c));
    err_pt += std::abs(ypt(0, c) - ref(0, c));
  }
  EXPECT_LT(err_pc, err_pt);
}

TEST(PerChannel, ApsqPathBitExactShape) {
  // APSQ + per-channel must produce outputs on the per-column product grid.
  Rng rng(6);
  QuantDense qd(16, 4, per_channel_cfg(PsumMode::kApsq, 2), rng);
  qd.bias().value.fill(0.0f);
  const TensorF x = random_tensor({4, 16}, rng);
  const TensorF y = qd.forward(x);
  const double alpha_p = std::exp2(qd.psum_exponent());
  for (index_t r = 0; r < 4; ++r)
    for (index_t c = 0; c < 4; ++c) {
      const double prod = static_cast<double>(qd.alpha_act()) *
                          qd.alpha_weight(c);
      const double code = y(r, c) / (prod * alpha_p);
      EXPECT_NEAR(code, std::round(code), 1e-3) << r << "," << c;
    }
}

TEST(PerChannel, TrainsComparablyToPerTensor) {
  tasks::SyntheticSpec spec;
  spec.feature_dim = 16;
  spec.num_classes = 2;
  spec.train_samples = 512;
  spec.test_samples = 256;
  spec.seed = 77;
  const Dataset ds = tasks::make_synthetic_dataset(spec);
  Rng rng(7);
  auto net = tasks::make_mlp({16, 32, 1, 2}, per_channel_cfg(), rng);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 3e-3f;
  EXPECT_GT(train_model(*net, ds, cfg).test_metric_pct, 70.0);
}

}  // namespace
}  // namespace apsq::nn
