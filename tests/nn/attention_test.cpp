#include "nn/attention.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace apsq::nn {
namespace {

TEST(SelfAttention, OutputShapeMatchesInput) {
  Rng rng(1);
  SelfAttention attn(8, std::nullopt, rng);
  const TensorF x = random_tensor({5, 8}, rng);
  const TensorF y = attn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(SelfAttention, GradCheckFp32) {
  Rng rng(2);
  SelfAttention attn(4, std::nullopt, rng);
  gradcheck(attn, random_tensor({3, 4}, rng), 3e-2);
}

TEST(SelfAttention, SingleTokenIsPureProjection) {
  // With one token, softmax(P) == 1 and the output is Wo(Wv(x)).
  Rng rng(3);
  SelfAttention attn(6, std::nullopt, rng);
  const TensorF x = random_tensor({1, 6}, rng);
  const TensorF y = attn.forward(x);
  EXPECT_EQ(y.dim(0), 1);
  // Re-derive via the projections exposed through params: easier property:
  // output must be independent of the Q/K weights for a single token.
  auto params = attn.params();
  params[0]->value.fill(0.0f);  // wq.weight
  const TensorF y2 = attn.forward(x);
  for (index_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], y2[i], 1e-5);
}

TEST(SelfAttention, QuantizedProjectionsRun) {
  Rng rng(4);
  QatConfig qat = QatConfig::apsq_w8a8(2, 4);
  SelfAttention attn(8, qat, rng);
  const TensorF x = random_tensor({4, 8}, rng);
  const TensorF y = attn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // QuantDense adds α parameters: 4 projections × 4 params each.
  EXPECT_EQ(attn.params().size(), 16u);
}

TEST(SelfAttention, PermutationEquivariant) {
  // Self-attention without positional encoding commutes with token
  // permutation: swapping input rows swaps output rows.
  Rng rng(5);
  SelfAttention attn(6, std::nullopt, rng);
  TensorF x = random_tensor({3, 6}, rng);
  const TensorF y = attn.forward(x);
  TensorF xp = x;
  for (index_t j = 0; j < 6; ++j) std::swap(xp(0, j), xp(2, j));
  const TensorF yp = attn.forward(xp);
  for (index_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(yp(0, j), y(2, j), 1e-4);
    EXPECT_NEAR(yp(2, j), y(0, j), 1e-4);
    EXPECT_NEAR(yp(1, j), y(1, j), 1e-4);
  }
}

}  // namespace
}  // namespace apsq::nn
