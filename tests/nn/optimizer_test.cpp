#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apsq::nn {
namespace {

// Minimize f(w) = Σ (w_i - target_i)² with explicit gradients.
void quadratic_grad(Param& p, const TensorF& target) {
  for (index_t i = 0; i < p.value.numel(); ++i)
    p.grad[i] = 2.0f * (p.value[i] - target[i]);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Param p("w", TensorF({1}, 1.0f));
  p.grad(0) = 2.0f;
  Sgd opt({&p}, 0.1f, /*momentum=*/0.0f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value(0), 1.0f - 0.1f * 2.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", TensorF({1}, 0.0f));
  Sgd opt({&p}, 0.1f, 0.9f);
  p.grad(0) = 1.0f;
  opt.step();
  const float first = p.value(0);
  p.grad(0) = 1.0f;
  opt.step();
  const float second_step = p.value(0) - first;
  EXPECT_LT(second_step, first);  // both negative; second is larger in mag
  EXPECT_NEAR(second_step, -0.1f * (0.9f + 1.0f), 1e-6);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Param p("w", TensorF({4}, 0.0f));
  TensorF target({4}, std::vector<float>{1, -2, 3, 0.5});
  Sgd opt({&p}, 0.05f, 0.9f);
  for (int it = 0; it < 200; ++it) {
    quadratic_grad(p, target);
    opt.step();
  }
  for (index_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-3);
}

TEST(Sgd, WeightDecayShrinksParams) {
  Param p("w", TensorF({1}, 10.0f));
  p.grad(0) = 0.0f;
  Sgd opt({&p}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  opt.step();
  EXPECT_LT(p.value(0), 10.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p("w", TensorF({4}, 0.0f));
  TensorF target({4}, std::vector<float>{1, -2, 3, 0.5});
  Adam opt({&p}, 0.05f);
  for (int it = 0; it < 500; ++it) {
    quadratic_grad(p, target);
    opt.step();
  }
  for (index_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-2);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // Bias correction makes the first Adam step ≈ lr regardless of grad
  // magnitude.
  Param p("w", TensorF({1}, 0.0f));
  p.grad(0) = 1000.0f;
  Adam opt({&p}, 0.01f);
  opt.step();
  EXPECT_NEAR(p.value(0), -0.01f, 1e-4);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Param a("a", TensorF({2}, 1.0f)), b("b", TensorF({3}, 1.0f));
  a.grad.fill(5.0f);
  b.grad.fill(5.0f);
  Sgd opt({&a, &b}, 0.1f);
  opt.zero_grad();
  for (index_t i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(a.grad[i], 0.0f);
  for (index_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(b.grad[i], 0.0f);
}

}  // namespace
}  // namespace apsq::nn
