#include "nn/lr_schedule.hpp"

#include <gtest/gtest.h>

namespace apsq::nn {
namespace {

TEST(LrSchedule, ConstantStaysPut) {
  for (index_t s : {0, 10, 99})
    EXPECT_FLOAT_EQ(scheduled_lr(LrSchedule::kConstant, 0.1f, 0.0f, s, 100),
                    0.1f);
}

TEST(LrSchedule, CosineEndpoints) {
  EXPECT_NEAR(scheduled_lr(LrSchedule::kCosine, 0.1f, 0.001f, 0, 100), 0.1f,
              1e-7);
  EXPECT_NEAR(scheduled_lr(LrSchedule::kCosine, 0.1f, 0.001f, 100, 100),
              0.001f, 1e-7);
  EXPECT_NEAR(scheduled_lr(LrSchedule::kCosine, 0.1f, 0.001f, 50, 100),
              (0.1f + 0.001f) / 2, 1e-6);
}

TEST(LrSchedule, CosineMonotoneDecreasing) {
  float prev = 1.0f;
  for (index_t s = 0; s <= 100; s += 10) {
    const float lr = scheduled_lr(LrSchedule::kCosine, 0.5f, 0.0f, s, 100);
    EXPECT_LE(lr, prev + 1e-7);
    prev = lr;
  }
}

TEST(LrSchedule, StepDecayBreakpoints) {
  EXPECT_FLOAT_EQ(scheduled_lr(LrSchedule::kStepDecay, 1.0f, 0.0f, 49, 100),
                  1.0f);
  EXPECT_FLOAT_EQ(scheduled_lr(LrSchedule::kStepDecay, 1.0f, 0.0f, 50, 100),
                  0.1f);
  EXPECT_FLOAT_EQ(scheduled_lr(LrSchedule::kStepDecay, 1.0f, 0.0f, 75, 100),
                  0.01f);
}

TEST(LrSchedule, ClampsBeyondTotal) {
  EXPECT_NEAR(scheduled_lr(LrSchedule::kCosine, 0.1f, 0.0f, 500, 100), 0.0f,
              1e-7);
}

TEST(ClipGradNorm, NoOpBelowThreshold) {
  Param p("w", TensorF({2}, 0.0f));
  p.grad(0) = 0.3f;
  p.grad(1) = 0.4f;  // norm 0.5
  std::vector<Param*> ps{&p};
  const float norm = clip_grad_norm(ps, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(p.grad(0), 0.3f);
}

TEST(ClipGradNorm, ScalesDownAboveThreshold) {
  Param p("w", TensorF({2}, 0.0f));
  p.grad(0) = 3.0f;
  p.grad(1) = 4.0f;  // norm 5
  std::vector<Param*> ps{&p};
  const float norm = clip_grad_norm(ps, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(std::sqrt(p.grad(0) * p.grad(0) + p.grad(1) * p.grad(1)), 1.0f,
              1e-6);
}

TEST(ClipGradNorm, GlobalAcrossParams) {
  Param a("a", TensorF({1}, 0.0f)), b("b", TensorF({1}, 0.0f));
  a.grad(0) = 3.0f;
  b.grad(0) = 4.0f;
  std::vector<Param*> ps{&a, &b};
  clip_grad_norm(ps, 2.5f);  // global norm 5 -> scale 0.5
  EXPECT_NEAR(a.grad(0), 1.5f, 1e-6);
  EXPECT_NEAR(b.grad(0), 2.0f, 1e-6);
}

}  // namespace
}  // namespace apsq::nn
