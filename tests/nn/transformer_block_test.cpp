#include "nn/transformer_block.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"

namespace apsq::nn {
namespace {

TEST(TransformerBlock, PreservesShape) {
  Rng rng(1);
  TransformerBlock block(8, 16, std::nullopt, rng);
  const TensorF x = random_tensor({5, 8}, rng);
  EXPECT_EQ(block.forward(x).shape(), x.shape());
}

TEST(TransformerBlock, GradCheckFp32) {
  Rng rng(2);
  TransformerBlock block(4, 8, std::nullopt, rng);
  gradcheck(block, random_tensor({3, 4}, rng), 4e-2);
}

TEST(TransformerBlock, ResidualPathDominatesAtInit) {
  // Pre-norm blocks start near identity-plus-noise: the output must be
  // correlated with the input.
  Rng rng(3);
  TransformerBlock block(16, 32, std::nullopt, rng);
  const TensorF x = random_tensor({6, 16}, rng);
  const TensorF y = block.forward(x);
  double dot = 0, nx = 0, ny = 0;
  for (index_t i = 0; i < x.numel(); ++i) {
    dot += static_cast<double>(x[i]) * y[i];
    nx += static_cast<double>(x[i]) * x[i];
    ny += static_cast<double>(y[i]) * y[i];
  }
  EXPECT_GT(dot / std::sqrt(nx * ny), 0.5);
}

TEST(TransformerBlock, QuantizedVariantDiffersFromFp32) {
  Rng rng(4);
  TransformerBlock fp(8, 16, std::nullopt, rng);
  Rng rng2(4);
  TransformerBlock q(8, 16, QatConfig::apsq_w8a8(1, 4), rng2);
  const TensorF x = random_tensor({4, 8}, rng);
  const TensorF yf = fp.forward(x);
  const TensorF yq = q.forward(x);
  // Same init (same seed) but quantization perturbs the output.
  double diff = 0;
  for (index_t i = 0; i < yf.numel(); ++i) diff += std::abs(yf[i] - yq[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(TransformerBlock, TrainingFlagPropagates) {
  Rng rng(5);
  TransformerBlock block(8, 16, QatConfig::baseline_w8a8(), rng);
  block.set_training(false);
  EXPECT_FALSE(block.training());
  block.set_training(true);
  EXPECT_TRUE(block.training());
}

}  // namespace
}  // namespace apsq::nn
