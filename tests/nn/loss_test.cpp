#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace apsq::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  TensorF logits({2, 4}, 0.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.value, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  TensorF logits({1, 2}, std::vector<float>{20.0f, -20.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.value, 1e-4);
}

TEST(SoftmaxCrossEntropy, GradientIsProbsMinusOneHotOverN) {
  TensorF logits({1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  const LossResult r = softmax_cross_entropy(logits, {2});
  double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(r.grad(0, 0), std::exp(1.0) / denom, 1e-5);
  EXPECT_NEAR(r.grad(0, 2), std::exp(3.0) / denom - 1.0, 1e-5);
}

TEST(SoftmaxCrossEntropy, GradMatchesFiniteDifference) {
  Rng rng(1);
  TensorF logits({3, 5});
  for (index_t i = 0; i < logits.numel(); ++i)
    logits[i] = static_cast<float>(rng.normal());
  std::vector<index_t> y{1, 4, 0};
  const LossResult r = softmax_cross_entropy(logits, y);
  const float eps = 1e-3f;
  for (index_t i = 0; i < logits.numel(); ++i) {
    TensorF lp = logits;
    lp[i] += eps;
    const float hi = softmax_cross_entropy(lp, y).value;
    lp[i] -= 2 * eps;
    const float lo = softmax_cross_entropy(lp, y).value;
    EXPECT_NEAR(r.grad[i], (hi - lo) / (2 * eps), 2e-3);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadTarget) {
  TensorF logits({1, 2});
  EXPECT_THROW(softmax_cross_entropy(logits, {2}), std::logic_error);
}

TEST(MseLoss, ZeroAtTarget) {
  TensorF p({2, 1}, std::vector<float>{1.0f, 2.0f});
  const LossResult r = mse_loss(p, p);
  EXPECT_FLOAT_EQ(r.value, 0.0f);
  for (index_t i = 0; i < r.grad.numel(); ++i) EXPECT_FLOAT_EQ(r.grad[i], 0.0f);
}

TEST(MseLoss, ValueAndGrad) {
  TensorF p({1, 2}, std::vector<float>{3.0f, 0.0f});
  TensorF t({1, 2}, std::vector<float>{1.0f, 0.0f});
  const LossResult r = mse_loss(p, t);
  EXPECT_FLOAT_EQ(r.value, 2.0f);           // (4 + 0) / 2
  EXPECT_FLOAT_EQ(r.grad(0, 0), 2.0f);      // 2·(3-1)/2
  EXPECT_FLOAT_EQ(r.grad(0, 1), 0.0f);
}

TEST(DistillationLoss, ReducesToTaskLossAtLambdaZero) {
  Rng rng(2);
  TensorF s({2, 3}), t({2, 3});
  for (index_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(rng.normal());
    t[i] = static_cast<float>(rng.normal());
  }
  const LossResult kd = distillation_loss(s, {0, 1}, t, 0.0f);
  const LossResult ce = softmax_cross_entropy(s, {0, 1});
  EXPECT_FLOAT_EQ(kd.value, ce.value);
}

TEST(DistillationLoss, CombinesBothTerms) {
  Rng rng(3);
  TensorF s({2, 3}), t({2, 3});
  for (index_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(rng.normal());
    t[i] = static_cast<float>(rng.normal());
  }
  const float lambda = 0.7f;
  const LossResult kd = distillation_loss(s, {0, 1}, t, lambda);
  const LossResult ce = softmax_cross_entropy(s, {0, 1});
  const LossResult mse = mse_loss(s, t);
  EXPECT_NEAR(kd.value, ce.value + lambda * mse.value, 1e-5);
  for (index_t i = 0; i < s.numel(); ++i)
    EXPECT_NEAR(kd.grad[i], ce.grad[i] + lambda * mse.grad[i], 1e-6);
}

}  // namespace
}  // namespace apsq::nn
