#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"

namespace apsq::nn {
namespace {

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(ConvGeometry{8, 8, 3, 3, 2, 1}, 16, std::nullopt, rng);
  const TensorF x = random_tensor({64, 3}, rng);
  const TensorF y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 16);  // 4x4 output pixels
  EXPECT_EQ(y.dim(1), 16);
}

TEST(Conv2d, GradCheckFp32) {
  Rng rng(2);
  Conv2d conv(ConvGeometry{4, 4, 2, 3, 1, 1}, 3, std::nullopt, rng);
  gradcheck(conv, random_tensor({16, 2}, rng), 3e-2);
}

TEST(Conv2d, QuantizedVariantRuns) {
  Rng rng(3);
  QatConfig qat = QatConfig::apsq_w8a8(2, 4);
  Conv2d conv(ConvGeometry{6, 6, 4, 3, 1, 1}, 8, qat, rng);
  const TensorF x = random_tensor({36, 4}, rng);
  const TensorF y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 36);
  EXPECT_EQ(y.dim(1), 8);
  // QuantDense params: W, b, alpha_w, alpha_a.
  EXPECT_EQ(conv.params().size(), 4u);
}

TEST(Conv2d, PointwiseEqualsDense) {
  // A 1x1 conv is exactly a Dense layer over pixels.
  Rng rng(4);
  Conv2d conv(ConvGeometry{3, 3, 5, 1, 1, 0}, 7, std::nullopt, rng);
  Rng rng2(4);
  Dense dense(5, 7, rng2);
  const TensorF x = random_tensor({9, 5}, rng);
  const TensorF yc = conv.forward(x);
  const TensorF yd = dense.forward(x);
  // Same seed -> same init -> identical outputs.
  for (index_t i = 0; i < yc.numel(); ++i) EXPECT_FLOAT_EQ(yc[i], yd[i]);
}

TEST(Conv2d, TrainsOnTinyPattern) {
  // Learn to detect a vertical edge: the layer must be optimizable
  // through the im2col adjoint.
  Rng rng(5);
  Conv2d conv(ConvGeometry{4, 4, 1, 3, 1, 1}, 1, std::nullopt, rng);
  Adam opt(conv.params(), 5e-2f);

  TensorF x({16, 1}, 0.0f);
  for (index_t yy = 0; yy < 4; ++yy) x(yy * 4 + 2, 0) = 1.0f;  // column 2
  TensorF target({16, 1}, 0.0f);
  for (index_t yy = 0; yy < 4; ++yy) target(yy * 4 + 2, 0) = 1.0f;

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int it = 0; it < 120; ++it) {
    opt.zero_grad();
    const TensorF y = conv.forward(x);
    TensorF grad(y.shape());
    float loss = 0.0f;
    for (index_t i = 0; i < y.numel(); ++i) {
      const float d = y[i] - target[i];
      loss += d * d;
      grad[i] = 2.0f * d / static_cast<float>(y.numel());
    }
    conv.backward(grad);
    opt.step();
    if (it == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, 0.05f * first_loss);
}

}  // namespace
}  // namespace apsq::nn
