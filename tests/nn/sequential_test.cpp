#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace apsq::nn {
namespace {

TEST(Sequential, ChainsForward) {
  Rng rng(1);
  Sequential net;
  net.emplace<Dense>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(net.size(), 3);
  const TensorF y = net.forward(random_tensor({5, 4}, rng));
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 2);
}

TEST(Sequential, GradCheckThroughChain) {
  Rng rng(2);
  Sequential net;
  net.emplace<Dense>(4, 6, rng);
  net.emplace<Gelu>();
  net.emplace<Dense>(6, 3, rng);
  gradcheck(net, random_tensor({4, 4}, rng), 3e-2);
}

TEST(Sequential, CollectsAllParams) {
  Rng rng(3);
  Sequential net;
  net.emplace<Dense>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(net.params().size(), 4u);  // two Dense layers x (W, b)
  EXPECT_EQ(net.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(Sequential, ZeroGradClearsEverything) {
  Rng rng(4);
  Sequential net;
  net.emplace<Dense>(3, 3, rng);
  const TensorF x = random_tensor({2, 3}, rng);
  net.forward(x);
  net.backward(TensorF({2, 3}, 1.0f));
  net.zero_grad();
  for (Param* p : net.params())
    for (index_t i = 0; i < p->grad.numel(); ++i)
      EXPECT_FLOAT_EQ(p->grad[i], 0.0f);
}

TEST(Sequential, TrainingFlagPropagates) {
  Rng rng(5);
  Sequential net;
  net.emplace<Dense>(2, 2, rng);
  net.set_training(false);
  EXPECT_FALSE(net.training());
  EXPECT_FALSE(net.layer(0).training());
}

TEST(Sequential, LayerAccessor) {
  Rng rng(6);
  Sequential net;
  net.emplace<Dense>(2, 4, rng);
  auto& d = dynamic_cast<Dense&>(net.layer(0));
  EXPECT_EQ(d.out_features(), 4);
}

}  // namespace
}  // namespace apsq::nn
