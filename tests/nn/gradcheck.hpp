// Finite-difference gradient checking utilities for the NN substrate.
//
// Checks dL/dx and dL/dθ of a module against central differences of the
// scalar loss L = Σ c_i · y_i with fixed random coefficients c. Only valid
// for smooth (non-quantized) modules.
#pragma once

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace apsq::nn {

inline TensorF random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  TensorF t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

/// Run the check. `tol` is the max relative error allowed per coordinate
/// (float32 forward passes limit precision to ~1e-2 on ill-conditioned
/// coords, so compare with a combined abs+rel tolerance).
inline void gradcheck(Module& m, const TensorF& x, double tol = 2e-2,
                      u64 seed = 1234) {
  Rng rng(seed);
  const TensorF y0 = m.forward(x);
  TensorF coeff(y0.shape());
  for (index_t i = 0; i < coeff.numel(); ++i)
    coeff[i] = static_cast<float>(rng.normal());

  m.zero_grad();
  // forward again so cached state matches this exact input
  m.forward(x);
  const TensorF dx = m.backward(coeff);

  auto loss_at = [&](const TensorF& xin) {
    const TensorF y = m.forward(xin);
    double l = 0.0;
    for (index_t i = 0; i < y.numel(); ++i)
      l += static_cast<double>(coeff[i]) * y[i];
    return l;
  };

  // Check input gradient on a sample of coordinates.
  const float eps = 1e-3f;
  const index_t n_probe = std::min<index_t>(x.numel(), 24);
  for (index_t p = 0; p < n_probe; ++p) {
    const index_t i = rng.uniform_index(x.numel());
    TensorF xp = x;
    xp[i] += eps;
    const double hi = loss_at(xp);
    xp[i] -= 2 * eps;
    const double lo = loss_at(xp);
    const double fd = (hi - lo) / (2 * eps);
    EXPECT_NEAR(dx[i], fd, tol * (std::abs(fd) + 1.0))
        << "input coord " << i;
  }

  // Check parameter gradients on a sample of coordinates.
  for (Param* param : m.params()) {
    const index_t n_par_probe = std::min<index_t>(param->value.numel(), 8);
    for (index_t p = 0; p < n_par_probe; ++p) {
      const index_t i = rng.uniform_index(param->value.numel());
      const float orig = param->value[i];
      param->value[i] = orig + eps;
      const double hi = loss_at(x);
      param->value[i] = orig - eps;
      const double lo = loss_at(x);
      param->value[i] = orig;
      const double fd = (hi - lo) / (2 * eps);
      EXPECT_NEAR(param->grad[i], fd, tol * (std::abs(fd) + 1.0))
          << param->name << " coord " << i;
    }
  }
}

}  // namespace apsq::nn
