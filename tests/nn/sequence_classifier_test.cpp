#include "nn/sequence_classifier.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/trainer.hpp"
#include "tasks/seq_proxy.hpp"

namespace apsq::nn {
namespace {

SequenceClassifier::Config tiny_config() {
  SequenceClassifier::Config c;
  c.input_dim = 8;
  c.model_dim = 12;
  c.ffn_dim = 24;
  c.num_blocks = 1;
  c.num_classes = 2;
  return c;
}

TEST(SequenceClassifier, LogitShape) {
  Rng rng(1);
  SequenceClassifier m(tiny_config(), std::nullopt, rng);
  const TensorF x = random_tensor({6, 8}, rng);
  const TensorF y = m.forward(x);
  EXPECT_EQ(y.dim(0), 1);
  EXPECT_EQ(y.dim(1), 2);
}

TEST(SequenceClassifier, GradCheckFp32) {
  Rng rng(2);
  SequenceClassifier m(tiny_config(), std::nullopt, rng);
  gradcheck(m, random_tensor({4, 8}, rng), 5e-2);
}

TEST(SequenceClassifier, HandlesVariableSequenceLengths) {
  Rng rng(3);
  SequenceClassifier m(tiny_config(), std::nullopt, rng);
  for (index_t t : {2, 5, 9}) {
    const TensorF y = m.forward(random_tensor({t, 8}, rng));
    EXPECT_EQ(y.dim(1), 2);
  }
}

TEST(SequenceClassifier, QuantizedVariantRuns) {
  Rng rng(4);
  SequenceClassifier m(tiny_config(), QatConfig::apsq_w8a8(2, 4), rng);
  const TensorF y = m.forward(random_tensor({5, 8}, rng));
  EXPECT_EQ(y.dim(1), 2);
}

TEST(SequenceClassifier, LearnsCoOccurrenceTask) {
  // The defining capability: the attention student must beat chance on
  // the key co-occurrence task (a pooling-only model cannot pair the
  // patterns; chance = 50%).
  tasks::SeqTaskSpec spec;
  spec.tokens = 8;
  spec.token_dim = 8;
  spec.train_samples = 384;
  spec.test_samples = 192;
  spec.seed = 21;
  const tasks::SeqDataset ds = tasks::make_seq_proxy_dataset(spec);

  Rng rng(5);
  SequenceClassifier::Config cfg = tiny_config();
  cfg.model_dim = 16;
  cfg.ffn_dim = 32;
  SequenceClassifier m(cfg, std::nullopt, rng);
  SeqTrainConfig tc;
  tc.epochs = 12;
  tc.lr = 3e-3f;
  const double acc = train_sequence_classifier(m, ds.train_x, ds.train_y,
                                               ds.test_x, ds.test_y, tc);
  EXPECT_GT(acc, 72.0);
}

TEST(SeqProxyTask, BalancedAndDeterministic) {
  tasks::SeqTaskSpec spec;
  spec.seed = 33;
  const tasks::SeqDataset a = tasks::make_seq_proxy_dataset(spec);
  const tasks::SeqDataset b = tasks::make_seq_proxy_dataset(spec);
  EXPECT_EQ(a.train_y, b.train_y);
  size_t ones = 0;
  for (index_t y : a.train_y) ones += static_cast<size_t>(y);
  EXPECT_GT(ones, a.train_y.size() / 4);
  EXPECT_LT(ones, 3 * a.train_y.size() / 4);
}

}  // namespace
}  // namespace apsq::nn
