// End-to-end QAT integration: the accuracy ordering the paper reports in
// Table I must emerge from our substrate — the W8A8 baseline is at least
// as good as APSQ, and large group sizes recover accuracy relative to
// gs = 1 (§IV-B: "gs = 1 causes notable accuracy drops ... increasing gs
// generally helps restore accuracy").
#include <gtest/gtest.h>

#include "nn/trainer.hpp"
#include "tasks/students.hpp"
#include "tasks/synthetic.hpp"

namespace apsq {
namespace {

double train_config(PsumMode mode, index_t gs, u64 seed) {
  tasks::SyntheticSpec spec;
  spec.name = "trend";
  spec.feature_dim = 64;
  spec.num_classes = 2;
  spec.train_samples = 1024;
  spec.test_samples = 512;
  spec.label_noise = 0.03;
  spec.seed = 33;
  const nn::Dataset ds = tasks::make_synthetic_dataset(spec);

  nn::QatConfig qat = nn::QatConfig::baseline_w8a8();
  qat.psum_mode = mode;
  qat.group_size = gs;
  // Deep accumulation (np = 64/4 and 128/4 tiles) so the per-fold rounding
  // noise — APSQ's accuracy mechanism — dominates training variance.
  qat.tile_ci = 4;

  Rng rng(seed);
  auto net = tasks::make_mlp({64, 128, 2, 2}, qat, rng);
  nn::TrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 2e-3f;
  cfg.shuffle_seed = seed;
  return nn::train_model(*net, ds, cfg).test_metric_pct;
}

TEST(QatApsqTrend, BaselineBeatsOrMatchesGs1) {
  // Average over seeds to damp training variance.
  double base = 0.0, gs1 = 0.0;
  for (u64 s : {1u, 2u, 3u}) {
    base += train_config(PsumMode::kExact, 1, s);
    gs1 += train_config(PsumMode::kApsq, 1, s);
  }
  EXPECT_GE(base, gs1 - 0.75);  // small tolerance: trend, not strict order
}

TEST(QatApsqTrend, LargerGroupSizeReducesPostTrainingDeviation) {
  // The grouping mechanism (§III-B): with IDENTICAL trained weights, the
  // logits of an APSQ forward deviate less from the exact-PSUM reference
  // at gs = 4 than at gs = 1, because the accumulated value passes through
  // np/gs history folds instead of np. (The paper's per-task accuracy
  // ordering is noisy — e.g. RTE gs3 < gs1 in Table I — but this
  // deviation ordering is the mechanism behind the average trend.)
  tasks::SyntheticSpec spec;
  spec.name = "ptq";
  spec.feature_dim = 64;
  spec.num_classes = 8;  // wide head: more logits per net for the statistic
  spec.train_samples = 1024;
  spec.test_samples = 512;
  spec.seed = 33;
  const nn::Dataset ds = tasks::make_synthetic_dataset(spec);

  double dev1 = 0.0, dev4 = 0.0;
  for (u64 seed : {5u, 6u, 7u, 8u}) {
    // Train a W8A8 baseline student.
    nn::QatConfig base = nn::QatConfig::baseline_w8a8();
    base.tile_ci = 4;
    Rng rng(seed);
    auto trained = tasks::make_mlp({64, 128, 2, 8}, base, rng);
    nn::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.lr = 2e-3f;
    nn::train_model(*trained, ds, cfg);
    trained->set_training(false);
    const TensorF ref_logits = trained->forward(ds.test_x);

    auto deviation_for = [&](index_t gs) {
      nn::QatConfig qat = nn::QatConfig::apsq_w8a8(gs, 4);
      Rng rng2(seed);  // identical construction order
      auto net = tasks::make_mlp({64, 128, 2, 8}, qat, rng2);
      // Transfer the trained parameters (same module layout).
      auto src = trained->params();
      auto dst = net->params();
      EXPECT_EQ(src.size(), dst.size());
      for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
      // One training-mode pass to calibrate the PSUM scales, then eval.
      net->set_training(true);
      net->forward(ds.test_x);
      net->set_training(false);
      const TensorF logits = net->forward(ds.test_x);
      double dev = 0.0;
      for (index_t i = 0; i < logits.numel(); ++i)
        dev += std::abs(logits[i] - ref_logits[i]);
      return dev / static_cast<double>(logits.numel());
    };

    dev1 += deviation_for(1);
    dev4 += deviation_for(4);
  }
  EXPECT_GT(dev1, 0.0);
  EXPECT_LT(dev4, dev1);
}

TEST(QatApsqTrend, AllConfigsLearnWellAboveChance) {
  EXPECT_GT(train_config(PsumMode::kExact, 1, 9), 70.0);
  EXPECT_GT(train_config(PsumMode::kApsq, 1, 9), 70.0);
  EXPECT_GT(train_config(PsumMode::kApsq, 4, 9), 70.0);
}

}  // namespace
}  // namespace apsq
