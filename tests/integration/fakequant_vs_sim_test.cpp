// Algorithm/hardware co-design contract: the float fake-quant pipeline the
// QAT trains with and the integer accelerator (PE array + RAE shifters)
// must compute EXACTLY the same function when the scales are powers of
// two. This is the test that makes "bit-accurate" an enforced property
// rather than a claim.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "quant/apsq.hpp"
#include "sim/accelerator.hpp"
#include "tensor/matmul.hpp"
#include "tensor/tile.hpp"

namespace apsq {
namespace {

TensorI8 random_i8(Shape s, Rng& rng, int range = 127) {
  TensorI8 t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<i8>(
        static_cast<i64>(rng.next_u64() % (2 * static_cast<u64>(range) + 1)) -
        range);
  return t;
}

struct Case {
  index_t m, k, n, gs;
  int exp;
  // LSQ scales. These must be exactly representable in float32 (powers of
  // two here): with arbitrary real α the float32 fake-quant tensors carry
  // ~1e-7 relative representation error, which can flip exact .5 rounding
  // ties that the integer shifter resolves deterministically. The
  // bit-exactness contract (DESIGN.md §3.3) is stated for exactly
  // representable scales; real deployments requantize through fixed-point
  // multipliers anyway.
  double alpha_a, alpha_w;
};

class FakeQuantVsSim : public ::testing::TestWithParam<Case> {};

TEST_P(FakeQuantVsSim, FloatPipelineEqualsIntegerAccelerator) {
  const Case c = GetParam();
  Rng rng(static_cast<u64>(c.m * 31 + c.k * 7 + c.n * 3 + c.gs));

  // Integer operands (the codes an LSQ quantizer would emit).
  const TensorI8 xq = random_i8({c.m, c.k}, rng);
  const TensorI8 wq = random_i8({c.k, c.n}, rng);

  // --- Float fake-quant path (what QAT computes) ------------------------
  // xf = α_a·codes, wf = α_w·codes; PSUM scale α_p = 2^exp · α_a·α_w.
  TensorF xf({c.m, c.k}), wf({c.k, c.n});
  for (index_t i = 0; i < xf.numel(); ++i)
    xf[i] = static_cast<float>(c.alpha_a * xq[i]);
  for (index_t i = 0; i < wf.numel(); ++i)
    wf[i] = static_cast<float>(c.alpha_w * wq[i]);

  const index_t pci = 4;
  const index_t nci = ceil_div(c.k, pci);
  std::vector<TensorF> tiles;
  for (index_t t = 0; t < nci; ++t) {
    const index_t k0 = t * pci, k1 = std::min(k0 + pci, c.k);
    tiles.push_back(matmul(extract_tile(xf, TileRect{0, c.m, k0, k1}),
                           extract_tile(wf, TileRect{k0, k1, 0, c.n})));
  }
  const double alpha_p = std::exp2(c.exp) * c.alpha_a * c.alpha_w;
  const TensorF yf = accumulate_psums(tiles, PsumMode::kApsq,
                                      QuantSpec::int8(), {alpha_p}, c.gs);

  // --- Integer accelerator path (what the hardware computes) ------------
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = pci;
  cfg.arch.pco = 4;
  cfg.arch.ifmap_buf_bytes = 1 << 20;
  cfg.arch.ofmap_buf_bytes = 1 << 20;
  cfg.arch.weight_buf_bytes = 1 << 20;
  cfg.dataflow = Dataflow::kWS;
  cfg.psum = PsumConfig::apsq_int8(c.gs);
  cfg.psum_exponents = {c.exp};
  Accelerator acc(cfg);
  const SimResult r = acc.run_gemm(xq, wq);

  // Integer outputs are in product scale: yf = α_a·α_w · y_int. The
  // quantization CODES must agree exactly (integer equality after
  // unscaling); float32 storage of the fake-quant activations limits the
  // representation of yf itself to ~1e-7 relative, so the value check is
  // relative. A flipped code would show up as a jump of 2^exp ≥ 1.
  const double prod = c.alpha_a * c.alpha_w;
  for (index_t i = 0; i < yf.numel(); ++i) {
    const double y_int = static_cast<double>(yf[i]) / prod;
    ASSERT_EQ(std::llround(y_int), r.ofmap[i]) << "element " << i;
    ASSERT_NEAR(y_int, static_cast<double>(r.ofmap[i]),
                1e-4 * std::max(1.0, std::abs(static_cast<double>(r.ofmap[i]))))
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleAndShapeGrid, FakeQuantVsSim,
    ::testing::Values(Case{8, 16, 8, 1, 4, 0.03125, 0.0078125},
                      Case{8, 16, 8, 2, 4, 0.03125, 0.0078125},
                      Case{5, 23, 7, 3, 5, 0.0625, 0.00390625},
                      Case{12, 32, 4, 4, 6, 0.25, 0.125},
                      Case{3, 8, 3, 1, 0, 1.0, 1.0},
                      Case{16, 64, 16, 4, 7, 0.5, 0.0009765625}));

TEST(FakeQuantVsSim, BaselineExactPathAlsoMatches) {
  Rng rng(99);
  const TensorI8 xq = random_i8({6, 20}, rng);
  const TensorI8 wq = random_i8({20, 6}, rng);
  SimConfig cfg;
  cfg.arch.po = 4;
  cfg.arch.pci = 4;
  cfg.arch.pco = 4;
  cfg.dataflow = Dataflow::kIS;
  cfg.psum = PsumConfig::baseline_int32();
  Accelerator acc(cfg);
  const SimResult r = acc.run_gemm(xq, wq);
  const TensorI32 ref = matmul_i8(xq, wq);
  for (index_t i = 0; i < ref.numel(); ++i)
    ASSERT_EQ(r.ofmap[i], static_cast<i64>(ref[i]));
}

}  // namespace
}  // namespace apsq
