// Randomized cross-implementation fuzzing: for many random shapes, group
// sizes, and per-tile exponent vectors, the three APSQ implementations —
// double-precision reference (Algorithm 1), integer shift path, and the
// structural RAE engine — must agree bit-for-bit, and the accelerator must
// agree with the per-position reference on random GEMMs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "quant/apsq_int.hpp"
#include "quant/grouping.hpp"
#include "rae/rae_engine.hpp"
#include "sim/accelerator.hpp"
#include "tensor/matmul.hpp"

namespace apsq {
namespace {

TEST(Fuzz, ThreeImplementationsAgreeOnRandomConfigs) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 120; ++trial) {
    const index_t gs = 1 + static_cast<index_t>(rng.uniform_index(4));
    const index_t np = 1 + static_cast<index_t>(rng.uniform_index(20));
    const index_t elems = 1 + static_cast<index_t>(rng.uniform_index(12));

    std::vector<int> exps;
    std::vector<double> scales;
    for (index_t t = 0; t < np; ++t) {
      const int e = static_cast<int>(rng.uniform_index(9));
      exps.push_back(e);
      scales.push_back(std::exp2(e));
    }

    GroupedApsq::Options fopt;
    fopt.group_size = gs;
    fopt.num_tiles = np;
    fopt.scales = scales;
    GroupedApsq fref({elems}, fopt);

    GroupedApsqInt::Options iopt;
    iopt.group_size = gs;
    iopt.num_tiles = np;
    iopt.exponents = exps;
    GroupedApsqInt iref({elems}, iopt);

    RaeEngine::Options ropt;
    ropt.group_size = gs;
    ropt.num_tiles = np;
    ropt.exponents = exps;
    RaeEngine rae({elems}, ropt);

    for (index_t t = 0; t < np; ++t) {
      TensorI32 tile({elems});
      TensorF ftile({elems});
      for (index_t i = 0; i < elems; ++i) {
        const i32 v =
            static_cast<i32>(static_cast<i64>(rng.next_u64() % 60001) - 30000);
        tile[i] = v;
        ftile[i] = static_cast<float>(v);
      }
      fref.push(ftile);
      iref.push(tile);
      rae.push(tile);
    }

    const TensorF f = fref.output();
    const TensorI64 a = iref.output();
    const TensorI64 b = rae.output();
    for (index_t i = 0; i < elems; ++i) {
      ASSERT_EQ(a[i], b[i]) << "trial " << trial << " gs=" << gs
                            << " np=" << np;
      ASSERT_EQ(static_cast<i64>(std::llround(f[i])), a[i])
          << "trial " << trial << " gs=" << gs << " np=" << np;
    }
  }
}

TEST(Fuzz, AcceleratorAgreesWithReferenceOnRandomGemms) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 25; ++trial) {
    const index_t m = 1 + static_cast<index_t>(rng.uniform_index(20));
    const index_t k = 1 + static_cast<index_t>(rng.uniform_index(40));
    const index_t n = 1 + static_cast<index_t>(rng.uniform_index(15));
    const index_t gs = 1 + static_cast<index_t>(rng.uniform_index(4));
    const int exp = static_cast<int>(rng.uniform_index(8));
    const auto df = rng.uniform_index(2) == 0 ? Dataflow::kWS : Dataflow::kIS;

    TensorI8 x({m, k}), w({k, n});
    for (index_t i = 0; i < x.numel(); ++i)
      x[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);
    for (index_t i = 0; i < w.numel(); ++i)
      w[i] = static_cast<i8>(static_cast<i64>(rng.next_u64() % 256) - 128);

    SimConfig cfg;
    cfg.arch.po = 1 + static_cast<index_t>(rng.uniform_index(6));
    cfg.arch.pci = 1 + static_cast<index_t>(rng.uniform_index(6));
    cfg.arch.pco = 1 + static_cast<index_t>(rng.uniform_index(6));
    cfg.dataflow = df;
    cfg.psum = PsumConfig::apsq_int8(gs);
    cfg.psum_exponents = {exp};
    Accelerator acc(cfg);
    const SimResult r = acc.run_gemm(x, w);

    const index_t nci = ceil_div(k, cfg.arch.pci);
    GroupedApsqInt::Options opt;
    opt.group_size = gs;
    opt.num_tiles = nci;
    opt.exponents = {exp};
    GroupedApsqInt ref({m, n}, opt);
    for (index_t t = 0; t < nci; ++t)
      ref.push(matmul_i8_krange(x, w, t * cfg.arch.pci,
                                std::min((t + 1) * cfg.arch.pci, k)));
    const TensorI64 expect = ref.output();
    for (index_t i = 0; i < expect.numel(); ++i)
      ASSERT_EQ(r.ofmap[i], expect[i])
          << "trial " << trial << " m=" << m << " k=" << k << " n=" << n
          << " gs=" << gs << " exp=" << exp << " df=" << to_string(df);
  }
}

TEST(Fuzz, EnergyModelInvariantsOnRandomLayers) {
  Rng rng(0xCAFE);
  const AcceleratorConfig arch = AcceleratorConfig::dnn_default();
  for (int trial = 0; trial < 200; ++trial) {
    LayerShape layer;
    layer.name = "fuzz";
    layer.rows = 1 + static_cast<index_t>(rng.uniform_index(30000));
    layer.ci = 1 + static_cast<index_t>(rng.uniform_index(4096));
    layer.co = 1 + static_cast<index_t>(rng.uniform_index(4096));

    for (auto df : {Dataflow::kIS, Dataflow::kWS, Dataflow::kOS}) {
      // Energy must be positive and monotone in PSUM precision.
      double prev = 0.0;
      for (int bits : {8, 16, 32}) {
        const double e =
            layer_energy(df, layer, arch, PsumConfig{bits, false, 1})
                .total_pj();
        ASSERT_GT(e, 0.0);
        ASSERT_GE(e, prev);
        prev = e;
      }
      // gs never decreases energy (footprint can only grow).
      double prev_gs = 0.0;
      for (index_t gs = 1; gs <= 4; ++gs) {
        const double e =
            layer_energy(df, layer, arch, PsumConfig::apsq_int8(gs))
                .total_pj();
        ASSERT_GE(e, prev_gs);
        prev_gs = e;
      }
    }
  }
}

}  // namespace
}  // namespace apsq
