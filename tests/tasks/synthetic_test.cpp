#include "tasks/synthetic.hpp"

#include <gtest/gtest.h>

#include "tasks/glue_proxy.hpp"
#include "tasks/seg_proxy.hpp"
#include "tasks/zcsr_proxy.hpp"

namespace apsq::tasks {
namespace {

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.feature_dim = 20;
  spec.num_classes = 3;
  spec.train_samples = 100;
  spec.test_samples = 40;
  const nn::Dataset ds = make_synthetic_dataset(spec);
  EXPECT_EQ(ds.train_x.dim(0), 100);
  EXPECT_EQ(ds.train_x.dim(1), 20);
  EXPECT_EQ(ds.test_x.dim(0), 40);
  EXPECT_EQ(ds.train_y.size(), 100u);
  EXPECT_EQ(ds.num_classes, 3);
}

TEST(Synthetic, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.seed = 42;
  const nn::Dataset a = make_synthetic_dataset(spec);
  const nn::Dataset b = make_synthetic_dataset(spec);
  EXPECT_EQ(a.train_y, b.train_y);
  for (index_t i = 0; i < a.train_x.numel(); ++i)
    EXPECT_FLOAT_EQ(a.train_x[i], b.train_x[i]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(make_synthetic_dataset(a).train_y,
            make_synthetic_dataset(b).train_y);
}

TEST(Synthetic, AllClassesRepresented) {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.train_samples = 2000;
  const nn::Dataset ds = make_synthetic_dataset(spec);
  std::vector<int> hist(4, 0);
  for (index_t y : ds.train_y) ++hist[static_cast<size_t>(y)];
  for (int h : hist) EXPECT_GT(h, 50);
}

TEST(Synthetic, RegressionTargetsPopulated) {
  SyntheticSpec spec;
  spec.regression = true;
  spec.metric = nn::Metric::kPearson;
  const nn::Dataset ds = make_synthetic_dataset(spec);
  EXPECT_TRUE(ds.regression);
  EXPECT_EQ(ds.train_target.dim(0), spec.train_samples);
  EXPECT_EQ(ds.train_target.dim(1), 1);
  float spread = 0.0f;
  for (index_t i = 1; i < ds.train_target.numel(); ++i)
    spread += std::abs(ds.train_target[i] - ds.train_target[0]);
  EXPECT_GT(spread, 0.0f);
}

TEST(GlueProxy, SixTasksInPaperOrder) {
  const auto specs = glue_proxy_specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "QNLI");
  EXPECT_EQ(specs[1].name, "MNLI");
  EXPECT_EQ(specs[2].name, "RTE");
  EXPECT_EQ(specs[3].name, "STS-B");
  EXPECT_EQ(specs[4].name, "MRPC");
  EXPECT_EQ(specs[5].name, "CoLA");
}

TEST(GlueProxy, MetricsMatchGlueProtocol) {
  const auto specs = glue_proxy_specs();
  EXPECT_EQ(specs[3].metric, nn::Metric::kPearson);    // STS-B
  EXPECT_TRUE(specs[3].regression);
  EXPECT_EQ(specs[5].metric, nn::Metric::kMatthews);   // CoLA
  EXPECT_EQ(specs[0].metric, nn::Metric::kAccuracy);
  EXPECT_EQ(specs[1].num_classes, 3);                  // MNLI 3-way
}

TEST(GlueProxy, LookupByName) {
  EXPECT_EQ(glue_proxy_spec("MRPC").name, "MRPC");
  EXPECT_THROW(glue_proxy_spec("SST-2"), std::logic_error);
}

TEST(SegProxy, DatasetUsesMiou) {
  const nn::Dataset ds = make_seg_proxy_dataset(segformer_proxy_spec());
  EXPECT_EQ(ds.metric, nn::Metric::kMiou);
  EXPECT_GE(ds.num_classes, 2);
  EXPECT_EQ(ds.train_y.size(), static_cast<size_t>(ds.train_x.dim(0)));
}

TEST(SegProxy, SpatialCorrelationPresent) {
  // Neighbouring pixels must be more similar than distant ones.
  const nn::Dataset ds = make_seg_proxy_dataset(segformer_proxy_spec());
  double near = 0.0, far = 0.0;
  const index_t n = ds.train_x.dim(0), d = ds.train_x.dim(1);
  for (index_t i = 0; i + 1 < std::min<index_t>(n, 500); ++i)
    for (index_t j = 0; j < d; ++j) {
      near += std::abs(ds.train_x(i, j) - ds.train_x(i + 1, j));
      far += std::abs(ds.train_x(i, j) - ds.train_x((i + n / 2) % n, j));
    }
  EXPECT_LT(near, far);
}

TEST(ZcsrProxy, SevenTasksMatchingTableIII) {
  const auto specs = zcsr_proxy_specs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "BoolQ");
  EXPECT_EQ(specs[6].name, "OBQA");
  for (const auto& s : specs) {
    EXPECT_GE(s.num_classes, 2);
    EXPECT_LE(s.num_classes, 4);
  }
}

}  // namespace
}  // namespace apsq::tasks
