#include "quant/grouping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/apsq.hpp"
#include "tensor/ops.hpp"

namespace apsq {
namespace {

std::vector<TensorF> random_tiles(index_t np, Shape shape, Rng& rng,
                                  double scale = 20.0) {
  std::vector<TensorF> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorF tile(shape);
    for (index_t i = 0; i < tile.numel(); ++i)
      tile[i] = static_cast<float>(std::round(rng.normal(0.0, scale)));
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

GroupedApsq make(Shape shape, index_t gs, index_t np, double alpha = 4.0,
                 QuantSpec spec = QuantSpec::int8()) {
  GroupedApsq::Options opt;
  opt.spec = spec;
  opt.group_size = gs;
  opt.num_tiles = np;
  opt.scales = {alpha};
  return GroupedApsq(std::move(shape), opt);
}

TEST(GroupedApsq, SingleTile) {
  auto g = make({1}, 3, 1, 2.0);
  g.push(TensorF({1}, std::vector<float>{9.0f}));
  EXPECT_FLOAT_EQ(g.output()(0), 10.0f);  // 9/2 = 4.5 -> 5 (half away) -> 5·2
}

TEST(GroupedApsq, AlgorithmOneWorkflowGs3) {
  // Fig. 4 workflow with gs = 3 and α = 1 (no rounding): tiles 0..3.
  // i=0 fold (empty history), i=1..2 plain, i=3 final fold of {0,1,2}+Tp3.
  auto g = make({1}, 3, 4, 1.0);
  for (float v : {10.0f, 20.0f, 30.0f, 40.0f})
    g.push(TensorF({1}, std::vector<float>{v}));
  EXPECT_FLOAT_EQ(g.output()(0), 100.0f);
  EXPECT_EQ(g.stats().apsq_folds, 2);        // i=0 and the final tile
  EXPECT_EQ(g.stats().quantizer_calls, 4);   // every tile quantized once
}

TEST(GroupedApsq, MaxLiveTilesEqualsGroupSize) {
  for (index_t gs : {1, 2, 3, 4}) {
    Rng rng(10 + static_cast<u64>(gs));
    const index_t np = 12;
    auto g = make({2, 2}, gs, np);
    for (const auto& t : random_tiles(np, {2, 2}, rng)) g.push(t);
    EXPECT_EQ(g.stats().max_live_tiles, gs)
        << "footprint multiplier must equal gs (energy-model coupling)";
  }
}

TEST(GroupedApsq, BufferTrafficIndependentOfGroupSize) {
  // §III-B: "the grouping strategy maintains the same total memory read
  // and write operations for APSQ with both gs = 1 and gs > 1".
  const index_t np = 24;
  std::vector<index_t> writes, reads;
  for (index_t gs : {1, 2, 3, 4}) {
    Rng rng(77);
    auto g = make({2, 2}, gs, np);
    for (const auto& t : random_tiles(np, {2, 2}, rng)) g.push(t);
    writes.push_back(g.stats().buffer_writes);
    reads.push_back(g.stats().buffer_reads);
  }
  for (size_t i = 1; i < writes.size(); ++i) {
    EXPECT_EQ(writes[i], writes[0]);
    EXPECT_EQ(reads[i], reads[0]);
  }
}

TEST(GroupedApsq, EveryTileQuantizedExactlyOnce) {
  for (index_t gs : {1, 2, 3, 4, 7}) {
    Rng rng(5);
    const index_t np = 13;
    auto g = make({1}, gs, np);
    for (const auto& t : random_tiles(np, {1}, rng)) g.push(t);
    EXPECT_EQ(g.stats().quantizer_calls, np);
  }
}

TEST(GroupedApsq, GroupSizeLargerThanNp) {
  // gs >= np: one initial fold, plains, one final fold.
  Rng rng(6);
  const index_t np = 5;
  auto g = make({2}, 8, np, 1.0, QuantSpec{16, true});
  TensorF ref({2}, 0.0f);
  for (const auto& t : random_tiles(np, {2}, rng, 5.0)) {
    g.push(t);
    add_inplace(ref, t);
  }
  EXPECT_LT(max_abs_diff(g.output(), ref), 1e-4f);
  EXPECT_EQ(g.stats().apsq_folds, 2);
}

TEST(GroupedApsq, NpNotDivisibleByGs) {
  Rng rng(7);
  const index_t np = 10, gs = 3;  // groups: [0..2][3..5][6..8][9]
  auto g = make({1}, gs, np, 1.0, QuantSpec{16, true});
  TensorF ref({1}, 0.0f);
  for (const auto& t : random_tiles(np, {1}, rng, 5.0)) {
    g.push(t);
    add_inplace(ref, t);
  }
  EXPECT_LT(max_abs_diff(g.output(), ref), 1e-4f);
  // folds at i = 0, 3, 6, 9 (9 is both leader and last -> one fold).
  EXPECT_EQ(g.stats().apsq_folds, 4);
}

TEST(GroupedApsq, LastTileIsLeader) {
  // np = 7, gs = 3: leaders at 0, 3, 6; 6 is also last.
  Rng rng(8);
  auto g = make({1}, 3, 7, 1.0, QuantSpec{16, true});
  TensorF ref({1}, 0.0f);
  for (const auto& t : random_tiles(7, {1}, rng, 5.0)) {
    g.push(t);
    add_inplace(ref, t);
  }
  EXPECT_LT(max_abs_diff(g.output(), ref), 1e-4f);
}

TEST(GroupedApsq, LargerGroupsReduceAccumulatedError) {
  // The motivation for grouping (§III-B): fewer history folds => less
  // compounded rounding error. Statistical property over many trials.
  double err_gs1 = 0.0, err_gs4 = 0.0;
  for (u64 trial = 0; trial < 40; ++trial) {
    Rng rng(1000 + trial);
    const index_t np = 32;
    const auto tiles = random_tiles(np, {4, 4}, rng, 25.0);
    const TensorF exact =
        accumulate_psums(tiles, PsumMode::kExact, QuantSpec::int8(), {1.0});
    const TensorF a1 = accumulate_psums(tiles, PsumMode::kApsq,
                                        QuantSpec::int8(), {4.0}, 1);
    const TensorF a4 = accumulate_psums(tiles, PsumMode::kApsq,
                                        QuantSpec::int8(), {4.0}, 4);
    for (index_t i = 0; i < exact.numel(); ++i) {
      err_gs1 += std::abs(a1[i] - exact[i]);
      err_gs4 += std::abs(a4[i] - exact[i]);
    }
  }
  EXPECT_LT(err_gs4, err_gs1);
}

TEST(GroupedApsq, RejectsBadOptions) {
  GroupedApsq::Options opt;
  opt.group_size = 0;
  opt.num_tiles = 4;
  opt.scales = {1.0};
  EXPECT_THROW(GroupedApsq({1}, opt), std::logic_error);
  opt.group_size = 1;
  opt.num_tiles = 0;
  EXPECT_THROW(GroupedApsq({1}, opt), std::logic_error);
  opt.num_tiles = 4;
  opt.scales = {1.0, 2.0};  // neither 1 nor np
  EXPECT_THROW(GroupedApsq({1}, opt), std::logic_error);
}

TEST(GroupedApsq, ShapeMismatchThrows) {
  auto g = make({2, 2}, 1, 2);
  EXPECT_THROW(g.push(TensorF({3}, 0.0f)), std::logic_error);
}

}  // namespace
}  // namespace apsq
