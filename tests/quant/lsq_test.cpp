#include "quant/lsq.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"

#include "common/rng.hpp"

namespace apsq {
namespace {

TensorF random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  TensorF t(std::move(s));
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TEST(LsqForward, ValuesLieOnGrid) {
  Rng rng(1);
  const TensorF x = random_tensor({64}, rng);
  const float alpha = 0.1f;
  const LsqResult r = lsq_forward(x, alpha, QuantSpec::int8());
  for (index_t i = 0; i < x.numel(); ++i) {
    const float q = r.y[i] / alpha;
    EXPECT_NEAR(q, std::round(q), 1e-4);
    EXPECT_GE(q, -128.0f);
    EXPECT_LE(q, 127.0f);
  }
}

TEST(LsqForward, PassMaskIdentifiesClipping) {
  TensorF x({3}, std::vector<float>{0.5f, 100.0f, -100.0f});
  const LsqResult r = lsq_forward(x, 0.1f, QuantSpec::int8());
  EXPECT_FLOAT_EQ(r.pass_mask(0), 1.0f);
  EXPECT_FLOAT_EQ(r.pass_mask(1), 0.0f);  // 1000 > 127
  EXPECT_FLOAT_EQ(r.pass_mask(2), 0.0f);
}

TEST(LsqBackward, SteMasksClippedElements) {
  TensorF x({3}, std::vector<float>{0.5f, 100.0f, -100.0f});
  TensorF dy({3}, 1.0f);
  const LsqGrads g = lsq_backward(x, 0.1f, QuantSpec::int8(), dy);
  EXPECT_FLOAT_EQ(g.dx(0), 1.0f);
  EXPECT_FLOAT_EQ(g.dx(1), 0.0f);
  EXPECT_FLOAT_EQ(g.dx(2), 0.0f);
}

TEST(LsqBackward, AlphaGradientMatchesPublishedFormula) {
  // Esser et al. (2020), Eq. for ∂x̃/∂α under STE:
  //   -x/α + ⌊x/α⌉   if Qn ≤ x/α ≤ Qp
  //   Qn / Qp        if clipped below / above,
  // scaled by g = 1/sqrt(N·Qp). Independent reimplementation here.
  Rng rng(7);
  const QuantSpec spec = QuantSpec::int8();
  const TensorF x = random_tensor({256}, rng, 5.0);
  const float alpha = 0.09f;
  TensorF dy({256});
  for (index_t i = 0; i < dy.numel(); ++i)
    dy[i] = static_cast<float>(rng.normal());

  const LsqGrads g = lsq_backward(x, alpha, spec, dy);

  double expected = 0.0;
  for (index_t i = 0; i < x.numel(); ++i) {
    const double v = static_cast<double>(x[i]) / alpha;
    double d;
    if (v < spec.qmin()) d = spec.qmin();
    else if (v > spec.qmax()) d = spec.qmax();
    else d = round_half_away(v) - v;
    expected += d * dy[i];
  }
  expected *= lsq_grad_scale(x.numel(), spec);
  EXPECT_NEAR(g.dalpha, expected, 1e-5 + 1e-5 * std::abs(expected));
}

TEST(LsqBackward, ClippedElementsContributeGridBound) {
  const QuantSpec spec = QuantSpec::int8();
  TensorF x({2}, std::vector<float>{1000.0f, -1000.0f});
  TensorF dy({2}, 1.0f);
  const LsqGrads g = lsq_backward(x, 1.0f, spec, dy);
  const float gs = lsq_grad_scale(2, spec);
  EXPECT_NEAR(g.dalpha, (127.0f - 128.0f) * gs, 1e-6);
}

TEST(LsqInitAlpha, MatchesFormula) {
  TensorF x({2}, std::vector<float>{1.0f, -3.0f});
  const float a = lsq_init_alpha(x, QuantSpec::int8());
  EXPECT_NEAR(a, 2.0f * 2.0f / std::sqrt(127.0f), 1e-5);
}

TEST(LsqInitAlpha, PositiveForZeroInput) {
  TensorF x({4}, 0.0f);
  EXPECT_GT(lsq_init_alpha(x, QuantSpec::int8()), 0.0f);
}

TEST(LsqGradScale, Formula) {
  EXPECT_NEAR(lsq_grad_scale(100, QuantSpec::int8()),
              1.0 / std::sqrt(100.0 * 127.0), 1e-9);
}

TEST(LsqForward, RejectsNonPositiveAlpha) {
  TensorF x({1}, 1.0f);
  EXPECT_THROW(lsq_forward(x, 0.0f, QuantSpec::int8()), std::logic_error);
}

}  // namespace
}  // namespace apsq
