#include "quant/psum_calib.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apsq {
namespace {

TEST(PsumCalib, UncalibratedDefaultsToUnitScale) {
  PsumScaleCalibrator c(QuantSpec::int8());
  EXPECT_FALSE(c.calibrated());
  EXPECT_DOUBLE_EQ(c.scale(), 1.0);
  EXPECT_EQ(c.exponent(), 0);
}

TEST(PsumCalib, ScaleIsPowerOfTwo) {
  PsumScaleCalibrator c(QuantSpec::int8());
  c.observe_abs_max(1000.0);
  const double s = c.scale();
  const double e = std::log2(s);
  EXPECT_DOUBLE_EQ(e, std::round(e));
  EXPECT_DOUBLE_EQ(s, std::exp2(c.exponent()));
}

TEST(PsumCalib, CeilModeTrackedMaxNeverClips) {
  // exponent = ceil(log2(max / Qp)) guarantees max / 2^e <= Qp.
  for (double mx : {10.0, 127.0, 128.0, 1000.0, 4096.0, 123456.0}) {
    PsumScaleCalibrator c(QuantSpec::int8(), 0.9, 1.0, Pow2Rounding::kCeil);
    c.observe_abs_max(mx);
    EXPECT_LE(mx / c.scale(), 127.0 + 1e-9) << "max=" << mx;
    // And the next smaller power of two would clip (tightness), unless
    // clamped at exponent 0.
    if (c.exponent() > 0) {
      EXPECT_GT(mx / (c.scale() / 2), 127.0) << "max=" << mx;
    }
  }
}

TEST(PsumCalib, NearestModeMatchesPaperFormula) {
  // 2^⌊log2 α⌉ (§II-B): rounding the exponent to nearest may clip up to 2x.
  PsumScaleCalibrator c(QuantSpec::int8(), 0.0, 1.0, Pow2Rounding::kNearest);
  c.observe_abs_max(512.0);  // 512/127 = 4.03, log2 = 2.01 -> e = 2
  EXPECT_EQ(c.exponent(), 2);
  // At e = 2 the max 512 maps to 128 -> clips to 127 (the paper-faithful
  // saturation behaviour).
  EXPECT_GT(512.0 / c.scale(), 127.0);
}

TEST(PsumCalib, NearestAtMostOneBelowCeil) {
  for (double mx : {10.0, 130.0, 999.0, 5000.0, 70000.0}) {
    PsumScaleCalibrator nearest(QuantSpec::int8(), 0.0, 1.0,
                                Pow2Rounding::kNearest);
    PsumScaleCalibrator ceil(QuantSpec::int8(), 0.0, 1.0, Pow2Rounding::kCeil);
    nearest.observe_abs_max(mx);
    ceil.observe_abs_max(mx);
    EXPECT_GE(nearest.exponent(), ceil.exponent() - 1);
    EXPECT_LE(nearest.exponent(), ceil.exponent());
  }
}

TEST(PsumCalib, EmaConvergesToStationaryMax) {
  PsumScaleCalibrator c(QuantSpec::int8(), 0.9, 1.0, Pow2Rounding::kCeil);
  for (int i = 0; i < 200; ++i) c.observe_abs_max(512.0);
  EXPECT_NEAR(c.tracked_max(), 512.0, 1e-6);
  EXPECT_EQ(c.exponent(), 3);  // 512/127 = 4.03 -> ceil(log2) = 3
}

TEST(PsumCalib, FirstObservationInitializesDirectly) {
  PsumScaleCalibrator c(QuantSpec::int8(), 0.99);
  c.observe_abs_max(100.0);
  EXPECT_DOUBLE_EQ(c.tracked_max(), 100.0);
}

TEST(PsumCalib, ObserveTensorTakesAbsMax) {
  PsumScaleCalibrator c(QuantSpec::int8(), 0.0);
  TensorF t({3}, std::vector<float>{-300.0f, 100.0f, 5.0f});
  c.observe(t);
  EXPECT_DOUBLE_EQ(c.tracked_max(), 300.0);
}

TEST(PsumCalib, ExponentClampedAtZero) {
  PsumScaleCalibrator c(QuantSpec::int8());
  c.observe_abs_max(1.0);  // tiny PSUMs still get scale 1 (integer grid)
  EXPECT_EQ(c.exponent(), 0);
}

TEST(PsumCalib, MarginAddsHeadroom) {
  PsumScaleCalibrator tight(QuantSpec::int8(), 0.9, 1.0);
  PsumScaleCalibrator wide(QuantSpec::int8(), 0.9, 2.0);
  tight.observe_abs_max(1000.0);
  wide.observe_abs_max(1000.0);
  EXPECT_GE(wide.exponent(), tight.exponent() + 1);
}

TEST(PsumCalib, RejectsBadConstruction) {
  EXPECT_THROW(PsumScaleCalibrator(QuantSpec::int8(), 1.0),
               std::logic_error);
  EXPECT_THROW(PsumScaleCalibrator(QuantSpec::int8(), 0.5, 0.5),
               std::logic_error);
}

}  // namespace
}  // namespace apsq
