#include "quant/apsq.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/grouping.hpp"
#include "quant/uniform.hpp"
#include "tensor/ops.hpp"

namespace apsq {
namespace {

std::vector<TensorF> random_tiles(index_t np, Shape shape, Rng& rng,
                                  double scale = 20.0) {
  std::vector<TensorF> tiles;
  for (index_t t = 0; t < np; ++t) {
    TensorF tile(shape);
    for (index_t i = 0; i < tile.numel(); ++i)
      tile[i] = static_cast<float>(
          std::round(rng.normal(0.0, scale)));  // integer-valued PSUMs
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

TEST(ApsqAccumulator, SingleTileIsPlainQuantization) {
  TensorF tp({2}, std::vector<float>{10.0f, -5.0f});
  ApsqAccumulator acc({2}, QuantSpec::int8(), {2.0}, 1);
  acc.push(tp);
  const TensorF out = acc.output();
  EXPECT_FLOAT_EQ(out(0), 10.0f);  // 10/2 = 5 -> 5·2
  EXPECT_FLOAT_EQ(out(1), -6.0f);  // -5/2 = -2.5 -> -3 (half away) -> -3·2
}

TEST(ApsqAccumulator, HalfAwayRoundingInRecursion) {
  TensorF tp({1}, std::vector<float>{-5.0f});
  ApsqAccumulator acc({1}, QuantSpec::int8(), {2.0}, 1);
  acc.push(tp);
  // -5/2 = -2.5 rounds away from zero to -3 -> dequant -6.
  EXPECT_FLOAT_EQ(acc.output()(0), -6.0f);
}

TEST(ApsqAccumulator, RecursionMatchesEq10ByHand) {
  // Eq. (10) with α = 1 everywhere: AP_i = clip(round(Tp_i + AP_{i-1})).
  ApsqAccumulator acc({1}, QuantSpec::int8(), {1.0}, 3);
  acc.push(TensorF({1}, std::vector<float>{100.0f}));
  acc.push(TensorF({1}, std::vector<float>{50.0f}));  // 150 clips to 127
  acc.push(TensorF({1}, std::vector<float>{-20.0f}));
  EXPECT_FLOAT_EQ(acc.output()(0), 107.0f);  // 127 - 20
}

TEST(ApsqAccumulator, ExactWhenScaleOneAndNoClip) {
  Rng rng(1);
  const auto tiles = random_tiles(8, {4, 3}, rng, 5.0);
  ApsqAccumulator acc({4, 3}, QuantSpec{16, true}, {1.0}, 8);
  TensorF ref({4, 3}, 0.0f);
  for (const auto& t : tiles) {
    acc.push(t);
    add_inplace(ref, t);
  }
  EXPECT_LT(max_abs_diff(acc.output(), ref), 1e-4f);
}

TEST(ApsqAccumulator, OutputBeforeCompletionThrows) {
  ApsqAccumulator acc({1}, QuantSpec::int8(), {1.0}, 2);
  acc.push(TensorF({1}, 1.0f));
  EXPECT_THROW(acc.output(), std::logic_error);
}

TEST(ApsqAccumulator, TooManyPushesThrows) {
  ApsqAccumulator acc({1}, QuantSpec::int8(), {1.0}, 1);
  acc.push(TensorF({1}, 1.0f));
  EXPECT_THROW(acc.push(TensorF({1}, 1.0f)), std::logic_error);
}

TEST(ApsqAccumulator, PerTileScales) {
  ApsqAccumulator acc({1}, QuantSpec::int8(), {1.0, 2.0}, 2);
  acc.push(TensorF({1}, std::vector<float>{7.0f}));   // AP0 = 7 (α=1)
  acc.push(TensorF({1}, std::vector<float>{3.0f}));   // (3 + 7)/2 = 5
  EXPECT_FLOAT_EQ(acc.output()(0), 10.0f);            // 5 * 2
}

TEST(ApsqAccumulator, EquivalentToGroupedGs1) {
  Rng rng(2);
  const auto tiles = random_tiles(12, {3, 5}, rng, 30.0);
  ApsqAccumulator a({3, 5}, QuantSpec::int8(), {4.0}, 12);
  GroupedApsq::Options opt;
  opt.spec = QuantSpec::int8();
  opt.group_size = 1;
  opt.num_tiles = 12;
  opt.scales = {4.0};
  GroupedApsq g({3, 5}, opt);
  for (const auto& t : tiles) {
    a.push(t);
    g.push(t);
  }
  EXPECT_FLOAT_EQ(max_abs_diff(a.output(), g.output()), 0.0f);
}

TEST(PsqAccumulator, IndependentQuantizationSum) {
  PsqAccumulator acc({1}, QuantSpec::int8(), {2.0}, 3);
  acc.push(TensorF({1}, std::vector<float>{3.0f}));   // -> 4
  acc.push(TensorF({1}, std::vector<float>{3.0f}));   // -> 4
  acc.push(TensorF({1}, std::vector<float>{3.0f}));   // -> 4
  EXPECT_FLOAT_EQ(acc.output()(0), 12.0f);  // each tile rounds up separately
}

TEST(AccumulatePsums, ExactModeIsPlainSum) {
  Rng rng(3);
  const auto tiles = random_tiles(6, {2, 2}, rng);
  const TensorF out =
      accumulate_psums(tiles, PsumMode::kExact, QuantSpec::int8(), {1.0});
  TensorF ref({2, 2}, 0.0f);
  for (const auto& t : tiles) add_inplace(ref, t);
  EXPECT_LT(max_abs_diff(out, ref), 1e-4f);
}

TEST(AccumulatePsums, ApsqNoiseBoundedByScale) {
  // With a scale covering the dynamic range, every APSQ step introduces at
  // most α/2 rounding error, so |error| ≤ np · α/2.
  Rng rng(4);
  const index_t np = 16;
  const auto tiles = random_tiles(np, {8, 8}, rng, 10.0);
  const TensorF exact =
      accumulate_psums(tiles, PsumMode::kExact, QuantSpec::int8(), {1.0});
  const double alpha = 4.0;
  const TensorF apsq = accumulate_psums(tiles, PsumMode::kApsq,
                                        QuantSpec::int8(), {alpha}, 1);
  EXPECT_LE(max_abs_diff(exact, apsq), np * alpha / 2 + 1e-3);
}

TEST(PsumModeNames, Strings) {
  EXPECT_STREQ(to_string(PsumMode::kExact), "exact");
  EXPECT_STREQ(to_string(PsumMode::kPsq), "psq");
  EXPECT_STREQ(to_string(PsumMode::kApsq), "apsq");
}

}  // namespace
}  // namespace apsq
