#include "quant/uniform.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace apsq {
namespace {

TEST(QuantSpec, GridBounds) {
  EXPECT_EQ(QuantSpec::int8().qmin(), -128);
  EXPECT_EQ(QuantSpec::int8().qmax(), 127);
  EXPECT_EQ(QuantSpec::int4().qmin(), -8);
  EXPECT_EQ(QuantSpec::int4().qmax(), 7);
  EXPECT_EQ(QuantSpec::int6().qmax(), 31);
  EXPECT_EQ(QuantSpec::uint8().qmin(), 0);
  EXPECT_EQ(QuantSpec::uint8().qmax(), 255);
  EXPECT_EQ(QuantSpec::int8().levels(), 256);
}

TEST(QuantizeCode, RoundsHalfAwayAndClips) {
  const QuantSpec s = QuantSpec::int8();
  EXPECT_EQ(quantize_code(1.5, 1.0, s), 2);
  EXPECT_EQ(quantize_code(-1.5, 1.0, s), -2);
  EXPECT_EQ(quantize_code(1.49, 1.0, s), 1);
  EXPECT_EQ(quantize_code(300.0, 1.0, s), 127);
  EXPECT_EQ(quantize_code(-300.0, 1.0, s), -128);
  EXPECT_EQ(quantize_code(3.0, 2.0, s), 2);  // 1.5 -> 2
}

TEST(FakeQuantize, IdempotentOnGrid) {
  const QuantSpec s = QuantSpec::int8();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(0.0, 10.0);
    const double alpha = 0.125;
    const double q1 = fake_quantize(x, alpha, s);
    const double q2 = fake_quantize(q1, alpha, s);
    ASSERT_DOUBLE_EQ(q1, q2);
  }
}

TEST(FakeQuantize, ErrorBoundedByHalfStep) {
  const QuantSpec s = QuantSpec::int8();
  Rng rng(2);
  const double alpha = 0.25;
  for (int i = 0; i < 500; ++i) {
    // stay inside the representable range
    const double x = rng.uniform(-127 * alpha, 127 * alpha);
    const double q = fake_quantize(x, alpha, s);
    ASSERT_LE(std::abs(q - x), alpha / 2 + 1e-12);
  }
}

TEST(FakeQuantize, TensorVariantMatchesScalar) {
  const QuantSpec s = QuantSpec::int8();
  TensorF x({3}, std::vector<float>{0.3f, -7.9f, 100.0f});
  const TensorF y = fake_quantize(x, 0.5, s);
  for (index_t i = 0; i < 3; ++i)
    EXPECT_FLOAT_EQ(y(i), static_cast<float>(fake_quantize(
                              static_cast<double>(x(i)), 0.5, s)));
}

TEST(QuantizeCodes, DequantizeRoundTrip) {
  const QuantSpec s = QuantSpec::int8();
  TensorF x({4}, std::vector<float>{1.0f, -2.0f, 3.5f, 0.0f});
  const TensorI32 q = quantize_codes(x, 0.5, s);
  const TensorF back = dequantize(q, 0.5);
  EXPECT_FLOAT_EQ(back(0), 1.0f);
  EXPECT_FLOAT_EQ(back(1), -2.0f);
  EXPECT_FLOAT_EQ(back(2), 3.5f);
  EXPECT_FLOAT_EQ(back(3), 0.0f);
}

TEST(CalibrateMinmax, MaxMapsToQmax) {
  const QuantSpec s = QuantSpec::int8();
  TensorF x({3}, std::vector<float>{-254.0f, 10.0f, 100.0f});
  const double alpha = calibrate_minmax(x, s);
  EXPECT_DOUBLE_EQ(alpha, 2.0);
  // No value may clip at this scale except the negative extreme rounding.
  EXPECT_EQ(quantize_code(100.0, alpha, s), 50);
}

TEST(CalibrateMinmax, AllZeroInputFallsBack) {
  TensorF x({4}, 0.0f);
  EXPECT_DOUBLE_EQ(calibrate_minmax(x, QuantSpec::int8()), 1.0);
}

TEST(QuantizationMse, ZeroOnGridPoints) {
  const QuantSpec s = QuantSpec::int8();
  TensorF x({3}, std::vector<float>{1.0f, -2.5f, 0.5f});
  EXPECT_NEAR(quantization_mse(x, 0.5, s), 0.0, 1e-12);
  EXPECT_GT(quantization_mse(x, 0.4, s), 0.0);
}

TEST(QuantizationMse, DecreasesWithMoreBits) {
  Rng rng(3);
  TensorF x({512});
  for (index_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  const double a8 = calibrate_minmax(x, QuantSpec::int8());
  const double a4 = calibrate_minmax(x, QuantSpec::int4());
  EXPECT_LT(quantization_mse(x, a8, QuantSpec::int8()),
            quantization_mse(x, a4, QuantSpec::int4()));
}

}  // namespace
}  // namespace apsq
