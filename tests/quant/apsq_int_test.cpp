#include "quant/apsq_int.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/grouping.hpp"

namespace apsq {
namespace {

TEST(PsumQuantizeShift, MatchesFormula) {
  const QuantSpec s = QuantSpec::int8();
  EXPECT_EQ(psum_quantize_shift(10, 1, s), 5);
  EXPECT_EQ(psum_quantize_shift(5, 1, s), 3);    // 2.5 -> 3
  EXPECT_EQ(psum_quantize_shift(-5, 1, s), -3);  // -2.5 -> -3
  EXPECT_EQ(psum_quantize_shift(10000, 2, s), 127);   // clips
  EXPECT_EQ(psum_quantize_shift(-10000, 2, s), -128);
  EXPECT_EQ(psum_quantize_shift(7, 0, s), 7);
}

TEST(PsumDequantizeShift, LeftShift) {
  EXPECT_EQ(psum_dequantize_shift(5, 3), 40);
  EXPECT_EQ(psum_dequantize_shift(-5, 3), -40);
  EXPECT_EQ(psum_dequantize_shift(127, 0), 127);
}

TEST(ShiftPair, RoundTripWithinHalfStep) {
  Rng rng(1);
  const QuantSpec s = QuantSpec::int8();
  for (int trial = 0; trial < 1000; ++trial) {
    const int e = static_cast<int>(rng.next_u64() % 8);
    // value within representable range of the grid
    const i64 lim = i64{127} << e;
    const i64 x = static_cast<i64>(rng.next_u64() % (2 * lim + 1)) - lim;
    const i32 q = psum_quantize_shift(x, e, s);
    const i64 back = psum_dequantize_shift(q, e);
    ASSERT_LE(std::abs(back - x), (i64{1} << e) / 2 + ((e == 0) ? 0 : 0))
        << "x=" << x << " e=" << e;
  }
}

class IntVsFloatSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(IntVsFloatSweep, BitExactEquivalence) {
  // The integer shift path must agree BIT-FOR-BIT with the double-precision
  // reference when scales are powers of two (DESIGN.md §3.3).
  const auto [gs, np, exp] = GetParam();
  Rng rng(static_cast<u64>(gs * 1000 + np * 10 + exp));
  const Shape shape{3, 4};

  GroupedApsq::Options fopt;
  fopt.spec = QuantSpec::int8();
  fopt.group_size = gs;
  fopt.num_tiles = np;
  fopt.scales = {std::exp2(exp)};
  GroupedApsq fref(shape, fopt);

  GroupedApsqInt::Options iopt;
  iopt.spec = QuantSpec::int8();
  iopt.group_size = gs;
  iopt.num_tiles = np;
  iopt.exponents = {exp};
  GroupedApsqInt iref(shape, iopt);

  for (index_t t = 0; t < np; ++t) {
    TensorI32 tile(shape);
    TensorF ftile(shape);
    for (index_t i = 0; i < tile.numel(); ++i) {
      const i32 v = static_cast<i32>(static_cast<i64>(rng.next_u64() % 4001) - 2000);
      tile[i] = v;
      ftile[i] = static_cast<float>(v);
    }
    fref.push(ftile);
    iref.push(tile);
  }

  const TensorF fout = fref.output();
  const TensorI64 iout = iref.output();
  for (index_t i = 0; i < fout.numel(); ++i)
    ASSERT_EQ(static_cast<i64>(std::llround(fout[i])), iout[i])
        << "gs=" << gs << " np=" << np << " exp=" << exp << " elem=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    GsNpExpGrid, IntVsFloatSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 4),
                       ::testing::Values<index_t>(1, 2, 5, 8, 13),
                       ::testing::Values(0, 2, 5)));

TEST(GroupedApsqInt, RejectsBadExponent) {
  GroupedApsqInt::Options opt;
  opt.group_size = 1;
  opt.num_tiles = 2;
  opt.exponents = {-1};
  EXPECT_THROW(GroupedApsqInt({1}, opt), std::logic_error);
}

TEST(GroupedApsqInt, OutputBeforeCompletionThrows) {
  GroupedApsqInt::Options opt;
  opt.group_size = 1;
  opt.num_tiles = 2;
  opt.exponents = {0};
  GroupedApsqInt g({1}, opt);
  g.push(TensorI32({1}, 3));
  EXPECT_THROW(g.output(), std::logic_error);
}

TEST(GroupedApsqInt, FinalExponentAccessor) {
  GroupedApsqInt::Options opt;
  opt.group_size = 2;
  opt.num_tiles = 3;
  opt.exponents = {1, 2, 3};
  GroupedApsqInt g({1}, opt);
  EXPECT_EQ(g.final_exponent(), 3);
}

}  // namespace
}  // namespace apsq
