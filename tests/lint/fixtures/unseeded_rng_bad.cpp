// Fixture: violates unseeded-rng (std::rand + std::random_device).
#include <cstdlib>
#include <random>

int noise() { return std::rand(); }
unsigned entropy() { return std::random_device{}(); }
