// Fixture: null-checked find / throwing get — no json-find-deref
// violation.
#include <string>

#include "common/json.hpp"

std::string backend(const apsq::JsonValue& doc) {
  const apsq::JsonValue* v = doc.find("backend");
  if (v != nullptr && v->is_string()) return v->as_string();
  return doc.get("backend").as_string();  // throws naming the key
}
