// Fixture: checked parsing via common/cli.hpp — no raw-atoi violation.
// (The comment mention of std::atoi below must NOT trip the rule.)
#include "common/cli.hpp"

// std::atoi would turn "foo" into 0; parse_int_flag rejects it.
int parse_threads(const char* v) {
  int out = 1;
  apsq::parse_int_flag("--threads", v, 1, 256, out);
  return out;
}
