// Fixture: violates raw-atoi (unchecked ato* call).
#include <cstdlib>

int parse_threads(const char* v) { return std::atoi(v); }
