// Fixture: annotated primitives from common/annotations.hpp — no
// naked-mutex violation.
#include "common/annotations.hpp"

static apsq::Mutex g_mu;
static int g_count APSQ_GUARDED_BY(g_mu) = 0;

void bump() {
  apsq::MutexLock lock(g_mu);
  ++g_count;
}
