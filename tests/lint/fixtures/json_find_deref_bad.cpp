// Fixture: violates json-find-deref (inline deref of a nullable find()).
#include <string>

#include "common/json.hpp"

std::string backend(const apsq::JsonValue& doc) {
  return doc.find("backend")->as_string();  // nullptr deref on missing key
}
