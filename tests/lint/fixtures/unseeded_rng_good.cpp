// Fixture: deterministic seeded RNG — no unseeded-rng violation.
#include "common/rng.hpp"

double noise(apsq::Rng& rng) { return rng.uniform(); }
