// Fixture: violates naked-mutex (raw std::mutex + std::lock_guard).
#include <mutex>

static std::mutex g_mu;
static int g_count = 0;

void bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}
