#!/usr/bin/env python3
"""Unit tests for tools/apsq_lint.py.

One passing and one failing fixture per rule (tests/lint/fixtures/), plus
the repo-tree gate: the shipped tree must lint clean. stdlib unittest
only — the container has no pytest.

Run directly (`python3 tests/lint/run_lint_tests.py`) or via
`ctest -L quick` (registered as apsq_lint_fixtures / apsq_lint_tree).
"""

import io
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import apsq_lint  # noqa: E402


def run_lint(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = apsq_lint.main(argv)
    return code, out.getvalue(), err.getvalue()


class FixtureCase(unittest.TestCase):
    """Each rule fires on its bad fixture and stays quiet on its good twin."""

    RULES = ["raw-atoi", "unseeded-rng", "naked-mutex", "json-find-deref"]

    def lint_fixture(self, name):
        path = os.path.join(FIXTURES, name)
        self.assertTrue(os.path.exists(path), f"missing fixture {name}")
        return run_lint(["--root", REPO_ROOT, path])

    def test_each_rule_fires_on_bad_fixture(self):
        for rule in self.RULES:
            stem = rule.replace("-", "_")
            with self.subTest(rule=rule):
                code, out, _ = self.lint_fixture(f"{stem}_bad.cpp")
                self.assertEqual(code, 1, f"{rule}: bad fixture must fail lint")
                self.assertIn(f"[{rule}]", out)

    def test_each_rule_quiet_on_good_fixture(self):
        for rule in self.RULES:
            stem = rule.replace("-", "_")
            with self.subTest(rule=rule):
                code, out, _ = self.lint_fixture(f"{stem}_good.cpp")
                self.assertEqual(code, 0, f"{rule}: good fixture flagged:\n{out}")
                self.assertEqual(out, "")

    def test_violation_format_is_path_line_rule(self):
        code, out, _ = self.lint_fixture("raw_atoi_bad.cpp")
        self.assertEqual(code, 1)
        first = out.splitlines()[0]
        # path:line: [rule] message
        self.assertRegex(first, r"^\S+\.cpp:\d+: \[raw-atoi\] ")

    def test_comment_mentions_do_not_fire(self):
        # raw_atoi_good.cpp names std::atoi in a comment on purpose.
        code, out, _ = self.lint_fixture("raw_atoi_good.cpp")
        self.assertEqual(code, 0, out)


class AllowlistCase(unittest.TestCase):
    def test_cli_hpp_is_allowlisted_for_raw_atoi(self):
        code, out, _ = run_lint(
            ["--root", REPO_ROOT, os.path.join(REPO_ROOT, "src", "common", "cli.hpp")]
        )
        self.assertEqual(code, 0, out)

    def test_annotations_hpp_is_allowlisted_for_naked_mutex(self):
        code, out, _ = run_lint(
            ["--root", REPO_ROOT,
             os.path.join(REPO_ROOT, "src", "common", "annotations.hpp")]
        )
        self.assertEqual(code, 0, out)

    def test_rng_is_allowlisted_for_unseeded_rng(self):
        for name in ("rng.hpp", "rng.cpp"):
            code, out, _ = run_lint(
                ["--root", REPO_ROOT, os.path.join(REPO_ROOT, "src", "common", name)]
            )
            self.assertEqual(code, 0, out)


class TreeCase(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        code, out, _ = run_lint(["--root", REPO_ROOT])
        self.assertEqual(code, 0, f"tree has lint violations:\n{out}")

    def test_list_rules_names_every_rule(self):
        code, out, _ = run_lint(["--list-rules"])
        self.assertEqual(code, 0)
        for rule in FixtureCase.RULES:
            self.assertIn(rule + ":", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
